// CI perf-regression gate over bench `--json` reports.
//
//   perf_gate <baseline.json> <measured.json> [--tolerance 0.15]
//
// Both files must be `tunio.bench.v1` documents. Every value marked
// `gate: true` in the BASELINE is looked up in the measured report and
// compared with the given relative tolerance in its recorded direction
// (`higher_is_better` values may not drop more than tolerance below the
// baseline; `lower_is_better` values may not rise more than tolerance
// above it). Improvements never fail. Gated baseline values missing
// from the measured report fail the gate — a silently dropped metric is
// a regression in coverage, not a pass.
//
// Exit code: 0 = within tolerance, 1 = regression or schema problem.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace {

using tunio::obs::Json;

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw tunio::Error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return Json::parse(text.str());
}

void check_schema(const Json& doc, const std::string& path) {
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "tunio.bench.v1") {
    throw tunio::Error(path + ": not a tunio.bench.v1 report");
  }
  for (const char* key : {"bench", "values", "metrics"}) {
    if (doc.find(key) == nullptr) {
      throw tunio::Error(path + ": missing required field '" +
                         std::string(key) + "'");
    }
  }
}

struct GateValue {
  double value = 0.0;
  std::string unit;
  bool gate = false;
  bool lower_is_better = false;
};

bool read_value(const Json& doc, const std::string& name, GateValue& out) {
  for (const Json& row : doc.find("values")->items()) {
    const Json* n = row.find("name");
    if (n == nullptr || n->as_string() != name) continue;
    out.value = row.find("value")->as_number();
    if (const Json* unit = row.find("unit")) out.unit = unit->as_string();
    if (const Json* gate = row.find("gate")) out.gate = gate->as_bool();
    if (const Json* dir = row.find("direction")) {
      out.lower_is_better = dir->as_string() == "lower_is_better";
    }
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.15;
  const char* baseline_path = nullptr;
  const char* measured_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (measured_path == nullptr) {
      measured_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 1;
    }
  }
  if (baseline_path == nullptr || measured_path == nullptr) {
    std::fprintf(stderr,
                 "usage: perf_gate <baseline.json> <measured.json> "
                 "[--tolerance 0.15]\n");
    return 1;
  }

  try {
    const Json baseline = load(baseline_path);
    const Json measured = load(measured_path);
    check_schema(baseline, baseline_path);
    check_schema(measured, measured_path);

    const std::string bench = baseline.find("bench")->as_string();
    std::printf("perf gate: %s (tolerance %.0f%%)\n", bench.c_str(),
                100.0 * tolerance);

    int gated = 0;
    int failures = 0;
    for (const Json& row : baseline.find("values")->items()) {
      GateValue base;
      const std::string name = row.find("name")->as_string();
      read_value(baseline, name, base);
      if (!base.gate) continue;
      ++gated;

      GateValue now;
      if (!read_value(measured, name, now)) {
        std::printf("  FAIL %-32s missing from measured report\n",
                    name.c_str());
        ++failures;
        continue;
      }

      // Relative bound plus a tiny absolute slack so near-zero
      // deterministic values (e.g. 0.0002%-error rows) don't fail on
      // formatting noise.
      const double slack = tolerance * std::fabs(base.value) + 1e-9;
      const bool ok = now.lower_is_better
                          ? now.value <= base.value + slack
                          : now.value >= base.value - slack;
      const double delta_pct =
          base.value != 0.0
              ? 100.0 * (now.value - base.value) / std::fabs(base.value)
              : (now.value == 0.0 ? 0.0 : 100.0);
      std::printf("  %s %-32s baseline %.6g, measured %.6g %s (%+.1f%%)\n",
                  ok ? "ok  " : "FAIL", name.c_str(), base.value, now.value,
                  base.unit.c_str(), delta_pct);
      if (!ok) ++failures;
    }

    if (gated == 0) {
      std::printf("  FAIL: baseline gates no values — nothing to check\n");
      return 1;
    }
    std::printf("%d gated value(s), %d regression(s)\n", gated, failures);
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: %s\n", e.what());
    return 1;
  }
}
