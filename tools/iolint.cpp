// iolint: the I/O anti-pattern linter CLI.
//
// Runs the static analyzer (linter + abstract-interpretation cost model)
// over mini-C sources. Human-readable by default; `--json` emits one
// machine-readable document (`tunio.iolint.v1`) with every diagnostic
// (kind, severity, line, column, hint_params), the aggregated tuning
// hints, and the static I/O cost prediction (per-program and per-site op
// counts and byte volumes as intervals).
//
// Usage:
//   iolint [--json] [--pretty] [FILE...]
//
// Without FILE arguments all five built-in workload sources are linted.
// Exit status: 0 clean, 1 any error-severity finding or unreadable /
// unparsable input (CI gates on this).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cost_model.hpp"
#include "analysis/lint.hpp"
#include "common/error.hpp"
#include "obs/json.hpp"
#include "workloads/sources.hpp"

using namespace tunio;

namespace {

/// [lo, hi] with null for an unbounded endpoint, so consumers never
/// have to know the int64 sentinels.
obs::Json interval_json(const analysis::Interval& v) {
  obs::Json out = obs::Json::array();
  out.push_back(v.bounded_below()
                    ? obs::Json::number(static_cast<double>(v.lo))
                    : obs::Json());
  out.push_back(v.bounded_above()
                    ? obs::Json::number(static_cast<double>(v.hi))
                    : obs::Json());
  return out;
}

obs::Json cost_json(const analysis::ProgramCost& cost) {
  obs::Json out = obs::Json::object();
  out.set("analyzable", obs::Json::boolean(cost.analyzable));
  if (!cost.analyzable) {
    out.set("failure", obs::Json::string(cost.failure));
    return out;
  }
  out.set("write_ops", interval_json(cost.write_ops));
  out.set("read_ops", interval_json(cost.read_ops));
  out.set("bytes_written", interval_json(cost.bytes_written));
  out.set("bytes_read", interval_json(cost.bytes_read));
  out.set("file_opens", interval_json(cost.file_opens));
  out.set("dataset_creates", interval_json(cost.dataset_creates));
  out.set("bounded", obs::Json::boolean(cost.bounded()));
  out.set("settings_tainted", obs::Json::boolean(cost.any_tainted_site() ||
                                                 cost.tainted_control_exit));
  obs::Json sites = obs::Json::array();
  for (const analysis::SiteCost& site : cost.sites) {
    obs::Json s = obs::Json::object();
    s.set("callee", obs::Json::string(site.callee));
    s.set("kind", obs::Json::string(analysis::site_kind_name(site.kind)));
    s.set("function", obs::Json::string(site.function));
    s.set("line", obs::Json::number(site.line));
    s.set("column", obs::Json::number(site.col));
    s.set("calls", interval_json(site.calls));
    s.set("payload_per_call", interval_json(site.payload_per_call));
    s.set("bytes", interval_json(site.bytes));
    s.set("tainted", obs::Json::boolean(site.tainted));
    s.set("in_loop", obs::Json::boolean(site.in_loop));
    sites.push_back(std::move(s));
  }
  out.set("sites", std::move(sites));
  return out;
}

obs::Json report_json(const std::string& label,
                      const analysis::LintReport& report) {
  obs::Json out = obs::Json::object();
  out.set("file", obs::Json::string(label));
  obs::Json diags = obs::Json::array();
  std::size_t errors = 0;
  for (const analysis::Diagnostic& d : report.diagnostics) {
    if (d.severity == analysis::Severity::kError) ++errors;
    obs::Json diag = obs::Json::object();
    diag.set("kind", obs::Json::string(analysis::kind_name(d.kind)));
    diag.set("severity",
             obs::Json::string(analysis::severity_name(d.severity)));
    diag.set("line", obs::Json::number(d.line));
    diag.set("column", obs::Json::number(d.column));
    diag.set("function", obs::Json::string(d.function));
    diag.set("message", obs::Json::string(d.message));
    obs::Json hints = obs::Json::array();
    for (const std::string& param : d.hint_params) {
      hints.push_back(obs::Json::string(param));
    }
    diag.set("hint_params", std::move(hints));
    diags.push_back(std::move(diag));
  }
  out.set("diagnostics", std::move(diags));
  out.set("error_count", obs::Json::number(static_cast<double>(errors)));
  obs::Json hints = obs::Json::array();
  for (const auto& [param, weight] : report.tuning_hints()) {
    obs::Json h = obs::Json::object();
    h.set("param", obs::Json::string(param));
    h.set("weight", obs::Json::number(weight));
    hints.push_back(std::move(h));
  }
  out.set("tuning_hints", std::move(hints));
  out.set("static_cost", cost_json(report.cost));
  return out;
}

void print_human(const std::string& label,
                 const analysis::LintReport& report) {
  std::printf("== %s ==\n", label.c_str());
  if (report.diagnostics.empty()) {
    std::printf("  (clean)\n");
  }
  for (const analysis::Diagnostic& d : report.diagnostics) {
    std::printf("  %s\n", analysis::format(d).c_str());
  }
  const auto hints = report.tuning_hints();
  if (!hints.empty()) {
    std::printf("  tuning hints:");
    for (const auto& [param, weight] : hints) {
      std::printf(" %s=%.2f", param.c_str(), weight);
    }
    std::printf("\n");
  }
  if (report.cost.analyzable) {
    std::printf("  static cost: writes %s ops / %s B, reads %s ops / %s B\n",
                report.cost.write_ops.str().c_str(),
                report.cost.bytes_written.str().c_str(),
                report.cost.read_ops.str().c_str(),
                report.cost.bytes_read.str().c_str());
  } else {
    std::printf("  static cost: unanalyzable (%s)\n",
                report.cost.failure.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool pretty = false;
  std::vector<std::pair<std::string, std::string>> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: iolint [--json] [--pretty] [FILE...]\n");
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--pretty") {
      json = pretty = true;
      continue;
    }
    std::ifstream in(arg);
    if (!in) {
      std::fprintf(stderr, "iolint: cannot open %s\n", arg.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    inputs.emplace_back(arg, buffer.str());
  }
  if (inputs.empty()) {
    inputs.emplace_back("macsio_vpic", wl::sources::macsio_vpic());
    inputs.emplace_back("vpic", wl::sources::vpic());
    inputs.emplace_back("flash", wl::sources::flash());
    inputs.emplace_back("hacc", wl::sources::hacc());
    inputs.emplace_back("bdcats", wl::sources::bdcats());
  }

  bool failed = false;
  obs::Json doc = obs::Json::object();
  doc.set("version", obs::Json::string("tunio.iolint.v1"));
  obs::Json results = obs::Json::array();
  for (const auto& [label, source] : inputs) {
    try {
      const analysis::LintReport report = analysis::lint_source(source);
      failed = failed || report.has_errors();
      if (json) {
        results.push_back(report_json(label, report));
      } else {
        print_human(label, report);
      }
    } catch (const std::exception& e) {
      failed = true;
      if (json) {
        obs::Json err = obs::Json::object();
        err.set("file", obs::Json::string(label));
        err.set("error", obs::Json::string(e.what()));
        results.push_back(std::move(err));
      } else {
        std::fprintf(stderr, "== %s ==\n  lint failed: %s\n", label.c_str(),
                     e.what());
      }
    }
  }
  if (json) {
    doc.set("inputs", std::move(results));
    std::printf("%s\n", doc.dump(pretty ? 2 : -1).c_str());
  }
  return failed ? 1 : 0;
}
