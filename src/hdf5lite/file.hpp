// H5File: the container object tying datasets, metadata and MPI-IO
// together — the analogue of an HDF5 file opened with the MPI-IO VFD.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "hdf5lite/dataset.hpp"
#include "hdf5lite/metadata.hpp"
#include "hdf5lite/properties.hpp"
#include "mpiio/mpiio.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"

namespace tunio::h5 {

class File {
 public:
  /// Creates (truncates) a file on the simulated stack.
  File(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs, std::string path,
       FileAccessProps fapl, mpiio::Hints hints,
       pfs::CreateOptions create_options = {});

  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  /// Creates a dataset; the returned reference lives as long as the file.
  Dataset& create_dataset(const std::string& name, Bytes elem_size,
                          std::uint64_t num_elements,
                          const DatasetCreateProps& dcpl = {},
                          const ChunkCacheProps& ccpl = {});

  /// Looks up an existing dataset by name.
  Dataset& dataset(const std::string& name);
  bool has_dataset(const std::string& name) const;

  /// Flushes all datasets and staged metadata.
  void flush();

  /// Flush + file close (superblock update, MDS close). Idempotent.
  void close();

  const std::string& path() const { return path_; }
  const FileAccessProps& fapl() const { return fapl_; }
  mpisim::MpiSim& mpi() { return mpi_; }
  pfs::PfsSimulator& fs() { return fs_; }
  mpiio::MpiIoFile& mpiio() { return *mpiio_; }
  MetadataManager& meta() { return meta_; }
  const MetadataManager& meta() const { return meta_; }

 private:
  mpisim::MpiSim& mpi_;
  pfs::PfsSimulator& fs_;
  std::string path_;
  FileAccessProps fapl_;
  std::unique_ptr<mpiio::MpiIoFile> mpiio_;
  MetadataManager meta_;
  std::map<std::string, std::unique_ptr<Dataset>> datasets_;
  bool closed_ = false;
};

}  // namespace tunio::h5
