#include "hdf5lite/file.hpp"

#include "common/error.hpp"

namespace tunio::h5 {

namespace {
constexpr Bytes kSuperblockBytes = 96;
}

File::File(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs, std::string path,
           FileAccessProps fapl, mpiio::Hints hints,
           pfs::CreateOptions create_options)
    : mpi_(mpi),
      fs_(fs),
      path_(std::move(path)),
      fapl_(fapl),
      mpiio_(std::make_unique<mpiio::MpiIoFile>(mpi, fs, path_, hints,
                                                create_options)),
      meta_(mpi, fs, path_, fapl_) {
  // Superblock write at creation.
  meta_.meta_update(kSuperblockBytes);
}

File::~File() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() failures surface when called
    // explicitly.
  }
}

Dataset& File::create_dataset(const std::string& name, Bytes elem_size,
                              std::uint64_t num_elements,
                              const DatasetCreateProps& dcpl,
                              const ChunkCacheProps& ccpl) {
  TUNIO_CHECK_MSG(!closed_, "create_dataset on closed file");
  TUNIO_CHECK_MSG(datasets_.count(name) == 0, "dataset exists: " + name);
  auto dataset =
      std::make_unique<Dataset>(*this, name, elem_size, num_elements, dcpl,
                                ccpl);
  Dataset& ref = *dataset;
  datasets_.emplace(name, std::move(dataset));
  return ref;
}

Dataset& File::dataset(const std::string& name) {
  auto it = datasets_.find(name);
  TUNIO_CHECK_MSG(it != datasets_.end(), "unknown dataset: " + name);
  return *it->second;
}

bool File::has_dataset(const std::string& name) const {
  return datasets_.count(name) > 0;
}

void File::flush() {
  for (auto& [name, dataset] : datasets_) dataset->flush();
  meta_.flush();
}

void File::close() {
  if (closed_) return;
  for (auto& [name, dataset] : datasets_) dataset->close();
  // Superblock is rewritten on close (end-of-allocation update).
  meta_.meta_update(kSuperblockBytes);
  meta_.flush();
  mpiio_->close();
  closed_ = true;
}

}  // namespace tunio::h5
