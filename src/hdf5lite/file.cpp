#include "hdf5lite/file.hpp"

#include "common/error.hpp"
#include "replay/hooks.hpp"

namespace tunio::h5 {

namespace {
constexpr Bytes kSuperblockBytes = 96;
}

File::File(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs, std::string path,
           FileAccessProps fapl, mpiio::Hints hints,
           pfs::CreateOptions create_options)
    : mpi_(mpi),
      fs_(fs),
      path_(std::move(path)),
      fapl_(fapl),
      mpiio_(std::make_unique<mpiio::MpiIoFile>(mpi, fs, path_, hints,
                                                create_options)),
      meta_(mpi, fs, path_, fapl_) {
  // Superblock write at creation.
  meta_.meta_update(kSuperblockBytes);
  // Only the memory-tier choice is the caller's; the striping/hints all
  // came from the settings and get re-substituted at replay.
  replay::note_file_ctor(this, path_,
                         create_options.tier == pfs::Tier::kMemory);
}

File::~File() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() failures surface when called
    // explicitly.
  }
}

Dataset& File::create_dataset(const std::string& name, Bytes elem_size,
                              std::uint64_t num_elements,
                              const DatasetCreateProps& dcpl,
                              const ChunkCacheProps& ccpl) {
  TUNIO_CHECK_MSG(!closed_, "create_dataset on closed file");
  TUNIO_CHECK_MSG(datasets_.count(name) == 0, "dataset exists: " + name);
  auto dataset =
      std::make_unique<Dataset>(*this, name, elem_size, num_elements, dcpl,
                                ccpl);
  Dataset& ref = *dataset;
  datasets_.emplace(name, std::move(dataset));
  // Record the caller's (pre-clamp) chunk request; the cache props come
  // from the settings and get re-substituted at replay.
  replay::note_dataset_create(this, &ref, name, elem_size, num_elements,
                              dcpl.chunk_elements.value_or(0));
  return ref;
}

Dataset& File::dataset(const std::string& name) {
  auto it = datasets_.find(name);
  TUNIO_CHECK_MSG(it != datasets_.end(), "unknown dataset: " + name);
  return *it->second;
}

bool File::has_dataset(const std::string& name) const {
  return datasets_.count(name) > 0;
}

void File::flush() {
  replay::note_file_flush(this);
  // One kFileFlush op stands for the whole composite; the per-dataset
  // flushes below must not record themselves.
  replay::SuppressScope suppress;
  for (auto& [name, dataset] : datasets_) dataset->flush();
  meta_.flush();
}

void File::close() {
  if (closed_) return;
  replay::note_file_close(this);
  replay::SuppressScope suppress;
  for (auto& [name, dataset] : datasets_) dataset->close();
  // Superblock is rewritten on close (end-of-allocation update).
  meta_.meta_update(kSuperblockBytes);
  meta_.flush();
  mpiio_->close();
  closed_ = true;
}

}  // namespace tunio::h5
