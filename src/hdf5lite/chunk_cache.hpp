// LRU chunk cache simulation (HDF5's rdcc).
//
// HDF5 stages chunked-dataset raw data in a per-dataset cache of
// `rdcc_nbytes`; whole chunks are evicted (and written back when dirty)
// under LRU. The cache turns repeated partial-chunk accesses into a
// single chunk-sized write at eviction — exactly the behaviour the
// `chunk_cache` tuning parameter controls. A chunk larger than the cache
// bypasses it entirely, which is HDF5's real behaviour and the main
// performance cliff this parameter creates.
//
// The cache tracks *which* chunk of *which rank* is resident; the caller
// translates evictions into simulated I/O.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "hdf5lite/properties.hpp"

namespace tunio::h5 {

/// Identity of a cached chunk: owning rank and chunk index.
struct ChunkKey {
  unsigned rank = 0;
  std::uint64_t chunk = 0;

  bool operator==(const ChunkKey&) const = default;
};

struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& k) const {
    return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.rank) << 40) ^
                                      k.chunk);
  }
};

/// Outcome of touching a chunk in the cache.
struct CacheOutcome {
  bool hit = false;          ///< chunk was already resident
  bool bypass = false;       ///< chunk can't fit; caller does direct I/O
  bool needs_preread = false;///< partial access to a non-resident chunk
  std::vector<ChunkKey> evicted_dirty;  ///< dirty chunks to write back
};

struct ChunkCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bypasses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;
};

class ChunkCache {
 public:
  ChunkCache(ChunkCacheProps props, Bytes chunk_bytes);
  /// Flushes accumulated stats into the global metrics registry
  /// (`h5.chunk_cache.*` series).
  ~ChunkCache();

  /// Touches `key` for a write covering `covered_bytes` of the chunk
  /// (`chunk_was_allocated` says whether the chunk already exists on disk,
  /// which decides if a partial miss needs a pre-read).
  CacheOutcome touch_write(const ChunkKey& key, Bytes covered_bytes,
                           bool chunk_was_allocated);

  /// Touches `key` for a read.
  CacheOutcome touch_read(const ChunkKey& key);

  /// Removes and returns all dirty chunks (flush at dataset close).
  std::vector<ChunkKey> flush_dirty();

  bool resident(const ChunkKey& key) const;
  std::size_t resident_chunks() const { return entries_.size(); }
  Bytes capacity() const { return props_.rdcc_nbytes; }
  Bytes chunk_bytes() const { return chunk_bytes_; }
  const ChunkCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::list<ChunkKey>::iterator lru_pos;
    bool dirty = false;
  };

  /// Inserts `key`, evicting LRU victims into `outcome`.
  void insert(const ChunkKey& key, bool dirty, CacheOutcome& outcome);

  ChunkCacheProps props_;
  Bytes chunk_bytes_;
  std::size_t max_resident_;  ///< min(nbytes/chunk, nslots)
  std::list<ChunkKey> lru_;   ///< front = most recent
  std::unordered_map<ChunkKey, Entry, ChunkKeyHash> entries_;
  ChunkCacheStats stats_;
};

}  // namespace tunio::h5
