// Property lists for the HDF5-like library.
//
// These mirror the HDF5 property-list knobs the paper tunes (§IV tunes 12
// parameters across HDF5, MPI-IO and Lustre; the HDF5 ones live here):
// `alignment`, `sieve_buf_size`, `meta_block_size`, metadata cache size
// (`mdc_conf`), collective metadata ops/writes, and the chunk cache
// (`chunk_cache` = rdcc_nbytes).
#pragma once

#include <cstdint>
#include <optional>

#include "common/units.hpp"

namespace tunio::h5 {

/// File access properties (HDF5 FAPL analogue).
struct FileAccessProps {
  /// H5Pset_alignment: file-space allocations of at least
  /// `alignment_threshold` bytes start at multiples of `alignment`.
  Bytes alignment = 1;
  Bytes alignment_threshold = 0;

  /// H5Pset_sieve_buf_size: staging buffer for small raw-data accesses to
  /// contiguous datasets.
  Bytes sieve_buf_size = 64 * KiB;

  /// H5Pset_meta_block_size: small metadata allocations are packed into
  /// blocks of this size, turning many tiny writes into few larger ones.
  Bytes meta_block_size = 2 * KiB;

  /// Metadata cache capacity (H5Pset_mdc_config, simplified to its size).
  Bytes mdc_nbytes = 2 * MiB;

  /// H5Pset_all_coll_metadata_ops: metadata *reads* are performed once
  /// and broadcast instead of every rank hitting the MDS.
  bool coll_metadata_ops = false;

  /// H5Pset_coll_metadata_write: metadata *writes* are aggregated and
  /// issued collectively at flush points instead of eagerly one-by-one.
  bool coll_metadata_write = false;
};

/// Chunk cache properties (HDF5 DAPL analogue; rdcc_nbytes of the paper's
/// `chunk_cache` parameter).
struct ChunkCacheProps {
  Bytes rdcc_nbytes = 1 * MiB;
  unsigned rdcc_nslots = 521;
};

/// Dataset creation properties (HDF5 DCPL analogue). Datasets are modeled
/// as 1-D element arrays; `chunk_elements` selects the chunked layout.
struct DatasetCreateProps {
  std::optional<std::uint64_t> chunk_elements;  ///< nullopt = contiguous
};

/// Transfer properties (HDF5 DXPL analogue).
struct TransferProps {
  bool collective = false;  ///< H5FD_MPIO_COLLECTIVE vs INDEPENDENT
};

}  // namespace tunio::h5
