#include "hdf5lite/metadata.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tunio::h5 {

namespace {

Bytes align_up(Bytes value, Bytes granule) {
  if (granule <= 1) return value;
  return (value + granule - 1) / granule * granule;
}

}  // namespace

MetadataManager::MetadataManager(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                                 const std::string& path,
                                 const FileAccessProps& fapl)
    : mpi_(mpi), fs_(fs), fapl_(fapl) {
  TUNIO_CHECK_MSG(fapl_.meta_block_size > 0, "meta block size must be > 0");
  // The file must already exist (File's MpiIoFile creates it first); all
  // metadata traffic then goes through the handle, not the path.
  const std::optional<pfs::FileHandle> handle = fs_.find_file(path);
  TUNIO_CHECK_MSG(handle.has_value(), "metadata manager on missing file: " + path);
  handle_ = *handle;
}

Bytes MetadataManager::alloc_raw(Bytes bytes) {
  if (bytes >= fapl_.alignment_threshold && fapl_.alignment > 1) {
    eoa_ = align_up(eoa_, fapl_.alignment);
  }
  const Bytes offset = eoa_;
  eoa_ += bytes;
  return offset;
}

Bytes MetadataManager::alloc_meta(Bytes bytes) {
  if (bytes > meta_block_remaining_) {
    // Open a new aggregation block at the end of the file.
    meta_block_cursor_ = eoa_;
    const Bytes block = std::max(fapl_.meta_block_size, bytes);
    meta_block_remaining_ = block;
    eoa_ += block;
    ++stats_.meta_blocks;
  }
  const Bytes offset = meta_block_cursor_;
  meta_block_cursor_ += bytes;
  meta_block_remaining_ -= bytes;
  return offset;
}

void MetadataManager::meta_update(Bytes bytes) {
  const Bytes offset = alloc_meta(bytes);
  working_set_ += bytes;
  if (fapl_.coll_metadata_write) {
    // Stage: the dirty metadata will be written in one aggregated pass.
    if (staged_meta_bytes_ == 0) staged_meta_offset_ = offset;
    staged_meta_bytes_ += bytes;
    return;
  }
  // Eager: rank 0 issues the small write immediately and everyone waits
  // on it at the next synchronization (approximated by charging rank 0).
  ++stats_.meta_writes;
  stats_.meta_bytes_written += bytes;
  const SimSeconds done = fs_.write(handle_, mpi_.clock(0), offset, bytes);
  mpi_.set_clock(0, done);
}

void MetadataManager::meta_lookup(Bytes object_bytes) {
  ++lookup_counter_;
  working_set_ = std::max(working_set_, working_set_ + 0);  // no-op clarity
  const double p_miss = miss_probability();
  // Deterministic spreading: every k-th lookup misses, where k ~ 1/p.
  const bool miss =
      p_miss > 0.0 &&
      (lookup_counter_ % std::max<std::uint64_t>(
           1, static_cast<std::uint64_t>(1.0 / std::max(p_miss, 1e-9)))) == 0;
  if (!miss) {
    ++stats_.mdc_hits;
    return;
  }
  ++stats_.mdc_misses;
  if (fapl_.coll_metadata_ops) {
    // One rank resolves the object, result is broadcast.
    ++stats_.meta_reads;
    const SimSeconds done = fs_.metadata_op(mpi_.clock(0));
    mpi_.set_clock(0, done);
    mpi_.broadcast(0, object_bytes);
  } else {
    // MDS storm: every rank performs its own lookup; the shared MDS
    // timeline serializes them.
    for (unsigned r = 0; r < mpi_.size(); ++r) {
      ++stats_.meta_reads;
      const SimSeconds done = fs_.metadata_op(mpi_.clock(r));
      mpi_.set_clock(r, done);
    }
  }
}

void MetadataManager::flush() {
  if (staged_meta_bytes_ == 0) return;
  // One aggregated write covering the staged region, issued collectively
  // (modeled as a single large write from rank 0 after a barrier).
  mpi_.barrier();
  ++stats_.meta_writes;
  stats_.meta_bytes_written += staged_meta_bytes_;
  const SimSeconds done =
      fs_.write(handle_, mpi_.max_clock(), staged_meta_offset_,
                staged_meta_bytes_);
  for (unsigned r = 0; r < mpi_.size(); ++r) mpi_.set_clock(r, done);
  staged_meta_bytes_ = 0;
}

double MetadataManager::miss_probability() const {
  if (working_set_ == 0) return 0.0;
  if (fapl_.mdc_nbytes >= working_set_) return 0.02;  // cold misses only
  const double fit = static_cast<double>(fapl_.mdc_nbytes) /
                     static_cast<double>(working_set_);
  return std::clamp(1.0 - fit, 0.02, 1.0);
}

}  // namespace tunio::h5
