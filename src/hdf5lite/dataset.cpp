#include "hdf5lite/dataset.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "hdf5lite/file.hpp"
#include "replay/hooks.hpp"

namespace tunio::h5 {

namespace {

/// Approximate on-disk sizes of HDF5 metadata records.
constexpr Bytes kObjectHeaderBytes = 800;
constexpr Bytes kBtreeRecordBytes = 160;
constexpr Bytes kAttributeBytes = 256;

}  // namespace

Dataset::Dataset(File& file, std::string name, Bytes elem_size,
                 std::uint64_t num_elements, const DatasetCreateProps& dcpl,
                 const ChunkCacheProps& ccpl)
    : file_(file),
      name_(std::move(name)),
      elem_size_(elem_size),
      num_elements_(num_elements) {
  TUNIO_CHECK_MSG(elem_size_ > 0, "element size must be positive");
  TUNIO_CHECK_MSG(num_elements_ > 0, "dataset must be non-empty");
  if (dcpl.chunk_elements.has_value()) {
    chunk_elements_ = std::min<std::uint64_t>(*dcpl.chunk_elements,
                                              num_elements_);
    TUNIO_CHECK_MSG(chunk_elements_ > 0, "chunk size must be positive");
    cache_ = std::make_unique<ChunkCache>(ccpl, chunk_bytes());
    // B-tree root for the chunk index.
    file_.meta().meta_update(kBtreeRecordBytes);
  } else {
    // Contiguous layout: allocate the whole extent up front.
    base_offset_ = file_.meta().alloc_raw(num_elements_ * elem_size_);
  }
  // Object header creation: a lookup (name resolution in the group) plus a
  // header write.
  file_.meta().meta_lookup(kObjectHeaderBytes);
  file_.meta().meta_update(kObjectHeaderBytes);
}

const ChunkCacheStats* Dataset::cache_stats() const {
  return cache_ ? &cache_->stats() : nullptr;
}

Bytes Dataset::ensure_chunk_allocated(std::uint64_t chunk_index) {
  auto it = chunk_offsets_.find(chunk_index);
  if (it != chunk_offsets_.end()) return it->second;
  const Bytes offset = file_.meta().alloc_raw(chunk_bytes());
  chunk_offsets_.emplace(chunk_index, offset);
  // Chunk-index insertion: B-tree record update.
  file_.meta().meta_update(kBtreeRecordBytes);
  return offset;
}

void Dataset::issue_writes(const std::vector<ByteExtent>& extents,
                           bool collective) {
  if (extents.empty()) return;
  if (collective) {
    std::vector<mpiio::Request> requests;
    requests.reserve(extents.size());
    for (const ByteExtent& e : extents) {
      requests.push_back({e.rank, e.offset, e.length});
    }
    file_.mpiio().write_at_all(requests);
  } else {
    for (const ByteExtent& e : extents) {
      file_.mpiio().write_at(e.rank, e.offset, e.length);
    }
  }
}

void Dataset::issue_reads(const std::vector<ByteExtent>& extents,
                          bool collective) {
  if (extents.empty()) return;
  if (collective) {
    std::vector<mpiio::Request> requests;
    requests.reserve(extents.size());
    for (const ByteExtent& e : extents) {
      requests.push_back({e.rank, e.offset, e.length});
    }
    file_.mpiio().read_at_all(requests);
  } else {
    for (const ByteExtent& e : extents) {
      file_.mpiio().read_at(e.rank, e.offset, e.length);
    }
  }
}

void Dataset::write(const std::vector<Selection>& selections,
                    const TransferProps& dxpl) {
  TUNIO_CHECK_MSG(!closed_, "write on closed dataset: " + name_);
  if (replay::recording()) {
    std::vector<replay::Sel> sels;
    sels.reserve(selections.size());
    for (const Selection& sel : selections) {
      sels.push_back({sel.rank, sel.start_element, sel.count});
    }
    replay::note_dataset_io(this, /*is_write=*/true, dxpl.collective,
                            sels.data(), sels.size());
  }
  last_dxpl_collective_ = dxpl.collective;
  for (const Selection& sel : selections) {
    TUNIO_CHECK_MSG(sel.start_element + sel.count <= num_elements_,
                    "selection out of bounds in " + name_);
    ++stats_.h5_writes;
    stats_.bytes_written += sel.count * elem_size_;
  }
  if (chunked()) {
    write_chunked(selections, dxpl);
  } else {
    write_contiguous(selections, dxpl);
  }
}

void Dataset::read(const std::vector<Selection>& selections,
                   const TransferProps& dxpl) {
  TUNIO_CHECK_MSG(!closed_, "read on closed dataset: " + name_);
  if (replay::recording()) {
    std::vector<replay::Sel> sels;
    sels.reserve(selections.size());
    for (const Selection& sel : selections) {
      sels.push_back({sel.rank, sel.start_element, sel.count});
    }
    replay::note_dataset_io(this, /*is_write=*/false, dxpl.collective,
                            sels.data(), sels.size());
  }
  for (const Selection& sel : selections) {
    TUNIO_CHECK_MSG(sel.start_element + sel.count <= num_elements_,
                    "selection out of bounds in " + name_);
    ++stats_.h5_reads;
    stats_.bytes_read += sel.count * elem_size_;
  }
  if (chunked()) {
    read_chunked(selections, dxpl);
  } else {
    read_contiguous(selections, dxpl);
  }
}

void Dataset::flush_sieve(unsigned rank) {
  auto it = sieves_.find(rank);
  if (it == sieves_.end() || it->second.length == 0) return;
  SieveWindow& window = it->second;
  if (window.dirty) {
    ++stats_.sieve_flushes;
    file_.mpiio().write_at(rank, window.offset, window.length);
  }
  window = SieveWindow{};
}

void Dataset::write_contiguous(const std::vector<Selection>& selections,
                               const TransferProps& dxpl) {
  const Bytes sieve_cap = file_.fapl().sieve_buf_size;
  std::vector<ByteExtent> direct;
  for (const Selection& sel : selections) {
    const Bytes offset = base_offset_ + sel.start_element * elem_size_;
    const Bytes length = sel.count * elem_size_;
    if (dxpl.collective || length >= sieve_cap) {
      // Large or collective accesses bypass the sieve buffer (HDF5 only
      // sieves small independent raw-data accesses).
      flush_sieve(sel.rank);
      direct.push_back({sel.rank, offset, length});
      continue;
    }
    SieveWindow& window = sieves_[sel.rank];
    const bool extends =
        window.length > 0 && offset == window.offset + window.length &&
        window.length + length <= sieve_cap;
    if (extends) {
      window.length += length;
      window.dirty = true;
    } else {
      flush_sieve(sel.rank);
      window = SieveWindow{offset, length, /*dirty=*/true};
    }
  }
  issue_writes(direct, dxpl.collective);
}

void Dataset::read_contiguous(const std::vector<Selection>& selections,
                              const TransferProps& dxpl) {
  const Bytes sieve_cap = file_.fapl().sieve_buf_size;
  std::vector<ByteExtent> direct;
  for (const Selection& sel : selections) {
    const Bytes offset = base_offset_ + sel.start_element * elem_size_;
    const Bytes length = sel.count * elem_size_;
    if (dxpl.collective || length >= sieve_cap) {
      direct.push_back({sel.rank, offset, length});
      continue;
    }
    SieveWindow& window = sieves_[sel.rank];
    const bool inside = window.length > 0 && offset >= window.offset &&
                        offset + length <= window.offset + window.length;
    if (!inside) {
      flush_sieve(sel.rank);
      // Sieve read-ahead: pull a whole buffer's worth starting here.
      const Bytes ahead = std::min<Bytes>(
          sieve_cap, base_offset_ + num_elements_ * elem_size_ - offset);
      file_.mpiio().read_at(sel.rank, offset, ahead);
      window = SieveWindow{offset, ahead, /*dirty=*/false};
    }
  }
  issue_reads(direct, dxpl.collective);
}

void Dataset::write_back_chunk(const ChunkKey& key) {
  const Bytes offset = ensure_chunk_allocated(key.chunk);
  file_.mpiio().write_at(key.rank, offset, chunk_bytes());
}

void Dataset::write_chunked(const std::vector<Selection>& selections,
                            const TransferProps& dxpl) {
  std::vector<ByteExtent> direct_writes;
  for (const Selection& sel : selections) {
    std::uint64_t element = sel.start_element;
    std::uint64_t remaining = sel.count;
    while (remaining > 0) {
      const std::uint64_t chunk_index = element / chunk_elements_;
      const std::uint64_t within = element % chunk_elements_;
      const std::uint64_t take =
          std::min<std::uint64_t>(remaining, chunk_elements_ - within);
      const Bytes covered = take * elem_size_;

      // Chunk-index traversal: one metadata lookup per chunk touch.
      file_.meta().meta_lookup(kBtreeRecordBytes);

      const bool allocated = chunk_offsets_.count(chunk_index) > 0;
      const CacheOutcome outcome = cache_->touch_write(
          {sel.rank, chunk_index}, covered, allocated);

      for (const ChunkKey& victim : outcome.evicted_dirty) {
        write_back_chunk(victim);
      }
      if (outcome.bypass) {
        const Bytes chunk_off = ensure_chunk_allocated(chunk_index);
        if (outcome.needs_preread) {
          ++stats_.chunk_prereads;
          file_.mpiio().read_at(sel.rank, chunk_off, chunk_bytes());
        }
        direct_writes.push_back(
            {sel.rank, chunk_off + within * elem_size_, covered});
      } else if (outcome.needs_preread) {
        // Partial write to a non-resident, existing chunk: fetch it.
        ++stats_.chunk_prereads;
        const Bytes chunk_off = ensure_chunk_allocated(chunk_index);
        file_.mpiio().read_at(sel.rank, chunk_off, chunk_bytes());
      }
      element += take;
      remaining -= take;
    }
  }
  issue_writes(direct_writes, dxpl.collective);
}

void Dataset::read_chunked(const std::vector<Selection>& selections,
                           const TransferProps& dxpl) {
  std::vector<ByteExtent> direct_reads;
  for (const Selection& sel : selections) {
    std::uint64_t element = sel.start_element;
    std::uint64_t remaining = sel.count;
    while (remaining > 0) {
      const std::uint64_t chunk_index = element / chunk_elements_;
      const std::uint64_t within = element % chunk_elements_;
      const std::uint64_t take =
          std::min<std::uint64_t>(remaining, chunk_elements_ - within);

      file_.meta().meta_lookup(kBtreeRecordBytes);
      const CacheOutcome outcome = cache_->touch_read({sel.rank, chunk_index});
      for (const ChunkKey& victim : outcome.evicted_dirty) {
        write_back_chunk(victim);
      }
      const Bytes chunk_off = ensure_chunk_allocated(chunk_index);
      if (outcome.bypass) {
        direct_reads.push_back(
            {sel.rank, chunk_off + within * elem_size_, take * elem_size_});
      } else if (!outcome.hit) {
        // Miss: the whole chunk is fetched into the cache.
        file_.mpiio().read_at(sel.rank, chunk_off, chunk_bytes());
      }
      element += take;
      remaining -= take;
    }
  }
  issue_reads(direct_reads, dxpl.collective);
}

void Dataset::flush() {
  replay::note_dataset_flush(this);
  for (auto& [rank, window] : sieves_) {
    if (window.length > 0 && window.dirty) {
      ++stats_.sieve_flushes;
      file_.mpiio().write_at(rank, window.offset, window.length);
    }
    window = SieveWindow{};
  }
  if (cache_) {
    for (const ChunkKey& key : cache_->flush_dirty()) {
      write_back_chunk(key);
    }
  }
}

void Dataset::close() {
  if (closed_) return;
  // Dataset close is always driven by File::close / h5dclose; the flush
  // below is already represented by the enclosing op.
  replay::SuppressScope suppress;
  flush();
  // Final attribute/object-header update on close.
  file_.meta().meta_update(kAttributeBytes);
  closed_ = true;
}

}  // namespace tunio::h5
