// Datasets: the raw-data path of the HDF5-like library.
//
// Datasets are 1-D arrays of fixed-size elements (the HPC workloads in
// this repository — particle dumps, checkpoint blocks — all map naturally
// onto flattened 1-D selections, which is also how HDF5 itself linearizes
// hyperslabs before hitting MPI-IO).
//
// Two layouts are modeled, as in HDF5:
//   * contiguous — one file extent, with a sieve buffer staging small
//     accesses (`sieve_buf_size`);
//   * chunked — fixed-size chunks allocated on first touch (aligned per
//     the FAPL), staged in an LRU chunk cache (`chunk_cache`), with
//     chunk-index metadata traffic on every chunk touch.
//
// Writes/reads take per-rank element selections and a transfer property
// list; collective transfers route through MPI-IO's two-phase engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hdf5lite/chunk_cache.hpp"
#include "hdf5lite/metadata.hpp"
#include "hdf5lite/properties.hpp"
#include "mpiio/mpiio.hpp"

namespace tunio::h5 {

/// One rank's hyperslab: `count` elements starting at `start_element`.
struct Selection {
  unsigned rank = 0;
  std::uint64_t start_element = 0;
  std::uint64_t count = 0;
};

/// Per-dataset access statistics.
struct DatasetStats {
  std::uint64_t h5_writes = 0;  ///< H5Dwrite-equivalent calls
  std::uint64_t h5_reads = 0;
  Bytes bytes_written = 0;      ///< user payload bytes
  Bytes bytes_read = 0;
  std::uint64_t chunk_prereads = 0;  ///< partial-chunk read-modify-writes
  std::uint64_t sieve_flushes = 0;
};

class File;

class Dataset {
 public:
  Dataset(File& file, std::string name, Bytes elem_size,
          std::uint64_t num_elements, const DatasetCreateProps& dcpl,
          const ChunkCacheProps& ccpl);

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  const std::string& name() const { return name_; }
  Bytes elem_size() const { return elem_size_; }
  std::uint64_t num_elements() const { return num_elements_; }
  bool chunked() const { return chunk_elements_ != 0; }
  Bytes chunk_bytes() const { return chunk_elements_ * elem_size_; }

  /// Writes the given selections (one entry per participating rank).
  void write(const std::vector<Selection>& selections,
             const TransferProps& dxpl);

  /// Reads the given selections.
  void read(const std::vector<Selection>& selections,
            const TransferProps& dxpl);

  /// Flushes cached dirty chunks and sieve buffers.
  void flush();

  /// Flush + final attribute update. Idempotent.
  void close();

  const DatasetStats& stats() const { return stats_; }
  const ChunkCacheStats* cache_stats() const;

 private:
  struct SieveWindow {
    Bytes offset = 0;   ///< file offset of the staged region
    Bytes length = 0;   ///< staged bytes (0 = empty)
    bool dirty = false;
  };

  /// Byte extent of a selection within the dataset's address space.
  struct ByteExtent {
    unsigned rank = 0;
    Bytes offset = 0;  ///< absolute file offset
    Bytes length = 0;
  };

  void write_contiguous(const std::vector<Selection>& selections,
                        const TransferProps& dxpl);
  void write_chunked(const std::vector<Selection>& selections,
                     const TransferProps& dxpl);
  void read_contiguous(const std::vector<Selection>& selections,
                       const TransferProps& dxpl);
  void read_chunked(const std::vector<Selection>& selections,
                    const TransferProps& dxpl);

  /// Ensures the chunk has file space; returns its offset.
  Bytes ensure_chunk_allocated(std::uint64_t chunk_index);

  /// Writes a full chunk back (cache eviction / flush).
  void write_back_chunk(const ChunkKey& key);

  void flush_sieve(unsigned rank);

  /// Issues a batch of write extents through MPI-IO.
  void issue_writes(const std::vector<ByteExtent>& extents, bool collective);
  void issue_reads(const std::vector<ByteExtent>& extents, bool collective);

  File& file_;
  std::string name_;
  Bytes elem_size_;
  std::uint64_t num_elements_;
  std::uint64_t chunk_elements_ = 0;  ///< 0 = contiguous

  Bytes base_offset_ = 0;  ///< contiguous layout only
  std::map<std::uint64_t, Bytes> chunk_offsets_;  ///< chunked layout
  std::unique_ptr<ChunkCache> cache_;
  std::map<unsigned, SieveWindow> sieves_;  ///< per-rank sieve windows
  bool last_dxpl_collective_ = false;
  bool closed_ = false;
  DatasetStats stats_;
};

}  // namespace tunio::h5
