#include "hdf5lite/chunk_cache.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace tunio::h5 {

namespace {

/// Cached registry handles (see PfsMetrics for the pattern rationale).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& bypasses;
  obs::Counter& evictions;
  obs::Counter& dirty_evictions;

  static CacheMetrics& get() {
    static CacheMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
      return new CacheMetrics{
          registry.counter("h5.chunk_cache.hits"),
          registry.counter("h5.chunk_cache.misses"),
          registry.counter("h5.chunk_cache.bypasses"),
          registry.counter("h5.chunk_cache.evictions"),
          registry.counter("h5.chunk_cache.dirty_evictions"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

ChunkCache::ChunkCache(ChunkCacheProps props, Bytes chunk_bytes)
    : props_(props), chunk_bytes_(chunk_bytes) {
  TUNIO_CHECK_MSG(chunk_bytes_ > 0, "chunk size must be positive");
  const auto by_bytes =
      static_cast<std::size_t>(props_.rdcc_nbytes / chunk_bytes_);
  max_resident_ = std::min<std::size_t>(by_bytes, props_.rdcc_nslots);
}

ChunkCache::~ChunkCache() {
  CacheMetrics& metrics = CacheMetrics::get();
  metrics.hits.add(stats_.hits);
  metrics.misses.add(stats_.misses);
  metrics.bypasses.add(stats_.bypasses);
  metrics.evictions.add(stats_.evictions);
  metrics.dirty_evictions.add(stats_.dirty_evictions);
}

bool ChunkCache::resident(const ChunkKey& key) const {
  return entries_.count(key) > 0;
}

void ChunkCache::insert(const ChunkKey& key, bool dirty,
                        CacheOutcome& outcome) {
  while (entries_.size() >= max_resident_ && !entries_.empty()) {
    const ChunkKey victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    ++stats_.evictions;
    if (it->second.dirty) {
      ++stats_.dirty_evictions;
      outcome.evicted_dirty.push_back(victim);
    }
    entries_.erase(it);
  }
  lru_.push_front(key);
  entries_[key] = Entry{lru_.begin(), dirty};
}

CacheOutcome ChunkCache::touch_write(const ChunkKey& key, Bytes covered_bytes,
                                     bool chunk_was_allocated) {
  CacheOutcome outcome;
  if (max_resident_ == 0) {
    // Chunk does not fit in the cache at all: direct I/O.
    ++stats_.bypasses;
    outcome.bypass = true;
    outcome.needs_preread =
        chunk_was_allocated && covered_bytes < chunk_bytes_;
    return outcome;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    outcome.hit = true;
    it->second.dirty = true;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return outcome;
  }
  ++stats_.misses;
  outcome.needs_preread = chunk_was_allocated && covered_bytes < chunk_bytes_;
  insert(key, /*dirty=*/true, outcome);
  return outcome;
}

CacheOutcome ChunkCache::touch_read(const ChunkKey& key) {
  CacheOutcome outcome;
  if (max_resident_ == 0) {
    ++stats_.bypasses;
    outcome.bypass = true;
    return outcome;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    outcome.hit = true;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return outcome;
  }
  ++stats_.misses;
  insert(key, /*dirty=*/false, outcome);
  return outcome;
}

std::vector<ChunkKey> ChunkCache::flush_dirty() {
  std::vector<ChunkKey> dirty;
  for (auto& [key, entry] : entries_) {
    if (entry.dirty) {
      dirty.push_back(key);
      entry.dirty = false;
    }
  }
  std::sort(dirty.begin(), dirty.end(), [](const ChunkKey& a, const ChunkKey& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.chunk < b.chunk;
  });
  return dirty;
}

}  // namespace tunio::h5
