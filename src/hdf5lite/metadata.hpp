// File-space allocation and metadata traffic model.
//
// Three HDF5 mechanisms are reproduced here because three of the tuned
// parameters act through them:
//
//   * `meta_block_size` — small metadata allocations are packed into
//     aggregation blocks, so the number of distinct small file writes
//     drops as the block grows;
//   * `coll_metadata_write` — metadata modifications are either flushed
//     eagerly as individual small writes (off) or staged and written in
//     aggregated batches at flush points (on);
//   * `coll_metadata_ops` + `mdc_nbytes` — metadata *reads*: with
//     collective ops a single rank resolves an object and broadcasts it;
//     otherwise every rank hits the MDS. The metadata cache absorbs
//     repeat lookups while the working set fits in `mdc_nbytes`.
//
// Raw-data allocations honor `alignment`/`alignment_threshold`
// (H5Pset_alignment), which is what lines dataset chunks up with Lustre
// stripe boundaries.
#pragma once

#include <cstdint>
#include <string>

#include "hdf5lite/properties.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"

namespace tunio::h5 {

struct MetadataStats {
  std::uint64_t meta_writes = 0;     ///< individual metadata write ops issued
  Bytes meta_bytes_written = 0;
  std::uint64_t meta_reads = 0;      ///< MDS round-trips for lookups
  std::uint64_t mdc_hits = 0;
  std::uint64_t mdc_misses = 0;
  std::uint64_t meta_blocks = 0;     ///< aggregation blocks allocated
};

class MetadataManager {
 public:
  /// `path` must already exist in `fs`; it is resolved to a handle once
  /// here and never hashed again on the metadata write path.
  MetadataManager(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                  const std::string& path, const FileAccessProps& fapl);

  /// Allocates `bytes` of raw data space; returns its file offset.
  Bytes alloc_raw(Bytes bytes);

  /// Allocates `bytes` of metadata space inside aggregation blocks.
  Bytes alloc_meta(Bytes bytes);

  /// Records a metadata modification of `bytes` (object header, B-tree
  /// node, superblock...). Eager mode writes it immediately from rank 0;
  /// collective mode stages it until `flush`.
  void meta_update(Bytes bytes);

  /// A metadata lookup performed by every rank (object open/locate).
  /// Honors collective metadata ops and the metadata cache.
  void meta_lookup(Bytes object_bytes);

  /// Flushes staged collective metadata writes (file close / explicit
  /// flush). No-op in eager mode.
  void flush();

  Bytes end_of_allocation() const { return eoa_; }
  const MetadataStats& stats() const { return stats_; }

 private:
  /// Probability that a lookup misses the metadata cache, given the
  /// current metadata working set vs. capacity.
  double miss_probability() const;

  mpisim::MpiSim& mpi_;
  pfs::PfsSimulator& fs_;
  pfs::FileHandle handle_ = 0;
  FileAccessProps fapl_;

  Bytes eoa_ = 4096;          ///< superblock occupies the file head
  Bytes meta_block_cursor_ = 0;
  Bytes meta_block_remaining_ = 0;
  Bytes staged_meta_bytes_ = 0;   ///< pending collective metadata
  Bytes staged_meta_offset_ = 0;  ///< start of the staged region
  Bytes working_set_ = 0;         ///< total live metadata bytes
  std::uint64_t lookup_counter_ = 0;  ///< deterministic miss spreading
  MetadataStats stats_;
};

}  // namespace tunio::h5
