// Tree-walking interpreter: runs mini-C programs against the simulated
// I/O stack.
//
// The same programs that Application I/O Discovery analyzes can be
// *executed* — full application and extracted kernel alike — so kernel
// fidelity (Fig. 8c) is measured, not assumed. Programs are written in
// SPMD driver form: bulk builtins express what every rank does
// (`h5dwrite_all(ds, n)` = each rank writes its n-element slab), which is
// how the real VPIC/FLASH/HACC I/O kernels are structured.
//
// Builtins:
//   I/O      h5fcreate(path) h5fopen(path) h5fclose(f)
//            h5set_chunking(elems)  h5dcreate(f, name, elem_size, total)
//            h5dopen(f, name) h5dclose(d)
//            h5dwrite_all(d, per_rank) h5dread_all(d, per_rank)
//            h5dwrite_strided(d, block, elems) h5dread_strided(...)
//   non-HDF5 fprintf_log(path, bytes)            (incidental logging)
//   compute  compute(seconds)
//   MPI      mpi_size() mpi_barrier()
//   tuning   tuned_stripe_count() tuned_stripe_size_kib() tuned_cb_nodes()
//            (reading these makes the kernel settings-dependent, which
//            disqualifies it from the record/replay fast path)
//   misc     min(a,b) max(a,b) reduced_iters(n, divisor)
//
// Paths beginning with discovery::kMemoryPathPrefix ("/shm") land on the
// memory tier — that is how I/O Path Switching takes effect at run time.
#pragma once

#include <string>

#include "config/stack_settings.hpp"
#include "minic/ast.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"
#include "trace/meter.hpp"

namespace tunio::interp {

struct InterpOptions {
  /// Prefix applied to every file path (keeps concurrent runs apart).
  std::string path_prefix = "/scratch/run";
  /// Safety valve for runaway loops.
  std::uint64_t max_loop_iterations = 1u << 22;
};

struct InterpResult {
  trace::PerfResult perf;
  /// Product of realized loop-reduction factors (1 when no reduction ran).
  double extrapolation = 1.0;
  /// Counters scaled back to the unreduced program ("the scalable metrics
  /// ... multiplied by the loop reductions", §III-B).
  double predicted_bytes_written = 0.0;
  double predicted_write_ops = 0.0;
  SimSeconds sim_seconds = 0.0;
  std::int64_t exit_code = 0;
};

/// Executes `program`'s main() on the given stack. Throws SourceError on
/// runtime errors (unknown identifiers, bad builtin arity, type errors).
InterpResult execute(const minic::Program& program, mpisim::MpiSim& mpi,
                     pfs::PfsSimulator& fs,
                     const cfg::StackSettings& settings,
                     const InterpOptions& options = {});

}  // namespace tunio::interp
