#include "interp/interp.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "discovery/discovery.hpp"
#include "hdf5lite/file.hpp"
#include "replay/hooks.hpp"

namespace tunio::interp {

using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;

namespace {

using Value = std::variant<std::int64_t, double, std::string>;

[[noreturn]] void fail(int line, const std::string& message) {
  throw SourceError("minic runtime error at line " + std::to_string(line) +
                    ": " + message);
}

std::int64_t as_int(const Value& v, int line) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) {
    return static_cast<std::int64_t>(*d);
  }
  fail(line, "expected a numeric value, found a string");
}

double as_double(const Value& v, int line) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  fail(line, "expected a numeric value, found a string");
}

const std::string& as_string(const Value& v, int line) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  fail(line, "expected a string value");
}

bool truthy(const Value& v, int line) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i != 0;
  if (const auto* d = std::get_if<double>(&v)) return *d != 0.0;
  fail(line, "string used as a condition");
}

/// Per-rank compute jitter (same model as the native workload drivers).
/// Delegates to the shared definition so interpreted, native, and replayed
/// runs agree bit-for-bit.
double jitter(unsigned rank, unsigned salt) {
  return compute_jitter(rank, salt);
}

class Interpreter {
 public:
  Interpreter(const Program& program, mpisim::MpiSim& mpi,
              pfs::PfsSimulator& fs, const cfg::StackSettings& settings,
              const InterpOptions& options)
      : program_(program),
        mpi_(mpi),
        fs_(fs),
        settings_(settings),
        options_(options),
        meter_(mpi, fs) {}

  InterpResult run() {
    const Function* main_fn = program_.find("main");
    if (main_fn == nullptr) fail(0, "program has no main()");

    meter_.begin();
    meter_.phase_begin(trace::Phase::kOther);
    const SimSeconds start = mpi_.max_clock();

    scopes_.emplace_back();
    const std::optional<Value> ret = exec_block(*main_fn->body);
    scopes_.pop_back();

    // Close any files the program leaked.
    for (auto& file : files_) {
      if (file) file->close();
    }

    InterpResult result;
    result.exit_code = ret ? as_int(*ret, 0) : 0;
    result.perf = meter_.end();
    result.sim_seconds = mpi_.max_clock() - start;
    result.extrapolation = 1.0;
    for (const auto& [site, factor] : reduction_factors_) {
      result.extrapolation *= factor;
    }
    result.predicted_bytes_written =
        static_cast<double>(result.perf.counters.bytes_written) *
        result.extrapolation;
    result.predicted_write_ops =
        static_cast<double>(result.perf.counters.write_ops) *
        result.extrapolation;
    return result;
  }

 private:
  // --- environment -------------------------------------------------------

  Value* find_var(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  void declare(const std::string& name, Value value, int line) {
    auto [it, inserted] = scopes_.back().emplace(name, std::move(value));
    if (!inserted) fail(line, "redeclaration of " + name);
  }

  // --- statements ---------------------------------------------------------

  /// Executes a block; returns the value of an executed `return`.
  std::optional<Value> exec_block(const Stmt& block) {
    scopes_.emplace_back();
    std::optional<Value> ret;
    for (const auto& stmt : block.statements) {
      ret = exec_stmt(*stmt);
      if (ret) break;
    }
    scopes_.pop_back();
    return ret;
  }

  std::optional<Value> exec_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kBlock:
        return exec_block(stmt);
      case StmtKind::kDecl: {
        Value init = stmt.value ? eval(*stmt.value) : default_value(stmt);
        declare(stmt.name, std::move(init), stmt.line);
        return std::nullopt;
      }
      case StmtKind::kAssign: {
        Value* slot = find_var(stmt.name);
        if (slot == nullptr) fail(stmt.line, "unknown variable " + stmt.name);
        *slot = eval(*stmt.value);
        return std::nullopt;
      }
      case StmtKind::kExprStmt:
        eval(*stmt.value);
        return std::nullopt;
      case StmtKind::kReturn:
        return stmt.value ? eval(*stmt.value) : Value(std::int64_t{0});
      case StmtKind::kIf:
        if (truthy(eval(*stmt.cond), stmt.line)) {
          return exec_stmt(*stmt.body);
        }
        if (stmt.else_body) return exec_stmt(*stmt.else_body);
        return std::nullopt;
      case StmtKind::kWhile: {
        std::uint64_t guard = 0;
        while (truthy(eval(*stmt.cond), stmt.line)) {
          if (++guard > options_.max_loop_iterations) {
            fail(stmt.line, "loop iteration limit exceeded");
          }
          std::optional<Value> ret = exec_stmt(*stmt.body);
          if (ret) return ret;
        }
        return std::nullopt;
      }
      case StmtKind::kFor: {
        scopes_.emplace_back();
        if (stmt.init) exec_stmt(*stmt.init);
        std::uint64_t guard = 0;
        std::optional<Value> ret;
        while (!stmt.cond || truthy(eval(*stmt.cond), stmt.line)) {
          if (++guard > options_.max_loop_iterations) {
            fail(stmt.line, "loop iteration limit exceeded");
          }
          ret = exec_stmt(*stmt.body);
          if (ret) break;
          if (stmt.update) exec_stmt(*stmt.update);
        }
        scopes_.pop_back();
        return ret;
      }
    }
    fail(stmt.line, "unreachable statement kind");
  }

  static Value default_value(const Stmt& decl) {
    if (decl.decl_type == "double") return 0.0;
    if (decl.decl_type == "string") return std::string();
    return std::int64_t{0};
  }

  // --- expressions --------------------------------------------------------

  Value eval(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        return expr.int_value;
      case ExprKind::kFloatLit:
        return expr.float_value;
      case ExprKind::kStringLit:
        return expr.text;
      case ExprKind::kVar: {
        Value* slot = find_var(expr.text);
        if (slot == nullptr) fail(expr.line, "unknown variable " + expr.text);
        return *slot;
      }
      case ExprKind::kUnary: {
        Value operand = eval(*expr.children[0]);
        if (expr.text == "!") {
          return static_cast<std::int64_t>(!truthy(operand, expr.line));
        }
        if (std::holds_alternative<double>(operand)) {
          return -std::get<double>(operand);
        }
        return -as_int(operand, expr.line);
      }
      case ExprKind::kBinary:
        return eval_binary(expr);
      case ExprKind::kCall:
        return eval_call(expr);
    }
    fail(expr.line, "unreachable expression kind");
  }

  Value eval_binary(const Expr& expr) {
    const std::string& op = expr.text;
    if (op == "&&") {
      if (!truthy(eval(*expr.children[0]), expr.line)) return std::int64_t{0};
      return static_cast<std::int64_t>(
          truthy(eval(*expr.children[1]), expr.line));
    }
    if (op == "||") {
      if (truthy(eval(*expr.children[0]), expr.line)) return std::int64_t{1};
      return static_cast<std::int64_t>(
          truthy(eval(*expr.children[1]), expr.line));
    }
    Value lhs = eval(*expr.children[0]);
    Value rhs = eval(*expr.children[1]);
    // String concatenation with '+'.
    if (op == "+" && (std::holds_alternative<std::string>(lhs) ||
                      std::holds_alternative<std::string>(rhs))) {
      auto to_str = [&](const Value& v) -> std::string {
        if (const auto* s = std::get_if<std::string>(&v)) return *s;
        if (const auto* i = std::get_if<std::int64_t>(&v)) {
          return std::to_string(*i);
        }
        return std::to_string(std::get<double>(v));
      };
      return to_str(lhs) + to_str(rhs);
    }
    const bool floating = std::holds_alternative<double>(lhs) ||
                          std::holds_alternative<double>(rhs);
    if (floating) {
      const double a = as_double(lhs, expr.line);
      const double b = as_double(rhs, expr.line);
      if (op == "+") return a + b;
      if (op == "-") return a - b;
      if (op == "*") return a * b;
      if (op == "/") {
        if (b == 0.0) fail(expr.line, "division by zero");
        return a / b;
      }
      if (op == "%") fail(expr.line, "'%' on floating operands");
      if (op == "<") return static_cast<std::int64_t>(a < b);
      if (op == "<=") return static_cast<std::int64_t>(a <= b);
      if (op == ">") return static_cast<std::int64_t>(a > b);
      if (op == ">=") return static_cast<std::int64_t>(a >= b);
      if (op == "==") return static_cast<std::int64_t>(a == b);
      if (op == "!=") return static_cast<std::int64_t>(a != b);
    } else {
      const std::int64_t a = as_int(lhs, expr.line);
      const std::int64_t b = as_int(rhs, expr.line);
      if (op == "+") return a + b;
      if (op == "-") return a - b;
      if (op == "*") return a * b;
      if (op == "/") {
        if (b == 0) fail(expr.line, "division by zero");
        return a / b;
      }
      if (op == "%") {
        if (b == 0) fail(expr.line, "modulo by zero");
        return a % b;
      }
      if (op == "<") return static_cast<std::int64_t>(a < b);
      if (op == "<=") return static_cast<std::int64_t>(a <= b);
      if (op == ">") return static_cast<std::int64_t>(a > b);
      if (op == ">=") return static_cast<std::int64_t>(a >= b);
      if (op == "==") return static_cast<std::int64_t>(a == b);
      if (op == "!=") return static_cast<std::int64_t>(a != b);
    }
    fail(expr.line, "unknown operator " + op);
  }

  // --- calls ---------------------------------------------------------------

  Value eval_call(const Expr& call) {
    std::vector<Value> args;
    args.reserve(call.children.size());
    for (const auto& arg : call.children) args.push_back(eval(*arg));

    // User-defined functions shadow nothing; builtins are checked first.
    if (const Function* fn = program_.find(call.text)) {
      if (fn->params.size() != args.size()) {
        fail(call.line, "arity mismatch calling " + call.text);
      }
      if (++call_depth_ > 64) fail(call.line, "call depth exceeded");
      scopes_.emplace_back();
      for (std::size_t i = 0; i < args.size(); ++i) {
        scopes_.back().emplace(fn->params[i].second, args[i]);
      }
      std::optional<Value> ret = exec_block(*fn->body);
      scopes_.pop_back();
      --call_depth_;
      return ret.value_or(Value(std::int64_t{0}));
    }
    return call_builtin(call, args);
  }

  void need_args(const Expr& call, std::size_t n) {
    if (call.children.size() != n) {
      fail(call.line, call.text + " expects " + std::to_string(n) +
                          " argument(s)");
    }
  }

  /// Translates a program path into a simulator path + tier.
  std::pair<std::string, pfs::CreateOptions> resolve_path(
      const std::string& raw) {
    pfs::CreateOptions create = settings_.lustre;
    std::string path = raw;
    if (raw.rfind(discovery::kMemoryPathPrefix, 0) == 0) {
      create.tier = pfs::Tier::kMemory;
    }
    return {options_.path_prefix + "_" + path, create};
  }

  std::vector<h5::Selection> slab_selections(std::uint64_t per_rank,
                                             std::uint64_t base = 0) {
    std::vector<h5::Selection> selections;
    selections.reserve(mpi_.size());
    for (unsigned r = 0; r < mpi_.size(); ++r) {
      selections.push_back({r, base + r * per_rank, per_rank});
    }
    return selections;
  }

  std::vector<h5::Selection> strided_selections(std::uint64_t block,
                                                std::uint64_t elems) {
    std::vector<h5::Selection> selections;
    selections.reserve(mpi_.size());
    for (unsigned r = 0; r < mpi_.size(); ++r) {
      selections.push_back({r, (block * mpi_.size() + r) * elems, elems});
    }
    return selections;
  }

  h5::File& file_ref(std::int64_t handle, int line) {
    if (handle < 0 || static_cast<std::size_t>(handle) >= files_.size() ||
        !files_[static_cast<std::size_t>(handle)]) {
      fail(line, "bad file handle");
    }
    return *files_[static_cast<std::size_t>(handle)];
  }

  h5::Dataset& dataset_ref(std::int64_t handle, int line) {
    if (handle < 0 || static_cast<std::size_t>(handle) >= datasets_.size() ||
        datasets_[static_cast<std::size_t>(handle)] == nullptr) {
      fail(line, "bad dataset handle");
    }
    return *datasets_[static_cast<std::size_t>(handle)];
  }

  Value call_builtin(const Expr& call, std::vector<Value>& args) {
    const std::string& name = call.text;
    const int line = call.line;

    if (name == "h5fcreate" || name == "h5fopen") {
      need_args(call, 1);
      auto [path, create] = resolve_path(as_string(args[0], line));
      files_.push_back(std::make_unique<h5::File>(
          mpi_, fs_, path, settings_.fapl, settings_.mpiio, create));
      return static_cast<std::int64_t>(files_.size() - 1);
    }
    if (name == "h5fclose") {
      need_args(call, 1);
      file_ref(as_int(args[0], line), line).close();
      return std::int64_t{0};
    }
    if (name == "h5set_chunking") {
      need_args(call, 1);
      pending_chunk_elements_ = as_int(args[0], line);
      return std::int64_t{0};
    }
    if (name == "h5dcreate") {
      need_args(call, 4);
      h5::File& file = file_ref(as_int(args[0], line), line);
      h5::DatasetCreateProps dcpl;
      if (pending_chunk_elements_ > 0) {
        dcpl.chunk_elements =
            static_cast<std::uint64_t>(pending_chunk_elements_);
      }
      h5::Dataset& ds = file.create_dataset(
          as_string(args[1], line),
          static_cast<Bytes>(as_int(args[2], line)),
          static_cast<std::uint64_t>(as_int(args[3], line)), dcpl,
          settings_.chunk_cache);
      datasets_.push_back(&ds);
      return static_cast<std::int64_t>(datasets_.size() - 1);
    }
    if (name == "h5dopen") {
      need_args(call, 2);
      h5::File& file = file_ref(as_int(args[0], line), line);
      datasets_.push_back(&file.dataset(as_string(args[1], line)));
      return static_cast<std::int64_t>(datasets_.size() - 1);
    }
    if (name == "h5dclose") {
      need_args(call, 1);
      dataset_ref(as_int(args[0], line), line).flush();
      return std::int64_t{0};
    }
    if (name == "h5dwrite_all" || name == "h5dread_all") {
      need_args(call, 2);
      h5::Dataset& ds = dataset_ref(as_int(args[0], line), line);
      const auto per_rank = static_cast<std::uint64_t>(as_int(args[1], line));
      const bool is_write = name == "h5dwrite_all";
      meter_.phase_begin(is_write ? trace::Phase::kWrite
                                  : trace::Phase::kRead);
      if (is_write) {
        ds.write(slab_selections(per_rank), h5::TransferProps{true});
      } else {
        ds.read(slab_selections(per_rank), h5::TransferProps{true});
      }
      meter_.phase_begin(trace::Phase::kOther);
      return std::int64_t{0};
    }
    if (name == "h5dwrite_strided" || name == "h5dread_strided") {
      need_args(call, 3);
      h5::Dataset& ds = dataset_ref(as_int(args[0], line), line);
      const auto block = static_cast<std::uint64_t>(as_int(args[1], line));
      const auto elems = static_cast<std::uint64_t>(as_int(args[2], line));
      const bool is_write = name == "h5dwrite_strided";
      meter_.phase_begin(is_write ? trace::Phase::kWrite
                                  : trace::Phase::kRead);
      if (is_write) {
        ds.write(strided_selections(block, elems), h5::TransferProps{true});
      } else {
        ds.read(strided_selections(block, elems), h5::TransferProps{true});
      }
      meter_.phase_begin(trace::Phase::kOther);
      return std::int64_t{0};
    }
    if (name == "fprintf_log") {
      need_args(call, 2);
      auto [path, create] = resolve_path(as_string(args[0], line));
      meter_.phase_begin(trace::Phase::kWrite);
      // Recorded after the phase op so the replayed write (and its stdio
      // library cost) lands in the write phase, as it does here.
      replay::note_log_write(path,
                             static_cast<Bytes>(as_int(args[1], line)),
                             /*settings_stripe=*/true,
                             create.tier == pfs::Tier::kMemory);
      if (!fs_.exists(path)) {
        create.stripe_count = 1;  // logs are plain fopen'd files
        fs_.create(path, mpi_.clock(0), create);
      }
      // Buffered stdio: the operation and bytes are recorded against the
      // filesystem, but the writer does not wait for the flush.
      const Bytes offset = fs_.file_size(path);
      fs_.write(path, mpi_.clock(0), offset,
                static_cast<Bytes>(as_int(args[1], line)));
      mpi_.compute(0, 5e-6);
      meter_.phase_begin(trace::Phase::kOther);
      return std::int64_t{0};
    }
    if (name == "compute") {
      need_args(call, 1);
      const double seconds = as_double(args[0], line);
      if (seconds > 0.0) {
        replay::note_compute(seconds, compute_salt_);
        for (unsigned r = 0; r < mpi_.size(); ++r) {
          mpi_.compute(r, seconds * jitter(r, compute_salt_));
        }
        mpi_.barrier();
        ++compute_salt_;
      }
      return std::int64_t{0};
    }
    if (name == "mpi_size") {
      need_args(call, 0);
      return static_cast<std::int64_t>(mpi_.size());
    }
    if (name == "mpi_barrier") {
      need_args(call, 0);
      replay::note_barrier();
      mpi_.barrier();
      return std::int64_t{0};
    }
    if (name == "tuned_stripe_count") {
      // Reading a tuned_* builtin makes the kernel settings-dependent: its
      // op stream may differ per configuration, so the replay fast path must
      // not be used (replay::settings_dependent detects these statically).
      need_args(call, 0);
      return static_cast<std::int64_t>(settings_.lustre.stripe_count.value_or(
          fs_.profile().default_stripe_count));
    }
    if (name == "tuned_stripe_size_kib") {
      need_args(call, 0);
      const Bytes stripe = settings_.lustre.stripe_size.value_or(
          fs_.profile().default_stripe_size);
      return static_cast<std::int64_t>(stripe / 1024);
    }
    if (name == "tuned_cb_nodes") {
      need_args(call, 0);
      return static_cast<std::int64_t>(settings_.mpiio.cb_nodes);
    }
    if (name == "min" || name == "max") {
      need_args(call, 2);
      const std::int64_t a = as_int(args[0], line);
      const std::int64_t b = as_int(args[1], line);
      return name == "min" ? std::min(a, b) : std::max(a, b);
    }
    if (name == "reduced_iters") {
      need_args(call, 2);
      const std::int64_t n = as_int(args[0], line);
      const std::int64_t divisor = std::max<std::int64_t>(
          1, as_int(args[1], line));
      const std::int64_t reduced = std::max<std::int64_t>(1, n / divisor);
      reduction_factors_[&call] =
          static_cast<double>(n) / static_cast<double>(reduced);
      return reduced;
    }
    fail(line, "unknown function " + name);
  }

  const Program& program_;
  mpisim::MpiSim& mpi_;
  pfs::PfsSimulator& fs_;
  const cfg::StackSettings& settings_;
  InterpOptions options_;
  trace::RunMeter meter_;

  std::vector<std::unordered_map<std::string, Value>> scopes_;
  std::vector<std::unique_ptr<h5::File>> files_;
  std::vector<h5::Dataset*> datasets_;
  std::int64_t pending_chunk_elements_ = 0;
  unsigned compute_salt_ = 0;
  int call_depth_ = 0;
  std::map<const Expr*, double> reduction_factors_;
};

}  // namespace

InterpResult execute(const Program& program, mpisim::MpiSim& mpi,
                     pfs::PfsSimulator& fs,
                     const cfg::StackSettings& settings,
                     const InterpOptions& options) {
  return Interpreter(program, mpi, fs, settings, options).run();
}

}  // namespace tunio::interp
