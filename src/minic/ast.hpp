// AST for mini-C.
//
// Nodes carry their source line and column (discovery marks per line, as
// the paper does after its clang-format one-statement-per-line
// normalization; the linter reports both) and a unique statement id (used
// by the marking fixpoint and the dataflow slicer).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tunio::minic {

enum class ExprKind {
  kIntLit,
  kFloatLit,
  kStringLit,
  kVar,
  kUnary,   ///< op in {-, !}
  kBinary,  ///< op in {+,-,*,/,%,<,<=,>,>=,==,!=,&&,||}
  kCall,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind{};
  int line = 0;
  int col = 0;  ///< 1-based column of the node's leading token

  std::int64_t int_value = 0;   // kIntLit
  double float_value = 0.0;     // kFloatLit
  std::string text;             // kStringLit spelling / kVar & kCall name /
                                // kUnary & kBinary operator spelling
  std::vector<ExprPtr> children;  // operands or call arguments
};

enum class StmtKind {
  kDecl,      ///< `int x = e;` / `double y;` / `string s = "...";`
  kAssign,    ///< `x = e;`
  kExprStmt,  ///< `f(...);`
  kFor,       ///< `for (init; cond; update) { body }`
  kWhile,     ///< `while (cond) { body }`
  kIf,        ///< `if (cond) { then } else { else }`
  kReturn,    ///< `return e;` / `return;`
  kBlock,     ///< `{ ... }`
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind{};
  int line = 0;
  int col = 0;  ///< 1-based column of the statement's leading token
  int id = 0;   ///< unique within a Program, assigned by the parser

  // kDecl
  std::string decl_type;  // "int" | "double" | "string"
  std::string name;       // kDecl / kAssign target
  ExprPtr value;          // kDecl init (optional) / kAssign rhs /
                          // kExprStmt expr / kReturn value (optional)

  // kFor / kWhile / kIf
  StmtPtr init;    // kFor
  ExprPtr cond;    // kFor / kWhile / kIf
  StmtPtr update;  // kFor
  StmtPtr body;    // kFor / kWhile loop body, kIf then-branch (kBlock)
  StmtPtr else_body;  // kIf (optional, kBlock)

  // kBlock
  std::vector<StmtPtr> statements;
};

struct Function {
  std::string return_type;  // "int" | "double" | "string"
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;  // (type, name)
  StmtPtr body;  // kBlock
  int line = 0;
};

struct Program {
  std::vector<Function> functions;
  int next_stmt_id = 0;  ///< one past the largest assigned statement id

  const Function* find(const std::string& name) const {
    for (const Function& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

/// Deep copies (used by discovery transformations).
ExprPtr clone(const Expr& expr);
StmtPtr clone(const Stmt& stmt);
Program clone(const Program& program);

}  // namespace tunio::minic
