// Recursive-descent parser for mini-C.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace tunio::minic {

/// Parses a full program (one or more function definitions). Throws
/// SourceError with line information on malformed input.
Program parse(const std::string& source);

}  // namespace tunio::minic
