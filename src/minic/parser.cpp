#include "minic/parser.hpp"

#include "common/error.hpp"
#include "minic/lexer.hpp"

namespace tunio::minic {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& source) : tokens_(lex(source)) {}

  Program parse_program() {
    Program program;
    while (!at(TokenKind::kEnd)) {
      program.functions.push_back(parse_function());
    }
    TUNIO_CHECK_MSG(!program.functions.empty(), "empty mini-C program");
    program.next_stmt_id = next_id_;
    return program;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }

  Token advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Token expect(TokenKind kind, const std::string& context) {
    if (!at(kind)) {
      throw SourceError("minic parse error at line " +
                        std::to_string(peek().line) + ": expected " +
                        token_kind_name(kind) + " " + context + ", found " +
                        token_kind_name(peek().kind));
    }
    return advance();
  }

  bool is_type(TokenKind kind) const {
    return kind == TokenKind::kInt || kind == TokenKind::kDouble ||
           kind == TokenKind::kStringKw;
  }

  StmtPtr make_stmt(StmtKind kind, const Token& at) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->line = at.line;
    stmt->col = at.column;
    stmt->id = next_id_++;
    return stmt;
  }

  Function parse_function() {
    Function fn;
    const Token type = advance();
    TUNIO_CHECK_MSG(is_type(type.kind),
                    "expected return type at line " + std::to_string(type.line));
    fn.return_type = type.text;
    fn.line = type.line;
    fn.name = expect(TokenKind::kIdentifier, "as function name").text;
    expect(TokenKind::kLParen, "after function name");
    while (!at(TokenKind::kRParen)) {
      const Token ptype = advance();
      TUNIO_CHECK_MSG(is_type(ptype.kind), "expected parameter type at line " +
                                               std::to_string(ptype.line));
      const Token pname = expect(TokenKind::kIdentifier, "as parameter name");
      fn.params.emplace_back(ptype.text, pname.text);
      if (!at(TokenKind::kRParen)) expect(TokenKind::kComma, "between params");
    }
    expect(TokenKind::kRParen, "after parameters");
    fn.body = parse_block();
    return fn;
  }

  StmtPtr parse_block() {
    const Token open = expect(TokenKind::kLBrace, "to open block");
    StmtPtr block = make_stmt(StmtKind::kBlock, open);
    while (!at(TokenKind::kRBrace) && !at(TokenKind::kEnd)) {
      block->statements.push_back(parse_statement());
    }
    expect(TokenKind::kRBrace, "to close block");
    return block;
  }

  StmtPtr parse_statement() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kInt:
      case TokenKind::kDouble:
      case TokenKind::kStringKw: {
        StmtPtr decl = parse_declaration();
        expect(TokenKind::kSemicolon, "after declaration");
        return decl;
      }
      case TokenKind::kFor:
        return parse_for();
      case TokenKind::kWhile:
        return parse_while();
      case TokenKind::kIf:
        return parse_if();
      case TokenKind::kReturn: {
        advance();
        StmtPtr ret = make_stmt(StmtKind::kReturn, tok);
        if (!at(TokenKind::kSemicolon)) ret->value = parse_expression();
        expect(TokenKind::kSemicolon, "after return");
        return ret;
      }
      case TokenKind::kLBrace:
        return parse_block();
      default: {
        StmtPtr stmt = parse_assign_or_expr();
        expect(TokenKind::kSemicolon, "after statement");
        return stmt;
      }
    }
  }

  StmtPtr parse_declaration() {
    const Token type = advance();
    const Token name = expect(TokenKind::kIdentifier, "as variable name");
    StmtPtr decl = make_stmt(StmtKind::kDecl, type);
    decl->decl_type = type.text;
    decl->name = name.text;
    if (at(TokenKind::kAssign)) {
      advance();
      decl->value = parse_expression();
    }
    return decl;
  }

  /// Parses `x = expr` or a bare expression statement (no semicolon).
  StmtPtr parse_assign_or_expr() {
    if (at(TokenKind::kIdentifier) && peek(1).kind == TokenKind::kAssign) {
      const Token name = advance();
      advance();  // '='
      StmtPtr assign = make_stmt(StmtKind::kAssign, name);
      assign->name = name.text;
      assign->value = parse_expression();
      return assign;
    }
    StmtPtr stmt = make_stmt(StmtKind::kExprStmt, peek());
    stmt->value = parse_expression();
    return stmt;
  }

  StmtPtr parse_for() {
    const Token kw = expect(TokenKind::kFor, "");
    expect(TokenKind::kLParen, "after 'for'");
    StmtPtr stmt = make_stmt(StmtKind::kFor, kw);
    if (!at(TokenKind::kSemicolon)) {
      stmt->init = is_type(peek().kind) ? parse_declaration()
                                        : parse_assign_or_expr();
    }
    expect(TokenKind::kSemicolon, "after for-init");
    if (!at(TokenKind::kSemicolon)) stmt->cond = parse_expression();
    expect(TokenKind::kSemicolon, "after for-condition");
    if (!at(TokenKind::kRParen)) stmt->update = parse_assign_or_expr();
    expect(TokenKind::kRParen, "after for-update");
    stmt->body = parse_block();
    return stmt;
  }

  StmtPtr parse_while() {
    const Token kw = expect(TokenKind::kWhile, "");
    expect(TokenKind::kLParen, "after 'while'");
    StmtPtr stmt = make_stmt(StmtKind::kWhile, kw);
    stmt->cond = parse_expression();
    expect(TokenKind::kRParen, "after while-condition");
    stmt->body = parse_block();
    return stmt;
  }

  StmtPtr parse_if() {
    const Token kw = expect(TokenKind::kIf, "");
    expect(TokenKind::kLParen, "after 'if'");
    StmtPtr stmt = make_stmt(StmtKind::kIf, kw);
    stmt->cond = parse_expression();
    expect(TokenKind::kRParen, "after if-condition");
    stmt->body = parse_block();
    if (at(TokenKind::kElse)) {
      advance();
      stmt->else_body =
          at(TokenKind::kIf) ? parse_if() : parse_block();
    }
    return stmt;
  }

  // --- expressions (precedence climbing) --------------------------------

  ExprPtr make_expr(ExprKind kind, const Token& at) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = at.line;
    e->col = at.column;
    return e;
  }

  ExprPtr parse_expression() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(TokenKind::kOrOr)) {
      const Token op = advance();
      ExprPtr node = make_expr(ExprKind::kBinary, op);
      node->text = "||";
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_and());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_equality();
    while (at(TokenKind::kAndAnd)) {
      const Token op = advance();
      ExprPtr node = make_expr(ExprKind::kBinary, op);
      node->text = "&&";
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_equality());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    while (at(TokenKind::kEqEq) || at(TokenKind::kNotEq)) {
      const Token op = advance();
      ExprPtr node = make_expr(ExprKind::kBinary, op);
      node->text = op.kind == TokenKind::kEqEq ? "==" : "!=";
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_relational());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_additive();
    while (at(TokenKind::kLess) || at(TokenKind::kLessEq) ||
           at(TokenKind::kGreater) || at(TokenKind::kGreaterEq)) {
      const Token op = advance();
      ExprPtr node = make_expr(ExprKind::kBinary, op);
      switch (op.kind) {
        case TokenKind::kLess: node->text = "<"; break;
        case TokenKind::kLessEq: node->text = "<="; break;
        case TokenKind::kGreater: node->text = ">"; break;
        default: node->text = ">="; break;
      }
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_additive());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const Token op = advance();
      ExprPtr node = make_expr(ExprKind::kBinary, op);
      node->text = op.kind == TokenKind::kPlus ? '+' : '-';
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_multiplicative());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (at(TokenKind::kStar) || at(TokenKind::kSlash) ||
           at(TokenKind::kPercent)) {
      const Token op = advance();
      ExprPtr node = make_expr(ExprKind::kBinary, op);
      node->text = op.kind == TokenKind::kStar
                       ? '*'
                       : op.kind == TokenKind::kSlash ? '/' : '%';
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_unary());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::kMinus) || at(TokenKind::kNot)) {
      const Token op = advance();
      ExprPtr node = make_expr(ExprKind::kUnary, op);
      node->text = op.kind == TokenKind::kMinus ? "-" : "!";
      node->children.push_back(parse_unary());
      return node;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kIntLiteral: {
        advance();
        ExprPtr node = make_expr(ExprKind::kIntLit, tok);
        node->int_value = tok.int_value;
        node->text = tok.text;
        return node;
      }
      case TokenKind::kFloatLiteral: {
        advance();
        ExprPtr node = make_expr(ExprKind::kFloatLit, tok);
        node->float_value = tok.float_value;
        node->text = tok.text;
        return node;
      }
      case TokenKind::kStringLiteral: {
        advance();
        ExprPtr node = make_expr(ExprKind::kStringLit, tok);
        node->text = tok.text;
        return node;
      }
      case TokenKind::kIdentifier: {
        advance();
        if (at(TokenKind::kLParen)) {
          advance();
          ExprPtr call = make_expr(ExprKind::kCall, tok);
          call->text = tok.text;
          while (!at(TokenKind::kRParen)) {
            call->children.push_back(parse_expression());
            if (!at(TokenKind::kRParen)) {
              expect(TokenKind::kComma, "between call arguments");
            }
          }
          expect(TokenKind::kRParen, "after call arguments");
          return call;
        }
        ExprPtr var = make_expr(ExprKind::kVar, tok);
        var->text = tok.text;
        return var;
      }
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = parse_expression();
        expect(TokenKind::kRParen, "to close parenthesis");
        return inner;
      }
      default:
        throw SourceError("minic parse error at line " +
                          std::to_string(tok.line) +
                          ": unexpected " + token_kind_name(tok.kind));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int next_id_ = 0;
};

}  // namespace

Program parse(const std::string& source) {
  return Parser(source).parse_program();
}

ExprPtr clone(const Expr& expr) {
  auto copy = std::make_unique<Expr>();
  copy->kind = expr.kind;
  copy->line = expr.line;
  copy->col = expr.col;
  copy->int_value = expr.int_value;
  copy->float_value = expr.float_value;
  copy->text = expr.text;
  copy->children.reserve(expr.children.size());
  for (const ExprPtr& child : expr.children) {
    copy->children.push_back(clone(*child));
  }
  return copy;
}

StmtPtr clone(const Stmt& stmt) {
  auto copy = std::make_unique<Stmt>();
  copy->kind = stmt.kind;
  copy->line = stmt.line;
  copy->col = stmt.col;
  copy->id = stmt.id;
  copy->decl_type = stmt.decl_type;
  copy->name = stmt.name;
  if (stmt.value) copy->value = clone(*stmt.value);
  if (stmt.init) copy->init = clone(*stmt.init);
  if (stmt.cond) copy->cond = clone(*stmt.cond);
  if (stmt.update) copy->update = clone(*stmt.update);
  if (stmt.body) copy->body = clone(*stmt.body);
  if (stmt.else_body) copy->else_body = clone(*stmt.else_body);
  copy->statements.reserve(stmt.statements.size());
  for (const StmtPtr& s : stmt.statements) {
    copy->statements.push_back(clone(*s));
  }
  return copy;
}

Program clone(const Program& program) {
  Program copy;
  copy.next_stmt_id = program.next_stmt_id;
  copy.functions.reserve(program.functions.size());
  for (const Function& fn : program.functions) {
    Function fn_copy;
    fn_copy.return_type = fn.return_type;
    fn_copy.name = fn.name;
    fn_copy.params = fn.params;
    fn_copy.line = fn.line;
    if (fn.body) fn_copy.body = clone(*fn.body);
    copy.functions.push_back(std::move(fn_copy));
  }
  return copy;
}

}  // namespace tunio::minic
