#include "minic/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "common/error.hpp"

namespace tunio::minic {

std::string token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "int literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kInt: return "'int'";
    case TokenKind::kDouble: return "'double'";
    case TokenKind::kStringKw: return "'string'";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
  }
  return "<?>";
}

namespace {

const std::unordered_map<std::string, TokenKind>& keywords() {
  static const std::unordered_map<std::string, TokenKind> kMap = {
      {"int", TokenKind::kInt},       {"double", TokenKind::kDouble},
      {"string", TokenKind::kStringKw}, {"for", TokenKind::kFor},
      {"while", TokenKind::kWhile},   {"if", TokenKind::kIf},
      {"else", TokenKind::kElse},     {"return", TokenKind::kReturn},
  };
  return kMap;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw SourceError("minic lex error at line " + std::to_string(line) + ": " +
                    message);
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  std::size_t line_start = 0;  // offset of the current line's first char
  const std::size_t n = source.size();

  // Every token is pushed while `i` still points at its first character,
  // so the column is always derivable from the line start.
  auto push = [&](TokenKind kind, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = static_cast<int>(i - line_start) + 1;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      if (i + 1 >= n) fail(line, "unterminated block comment");
      i += 2;
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      const std::string word = source.substr(i, j - i);
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second, word);
      } else {
        push(TokenKind::kIdentifier, word);
      }
      i = j;
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) ||
                       source[j] == '.')) {
        if (source[j] == '.') is_float = true;
        ++j;
      }
      const std::string num = source.substr(i, j - i);
      Token t;
      t.line = line;
      t.column = static_cast<int>(i - line_start) + 1;
      t.text = num;
      if (is_float) {
        t.kind = TokenKind::kFloatLiteral;
        t.float_value = std::stod(num);
      } else {
        t.kind = TokenKind::kIntLiteral;
        t.int_value = std::stoll(num);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Strings.
    if (c == '"') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && source[j] != '"') {
        if (source[j] == '\n') fail(line, "newline in string literal");
        if (source[j] == '\\' && j + 1 < n) {
          ++j;  // simple escapes: keep the escaped char verbatim
        }
        text.push_back(source[j]);
        ++j;
      }
      if (j >= n) fail(line, "unterminated string literal");
      push(TokenKind::kStringLiteral, text);
      i = j + 1;
      continue;
    }
    // Operators / punctuation.
    auto two = [&](char second) {
      return i + 1 < n && source[i + 1] == second;
    };
    switch (c) {
      case '(': push(TokenKind::kLParen); ++i; break;
      case ')': push(TokenKind::kRParen); ++i; break;
      case '{': push(TokenKind::kLBrace); ++i; break;
      case '}': push(TokenKind::kRBrace); ++i; break;
      case ',': push(TokenKind::kComma); ++i; break;
      case ';': push(TokenKind::kSemicolon); ++i; break;
      case '+': push(TokenKind::kPlus); ++i; break;
      case '-': push(TokenKind::kMinus); ++i; break;
      case '*': push(TokenKind::kStar); ++i; break;
      case '/': push(TokenKind::kSlash); ++i; break;
      case '%': push(TokenKind::kPercent); ++i; break;
      case '<':
        if (two('=')) { push(TokenKind::kLessEq); i += 2; }
        else { push(TokenKind::kLess); ++i; }
        break;
      case '>':
        if (two('=')) { push(TokenKind::kGreaterEq); i += 2; }
        else { push(TokenKind::kGreater); ++i; }
        break;
      case '=':
        if (two('=')) { push(TokenKind::kEqEq); i += 2; }
        else { push(TokenKind::kAssign); ++i; }
        break;
      case '!':
        if (two('=')) { push(TokenKind::kNotEq); i += 2; }
        else { push(TokenKind::kNot); ++i; }
        break;
      case '&':
        if (two('&')) { push(TokenKind::kAndAnd); i += 2; }
        else fail(line, "stray '&'");
        break;
      case '|':
        if (two('|')) { push(TokenKind::kOrOr); i += 2; }
        else fail(line, "stray '|'");
        break;
      default:
        fail(line, std::string("unexpected character '") + c + "'");
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = static_cast<int>(i - line_start) + 1;
  tokens.push_back(end);
  return tokens;
}

}  // namespace tunio::minic
