#include "minic/printer.hpp"

#include <sstream>

#include "common/error.hpp"

namespace tunio::minic {

namespace {

class Printer {
 public:
  explicit Printer(const StmtFilter& keep) : keep_(keep) {}

  std::string run(const Program& program) {
    for (const Function& fn : program.functions) {
      out_ << fn.return_type << " " << fn.name << "(";
      for (std::size_t i = 0; i < fn.params.size(); ++i) {
        if (i) out_ << ", ";
        out_ << fn.params[i].first << " " << fn.params[i].second;
      }
      out_ << ")\n";
      print_stmt(*fn.body);
      out_ << "\n";
    }
    return out_.str();
  }

 private:
  bool kept(const Stmt& stmt) const { return !keep_ || keep_(stmt); }

  void indent() {
    for (int i = 0; i < depth_; ++i) out_ << "  ";
  }

  void print_stmt(const Stmt& stmt) {
    if (!kept(stmt)) return;
    switch (stmt.kind) {
      case StmtKind::kBlock:
        indent();
        out_ << "{\n";
        ++depth_;
        for (const StmtPtr& s : stmt.statements) print_stmt(*s);
        --depth_;
        indent();
        out_ << "}\n";
        break;
      case StmtKind::kDecl:
        indent();
        out_ << stmt.decl_type << " " << stmt.name;
        if (stmt.value) out_ << " = " << expr(*stmt.value);
        out_ << ";\n";
        break;
      case StmtKind::kAssign:
        indent();
        out_ << stmt.name << " = " << expr(*stmt.value) << ";\n";
        break;
      case StmtKind::kExprStmt:
        indent();
        out_ << expr(*stmt.value) << ";\n";
        break;
      case StmtKind::kReturn:
        indent();
        out_ << "return";
        if (stmt.value) out_ << " " << expr(*stmt.value);
        out_ << ";\n";
        break;
      case StmtKind::kFor:
        indent();
        out_ << "for (" << header_stmt(stmt.init.get()) << "; "
             << (stmt.cond ? expr(*stmt.cond) : std::string()) << "; "
             << header_stmt(stmt.update.get()) << ")\n";
        print_stmt(*stmt.body);
        break;
      case StmtKind::kWhile:
        indent();
        out_ << "while (" << expr(*stmt.cond) << ")\n";
        print_stmt(*stmt.body);
        break;
      case StmtKind::kIf:
        indent();
        out_ << "if (" << expr(*stmt.cond) << ")\n";
        print_stmt(*stmt.body);
        if (stmt.else_body && kept(*stmt.else_body)) {
          indent();
          out_ << "else\n";
          if (stmt.else_body->kind == StmtKind::kIf) {
            print_stmt(*stmt.else_body);
          } else {
            print_stmt(*stmt.else_body);
          }
        }
        break;
    }
  }

  /// Renders a for-header sub-statement (init/update) without ';' or '\n'.
  std::string header_stmt(const Stmt* stmt) {
    if (stmt == nullptr) return "";
    switch (stmt->kind) {
      case StmtKind::kDecl: {
        std::string s = stmt->decl_type + " " + stmt->name;
        if (stmt->value) s += " = " + expr(*stmt->value);
        return s;
      }
      case StmtKind::kAssign:
        return stmt->name + " = " + expr(*stmt->value);
      case StmtKind::kExprStmt:
        return expr(*stmt->value);
      default:
        throw Error("unsupported statement in for-header");
    }
  }

  std::string expr(const Expr& e) { return render(e, /*parent_prec=*/0); }

  static int precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "==" || op == "!=") return 3;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 4;
    if (op == "+" || op == "-") return 5;
    return 6;  // * / %
  }

  std::string render(const Expr& e, int parent_prec) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
        return e.text.empty()
                   ? (e.kind == ExprKind::kIntLit
                          ? std::to_string(e.int_value)
                          : std::to_string(e.float_value))
                   : e.text;
      case ExprKind::kStringLit:
        return "\"" + e.text + "\"";
      case ExprKind::kVar:
        return e.text;
      case ExprKind::kUnary:
        return e.text + render(*e.children[0], 7);
      case ExprKind::kBinary: {
        const int prec = precedence(e.text);
        std::string s = render(*e.children[0], prec) + " " + e.text + " " +
                        render(*e.children[1], prec + 1);
        if (prec < parent_prec) s = "(" + s + ")";
        return s;
      }
      case ExprKind::kCall: {
        std::string s = e.text + "(";
        for (std::size_t i = 0; i < e.children.size(); ++i) {
          if (i) s += ", ";
          s += render(*e.children[i], 0);
        }
        return s + ")";
      }
    }
    throw Error("unreachable expression kind");
  }

  const StmtFilter& keep_;
  std::ostringstream out_;
  int depth_ = 0;
};

}  // namespace

std::string print(const Program& program) {
  static const StmtFilter kKeepAll;
  return Printer(kKeepAll).run(program);
}

std::string print(const Program& program, const StmtFilter& keep) {
  return Printer(keep).run(program);
}

std::string print_expr(const Expr& expr) {
  // Render through a throwaway printer instance.
  Program dummy;
  static const StmtFilter kKeepAll;
  Printer printer(kKeepAll);
  (void)dummy;
  // Printer::render is private; rebuild minimal rendering via a statement.
  // Simplest: wrap in an expression statement and strip formatting.
  Stmt stmt;
  stmt.kind = StmtKind::kExprStmt;
  stmt.value = clone(expr);
  Function fn;
  fn.return_type = "int";
  fn.name = "__expr__";
  auto block = std::make_unique<Stmt>();
  block->kind = StmtKind::kBlock;
  block->statements.push_back(clone(stmt));
  fn.body = std::move(block);
  Program program;
  program.functions.push_back(std::move(fn));
  std::string text = print(program);
  // Extract the single statement line between the braces.
  const std::size_t open = text.find("{\n");
  const std::size_t close = text.rfind("\n}");
  std::string line = text.substr(open + 2, close - open - 2);
  // Trim indentation, trailing ";\n".
  while (!line.empty() && (line.front() == ' ')) line.erase(line.begin());
  while (!line.empty() && (line.back() == '\n' || line.back() == ';')) {
    line.pop_back();
  }
  return line;
}

}  // namespace tunio::minic
