// Lexer for mini-C. Line-tracked, with C and C++ style comments.
#pragma once

#include <string>
#include <vector>

#include "minic/token.hpp"

namespace tunio::minic {

/// Tokenizes `source`; throws SourceError with line info on bad input.
std::vector<Token> lex(const std::string& source);

}  // namespace tunio::minic
