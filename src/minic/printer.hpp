// Pretty printer for mini-C.
//
// Prints the AST in normalized one-statement-per-line form with braces on
// their own lines — the equivalent of the paper's custom clang-format
// preprocessing step ("avoids line breaking with a 200-character column
// limit while placing curly braces on distinct lines and splitting
// multi-statement lines"). Discovery operates on this normalized text,
// and reconstruction prints only the statements the marking loop kept.
#pragma once

#include <functional>
#include <string>

#include "minic/ast.hpp"

namespace tunio::minic {

/// Decides whether a statement survives reconstruction. The marking loop
/// guarantees the parents of kept statements are kept, so a filtered
/// print never orphans a statement.
using StmtFilter = std::function<bool(const Stmt&)>;

/// Prints the whole program in normalized form.
std::string print(const Program& program);

/// Prints only statements for which `keep` returns true (structural
/// statements are skipped together with their whole subtree).
std::string print(const Program& program, const StmtFilter& keep);

/// Prints a single expression (used in tests and diagnostics).
std::string print_expr(const Expr& expr);

}  // namespace tunio::minic
