// Tokens for the mini-C language.
//
// TunIO's Application I/O Discovery parses the application's source to an
// AST (the paper uses Clang's Python bindings). This repository analyses
// programs written in mini-C — a C subset rich enough to express the HPC
// I/O kernels (declarations, assignments, arithmetic, calls, for/while/if
// with braces) while keeping the frontend self-contained.
#pragma once

#include <cstdint>
#include <string>

namespace tunio::minic {

enum class TokenKind {
  kEnd,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  // keywords
  kInt,
  kDouble,
  kStringKw,
  kFor,
  kWhile,
  kIf,
  kElse,
  kReturn,
  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  // operators
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEqEq,
  kNotEq,
  kAndAnd,
  kOrOr,
  kNot,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< identifier/literal spelling
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;            ///< 1-based source line
  int column = 0;          ///< 1-based source column of the first character
};

std::string token_kind_name(TokenKind kind);

}  // namespace tunio::minic
