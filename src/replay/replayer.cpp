#include "replay/replayer.hpp"

#include <bit>
#include <memory>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "hdf5lite/file.hpp"

namespace tunio::replay {

namespace {

class Executor {
 public:
  Executor(const OpTrace& trace, mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
           const cfg::StackSettings& settings)
      : trace_(trace), mpi_(mpi), fs_(fs), settings_(settings),
        meter_(mpi, fs) {
    files_.reserve(trace.num_files);
    datasets_.reserve(trace.num_datasets);
  }

  ReplayResult run() {
    for (const Op& op : trace_.ops) apply(op);
    TUNIO_CHECK_MSG(ended_, "op trace has no meter end");
    return result_;
  }

 private:
  h5::File& file(std::uint32_t id) {
    TUNIO_CHECK_MSG(id < files_.size(), "op trace: bad file id");
    return *files_[id];
  }

  h5::Dataset& dataset(std::uint32_t id) {
    TUNIO_CHECK_MSG(id < datasets_.size(), "op trace: bad dataset id");
    return *datasets_[id];
  }

  void apply(const Op& op) {
    switch (op.kind) {
      case OpKind::kFileCtor: {
        pfs::CreateOptions create = settings_.lustre;
        if (op.flag2) create.tier = pfs::Tier::kMemory;
        files_.push_back(std::make_unique<h5::File>(
            mpi_, fs_, op.text, settings_.fapl, settings_.mpiio, create));
        return;
      }
      case OpKind::kFileFlush:
        file(op.id).flush();
        return;
      case OpKind::kFileClose:
        file(op.id).close();
        return;
      case OpKind::kDatasetCreate: {
        h5::DatasetCreateProps dcpl;
        if (op.c > 0) dcpl.chunk_elements = op.c;
        datasets_.push_back(&file(op.id).create_dataset(
            op.text, op.a, op.b, dcpl, settings_.chunk_cache));
        return;
      }
      case OpKind::kDatasetFlush:
        dataset(op.id).flush();
        return;
      case OpKind::kDatasetIo: {
        selections_.clear();
        for (std::uint32_t i = op.sel_begin; i < op.sel_begin + op.sel_count;
             ++i) {
          const Sel& sel = trace_.sels[i];
          selections_.push_back({sel.rank, sel.start_element, sel.count});
        }
        const h5::TransferProps dxpl{op.flag2};
        if (op.flag) {
          dataset(op.id).write(selections_, dxpl);
        } else {
          dataset(op.id).read(selections_, dxpl);
        }
        return;
      }
      case OpKind::kLogWrite: {
        // One path lookup per op; appends go through the handle API.
        std::optional<pfs::FileHandle> log = fs_.find_file(op.text);
        if (!log) {
          pfs::CreateOptions create =
              op.flag ? settings_.lustre : pfs::CreateOptions{};
          if (op.flag2) create.tier = pfs::Tier::kMemory;
          create.stripe_count = 1;  // logs are plain fopen'd files
          fs_.create(op.text, mpi_.clock(0), create);
          log = fs_.find_file(op.text);
        }
        const Bytes offset = fs_.file_size(*log);
        fs_.write(*log, mpi_.clock(0), offset, op.a);
        mpi_.compute(0, 5e-6);
        return;
      }
      case OpKind::kCompute: {
        for (unsigned r = 0; r < mpi_.size(); ++r) {
          mpi_.compute(r, op.seconds * compute_jitter(r, op.salt));
        }
        mpi_.barrier();
        return;
      }
      case OpKind::kBarrier:
        mpi_.barrier();
        return;
      case OpKind::kMpiReset:
        mpi_.reset();
        return;
      case OpKind::kFsQuiesce:
        fs_.quiesce();
        return;
      case OpKind::kMeterBegin:
        meter_.begin();
        start_ = mpi_.max_clock();
        return;
      case OpKind::kPhase:
        meter_.phase_begin(static_cast<trace::Phase>(op.salt));
        return;
      case OpKind::kMeterEnd:
        result_.perf = meter_.end();
        result_.sim_seconds = mpi_.max_clock() - start_;
        ended_ = true;
        return;
    }
    TUNIO_CHECK_MSG(false, "op trace: unknown op kind");
  }

  const OpTrace& trace_;
  mpisim::MpiSim& mpi_;
  pfs::PfsSimulator& fs_;
  const cfg::StackSettings& settings_;
  trace::RunMeter meter_;
  std::vector<std::unique_ptr<h5::File>> files_;
  std::vector<h5::Dataset*> datasets_;
  std::vector<h5::Selection> selections_;  ///< reused across kDatasetIo ops
  SimSeconds start_ = 0.0;
  ReplayResult result_;
  bool ended_ = false;
};

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

ReplayResult replay(const OpTrace& trace, mpisim::MpiSim& mpi,
                    pfs::PfsSimulator& fs,
                    const cfg::StackSettings& settings) {
  return Executor(trace, mpi, fs, settings).run();
}

bool bit_identical(const trace::PerfResult& a, const trace::PerfResult& b) {
  const trace::RunCounters& x = a.counters;
  const trace::RunCounters& y = b.counters;
  return same_bits(a.bw_read_mbps, b.bw_read_mbps) &&
         same_bits(a.bw_write_mbps, b.bw_write_mbps) &&
         same_bits(a.alpha, b.alpha) && same_bits(a.perf_mbps, b.perf_mbps) &&
         x.bytes_read == y.bytes_read && x.bytes_written == y.bytes_written &&
         x.read_ops == y.read_ops && x.write_ops == y.write_ops &&
         x.metadata_ops == y.metadata_ops &&
         same_bits(x.read_time, y.read_time) &&
         same_bits(x.write_time, y.write_time) &&
         same_bits(x.other_time, y.other_time) &&
         same_bits(x.elapsed, y.elapsed) &&
         x.read_sizes.counts == y.read_sizes.counts &&
         x.write_sizes.counts == y.write_sizes.counts;
}

}  // namespace tunio::replay
