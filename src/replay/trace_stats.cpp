#include "replay/trace_stats.hpp"

#include <vector>

namespace tunio::replay {

AppIoCounts app_io_counts(const OpTrace& trace) {
  AppIoCounts out;
  std::vector<std::uint64_t> elem_by_dataset;
  for (const Op& op : trace.ops) {
    switch (op.kind) {
      case OpKind::kFileCtor:
        ++out.file_opens;
        break;
      case OpKind::kDatasetCreate:
        ++out.dataset_creates;
        elem_by_dataset.push_back(op.a);
        break;
      case OpKind::kDatasetIo: {
        const std::uint64_t elem =
            op.id < elem_by_dataset.size() ? elem_by_dataset[op.id] : 0;
        std::uint64_t bytes = 0;
        for (std::uint32_t i = 0; i < op.sel_count; ++i) {
          bytes += trace.sels[op.sel_begin + i].count * elem;
        }
        if (op.flag) {
          ++out.write_ops;
          out.bytes_written += bytes;
        } else {
          ++out.read_ops;
          out.bytes_read += bytes;
        }
        break;
      }
      case OpKind::kLogWrite:
        ++out.write_ops;
        out.bytes_written += op.a;
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace tunio::replay
