// Application-level I/O totals of a recorded OpTrace — the measured side
// of the static-cost differential oracle (analysis/cost_model.hpp).
//
// Counts are *application-level*: one write op per h5dwrite_* call or
// fprintf_log, bytes as the sum of per-rank selection volumes at the
// dataset's element size. PFS-level counters (trace::RunCounters) are
// deliberately not used here — striping and chunking split application
// requests and add read-modify-write traffic, which a static model of
// the *program* cannot and should not predict.
#pragma once

#include <cstdint>

#include "replay/optrace.hpp"

namespace tunio::replay {

struct AppIoCounts {
  std::uint64_t write_ops = 0;   ///< dataset writes + log writes
  std::uint64_t read_ops = 0;    ///< dataset reads
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t file_opens = 0;       ///< h5::File constructions
  std::uint64_t dataset_creates = 0;  ///< h5::File::create_dataset calls
};

/// Tallies the application-level ops of `trace`. Dataset element sizes
/// are recovered from the kDatasetCreate ops, which appear in dataset-id
/// order by construction.
AppIoCounts app_io_counts(const OpTrace& trace);

}  // namespace tunio::replay
