// Recording side of the evaluation fast path.
//
// The instrumented layers — hdf5lite's File/Dataset, trace::RunMeter,
// the workload drivers' shared helpers, and the mini-C interpreter's
// builtins — call the `note_*` functions below at each application-level
// op. They are no-ops unless a `Recorder` is installed on the calling
// thread (`RecordScope`), so the cost on unrecorded runs is one
// thread-local load per *HDF5-level* call, nothing per PFS request.
// Replayed runs never install a recorder, so replay cannot re-record
// itself.
//
// This target depends only on tunio_common; the instrumented libraries
// link it without cycles. Object identity crosses the boundary as opaque
// `const void*` keys that the recorder interns into sequential ids.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>

#include "common/units.hpp"
#include "replay/optrace.hpp"

namespace tunio::replay {

/// Accumulates one run's op stream. Not thread-safe: install on exactly
/// one thread via RecordScope and keep it there.
class Recorder {
 public:
  void on_file_ctor(const void* file, const std::string& path,
                    bool memory_tier);
  void on_file_flush(const void* file);
  void on_file_close(const void* file);
  void on_dataset_create(const void* file, const void* dataset,
                         const std::string& name, Bytes elem_size,
                         std::uint64_t num_elements,
                         std::uint64_t chunk_elements);
  void on_dataset_flush(const void* dataset);
  void on_dataset_io(const void* dataset, bool is_write, bool collective,
                     const Sel* sels, std::size_t count);
  void on_log_write(const std::string& path, Bytes bytes, bool settings_stripe,
                    bool memory_tier);
  void on_compute(double seconds, unsigned salt);
  void on_barrier();
  void on_mpi_reset();
  void on_fs_quiesce();
  void on_meter_begin();
  void on_phase(int phase);
  void on_meter_end();

  /// True when the stream is a complete, well-formed metered run (one
  /// begin/end pair, no op against an unrecorded object).
  bool valid() const;
  const std::string& error() const { return error_; }

  /// Moves the finished trace out; the recorder is spent afterwards.
  OpTrace take();

 private:
  Op& push(OpKind kind);
  void fail(const std::string& message);
  /// Id of an already-recorded object; sets the failure flag if unknown.
  std::uint32_t lookup(
      const std::unordered_map<const void*, std::uint32_t>& ids,
      const void* object, const char* what);

  OpTrace trace_;
  /// Pointer → id maps. insert_or_assign: a reused address re-binds to
  /// the newest object, mirroring what the pointer itself does.
  std::unordered_map<const void*, std::uint32_t> file_ids_;
  std::unordered_map<const void*, std::uint32_t> dataset_ids_;
  unsigned meter_begins_ = 0;
  unsigned meter_ends_ = 0;
  bool failed_ = false;
  std::string error_;
};

namespace detail {
/// Per-thread recording state. A function-local thread_local (rather
/// than an extern one) so the inline fast path below never goes through
/// the compiler's TLS wrapper, which GCC's UBSan mis-models.
struct RecordState {
  Recorder* recorder = nullptr;
  int suppress = 0;
};
inline RecordState& record_state() {
  static thread_local RecordState state;
  return state;
}
}  // namespace detail

/// True when the calling thread should emit notes. Callers that must do
/// work to assemble a note (e.g. converting selections) check this first.
inline bool recording() {
  const detail::RecordState& state = detail::record_state();
  return state.recorder != nullptr && state.suppress == 0;
}

/// Installs `recorder` on this thread for the scope's lifetime.
class RecordScope {
 public:
  explicit RecordScope(Recorder& recorder);
  ~RecordScope();
  RecordScope(const RecordScope&) = delete;
  RecordScope& operator=(const RecordScope&) = delete;

 private:
  Recorder* prev_;
};

/// Mutes notes for a scope — used by composite operations (File::flush,
/// File::close) whose callees are themselves note sites, so one recorded
/// op stands for the whole composite.
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;
};

void note_file_ctor(const void* file, const std::string& path,
                    bool memory_tier);
void note_file_flush(const void* file);
void note_file_close(const void* file);
void note_dataset_create(const void* file, const void* dataset,
                         const std::string& name, Bytes elem_size,
                         std::uint64_t num_elements,
                         std::uint64_t chunk_elements);
void note_dataset_flush(const void* dataset);
void note_dataset_io(const void* dataset, bool is_write, bool collective,
                     const Sel* sels, std::size_t count);
void note_log_write(const std::string& path, Bytes bytes, bool settings_stripe,
                    bool memory_tier);
void note_compute(double seconds, unsigned salt);
void note_barrier();
void note_mpi_reset();
void note_fs_quiesce();
void note_meter_begin();
void note_phase(int phase);
void note_meter_end();

}  // namespace tunio::replay
