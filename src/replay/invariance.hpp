// Deciding when the record-once/replay-many fast path is sound.
//
// A recorded op stream can be reused across configurations only if the
// program that produced it issues the *same* application-level calls
// under every configuration — i.e. its control flow and call arguments
// never observe a resolved setting. The only way mini-C code can observe
// settings is through the `tuned_*` builtins, so the PR-2 def-use slicer
// answers the question: slice backward from every op-emitting call site
// (h5*, fprintf_log, compute, mpi_barrier); the op stream is
// settings-dependent exactly when a statement reading a `tuned_*` builtin
// survives in that slice. A tuned_* read whose value is dead — never
// reaching an op-emitting statement through data or control dependences —
// does not disqualify the program.
#pragma once

#include "minic/ast.hpp"

namespace tunio::replay {

/// Builtin-name prefix whose results expose resolved stack settings to
/// mini-C programs (tuned_stripe_count, tuned_stripe_size_kib, ...).
inline constexpr const char* kTunedPrefix = "tuned_";

/// True when `program` has a live statement that can observe a `tuned_*`
/// builtin, i.e. its op stream may change across configurations and a
/// recorded trace must not be reused. Conservative: programs the slicer
/// cannot analyze count as dependent.
bool settings_dependent(const minic::Program& program);

}  // namespace tunio::replay
