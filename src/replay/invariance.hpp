// Deciding when the record-once/replay-many fast path is sound.
//
// A recorded op stream can be reused across configurations only if the
// program that produced it issues the *same* application-level calls
// under every configuration — i.e. its control flow and call arguments
// never observe a resolved setting. The only way mini-C code observes
// settings is through the `tuned_*` builtins, so the question is whether
// a tuned value can reach an op-emitting call.
//
// Decision procedure (statement-granular settings-taint, PR-6):
//
//   1. Run the abstract interpreter (analysis/absint.hpp), which tracks
//      per-statement taint: values derived from `tuned_*` reads through
//      expressions, assignments, calls and returns, plus implicit flow
//      through tainted branch/loop conditions.
//   2. The program is *dependent* iff any op-emitting call site
//      (h5*, fprintf_log, compute, mpi_barrier) receives a tainted
//      argument or executes under tainted control — those are exactly
//      the calls whose presence, order or payload could change with the
//      configuration — or a `return` executes under tainted control
//      (early exit skips later ops: implicit flow the site check alone
//      would miss).
//   3. Programs the analyzer cannot finish soundly (recursion, budget
//      exhaustion) are conservatively dependent; the report says why so
//      the driver can surface the reason instead of silently falling
//      back to full interpretation.
//
// This is strictly more precise than the PR-4 backward slice from op
// sites, which kept any *statement* whose variables reach an op — e.g.
// `int s = tuned_x(); s = 8; h5dwrite_all(d, s);` was dependent under
// the slicer's scope-level rule but is provably invariant under taint
// (the tuned value dies at the overwrite). The report carries the legacy
// slicer verdict too, so the `replay.gate.recovered` counter can tally
// programs the taint gate newly admits to the fast path.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace tunio::replay {

/// Builtin-name prefix whose results expose resolved stack settings to
/// mini-C programs (tuned_stripe_count, tuned_stripe_size_kib, ...).
inline constexpr const char* kTunedPrefix = "tuned_";

/// Verdict of the replay-eligibility gate, with enough detail for
/// DriveResult to explain *why* a program fell back to interpretation.
struct InvarianceReport {
  /// The op stream may change across configurations: replay is unsound.
  bool dependent = true;
  /// Human-readable justification of the verdict (first tainted site,
  /// analysis failure, ...). Never empty after analyze_invariance.
  std::string reason;
  /// The verdict is the conservative fallback, not a proof.
  bool unanalyzable = false;
  /// What the PR-4 def-use slicer would have said (dependent on slicer
  /// failure too). dependent == false && slicer_dependent == true means
  /// the taint gate recovered this program for the fast path.
  bool slicer_dependent = false;
  /// Op-emitting call sites with tainted arguments or tainted control.
  int tainted_sites = 0;
};

/// Runs the taint gate (and the legacy slicer, for the recovery
/// counter) and bumps the `replay.gate.*` metrics:
/// invariant / dependent / unanalyzable, plus recovered when the taint
/// verdict beats the slicer's. Never throws.
InvarianceReport analyze_invariance(const minic::Program& program);

/// True when `program`'s op stream may observe a `tuned_*` builtin and a
/// recorded trace must not be reused. Shorthand for
/// `analyze_invariance(program).dependent`.
bool settings_dependent(const minic::Program& program);

}  // namespace tunio::replay
