#include "replay/invariance.hpp"

#include <set>
#include <string>
#include <vector>

#include "analysis/slicer.hpp"

namespace tunio::replay {
namespace {

/// Builtins that emit trace ops: the slice from these call sites is the
/// set of statements able to influence the recorded op stream.
const std::vector<std::string> kOpEmittingPrefixes = {
    "h5", "fprintf_log", "compute", "mpi_barrier"};

bool has_tuned_call(const minic::Expr& expr) {
  if (expr.kind == minic::ExprKind::kCall &&
      expr.text.rfind(kTunedPrefix, 0) == 0) {
    return true;
  }
  for (const minic::ExprPtr& child : expr.children) {
    if (child && has_tuned_call(*child)) return true;
  }
  return false;
}

/// Ids of statements whose own expressions (value or condition) read a
/// tuned_* builtin. Header statements of a `for` (init/update) have their
/// own ids and are visited as children.
void collect_tuned_stmts(const minic::Stmt& stmt, std::set<int>& out) {
  if ((stmt.value && has_tuned_call(*stmt.value)) ||
      (stmt.cond && has_tuned_call(*stmt.cond))) {
    out.insert(stmt.id);
  }
  if (stmt.init) collect_tuned_stmts(*stmt.init, out);
  if (stmt.update) collect_tuned_stmts(*stmt.update, out);
  if (stmt.body) collect_tuned_stmts(*stmt.body, out);
  if (stmt.else_body) collect_tuned_stmts(*stmt.else_body, out);
  for (const minic::StmtPtr& child : stmt.statements) {
    collect_tuned_stmts(*child, out);
  }
}

}  // namespace

bool settings_dependent(const minic::Program& program) {
  try {
    std::set<int> tuned_readers;
    for (const minic::Function& fn : program.functions) {
      if (fn.body) collect_tuned_stmts(*fn.body, tuned_readers);
    }
    // No tuned_* read anywhere: trivially invariant.
    if (tuned_readers.empty()) return false;
    // A tuned_* reader matters only if the I/O slice keeps it: kept
    // statements are exactly those reaching an op-emitting call through
    // data deps, control ancestors, or live-function returns.
    const analysis::SliceResult slice =
        analysis::slice_io(program, kOpEmittingPrefixes);
    for (const int id : tuned_readers) {
      if (slice.kept.count(id) > 0) return true;
    }
    return false;
  } catch (...) {
    // Unanalyzable programs fall back to full interpretation.
    return true;
  }
}

}  // namespace tunio::replay
