#include "replay/invariance.hpp"

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cost_model.hpp"
#include "analysis/slicer.hpp"
#include "obs/metrics.hpp"

namespace tunio::replay {
namespace {

/// Builtins that emit trace ops: a tainted argument or tainted control
/// at any of these call sites makes the op stream settings-dependent.
const std::vector<std::string> kOpEmittingPrefixes = {
    "h5", "fprintf_log", "compute", "mpi_barrier"};

bool has_tuned_call(const minic::Expr& expr) {
  if (expr.kind == minic::ExprKind::kCall &&
      expr.text.rfind(kTunedPrefix, 0) == 0) {
    return true;
  }
  for (const minic::ExprPtr& child : expr.children) {
    if (child && has_tuned_call(*child)) return true;
  }
  return false;
}

/// Ids of statements whose own expressions (value or condition) read a
/// tuned_* builtin. Header statements of a `for` (init/update) have their
/// own ids and are visited as children.
void collect_tuned_stmts(const minic::Stmt& stmt, std::set<int>& out) {
  if ((stmt.value && has_tuned_call(*stmt.value)) ||
      (stmt.cond && has_tuned_call(*stmt.cond))) {
    out.insert(stmt.id);
  }
  if (stmt.init) collect_tuned_stmts(*stmt.init, out);
  if (stmt.update) collect_tuned_stmts(*stmt.update, out);
  if (stmt.body) collect_tuned_stmts(*stmt.body, out);
  if (stmt.else_body) collect_tuned_stmts(*stmt.else_body, out);
  for (const minic::StmtPtr& child : stmt.statements) {
    collect_tuned_stmts(*child, out);
  }
}

bool any_tuned_read(const minic::Program& program) {
  std::set<int> readers;
  for (const minic::Function& fn : program.functions) {
    if (fn.body) collect_tuned_stmts(*fn.body, readers);
  }
  return !readers.empty();
}

/// The PR-4 verdict: a tuned_* reader survives the backward slice from
/// the op-emitting call sites. Failure counts as dependent.
bool slicer_dependent(const minic::Program& program) {
  try {
    std::set<int> tuned_readers;
    for (const minic::Function& fn : program.functions) {
      if (fn.body) collect_tuned_stmts(*fn.body, tuned_readers);
    }
    if (tuned_readers.empty()) return false;
    const analysis::SliceResult slice =
        analysis::slice_io(program, kOpEmittingPrefixes);
    for (const int id : tuned_readers) {
      if (slice.kept.count(id) > 0) return true;
    }
    return false;
  } catch (...) {
    return true;
  }
}

void count(const char* metric) {
  obs::MetricsRegistry::global().counter(metric).add(1);
}

}  // namespace

InvarianceReport analyze_invariance(const minic::Program& program) {
  InvarianceReport report;

  // Fast path: no tuned_* read anywhere — trivially invariant, and both
  // gates agree, so skip the solvers entirely.
  if (!any_tuned_read(program)) {
    report.dependent = false;
    report.reason = "no tuned_* reads";
    count("replay.gate.invariant");
    return report;
  }

  report.slicer_dependent = slicer_dependent(program);

  const analysis::ProgramCost cost = analysis::predict_cost(program);
  if (!cost.analyzable) {
    report.dependent = true;
    report.unanalyzable = true;
    report.reason = "static analysis failed: " + cost.failure;
    count("replay.gate.unanalyzable");
    count("replay.gate.dependent");
    return report;
  }

  const analysis::SiteCost* first_tainted = nullptr;
  for (const analysis::SiteCost& site : cost.sites) {
    if (site.tainted) {
      ++report.tainted_sites;
      if (first_tainted == nullptr) first_tainted = &site;
    }
  }

  if (first_tainted != nullptr) {
    std::ostringstream reason;
    reason << "tuned value reaches " << first_tainted->callee << " at line "
           << first_tainted->line;
    if (report.tainted_sites > 1) {
      reason << " (+" << report.tainted_sites - 1 << " more sites)";
    }
    report.dependent = true;
    report.reason = reason.str();
  } else if (cost.tainted_control_exit) {
    report.dependent = true;
    report.reason = "program exit is control-dependent on tuned values";
  } else {
    report.dependent = false;
    report.reason = "tuned reads never reach op-emitting calls";
  }

  count(report.dependent ? "replay.gate.dependent" : "replay.gate.invariant");
  if (!report.dependent && report.slicer_dependent) {
    // Taint admitted a program the def-use slicer would have rejected.
    count("replay.gate.recovered");
  }
  return report;
}

bool settings_dependent(const minic::Program& program) {
  return analyze_invariance(program).dependent;
}

}  // namespace tunio::replay
