#include "replay/hooks.hpp"

namespace tunio::replay {

RecordScope::RecordScope(Recorder& recorder)
    : prev_(detail::record_state().recorder) {
  detail::record_state().recorder = &recorder;
}

RecordScope::~RecordScope() { detail::record_state().recorder = prev_; }

SuppressScope::SuppressScope() { ++detail::record_state().suppress; }

SuppressScope::~SuppressScope() { --detail::record_state().suppress; }

Op& Recorder::push(OpKind kind) {
  trace_.ops.emplace_back();
  trace_.ops.back().kind = kind;
  return trace_.ops.back();
}

void Recorder::fail(const std::string& message) {
  if (!failed_) {
    failed_ = true;
    error_ = message;
  }
}

std::uint32_t Recorder::lookup(
    const std::unordered_map<const void*, std::uint32_t>& ids,
    const void* object, const char* what) {
  auto it = ids.find(object);
  if (it == ids.end()) {
    fail(std::string("op on unrecorded ") + what);
    return 0;
  }
  return it->second;
}

void Recorder::on_file_ctor(const void* file, const std::string& path,
                            bool memory_tier) {
  if (failed_) return;
  file_ids_.insert_or_assign(file, trace_.num_files);
  Op& op = push(OpKind::kFileCtor);
  op.id = trace_.num_files++;
  op.flag2 = memory_tier;
  op.text = path;
}

void Recorder::on_file_flush(const void* file) {
  if (failed_) return;
  push(OpKind::kFileFlush).id = lookup(file_ids_, file, "file");
}

void Recorder::on_file_close(const void* file) {
  if (failed_) return;
  push(OpKind::kFileClose).id = lookup(file_ids_, file, "file");
}

void Recorder::on_dataset_create(const void* file, const void* dataset,
                                 const std::string& name, Bytes elem_size,
                                 std::uint64_t num_elements,
                                 std::uint64_t chunk_elements) {
  if (failed_) return;
  dataset_ids_.insert_or_assign(dataset, trace_.num_datasets++);
  Op& op = push(OpKind::kDatasetCreate);
  op.id = lookup(file_ids_, file, "file");
  op.text = name;
  op.a = elem_size;
  op.b = num_elements;
  op.c = chunk_elements;
}

void Recorder::on_dataset_flush(const void* dataset) {
  if (failed_) return;
  push(OpKind::kDatasetFlush).id = lookup(dataset_ids_, dataset, "dataset");
}

void Recorder::on_dataset_io(const void* dataset, bool is_write,
                             bool collective, const Sel* sels,
                             std::size_t count) {
  if (failed_) return;
  const std::uint32_t id = lookup(dataset_ids_, dataset, "dataset");
  Op& op = push(OpKind::kDatasetIo);
  op.id = id;
  op.flag = is_write;
  op.flag2 = collective;
  op.sel_begin = static_cast<std::uint32_t>(trace_.sels.size());
  op.sel_count = static_cast<std::uint32_t>(count);
  trace_.sels.insert(trace_.sels.end(), sels, sels + count);
}

void Recorder::on_log_write(const std::string& path, Bytes bytes,
                            bool settings_stripe, bool memory_tier) {
  if (failed_) return;
  Op& op = push(OpKind::kLogWrite);
  op.text = path;
  op.a = bytes;
  op.flag = settings_stripe;
  op.flag2 = memory_tier;
}

void Recorder::on_compute(double seconds, unsigned salt) {
  if (failed_) return;
  Op& op = push(OpKind::kCompute);
  op.seconds = seconds;
  op.salt = salt;
}

void Recorder::on_barrier() {
  if (failed_) return;
  push(OpKind::kBarrier);
}

void Recorder::on_mpi_reset() {
  if (failed_) return;
  push(OpKind::kMpiReset);
}

void Recorder::on_fs_quiesce() {
  if (failed_) return;
  push(OpKind::kFsQuiesce);
}

void Recorder::on_meter_begin() {
  if (failed_) return;
  ++meter_begins_;
  push(OpKind::kMeterBegin);
}

void Recorder::on_phase(int phase) {
  if (failed_) return;
  push(OpKind::kPhase).salt = static_cast<std::uint32_t>(phase);
}

void Recorder::on_meter_end() {
  if (failed_) return;
  ++meter_ends_;
  push(OpKind::kMeterEnd);
}

bool Recorder::valid() const {
  return !failed_ && meter_begins_ == 1 && meter_ends_ == 1;
}

OpTrace Recorder::take() { return std::move(trace_); }

namespace {
Recorder* rec() { return detail::record_state().recorder; }
}  // namespace

void note_file_ctor(const void* file, const std::string& path,
                    bool memory_tier) {
  if (recording()) rec()->on_file_ctor(file, path, memory_tier);
}

void note_file_flush(const void* file) {
  if (recording()) rec()->on_file_flush(file);
}

void note_file_close(const void* file) {
  if (recording()) rec()->on_file_close(file);
}

void note_dataset_create(const void* file, const void* dataset,
                         const std::string& name, Bytes elem_size,
                         std::uint64_t num_elements,
                         std::uint64_t chunk_elements) {
  if (recording()) {
    rec()->on_dataset_create(file, dataset, name, elem_size, num_elements,
                             chunk_elements);
  }
}

void note_dataset_flush(const void* dataset) {
  if (recording()) rec()->on_dataset_flush(dataset);
}

void note_dataset_io(const void* dataset, bool is_write, bool collective,
                     const Sel* sels, std::size_t count) {
  if (recording()) {
    rec()->on_dataset_io(dataset, is_write, collective, sels, count);
  }
}

void note_log_write(const std::string& path, Bytes bytes, bool settings_stripe,
                    bool memory_tier) {
  if (recording()) {
    rec()->on_log_write(path, bytes, settings_stripe, memory_tier);
  }
}

void note_compute(double seconds, unsigned salt) {
  if (recording()) rec()->on_compute(seconds, salt);
}

void note_barrier() {
  if (recording()) rec()->on_barrier();
}

void note_mpi_reset() {
  if (recording()) rec()->on_mpi_reset();
}

void note_fs_quiesce() {
  if (recording()) rec()->on_fs_quiesce();
}

void note_meter_begin() {
  if (recording()) rec()->on_meter_begin();
}

void note_phase(int phase) {
  if (recording()) rec()->on_phase(phase);
}

void note_meter_end() {
  if (recording()) rec()->on_meter_end();
}

}  // namespace tunio::replay
