// Flat, settings-independent record of one metered run's I/O calls.
//
// An `OpTrace` captures the application-level calls a kernel or workload
// driver issues against the simulated stack — file/dataset lifecycle,
// dataset transfers, log writes, compute phases, barriers, and meter
// marks. Everything the tuned settings decide (striping, MPI-IO hints,
// alignment, chunk caching) is deliberately *not* in the trace: it is
// re-substituted from the `StackSettings` at replay time. Replaying the
// stream through hdf5lite → mpiio → mpisim → pfs therefore produces
// bit-identical `PerfResult`s to re-running the source program, provided
// the program's control flow never observes a tunable
// (`replay::settings_dependent` decides that).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace tunio::replay {

enum class OpKind : std::uint8_t {
  kFileCtor,       ///< h5::File construction (open/create + superblock)
  kFileFlush,      ///< h5::File::flush
  kFileClose,      ///< h5::File::close (explicit or interpreter leak sweep)
  kDatasetCreate,  ///< h5::File::create_dataset
  kDatasetFlush,   ///< h5::Dataset::flush
  kDatasetIo,      ///< h5::Dataset::write / read
  kLogWrite,       ///< buffered stdio-style log append (fprintf_log)
  kCompute,        ///< jittered per-rank compute followed by a barrier
  kBarrier,        ///< application-level MPI_Barrier
  kMpiReset,       ///< MpiSim::reset (setup/run separation, BD-CATS)
  kFsQuiesce,      ///< PfsSimulator::quiesce
  kMeterBegin,     ///< RunMeter::begin
  kPhase,          ///< RunMeter::phase_begin
  kMeterEnd,       ///< RunMeter::end
};

/// One rank's element selection of a `kDatasetIo` op.
struct Sel {
  unsigned rank = 0;
  std::uint64_t start_element = 0;
  std::uint64_t count = 0;
};

/// One recorded operation. Fields are overloaded per kind (see comments);
/// object identity is by sequential id — the replay executor creates
/// files/datasets in recorded order, so ids line up by construction.
struct Op {
  OpKind kind = OpKind::kBarrier;
  bool flag = false;   ///< kDatasetIo: is_write; kLogWrite: settings-striped
  bool flag2 = false;  ///< kDatasetIo: collective; kFileCtor/kLogWrite: memory tier
  std::uint32_t id = 0;     ///< file id (kFile*, kDatasetCreate) or dataset id
  std::uint64_t a = 0;      ///< kDatasetCreate: elem_size; kLogWrite: bytes
  std::uint64_t b = 0;      ///< kDatasetCreate: num_elements
  std::uint64_t c = 0;      ///< kDatasetCreate: requested chunk_elements (0 = contiguous)
  double seconds = 0.0;     ///< kCompute: unjittered per-rank duration
  std::uint32_t salt = 0;   ///< kCompute: jitter salt; kPhase: trace::Phase
  std::uint32_t sel_begin = 0;  ///< kDatasetIo: range into OpTrace::sels
  std::uint32_t sel_count = 0;
  std::string text;  ///< resolved path (kFileCtor/kLogWrite) or dataset name
};

struct OpTrace {
  std::vector<Op> ops;
  std::vector<Sel> sels;  ///< flat selection pool referenced by kDatasetIo
  std::uint32_t num_files = 0;
  std::uint32_t num_datasets = 0;
};

}  // namespace tunio::replay
