// Replay side of the evaluation fast path.
//
// `replay()` pushes a recorded op stream straight through
// hdf5lite → mpiio → mpisim → pfs with the *current* settings
// substituted at every decision point the stack makes (file creation,
// dataset creation, log creation, MPI-IO hints). No interpreter, no
// workload generator, no per-evaluation AST walk — only the simulated
// stack itself runs. For settings-invariant programs the result is
// bit-identical to re-running the source (the differential tests and
// ObjectiveBase's verification evaluation enforce this).
#pragma once

#include "config/stack_settings.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"
#include "replay/optrace.hpp"
#include "trace/meter.hpp"

namespace tunio::replay {

struct ReplayResult {
  trace::PerfResult perf;
  SimSeconds sim_seconds = 0.0;
};

/// Replays `trace` against fresh simulators under `settings`. The trace
/// must come from a Recorder whose `valid()` returned true.
ReplayResult replay(const OpTrace& trace, mpisim::MpiSim& mpi,
                    pfs::PfsSimulator& fs, const cfg::StackSettings& settings);

/// Bit-level equality of two PerfResults — the differential oracle's
/// predicate. Doubles are compared by bit pattern, not tolerance.
bool bit_identical(const trace::PerfResult& a, const trace::PerfResult& b);

}  // namespace tunio::replay
