#include "rl/log_curve_env.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tunio::rl {

LogCurveEpisode::LogCurveEpisode(const LogCurveParams& params, Rng& rng)
    : max_iterations_(params.max_iterations) {
  TUNIO_CHECK_MSG(max_iterations_ > 1, "episode needs > 1 iteration");
  const double initial = rng.uniform(params.initial_min, params.initial_max);
  const double gain = rng.uniform(params.gain_min, params.gain_max);
  const double growth = rng.uniform(params.growth_min, params.growth_max);
  const unsigned warmup = static_cast<unsigned>(rng.uniform(
      0.0, params.warmup_max_fraction * static_cast<double>(max_iterations_)));

  // Plateau windows: progress stalls, then resumes where the curve would
  // have been (a coordinated parameter change finally lands).
  std::vector<std::pair<unsigned, unsigned>> plateaus;
  const unsigned num_plateaus =
      params.max_plateaus == 0
          ? 0
          : static_cast<unsigned>(rng.uniform_int(0, params.max_plateaus));
  for (unsigned i = 0; i < num_plateaus; ++i) {
    const unsigned start = static_cast<unsigned>(
        rng.uniform_int(2, std::max(3u, max_iterations_ - 5)));
    const unsigned len = static_cast<unsigned>(
        rng.uniform_int(params.plateau_min, params.plateau_max));
    plateaus.emplace_back(start, len);
  }

  curve_.reserve(max_iterations_);
  best_so_far_.reserve(max_iterations_);
  double best = 0.0;
  int dip_remaining = 0;
  double dip_scale = 1.0;
  unsigned stalled = 0;  // iterations consumed by plateaus so far
  for (unsigned t = 0; t < max_iterations_; ++t) {
    bool in_plateau = false;
    for (const auto& [start, len] : plateaus) {
      if (t >= start && t < start + len) in_plateau = true;
    }
    if (in_plateau) ++stalled;
    const unsigned consumed = stalled + warmup;
    const double progress =
        t > consumed ? static_cast<double>(t - consumed) : 0.0;
    const double denom = std::log1p(
        growth * static_cast<double>(std::max(1u, max_iterations_ - 1 -
                                                      warmup)));
    double value = initial + gain * std::log1p(growth * progress) / denom;
    // Randomized downward shifts: the tuner briefly explores a bad
    // parameter choice before adjusting.
    if (dip_remaining == 0 && rng.chance(params.dip_probability)) {
      dip_remaining = static_cast<int>(rng.uniform_int(1, 3));
      dip_scale = 1.0 - rng.uniform(0.3, 1.0) * params.dip_depth;
    }
    if (dip_remaining > 0) {
      value *= dip_scale;
      --dip_remaining;
    }
    value += rng.normal(0.0, params.noise_stddev);
    value = std::clamp(value, 0.0, 2.0);
    curve_.push_back(value);
    best = std::max(best, value);
    best_so_far_.push_back(best);
  }
}

double LogCurveEpisode::best_perf_at(unsigned t) const {
  TUNIO_CHECK_MSG(t < best_so_far_.size(), "iteration out of range");
  return best_so_far_[t];
}

double LogCurveEpisode::perf_at(unsigned t) const {
  TUNIO_CHECK_MSG(t < curve_.size(), "iteration out of range");
  return curve_[t];
}

double LogCurveEpisode::stop_return(unsigned t) const {
  TUNIO_CHECK_MSG(t < curve_.size(), "iteration out of range");
  const double gain = best_so_far_[t] - curve_.front();
  // Scale by the episode length so a full-budget run scores ~gain.
  return gain * static_cast<double>(max_iterations_) /
         static_cast<double>(t + 1);
}

double LogCurveEpisode::best_possible_return() const {
  double best = 0.0;
  for (unsigned t = 0; t < max_iterations_; ++t) {
    best = std::max(best, stop_return(t));
  }
  return best;
}

std::vector<double> early_stop_state(unsigned iteration,
                                     unsigned max_iterations,
                                     const std::vector<double>& best_history) {
  TUNIO_CHECK_MSG(!best_history.empty(), "state needs at least one sample");
  const double best = best_history.back();
  // Gains are absolute in normalized-perf units: the caller's normalizer
  // (BW_single x num_nodes, per the paper) maps every workload onto the
  // same [0, ~1] range the offline curves are drawn from.
  auto gain_over = [&](unsigned span) {
    if (best_history.size() <= span) return best - best_history.front();
    return best - best_history[best_history.size() - 1 - span];
  };
  return {
      static_cast<double>(iteration) /
          static_cast<double>(std::max(1u, max_iterations)),
      best,
      gain_over(1),
      gain_over(3),
      gain_over(5),
  };
}

}  // namespace tunio::rl
