// The State Observer of Smart Configuration Generation.
//
// "The observer uses the inputs provided to the RL agent to produce a
// state observation which represents a relationship between the
// application and the tuning environment" (§III-C). It is an NN-based
// contextual bandit: the network learns to predict normalized perf from
// the raw tuning context (parameter-subset membership vector, last
// normalized perf, iteration progress); its last hidden activation is
// the state observation handed to the Subset Picker.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/dense_net.hpp"

namespace tunio::rl {

class StateObserver {
 public:
  /// `context_dim` = raw input width; `embedding_dim` = observation width.
  StateObserver(std::size_t context_dim, std::size_t embedding_dim, Rng rng);

  std::size_t embedding_dim() const { return embedding_dim_; }

  /// Produces the state observation for a raw context.
  std::vector<double> observe(const std::vector<double>& context) const;

  /// Bandit update: the context led to `normalized_perf`.
  void update(const std::vector<double>& context, double normalized_perf);

  /// Predicted normalized perf for a context (the bandit's value).
  double predict(const std::vector<double>& context) const;

 private:
  std::size_t embedding_dim_;
  Rng rng_;
  nn::DenseNet net_;
};

}  // namespace tunio::rl
