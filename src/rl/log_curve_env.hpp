// Synthetic tuning-curve environment for offline early-stopper training.
//
// "To train the agent offline, tuning is emulated using generated log
// curves, as tuning performance follows a log curve ... The log curves
// generated for training include noise in the form of randomized shifts
// down the curve to account for tuning cases where the wrong parameter
// is chosen briefly before adjusting. ... Each simulated application has
// a log curve with different characteristics such as initial value,
// growth rate, etc." (§III-D)
//
// An episode is a tuning run: at each iteration the agent sees the best
// perf so far and decides stop/continue. The episode reward mirrors the
// paper's cost/benefit balance (RoTI): stopping collects
// (perf_best − perf_0) / t; continuing pays a small per-iteration cost.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace tunio::rl {

struct LogCurveParams {
  double initial_min = 0.05, initial_max = 0.30;  ///< perf(0), normalized
  double gain_min = 0.3, gain_max = 0.9;          ///< asymptotic gain
  double growth_min = 0.15, growth_max = 1.2;     ///< log growth rate
  /// Warmup: tuning pipelines spend early iterations exploring before the
  /// log-shaped rise begins (generation-0 populations sit near the
  /// defaults). The warmup length is drawn from [0, warmup_max_fraction·T]
  /// per episode; it is what moves the RoTI-optimal stopping point away
  /// from the first iterations and deep into the run.
  double warmup_max_fraction = 0.5;
  double noise_stddev = 0.015;
  double dip_probability = 0.12;   ///< chance of a temporary downward shift
  double dip_depth = 0.15;         ///< relative dip magnitude
  /// Plateau windows: tuning often stalls for several iterations before a
  /// coordinated parameter change unlocks the next gain (the 10th-20th
  /// iteration plateau of the paper's Fig. 10(a)). Up to `max_plateaus`
  /// windows of `plateau_min..plateau_max` iterations hold the curve flat.
  unsigned max_plateaus = 2;
  unsigned plateau_min = 4;
  unsigned plateau_max = 10;
  unsigned max_iterations = 50;
};

/// One synthetic tuning run.
class LogCurveEpisode {
 public:
  LogCurveEpisode(const LogCurveParams& params, Rng& rng);

  unsigned max_iterations() const { return max_iterations_; }

  /// Best perf discovered up to and including iteration `t` (0-based).
  double best_perf_at(unsigned t) const;

  /// Raw (noisy) perf of iteration `t`.
  double perf_at(unsigned t) const;

  double initial_perf() const { return curve_.front(); }

  /// The RoTI-like return of stopping after iteration `t`:
  /// (best(t) − perf(0)) / (t + 1), scaled so episode rewards are O(1).
  double stop_return(unsigned t) const;

  /// The best achievable stop_return over the whole episode (oracle).
  double best_possible_return() const;

 private:
  std::vector<double> curve_;       ///< per-iteration perf
  std::vector<double> best_so_far_;
  unsigned max_iterations_;
};

/// Builds the early-stopper's state vector from observable quantities.
/// Layout: {t / T, best_perf, gain over last 1, last 3, last 5 iters}.
std::vector<double> early_stop_state(unsigned iteration,
                                     unsigned max_iterations,
                                     const std::vector<double>& best_history);

}  // namespace tunio::rl
