#include "rl/q_agent.hpp"

#include <algorithm>

namespace tunio::rl {

QAgent::QAgent(std::size_t state_dim, std::size_t num_actions, Rng rng,
               QAgentOptions options)
    : num_actions_(num_actions),
      options_(options),
      rng_(rng),
      net_({state_dim, options.hidden, options.hidden, num_actions}, rng_,
           {options.learning_rate}),
      target_({state_dim, options.hidden, options.hidden, num_actions}, rng_,
              {options.learning_rate}),
      replay_(options.replay_capacity),
      epsilon_(options.epsilon) {
  TUNIO_CHECK_MSG(num_actions_ > 0, "agent needs at least one action");
  target_.copy_from(net_);
}

std::size_t QAgent::select(const std::vector<double>& state) {
  epsilon_ = std::max(options_.epsilon_min, epsilon_ * options_.epsilon_decay);
  if (rng_.chance(epsilon_)) {
    return rng_.index(num_actions_);
  }
  return best_action(state);
}

std::size_t QAgent::best_action(const std::vector<double>& state) const {
  const std::vector<double> q = net_.forward(state);
  return static_cast<std::size_t>(
      std::max_element(q.begin(), q.end()) - q.begin());
}

std::vector<double> QAgent::q_values(const std::vector<double>& state) const {
  return net_.forward(state);
}

void QAgent::observe(const std::vector<double>& state, std::size_t action,
                     double reward, const std::vector<double>& next_state,
                     bool terminal) {
  TUNIO_CHECK_MSG(action < num_actions_, "action out of range");
  // Credit the incoming reward to every pending (not yet mature)
  // transition: an action's value is judged by the rewards that follow it
  // over the delay window, not by the instantaneous gain.
  for (Pending& pending : pending_) {
    pending.transition.reward += reward / options_.reward_delay;
    ++pending.age;
  }
  Pending fresh;
  fresh.transition.state = state;
  fresh.transition.action = action;
  fresh.transition.reward = reward / options_.reward_delay;
  fresh.transition.next_state = next_state;
  fresh.transition.terminal = terminal;
  pending_.push_back(std::move(fresh));
  mature_pending(terminal);
}

void QAgent::mature_pending(bool flush) {
  while (!pending_.empty() &&
         (flush || pending_.front().age >= options_.reward_delay)) {
    replay_.push(std::move(pending_.front().transition));
    pending_.pop_front();
  }
}

void QAgent::learn(std::size_t steps) {
  if (replay_.empty()) return;
  for (std::size_t s = 0; s < steps; ++s) {
    const auto batch = replay_.sample(options_.batch_size, rng_);
    for (const Transition* t : batch) {
      double target = t->reward;
      if (!t->terminal) {
        const std::vector<double> next_q = target_.forward(t->next_state);
        target += options_.gamma *
                  *std::max_element(next_q.begin(), next_q.end());
      }
      net_.train_output(t->state, t->action, target);
    }
    target_.soft_update_from(net_, options_.target_tau);
  }
}

}  // namespace tunio::rl
