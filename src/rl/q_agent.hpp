// NN-based Q-learning agent with delayed rewards.
//
// Both of TunIO's RL components — the Subset Picker of Smart
// Configuration Generation and the Action Decider of Early Stopping —
// are "NN-based Q-Learning function[s]" with "a 5-iteration delay on the
// reward function to avoid bias introduced by short-term gains"
// (§III-C/D). The delay is implemented here: observed transitions are
// held in a pending queue and only committed to the replay buffer once
// their (possibly re-evaluated) reward matures `reward_delay` steps
// later.
#pragma once

#include <deque>
#include <optional>

#include "common/rng.hpp"
#include "nn/dense_net.hpp"
#include "rl/replay_buffer.hpp"

namespace tunio::rl {

struct QAgentOptions {
  std::size_t hidden = 24;          ///< hidden width (two hidden layers)
  double gamma = 0.92;              ///< discount
  double epsilon = 0.25;            ///< initial exploration rate
  double epsilon_min = 0.03;
  double epsilon_decay = 0.995;     ///< per select() call
  unsigned reward_delay = 5;        ///< the paper's 5-iteration delay
  std::size_t replay_capacity = 4096;
  std::size_t batch_size = 16;
  double target_tau = 0.05;         ///< target-network soft update
  double learning_rate = 2e-3;
};

class QAgent {
 public:
  QAgent(std::size_t state_dim, std::size_t num_actions, Rng rng,
         QAgentOptions options = {});

  std::size_t num_actions() const { return num_actions_; }

  /// ε-greedy action selection (decays ε).
  std::size_t select(const std::vector<double>& state);

  /// Greedy action (no exploration, no decay) — evaluation mode.
  std::size_t best_action(const std::vector<double>& state) const;

  /// Q-values for a state.
  std::vector<double> q_values(const std::vector<double>& state) const;

  /// Feeds one environment step. The transition's reward is *provisional*
  /// — it matures after `reward_delay` further observations, at which
  /// point the accumulated delayed reward replaces it and the transition
  /// enters replay. Terminal observations flush the queue.
  void observe(const std::vector<double>& state, std::size_t action,
               double reward, const std::vector<double>& next_state,
               bool terminal);

  /// Several gradient steps on replayed experience.
  void learn(std::size_t steps = 1);

  double epsilon() const { return epsilon_; }
  void set_epsilon(double epsilon) { epsilon_ = epsilon; }
  std::size_t replay_size() const { return replay_.size(); }

 private:
  struct Pending {
    Transition transition;
    unsigned age = 0;
  };

  void mature_pending(bool flush);

  std::size_t num_actions_;
  QAgentOptions options_;
  Rng rng_;
  nn::DenseNet net_;
  nn::DenseNet target_;
  ReplayBuffer replay_;
  std::deque<Pending> pending_;
  double epsilon_;
};

}  // namespace tunio::rl
