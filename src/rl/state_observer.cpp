#include "rl/state_observer.hpp"

namespace tunio::rl {

StateObserver::StateObserver(std::size_t context_dim,
                             std::size_t embedding_dim, Rng rng)
    : embedding_dim_(embedding_dim),
      rng_(rng),
      net_({context_dim, embedding_dim * 2, embedding_dim, 1}, rng_,
           {2e-3}) {}

std::vector<double> StateObserver::observe(
    const std::vector<double>& context) const {
  std::vector<double> embedding;
  net_.forward_with_embedding(context, &embedding);
  return embedding;
}

void StateObserver::update(const std::vector<double>& context,
                           double normalized_perf) {
  net_.train(context, {normalized_perf});
}

double StateObserver::predict(const std::vector<double>& context) const {
  return net_.forward(context)[0];
}

}  // namespace tunio::rl
