// Fixed-capacity experience replay.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace tunio::rl {

struct Transition {
  std::vector<double> state;
  std::size_t action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  bool terminal = false;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
    TUNIO_CHECK_MSG(capacity_ > 0, "replay buffer needs capacity");
  }

  void push(Transition transition) {
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(transition));
    } else {
      buffer_[cursor_] = std::move(transition);
    }
    cursor_ = (cursor_ + 1) % capacity_;
  }

  std::size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }

  /// Uniform sample with replacement.
  std::vector<const Transition*> sample(std::size_t n, Rng& rng) const {
    TUNIO_CHECK_MSG(!buffer_.empty(), "sampling empty replay buffer");
    std::vector<const Transition*> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(&buffer_[rng.index(buffer_.size())]);
    }
    return batch;
  }

 private:
  std::size_t capacity_;
  std::size_t cursor_ = 0;
  std::vector<Transition> buffer_;
};

}  // namespace tunio::rl
