#include "mpisim/mpisim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tunio::mpisim {

namespace {

/// Cached handles into the global registry (see PfsMetrics for rationale).
struct MpiMetrics {
  obs::Counter& barriers;
  obs::Counter& allreduces;
  obs::Counter& gathers;
  obs::Counter& broadcasts;
  obs::Counter& sends;
  obs::Counter& collective_bytes;
  obs::Gauge& sync_stall_seconds;

  static MpiMetrics& get() {
    static MpiMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
      return new MpiMetrics{
          registry.counter("mpi.barriers"),
          registry.counter("mpi.allreduces"),
          registry.counter("mpi.gathers"),
          registry.counter("mpi.broadcasts"),
          registry.counter("mpi.sends"),
          registry.counter("mpi.collective_bytes"),
          registry.gauge("mpi.sync_stall_seconds"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

MpiSim::MpiSim(unsigned num_ranks, MpiProfile profile)
    : profile_(profile), clocks_(num_ranks, 0.0) {
  TUNIO_CHECK_MSG(num_ranks > 0, "MPI job needs at least one rank");
}

MpiSim::~MpiSim() { publish_metrics(); }

void MpiSim::publish_metrics() {
  MpiMetrics& metrics = MpiMetrics::get();
  metrics.barriers.add(barriers_);
  metrics.allreduces.add(allreduces_);
  metrics.gathers.add(gathers_);
  metrics.broadcasts.add(broadcasts_);
  metrics.sends.add(sends_);
  metrics.collective_bytes.add(collective_bytes_);
  metrics.sync_stall_seconds.add(sync_stall_seconds_);
  barriers_ = allreduces_ = gathers_ = broadcasts_ = sends_ = 0;
  collective_bytes_ = 0;
  sync_stall_seconds_ = 0.0;
}

void MpiSim::note_collective(const char* name, std::uint64_t& counter,
                             SimSeconds start, SimSeconds end, Bytes bytes) {
  ++counter;
  collective_bytes_ += bytes;
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.span("mpi", name, start, end, obs::kPidStack, /*tid=*/1,
                {{"ranks", std::to_string(size())},
                 {"bytes", std::to_string(bytes)}});
  }
}

unsigned MpiSim::num_nodes() const {
  return (size() + profile_.ranks_per_node - 1) / profile_.ranks_per_node;
}

SimSeconds MpiSim::clock(unsigned rank) const {
  TUNIO_CHECK_MSG(rank < size(), "rank out of range");
  return clocks_[rank];
}

void MpiSim::set_clock(unsigned rank, SimSeconds t) {
  TUNIO_CHECK_MSG(rank < size(), "rank out of range");
  clocks_[rank] = t;
}

void MpiSim::compute(unsigned rank, SimSeconds seconds) {
  TUNIO_CHECK_MSG(rank < size(), "rank out of range");
  TUNIO_CHECK_MSG(seconds >= 0.0, "negative compute time");
  clocks_[rank] += seconds;
}

SimSeconds MpiSim::max_clock() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

SimSeconds MpiSim::min_clock() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

SimSeconds MpiSim::tree_latency() const {
  const double levels = std::ceil(std::log2(std::max(2u, size())));
  return profile_.hop_latency * levels;
}

void MpiSim::barrier() {
  const SimSeconds first = min_clock();
  const SimSeconds leave = max_clock() + tree_latency();
  for (SimSeconds c : clocks_) sync_stall_seconds_ += leave - c;
  std::fill(clocks_.begin(), clocks_.end(), leave);
  note_collective("barrier", barriers_, first, leave, 0);
}

void MpiSim::allreduce(Bytes bytes) {
  const SimSeconds first = min_clock();
  const SimSeconds payload =
      2.0 * static_cast<double>(bytes) / profile_.link_bandwidth;
  const SimSeconds leave = max_clock() + 2.0 * tree_latency() + payload;
  for (SimSeconds c : clocks_) sync_stall_seconds_ += leave - c;
  std::fill(clocks_.begin(), clocks_.end(), leave);
  note_collective("allreduce", allreduces_, first, leave, bytes * size());
}

void MpiSim::gather(unsigned root, Bytes bytes_per_rank) {
  TUNIO_CHECK_MSG(root < size(), "root out of range");
  const SimSeconds first = clocks_[root];
  const SimSeconds payload =
      static_cast<double>(bytes_per_rank) * (size() - 1) /
      profile_.link_bandwidth;
  clocks_[root] = max_clock() + tree_latency() + payload;
  note_collective("gather", gathers_, first, clocks_[root],
                  bytes_per_rank * (size() - 1));
}

void MpiSim::broadcast(unsigned root, Bytes bytes) {
  TUNIO_CHECK_MSG(root < size(), "root out of range");
  const SimSeconds first = clocks_[root];
  const SimSeconds payload =
      static_cast<double>(bytes) / profile_.link_bandwidth;
  const SimSeconds leave = clocks_[root] + tree_latency() + payload;
  for (SimSeconds& c : clocks_) c = std::max(c, leave);
  note_collective("broadcast", broadcasts_, first, leave, bytes);
}

void MpiSim::send(unsigned src, unsigned dst, Bytes bytes) {
  TUNIO_CHECK_MSG(src < size() && dst < size(), "rank out of range");
  const SimSeconds payload =
      static_cast<double>(bytes) / profile_.link_bandwidth;
  const SimSeconds arrival = clocks_[src] + profile_.hop_latency + payload;
  clocks_[dst] = std::max(clocks_[dst], arrival);
  note_collective("send", sends_, clocks_[src], arrival, bytes);
}

void MpiSim::reset() {
  publish_metrics();
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
}

}  // namespace tunio::mpisim
