#include "mpisim/mpisim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tunio::mpisim {

MpiSim::MpiSim(unsigned num_ranks, MpiProfile profile)
    : profile_(profile), clocks_(num_ranks, 0.0) {
  TUNIO_CHECK_MSG(num_ranks > 0, "MPI job needs at least one rank");
}

unsigned MpiSim::num_nodes() const {
  return (size() + profile_.ranks_per_node - 1) / profile_.ranks_per_node;
}

SimSeconds MpiSim::clock(unsigned rank) const {
  TUNIO_CHECK_MSG(rank < size(), "rank out of range");
  return clocks_[rank];
}

void MpiSim::set_clock(unsigned rank, SimSeconds t) {
  TUNIO_CHECK_MSG(rank < size(), "rank out of range");
  clocks_[rank] = t;
}

void MpiSim::compute(unsigned rank, SimSeconds seconds) {
  TUNIO_CHECK_MSG(rank < size(), "rank out of range");
  TUNIO_CHECK_MSG(seconds >= 0.0, "negative compute time");
  clocks_[rank] += seconds;
}

SimSeconds MpiSim::max_clock() const {
  return *std::max_element(clocks_.begin(), clocks_.end());
}

SimSeconds MpiSim::min_clock() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

SimSeconds MpiSim::tree_latency() const {
  const double levels = std::ceil(std::log2(std::max(2u, size())));
  return profile_.hop_latency * levels;
}

void MpiSim::barrier() {
  const SimSeconds leave = max_clock() + tree_latency();
  std::fill(clocks_.begin(), clocks_.end(), leave);
}

void MpiSim::allreduce(Bytes bytes) {
  const SimSeconds payload =
      2.0 * static_cast<double>(bytes) / profile_.link_bandwidth;
  const SimSeconds leave = max_clock() + 2.0 * tree_latency() + payload;
  std::fill(clocks_.begin(), clocks_.end(), leave);
}

void MpiSim::gather(unsigned root, Bytes bytes_per_rank) {
  TUNIO_CHECK_MSG(root < size(), "root out of range");
  const SimSeconds payload =
      static_cast<double>(bytes_per_rank) * (size() - 1) /
      profile_.link_bandwidth;
  clocks_[root] = max_clock() + tree_latency() + payload;
}

void MpiSim::broadcast(unsigned root, Bytes bytes) {
  TUNIO_CHECK_MSG(root < size(), "root out of range");
  const SimSeconds payload =
      static_cast<double>(bytes) / profile_.link_bandwidth;
  const SimSeconds leave = clocks_[root] + tree_latency() + payload;
  for (SimSeconds& c : clocks_) c = std::max(c, leave);
}

void MpiSim::send(unsigned src, unsigned dst, Bytes bytes) {
  TUNIO_CHECK_MSG(src < size() && dst < size(), "rank out of range");
  const SimSeconds payload =
      static_cast<double>(bytes) / profile_.link_bandwidth;
  const SimSeconds arrival = clocks_[src] + profile_.hop_latency + payload;
  clocks_[dst] = std::max(clocks_[dst], arrival);
}

void MpiSim::reset() { std::fill(clocks_.begin(), clocks_.end(), 0.0); }

}  // namespace tunio::mpisim
