// Simulated MPI runtime.
//
// The workloads are SPMD programs over `num_ranks` simulated processes.
// Rather than spawning real processes, each rank owns a simulated clock;
// drivers iterate over ranks to perform each program phase and the
// collectives synchronize/advance those clocks using standard
// log-tree cost models (latency * ceil(log2 P) + bytes / bandwidth).
//
// This captures everything the I/O tuning experiments need from MPI:
// relative rank progress, synchronization stalls at barriers before and
// after I/O phases, and the shuffle cost of two-phase collective I/O.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace tunio::mpisim {

/// Communication cost model for collectives.
struct MpiProfile {
  SimSeconds hop_latency = 2e-6;       ///< per tree level
  Bps link_bandwidth = 10 * GB;        ///< per-rank injection bandwidth
  unsigned ranks_per_node = 32;        ///< Cori Haswell: 32 ranks/node
};

class MpiSim {
 public:
  explicit MpiSim(unsigned num_ranks, MpiProfile profile = {});
  /// Flushes accumulated collective counters into the global metrics
  /// registry (`mpi.*` series).
  ~MpiSim();

  MpiSim(const MpiSim&) = delete;
  MpiSim& operator=(const MpiSim&) = delete;

  unsigned size() const { return static_cast<unsigned>(clocks_.size()); }
  unsigned num_nodes() const;

  SimSeconds clock(unsigned rank) const;
  void set_clock(unsigned rank, SimSeconds t);

  /// Advances one rank's clock by `seconds` of local compute.
  void compute(unsigned rank, SimSeconds seconds);

  /// Maximum clock across ranks (the job's current makespan).
  SimSeconds max_clock() const;
  SimSeconds min_clock() const;

  /// Synchronizes all ranks: everyone leaves at max + tree latency.
  void barrier();

  /// Allreduce of `bytes` payload per rank: barrier + 2x tree traffic.
  void allreduce(Bytes bytes);

  /// Gathers `bytes` from every rank to `root`.
  void gather(unsigned root, Bytes bytes_per_rank);

  /// Broadcast of `bytes` from `root` to everyone.
  void broadcast(unsigned root, Bytes bytes);

  /// Point-to-point send of `bytes` from `src` to `dst`.
  void send(unsigned src, unsigned dst, Bytes bytes);

  /// Resets all clocks to zero.
  void reset();

  const MpiProfile& profile() const { return profile_; }

 private:
  SimSeconds tree_latency() const;

  /// Records one finished collective: counters plus, when tracing is on,
  /// a cat="mpi" span covering [first rank arrived, everyone left).
  void note_collective(const char* name, std::uint64_t& counter,
                       SimSeconds start, SimSeconds end, Bytes bytes);

  /// Publishes counters accumulated since the last publish.
  void publish_metrics();

  MpiProfile profile_;
  std::vector<SimSeconds> clocks_;

  // Accumulated locally and flushed at teardown/reset so the collective
  // hot path stays free of shared atomics.
  std::uint64_t barriers_ = 0;
  std::uint64_t allreduces_ = 0;
  std::uint64_t gathers_ = 0;
  std::uint64_t broadcasts_ = 0;
  std::uint64_t sends_ = 0;
  Bytes collective_bytes_ = 0;
  SimSeconds sync_stall_seconds_ = 0.0;  ///< sum over ranks of wait time
};

}  // namespace tunio::mpisim
