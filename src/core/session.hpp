// Interactive tuning sessions (§VI future work, implemented here):
// "an interactive session feature where a configuration can be refined
// over time across a series of runs."
//
// A session wraps a TunIO instance and an objective and lets the user
// spend their tuning budget in installments: each `step(n)` runs n more
// generations of the genetic pipeline *seeded with the best
// configuration found so far*, so knowledge accumulates across steps —
// and across the TunIO agents, which keep their online learning state
// between installments. Between steps, the user can inspect or export
// the current best configuration, run production jobs with it, and come
// back for more tuning when the queue is idle.
#pragma once

#include <optional>
#include <string>

#include "core/tunio.hpp"
#include "service/service_objective.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/objective.hpp"

namespace tunio::core {

class InteractiveSession {
 public:
  /// `tunio` and `objective` must outlive the session; so must the
  /// binding's engine/cache. An enabled binding evaluates each
  /// installment's generations through the service layer — and because
  /// installments re-present the previous best as their seed individual,
  /// the shared result cache makes those replays free across steps.
  InteractiveSession(TunIO& tunio, tuner::Objective& objective,
                     tuner::GaOptions ga = {},
                     service::EvalBinding binding = {});

  /// Runs up to `generations` more tuning generations (fewer if the RL
  /// stopper fires). Returns the stats of this installment.
  tuner::TuningResult step(unsigned generations);

  /// Best configuration found across all installments (defaults before
  /// the first step).
  const cfg::Configuration& best_configuration() const;
  double best_perf() const { return best_perf_; }
  double initial_perf() const { return initial_perf_; }

  /// Cumulative simulated tuning cost across installments.
  SimSeconds total_seconds() const { return total_seconds_; }
  unsigned total_generations() const { return total_generations_; }
  unsigned steps_taken() const { return steps_; }

  /// The current best configuration as H5Tuner-style XML.
  std::string export_xml() const;

 private:
  TunIO& tunio_;
  tuner::Objective& objective_;
  tuner::GaOptions ga_;
  service::EvalBinding binding_;
  cfg::Configuration best_config_;
  double best_perf_ = 0.0;
  double initial_perf_ = 0.0;
  bool have_initial_ = false;
  SimSeconds total_seconds_ = 0.0;
  unsigned total_generations_ = 0;
  unsigned steps_ = 0;
};

}  // namespace tunio::core
