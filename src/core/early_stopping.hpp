// The Early Stopping component (§III-D).
//
// An RL agent (NN-based Q-learning, 5-iteration reward delay) that
// "gets the iteration and the performance from the tuner as inputs and
// returns whether the tuner should stop or continue". It is trained
// offline on synthetic noisy log curves (see rl::LogCurveEpisode) until
// its average episode reward stagnates — "5% or less increase across
// five iterations" — and keeps learning online from the applications it
// is exposed to.
//
// Reward shaping: each `continue` earns the *change* in the RoTI-like
// stop-return between iterations (potential-based shaping), so total
// episode reward telescopes to the return at the chosen stop point. The
// agent therefore learns to ride the log curve while returns grow and to
// quit once they diminish — including riding out temporary plateaus,
// which is exactly where the 5%/5-iteration heuristic gives up.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "rl/log_curve_env.hpp"
#include "rl/q_agent.hpp"

namespace tunio::core {

struct EarlyStoppingOptions {
  /// Normalization constant for online perf values. The paper normalizes
  /// by 1 / (BW_single × num_nodes): 4 nodes × 10 GB/s injection = the
  /// simulated testbed's achievable peak, so normalized perf lives in
  /// the same [0, ~1] range as the offline training curves.
  double perf_normalizer_mbps = 40'000.0;
  unsigned max_iterations = 50;     ///< tuning-budget horizon
  unsigned min_iterations = 10;     ///< never stop before this many
  /// §VI future work, implemented here: "include the expected number of
  /// production runs as input, to allow TunIO to continue tuning if the
  /// user knows that they expect to run the application long enough for
  /// the extra tuning to be worthwhile." 0 = off (paper behaviour).
  /// Larger values demand a wider Q(stop)-Q(continue) margin before the
  /// agent is allowed to quit.
  std::uint64_t expected_production_runs = 0;
  // Offline training schedule.
  unsigned episodes_per_epoch = 64;
  unsigned max_epochs = 120;
  unsigned min_epochs = 40;            ///< learn before judging stagnation
  double stagnation_threshold = 0.05;  ///< 5% average-reward increase
  unsigned stagnation_window = 5;      ///< across five epochs
  rl::LogCurveParams curve_params;
  std::uint64_t seed = 0xE5'701;
};

class EarlyStopping {
 public:
  explicit EarlyStopping(EarlyStoppingOptions options = {});

  /// Offline pretraining on generated log curves. Returns the per-epoch
  /// average episode rewards (the training log).
  std::vector<double> train_offline();

  /// Table I `stop`: feed the current tuning iteration and the best perf
  /// attained; returns true to stop. Keeps learning online.
  bool stop(unsigned current_iteration, double best_perf_mbps);

  /// Forgets the per-run state (call between tuning runs).
  void reset_episode();

  bool offline_trained() const { return offline_trained_; }
  const rl::QAgent& agent() const { return agent_; }

 private:
  static constexpr std::size_t kStateDim = 5;
  static constexpr std::size_t kContinue = 0;
  static constexpr std::size_t kStop = 1;

  EarlyStoppingOptions options_;
  Rng rng_;
  rl::QAgent agent_;
  bool offline_trained_ = false;

  // Online episode state.
  std::vector<double> best_history_;
  std::vector<double> last_state_;
  double last_return_ = 0.0;
};

}  // namespace tunio::core
