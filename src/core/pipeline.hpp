// Labeled tuning-pipeline variants — the configurations compared in the
// paper's evaluation (HSTuner with/without stopping, with/without the
// I/O kernel, and full TunIO).
#pragma once

#include <string>

#include "core/tunio.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/stoppers.hpp"

namespace tunio::core {

enum class StopPolicy {
  kNone,        ///< run the full budget (HSTuner "No Stop")
  kHeuristic,   ///< 5% / 5-iteration heuristic
  kTunio,       ///< RL Early Stopping
  kMaxPerf,     ///< oracle: stop on reaching a known target perf
};

struct PipelineVariant {
  std::string label;
  bool impact_first = false;   ///< attach Smart Configuration Generation
  StopPolicy stop = StopPolicy::kNone;
  double max_perf_target = 0.0;  ///< for kMaxPerf
};

struct PipelineRun {
  std::string label;
  tuner::TuningResult result;
};

/// Runs one labeled pipeline variant. `tunio` is required (and mutated:
/// its agents learn) for impact-first or kTunio variants; pass nullptr
/// for pure-baseline runs.
PipelineRun run_pipeline(const cfg::ConfigSpace& space,
                         tuner::Objective& objective, TunIO* tunio,
                         const PipelineVariant& variant,
                         tuner::GaOptions ga = {});

}  // namespace tunio::core
