// Labeled tuning-pipeline variants — the configurations compared in the
// paper's evaluation (HSTuner with/without stopping, with/without the
// I/O kernel, and full TunIO).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/tunio.hpp"
#include "service/service_objective.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/stoppers.hpp"

namespace tunio::core {

enum class StopPolicy {
  kNone,        ///< run the full budget (HSTuner "No Stop")
  kHeuristic,   ///< 5% / 5-iteration heuristic
  kTunio,       ///< RL Early Stopping
  kMaxPerf,     ///< oracle: stop on reaching a known target perf
};

struct PipelineVariant {
  PipelineVariant() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): label-only is idiomatic
  PipelineVariant(std::string label_, bool impact_first_ = false,
                  StopPolicy stop_ = StopPolicy::kNone,
                  double max_perf_target_ = 0.0)
      : label(std::move(label_)),
        impact_first(impact_first_),
        stop(stop_),
        max_perf_target(max_perf_target_) {}

  std::string label;
  bool impact_first = false;   ///< attach Smart Configuration Generation
  StopPolicy stop = StopPolicy::kNone;
  double max_perf_target = 0.0;  ///< for kMaxPerf
  /// Search backend (see tuners::backend_names). "ga" is the historical
  /// genetic pipeline and keeps its exact code path; other names are
  /// routed through the tuners registry and driver. Impact-first subset
  /// selection is a GA hook; for the "rule" backend the impact scores
  /// are fed in as sweep priorities instead.
  std::string backend = "ga";
  /// Knowledge inputs forwarded to the "rule" backend (parameter name,
  /// weight) — e.g. `analysis::LintReport::tuning_hints()`.
  std::vector<std::pair<std::string, double>> hints;
};

struct PipelineRun {
  std::string label;
  std::string backend;  ///< backend that produced `result`
  tuner::TuningResult result;
};

/// Runs one labeled pipeline variant. `tunio` is required (and mutated:
/// its agents learn) for impact-first or kTunio variants; pass nullptr
/// for pure-baseline runs. An enabled `binding` routes evaluations
/// through the service layer — generations fan out over the engine's
/// workers and repeat genomes hit the shared result cache — without
/// changing the tuning outcome (results are bit-identical to serial).
PipelineRun run_pipeline(const cfg::ConfigSpace& space,
                         tuner::Objective& objective, TunIO* tunio,
                         const PipelineVariant& variant,
                         tuner::GaOptions ga = {},
                         const service::EvalBinding& binding = {});

}  // namespace tunio::core
