// Labeled tuning-pipeline variants — the configurations compared in the
// paper's evaluation (HSTuner with/without stopping, with/without the
// I/O kernel, and full TunIO).
#pragma once

#include <string>

#include "core/tunio.hpp"
#include "service/service_objective.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/stoppers.hpp"

namespace tunio::core {

enum class StopPolicy {
  kNone,        ///< run the full budget (HSTuner "No Stop")
  kHeuristic,   ///< 5% / 5-iteration heuristic
  kTunio,       ///< RL Early Stopping
  kMaxPerf,     ///< oracle: stop on reaching a known target perf
};

struct PipelineVariant {
  std::string label;
  bool impact_first = false;   ///< attach Smart Configuration Generation
  StopPolicy stop = StopPolicy::kNone;
  double max_perf_target = 0.0;  ///< for kMaxPerf
};

struct PipelineRun {
  std::string label;
  tuner::TuningResult result;
};

/// Runs one labeled pipeline variant. `tunio` is required (and mutated:
/// its agents learn) for impact-first or kTunio variants; pass nullptr
/// for pure-baseline runs. An enabled `binding` routes evaluations
/// through the service layer — generations fan out over the engine's
/// workers and repeat genomes hit the shared result cache — without
/// changing the tuning outcome (results are bit-identical to serial).
PipelineRun run_pipeline(const cfg::ConfigSpace& space,
                         tuner::Objective& objective, TunIO* tunio,
                         const PipelineVariant& variant,
                         tuner::GaOptions ga = {},
                         const service::EvalBinding& binding = {});

}  // namespace tunio::core
