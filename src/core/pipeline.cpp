#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "tuners/registry.hpp"

namespace tunio::core {

namespace {

tuner::Stopper make_stopper(const PipelineVariant& variant, TunIO* tunio) {
  switch (variant.stop) {
    case StopPolicy::kNone:
      return tuner::make_no_stopper();
    case StopPolicy::kHeuristic:
      return tuner::make_heuristic_stopper();
    case StopPolicy::kMaxPerf:
      return tuner::make_max_performance_stopper(variant.max_perf_target);
    case StopPolicy::kTunio:
      tunio->early_stopping().reset_episode();
      return [tunio](unsigned generation,
                     const tuner::TuningResult& progress) {
        return tunio->early_stopping().stop(generation, progress.best_perf);
      };
  }
  throw InvalidArgument("unknown stop policy");
}

}  // namespace

PipelineRun run_pipeline(const cfg::ConfigSpace& space,
                         tuner::Objective& objective, TunIO* tunio,
                         const PipelineVariant& variant,
                         tuner::GaOptions ga,
                         const service::EvalBinding& binding) {
  service::ServiceObjective service_objective(objective, binding);
  tuner::Objective& eval_objective =
      binding.enabled() ? static_cast<tuner::Objective&>(service_objective)
                        : objective;

  const bool needs_tunio =
      variant.impact_first || variant.stop == StopPolicy::kTunio;
  TUNIO_CHECK_MSG(!needs_tunio || tunio != nullptr,
                  "variant '" + variant.label + "' needs a TunIO instance");

  PipelineRun run;
  run.label = variant.label;
  run.backend = variant.backend;

  if (variant.backend == "ga") {
    // The historical pipeline: `GeneticTuner::run` drives itself. Kept
    // as its own code path so existing variants stay bit-identical.
    tuner::GeneticTuner tuner(space, eval_objective, ga);

    if (variant.impact_first) {
      tunio->smart_config().reset_episode();
      tuner.set_subset_provider(
          [tunio, &space](unsigned generation,
                          const tuner::TuningResult& progress) {
            if (generation == 0 || progress.history.empty()) {
              std::vector<std::size_t> all(space.num_parameters());
              for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
              return all;
            }
            const tuner::GenerationStats& last = progress.history.back();
            return tunio->smart_config().subset_picker(last.best_perf,
                                                       last.subset);
          });
    }

    tuner.set_stopper(make_stopper(variant, tunio));
    run.result = tuner.run();
    return run;
  }

  // Alternative backends route through the registry and the shared
  // driver; the stopper plugs into the driver instead of the GA.
  tuners::TunerSpec spec;
  spec.seed = ga.seed;
  spec.batch = ga.population;
  spec.max_iterations = ga.max_generations;
  spec.seed_indices = ga.seed_indices;
  spec.ga = ga;
  spec.hints = variant.hints;
  if (variant.impact_first && tunio != nullptr) {
    spec.impact = tunio->smart_config().impact_scores();
  }
  const std::unique_ptr<tuners::Tuner> backend =
      tuners::make_tuner(variant.backend, space, eval_objective, spec);

  tuners::DriveOptions drive_options;
  drive_options.stopper = make_stopper(variant, tunio);
  run.result = tuners::drive(*backend, eval_objective, drive_options).tuning;
  return run;
}

}  // namespace tunio::core
