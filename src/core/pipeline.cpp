#include "core/pipeline.hpp"

#include "common/error.hpp"

namespace tunio::core {

PipelineRun run_pipeline(const cfg::ConfigSpace& space,
                         tuner::Objective& objective, TunIO* tunio,
                         const PipelineVariant& variant,
                         tuner::GaOptions ga,
                         const service::EvalBinding& binding) {
  service::ServiceObjective service_objective(objective, binding);
  tuner::Objective& eval_objective =
      binding.enabled() ? static_cast<tuner::Objective&>(service_objective)
                        : objective;
  tuner::GeneticTuner tuner(space, eval_objective, ga);

  const bool needs_tunio =
      variant.impact_first || variant.stop == StopPolicy::kTunio;
  TUNIO_CHECK_MSG(!needs_tunio || tunio != nullptr,
                  "variant '" + variant.label + "' needs a TunIO instance");

  if (variant.impact_first) {
    tunio->smart_config().reset_episode();
    tuner.set_subset_provider(
        [tunio, &space](unsigned generation,
                        const tuner::TuningResult& progress) {
          if (generation == 0 || progress.history.empty()) {
            std::vector<std::size_t> all(space.num_parameters());
            for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
            return all;
          }
          const tuner::GenerationStats& last = progress.history.back();
          return tunio->smart_config().subset_picker(last.best_perf,
                                                     last.subset);
        });
  }

  switch (variant.stop) {
    case StopPolicy::kNone:
      tuner.set_stopper(tuner::make_no_stopper());
      break;
    case StopPolicy::kHeuristic:
      tuner.set_stopper(tuner::make_heuristic_stopper());
      break;
    case StopPolicy::kMaxPerf:
      tuner.set_stopper(
          tuner::make_max_performance_stopper(variant.max_perf_target));
      break;
    case StopPolicy::kTunio:
      tunio->early_stopping().reset_episode();
      tuner.set_stopper([tunio](unsigned generation,
                                const tuner::TuningResult& progress) {
        return tunio->early_stopping().stop(generation, progress.best_perf);
      });
      break;
  }

  PipelineRun run;
  run.label = variant.label;
  run.result = tuner.run();
  return run;
}

}  // namespace tunio::core
