#include "core/roti.hpp"

#include "common/units.hpp"

namespace tunio::core {

std::vector<RotiPoint> roti_curve(const tuner::TuningResult& result) {
  std::vector<RotiPoint> curve;
  curve.reserve(result.history.size());
  for (const tuner::GenerationStats& gen : result.history) {
    RotiPoint point;
    point.generation = gen.generation;
    point.minutes = to_minutes(gen.cumulative_seconds);
    point.best_perf = gen.best_perf;
    point.roti = point.minutes > 0.0
                     ? (gen.best_perf - result.initial_perf) / point.minutes
                     : 0.0;
    curve.push_back(point);
  }
  return curve;
}

double final_roti(const tuner::TuningResult& result) {
  const std::vector<RotiPoint> curve = roti_curve(result);
  return curve.empty() ? 0.0 : curve.back().roti;
}

RotiPoint peak_roti(const tuner::TuningResult& result) {
  RotiPoint best;
  for (const RotiPoint& point : roti_curve(result)) {
    if (point.roti > best.roti) best = point;
  }
  return best;
}

}  // namespace tunio::core
