// TunIO: the public API (Table I of the paper).
//
//   | Function      | Input                              | Output             |
//   |---------------|------------------------------------|--------------------|
//   | stop          | current_iteration, best_perf       | stop/continue      |
//   | discover_io   | source_code, options               | I/O kernel         |
//   | subset_picker | perf, current_parameter_set        | next_parameter_set |
//
// "TunIO separates its components and provides an interface so that they
// can be used by other tuning pipelines" (§III-E). The `TunIO` class
// bundles the three components behind exactly that interface and also
// offers `attach`, which wires them into a GeneticTuner the way the
// paper's reference implementation plugs into DEAP/HSTuner.
#pragma once

#include <memory>
#include <string>

#include "analysis/lint.hpp"
#include "core/early_stopping.hpp"
#include "core/smart_config.hpp"
#include "discovery/discovery.hpp"
#include "tuner/genetic_tuner.hpp"

namespace tunio::core {

struct TunioOptions {
  SmartConfigOptions smart_config;
  EarlyStoppingOptions early_stopping;
  discovery::DiscoveryOptions discovery;
};

class TunIO {
 public:
  explicit TunIO(const cfg::ConfigSpace& space, TunioOptions options = {});

  /// Table I `discover_io`: source code + options → I/O kernel.
  discovery::KernelResult discover_io(const std::string& source_code) const;
  discovery::KernelResult discover_io(
      const std::string& source_code,
      const discovery::DiscoveryOptions& options) const;

  /// Table I `subset_picker`: perf + current set → next parameter set.
  std::vector<std::size_t> subset_picker(
      double perf_mbps, const std::vector<std::size_t>& current_set) {
    return smart_config_.subset_picker(perf_mbps, current_set);
  }

  /// Table I `stop`: iteration + best perf → stop/continue (true = stop).
  bool stop(unsigned current_iteration, double best_perf_mbps) {
    return early_stopping_.stop(current_iteration, best_perf_mbps);
  }

  /// Lints `source_code` for I/O anti-patterns. Parses the source
  /// directly (no normalization round-trip), so diagnostic line/column
  /// numbers refer to the original text. Uses the discovery options'
  /// I/O prefixes.
  analysis::LintReport lint_source(const std::string& source_code) const;

  /// Seeds Smart Configuration Generation with a lint report's tuning
  /// hints: parameters implicated by the diagnostics get their impact
  /// boosted, moving them up the subset ranking before any measurement.
  void apply_lint_hints(const analysis::LintReport& report) {
    smart_config_.apply_hints(report.tuning_hints());
  }

  /// Offline training of both RL components. `sweep_kernels` are the
  /// representative I/O kernels (VPIC, FLASH, HACC in the paper).
  void train_offline(const std::vector<tuner::Objective*>& sweep_kernels);

  /// Wires Smart Configuration Generation and Early Stopping into a
  /// genetic tuner (resets per-run agent state first).
  void attach(tuner::GeneticTuner& tuner);

  SmartConfigGen& smart_config() { return smart_config_; }
  EarlyStopping& early_stopping() { return early_stopping_; }
  const cfg::ConfigSpace& space() const { return space_; }

 private:
  const cfg::ConfigSpace& space_;
  TunioOptions options_;
  SmartConfigGen smart_config_;
  EarlyStopping early_stopping_;
};

}  // namespace tunio::core
