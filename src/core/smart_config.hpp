// Smart Configuration Generation (§III-C): impact-first tuning.
//
// An RL agent that "gets the parameter subset and the best perf achieved
// during that iteration, and returns the subset of parameters to use in
// the next tuning iteration". Structure per the paper:
//
//   * a State Observer — an NN-based contextual bandit mapping the raw
//     tuning context (subset membership, normalized perf) to a state
//     observation;
//   * a Subset Picker — an NN-based Q-learning function choosing the next
//     subset from that observation. Actions are impact-ranked prefixes:
//     action k selects the k+1 highest-impact parameters, so picking a
//     subset is picking how deep down the impact ranking to tune.
//
// Reward: norm(perf) / (|subset| / |parameters|), with the paper's
// 5-iteration delay — performance gained per unit of search-space used.
//
// Offline training: "a simple parameter sweep on some representative I/O
// kernels, including VPIC, FLASH, and HACC ... After performing a sweep
// on each I/O kernel, a PCA analysis is performed on the parameters with
// respect to perf" to seed the impact ranking; the agent keeps learning
// from every application it tunes.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "config/space.hpp"
#include "rl/q_agent.hpp"
#include "rl/state_observer.hpp"
#include "tuner/objective.hpp"

namespace tunio::core {

struct SmartConfigOptions {
  double perf_normalizer_mbps = 40'000.0;  ///< BW_single x num_nodes
  std::size_t embedding_dim = 8;
  /// Sweep granularity: at most this many values probed per parameter.
  unsigned sweep_values_per_param = 5;
  std::uint64_t seed = 0x5C9'001;
};

struct SweepSample {
  std::size_t parameter;    ///< which parameter was swept
  std::size_t domain_index; ///< which value it took
  double perf_mbps;
};

class SmartConfigGen {
 public:
  SmartConfigGen(const cfg::ConfigSpace& space,
                 SmartConfigOptions options = {});

  /// Offline training: parameter sweeps on representative kernels plus
  /// PCA; returns the collected sweep samples (one vector per kernel).
  std::vector<std::vector<SweepSample>> train_offline(
      const std::vector<tuner::Objective*>& kernels);

  /// Per-parameter impact scores (sum to 1); valid after train_offline.
  const std::vector<double>& impact_scores() const { return impact_; }

  /// Biases the impact ranking with static-analysis findings: each
  /// (parameter name, weight in (0, 1]) pair — e.g. the linter's
  /// LintReport::tuning_hints() — multiplies that parameter's impact by
  /// (1 + weight). Boosts persist: train_offline re-applies them after
  /// recomputing the measured impact, so a hinted parameter keeps its
  /// head start in the ranking. Unknown parameter names are ignored
  /// (hints may target layers a reduced space does not expose); repeated
  /// calls keep the strongest boost per parameter.
  void apply_hints(const std::vector<std::pair<std::string, double>>& hints);

  /// Hint boosts currently in force (one per parameter, 0 = unhinted).
  const std::vector<double>& hint_boosts() const { return hint_boost_; }

  /// Parameters sorted by descending impact.
  std::vector<std::size_t> ranking() const;

  /// Table I `subset_picker`: given the perf achieved with the current
  /// subset, returns the subset for the next iteration. Learns online.
  std::vector<std::size_t> subset_picker(
      double perf_mbps, const std::vector<std::size_t>& current_subset);

  /// Forgets per-run agent context (call between tuning runs).
  void reset_episode();

  bool offline_trained() const { return offline_trained_; }

 private:
  std::vector<double> context_vector(const std::vector<std::size_t>& subset,
                                     double norm_perf,
                                     double norm_gain) const;
  std::vector<std::size_t> prefix_subset(std::size_t size) const;
  /// Multiplies impact_ by (1 + hint_boost_) and renormalizes.
  void boost_impact();

  const cfg::ConfigSpace& space_;
  SmartConfigOptions options_;
  Rng rng_;
  rl::StateObserver observer_;
  rl::QAgent picker_;
  std::vector<double> impact_;
  std::vector<double> hint_boost_;
  bool offline_trained_ = false;

  // Online episode state.
  std::vector<double> last_state_;
  std::size_t last_action_ = 0;
  double last_norm_perf_ = 0.0;
  bool has_last_ = false;
};

}  // namespace tunio::core
