// Return on Tuning Investment (RoTI), the paper's cost-benefit metric:
//
//   RoTI(t) = (perf_achieved(t) − perf_achieved(0)) / t
//
// where perf_achieved(t) is the maximum perf (MB/s) reached by time t in
// the tuning pipeline, perf_achieved(0) the default configuration's
// perf, and t the tuning overhead in minutes. "An RoTI of 40 MB/s per
// minute spent tuning would represent an increase in bandwidth of
// 40 MB/s for each minute of tuning overhead." (§IV)
#pragma once

#include <vector>

#include "tuner/genetic_tuner.hpp"

namespace tunio::core {

struct RotiPoint {
  unsigned generation = 0;
  double minutes = 0.0;     ///< cumulative tuning overhead
  double best_perf = 0.0;   ///< perf_achieved(t), MB/s
  double roti = 0.0;        ///< MB/s per minute
};

/// RoTI after each completed generation of a tuning run.
std::vector<RotiPoint> roti_curve(const tuner::TuningResult& result);

/// RoTI at the end of the run.
double final_roti(const tuner::TuningResult& result);

/// Peak RoTI over the run and the minutes at which it occurs.
RotiPoint peak_roti(const tuner::TuningResult& result);

}  // namespace tunio::core
