#include "core/smart_config.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "nn/pca.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tunio::core {

SmartConfigGen::SmartConfigGen(const cfg::ConfigSpace& space,
                               SmartConfigOptions options)
    : space_(space),
      options_(options),
      rng_(options.seed),
      observer_(space.num_parameters() + 2, options.embedding_dim,
                rng_.fork()),
      picker_(options.embedding_dim, space.num_parameters(), rng_.fork(),
              [] {
                rl::QAgentOptions q;
                q.hidden = 24;
                q.gamma = 0.9;
                q.epsilon = 0.30;
                q.epsilon_min = 0.15;  // keep probing other subset sizes
                q.reward_delay = 5;  // the paper's 5-iteration delay
                return q;
              }()),
      impact_(space.num_parameters(),
              1.0 / static_cast<double>(space.num_parameters())),
      hint_boost_(space.num_parameters(), 0.0) {}

void SmartConfigGen::apply_hints(
    const std::vector<std::pair<std::string, double>>& hints) {
  for (const auto& [name, weight] : hints) {
    if (!space_.has(name)) continue;
    const std::size_t idx = space_.index_of(name);
    hint_boost_[idx] =
        std::max(hint_boost_[idx], std::clamp(weight, 0.0, 1.0));
  }
  boost_impact();
}

void SmartConfigGen::boost_impact() {
  double total = 0.0;
  for (std::size_t i = 0; i < impact_.size(); ++i) {
    impact_[i] *= 1.0 + hint_boost_[i];
    total += impact_[i];
  }
  if (total > 0.0) {
    for (double& x : impact_) x /= total;
  }
}

std::vector<double> SmartConfigGen::context_vector(
    const std::vector<std::size_t>& subset, double norm_perf,
    double norm_gain) const {
  std::vector<double> context(space_.num_parameters() + 2, 0.0);
  for (std::size_t p : subset) {
    TUNIO_CHECK_MSG(p < space_.num_parameters(), "subset index out of range");
    context[p] = 1.0;
  }
  context[space_.num_parameters()] = norm_perf;
  context[space_.num_parameters() + 1] = norm_gain;
  return context;
}

std::vector<std::size_t> SmartConfigGen::ranking() const {
  std::vector<std::size_t> order(space_.num_parameters());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return impact_[a] > impact_[b];
  });
  return order;
}

std::vector<std::size_t> SmartConfigGen::prefix_subset(
    std::size_t size) const {
  const std::vector<std::size_t> order = ranking();
  std::vector<std::size_t> subset(
      order.begin(),
      order.begin() + std::min(size, order.size()));
  return subset;
}

std::vector<std::vector<SweepSample>> SmartConfigGen::train_offline(
    const std::vector<tuner::Objective*>& kernels) {
  TUNIO_CHECK_MSG(!kernels.empty(), "offline training needs kernels");
  std::vector<std::vector<SweepSample>> all_samples;
  const std::size_t dim = space_.num_parameters();

  // Accumulated per-parameter relative perf ranges across kernels.
  std::vector<double> range_impact(dim, 0.0);
  // PCA dataset: rows = (normalized parameter positions..., norm perf).
  std::vector<std::vector<double>> pca_rows;

  for (tuner::Objective* kernel : kernels) {
    TUNIO_CHECK(kernel != nullptr);
    std::vector<SweepSample> samples;
    const cfg::Configuration defaults = space_.default_configuration();
    const double base_perf = kernel->evaluate(defaults).perf_mbps;

    for (std::size_t p = 0; p < dim; ++p) {
      const auto& domain = space_.parameter(p).domain;
      // Probe at most sweep_values_per_param values, spread evenly.
      const unsigned probes = std::min<unsigned>(
          options_.sweep_values_per_param,
          static_cast<unsigned>(domain.size()));
      double lo = base_perf, hi = base_perf;
      for (unsigned k = 0; k < probes; ++k) {
        const std::size_t index =
            probes == 1 ? 0 : k * (domain.size() - 1) / (probes - 1);
        cfg::Configuration probe = defaults;
        probe.set_index(p, index);
        const double perf = kernel->evaluate(probe).perf_mbps;
        samples.push_back({p, index, perf});
        lo = std::min(lo, perf);
        hi = std::max(hi, perf);

        std::vector<double> row(dim + 1, 0.0);
        for (std::size_t j = 0; j < dim; ++j) {
          const auto& dj = space_.parameter(j).domain;
          const std::size_t idx = j == p ? index
                                         : space_.parameter(j).default_index;
          row[j] = dj.size() > 1
                       ? static_cast<double>(idx) /
                             static_cast<double>(dj.size() - 1)
                       : 0.0;
        }
        const double norm_perf = perf / options_.perf_normalizer_mbps;
        row[dim] = norm_perf;
        pca_rows.push_back(std::move(row));

        // The observer learns perf prediction from every probe.
        observer_.update(context_vector({p}, norm_perf, 0.0), norm_perf);
      }
      if (base_perf > 0.0) {
        range_impact[p] += (hi - lo) / base_perf;
      }
    }
    all_samples.push_back(std::move(samples));
  }

  // "A PCA analysis is performed on the parameters with respect to perf":
  // impact of parameter i = Σ_k λ_k |w_k,i| |w_k,perf| — the strength of
  // i's co-variation with the objective across dominant components.
  const nn::PcaResult pca = nn::pca_fit(pca_rows);
  std::vector<double> pca_impact(dim, 0.0);
  for (std::size_t k = 0; k < pca.components.size(); ++k) {
    const double perf_loading = std::abs(pca.components[k][dim]);
    for (std::size_t i = 0; i < dim; ++i) {
      pca_impact[i] +=
          pca.eigenvalues[k] * std::abs(pca.components[k][i]) * perf_loading;
    }
  }

  auto normalize = [](std::vector<double>& v) {
    const double total = std::accumulate(v.begin(), v.end(), 0.0);
    if (total > 0.0) {
      for (double& x : v) x /= total;
    }
  };
  normalize(range_impact);
  normalize(pca_impact);
  for (std::size_t i = 0; i < dim; ++i) {
    impact_[i] = 0.5 * range_impact[i] + 0.5 * pca_impact[i];
  }
  normalize(impact_);
  // Static-analysis hints survive retraining: the measured impact is
  // re-biased so hinted parameters keep their head start in the ranking
  // (and in the Q-value seeding below, which follows the ranking).
  boost_impact();

  // Seed the picker's Q-values from the sweeps: the value of prefix size
  // k+1 is the impact mass it covers, discounted sub-linearly by subset
  // size — strong enough to start with small high-impact subsets, weak
  // enough for online rewards to overturn once a subset stops paying.
  const std::vector<std::size_t> order = ranking();
  for (unsigned pass = 0; pass < 30; ++pass) {
    for (std::size_t k = 0; k < dim; ++k) {
      double covered = 0.0;
      for (std::size_t j = 0; j <= k; ++j) covered += impact_[order[j]];
      const double size_fraction =
          static_cast<double>(k + 1) / static_cast<double>(dim);
      const double value = 0.5 * covered / std::sqrt(size_fraction);
      const std::vector<double> state = observer_.observe(
          context_vector(prefix_subset(k + 1), 0.5, 0.1));
      picker_.observe(state, k, value, state, true);
    }
    picker_.learn(2);
  }
  offline_trained_ = true;
  return all_samples;
}

std::vector<std::size_t> SmartConfigGen::subset_picker(
    double perf_mbps, const std::vector<std::size_t>& current_subset) {
  const double norm_perf = perf_mbps / options_.perf_normalizer_mbps;
  const double gain =
      has_last_ && last_norm_perf_ > 0.0
          ? std::clamp((norm_perf - last_norm_perf_) / last_norm_perf_, -1.0,
                       1.0)
          : 0.0;
  const std::vector<double> context =
      context_vector(current_subset, norm_perf, gain);
  observer_.update(context, norm_perf);
  const std::vector<double> state = observer_.observe(context);

  // Credit the previous pick. The paper's reward is norm(perf) scaled by
  // the inverse subset size (performance per unit of search space, with
  // the agent's built-in 5-iteration delay); a gain term teaches the
  // agent that a stagnating subset has stopped paying.
  if (has_last_) {
    const double size_fraction =
        current_subset.empty()
            ? 1.0
            : static_cast<double>(current_subset.size()) /
                  static_cast<double>(space_.num_parameters());
    // Stagnation drains a subset's value; fresh gains boost it.
    const double stagnation = gain <= 1e-6 ? 0.3 : 1.0;
    const double reward =
        stagnation * (0.6 * norm_perf + 0.4 * std::max(0.0, gain * 8.0)) /
        std::sqrt(size_fraction) / static_cast<double>(space_.num_parameters());
    picker_.observe(last_state_, last_action_, reward, state, false);
    picker_.learn(1);
  }
  last_norm_perf_ = norm_perf;

  const std::size_t action = picker_.select(state);
  last_state_ = state;
  last_action_ = action;
  has_last_ = true;

  static obs::Counter* picks =
      &obs::MetricsRegistry::global().counter("rl.subset_picker.decisions");
  picks->add(1);
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // Picker decisions live between generations; stamp them with the
    // tuner's ambient budget time (see GeneticTuner::run).
    tracer.instant("rl", "subset_pick", obs::Tracer::ambient_seconds(),
                   obs::kPidRl, /*tid=*/1,
                   {{"subset_size", std::to_string(action + 1)},
                    {"perf_mbps", obs::json_number(perf_mbps)},
                    {"gain", obs::json_number(gain)}});
  }
  return prefix_subset(action + 1);
}

void SmartConfigGen::reset_episode() {
  has_last_ = false;
  last_state_.clear();
  last_action_ = 0;
  last_norm_perf_ = 0.0;
}

}  // namespace tunio::core
