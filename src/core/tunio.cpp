#include "core/tunio.hpp"

namespace tunio::core {

TunIO::TunIO(const cfg::ConfigSpace& space, TunioOptions options)
    : space_(space),
      options_(options),
      smart_config_(space, options.smart_config),
      early_stopping_(options.early_stopping) {}

discovery::KernelResult TunIO::discover_io(
    const std::string& source_code) const {
  return discovery::discover_io(source_code, options_.discovery);
}

discovery::KernelResult TunIO::discover_io(
    const std::string& source_code,
    const discovery::DiscoveryOptions& options) const {
  return discovery::discover_io(source_code, options);
}

analysis::LintReport TunIO::lint_source(
    const std::string& source_code) const {
  analysis::LintOptions lint_options;
  lint_options.io_prefixes = options_.discovery.io_prefixes;
  return analysis::lint_source(source_code, lint_options);
}

void TunIO::train_offline(
    const std::vector<tuner::Objective*>& sweep_kernels) {
  smart_config_.train_offline(sweep_kernels);
  early_stopping_.train_offline();
}

void TunIO::attach(tuner::GeneticTuner& tuner) {
  smart_config_.reset_episode();
  early_stopping_.reset_episode();
  tuner.set_subset_provider(
      [this](unsigned generation, const tuner::TuningResult& progress) {
        // First generation: no feedback yet — tune everything once so the
        // default/random population is scored on the full space.
        if (generation == 0 || progress.history.empty()) {
          std::vector<std::size_t> all(space_.num_parameters());
          for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
          return all;
        }
        const tuner::GenerationStats& last = progress.history.back();
        return smart_config_.subset_picker(last.best_perf, last.subset);
      });
  tuner.set_stopper(
      [this](unsigned generation, const tuner::TuningResult& progress) {
        return early_stopping_.stop(generation, progress.best_perf);
      });
}

}  // namespace tunio::core
