#include "core/session.hpp"

#include "common/error.hpp"
#include "config/xml.hpp"

namespace tunio::core {

InteractiveSession::InteractiveSession(TunIO& tunio,
                                       tuner::Objective& objective,
                                       tuner::GaOptions ga,
                                       service::EvalBinding binding)
    : tunio_(tunio),
      objective_(objective),
      ga_(ga),
      binding_(binding),
      best_config_(tunio.space().default_configuration()) {}

tuner::TuningResult InteractiveSession::step(unsigned generations) {
  TUNIO_CHECK_MSG(generations > 0, "step needs at least one generation");
  tuner::GaOptions ga = ga_;
  ga.max_generations = generations;
  // Resume from the best configuration found so far; decorrelate the
  // random stream across installments.
  ga.seed = ga_.seed + 0x9E37'79B9u * (steps_ + 1);
  if (steps_ > 0) {
    ga.seed_indices = best_config_.indices();
  }
  service::ServiceObjective service_objective(objective_, binding_);
  tuner::Objective& eval_objective =
      binding_.enabled() ? static_cast<tuner::Objective&>(service_objective)
                         : objective_;
  tuner::GeneticTuner tuner(tunio_.space(), eval_objective, ga);
  tunio_.attach(tuner);

  const tuner::TuningResult result = tuner.run();
  if (!have_initial_) {
    initial_perf_ = result.initial_perf;
    have_initial_ = true;
  }
  if (result.best_config.has_value() && result.best_perf > best_perf_) {
    best_perf_ = result.best_perf;
    best_config_ = *result.best_config;
  }
  total_seconds_ += result.total_seconds;
  total_generations_ += result.generations_run;
  ++steps_;
  return result;
}

const cfg::Configuration& InteractiveSession::best_configuration() const {
  return best_config_;
}

std::string InteractiveSession::export_xml() const {
  return cfg::to_xml(best_config_);
}

}  // namespace tunio::core
