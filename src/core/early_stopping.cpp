#include "core/early_stopping.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tunio::core {

EarlyStopping::EarlyStopping(EarlyStoppingOptions options)
    : options_(options),
      rng_(options.seed),
      agent_(kStateDim, 2, rng_.fork(), [] {
        rl::QAgentOptions q;
        q.hidden = 24;
        q.gamma = 0.95;
        q.epsilon = 0.50;
        q.epsilon_decay = 0.9995;  // keep exploring across offline epochs
        q.reward_delay = 5;  // the paper's 5-iteration delay
        return q;
      }()) {
  options_.curve_params.max_iterations = options_.max_iterations;
}

std::vector<double> EarlyStopping::train_offline() {
  std::vector<double> epoch_rewards;
  for (unsigned epoch = 0; epoch < options_.max_epochs; ++epoch) {
    double reward_sum = 0.0;
    for (unsigned episode = 0; episode < options_.episodes_per_epoch;
         ++episode) {
      rl::LogCurveEpisode curve(options_.curve_params, rng_);
      std::vector<double> best_history;
      double prev_return = 0.0;
      double episode_reward = 0.0;
      for (unsigned t = 0; t < curve.max_iterations(); ++t) {
        best_history.push_back(curve.best_perf_at(t));
        const std::vector<double> state = rl::early_stop_state(
            t, curve.max_iterations(), best_history);
        std::size_t action = agent_.select(state);
        if (t + 1 < options_.min_iterations) action = kContinue;
        const double now_return = curve.stop_return(t);
        // Potential-shaped reward: continuing earns the change in the
        // achievable return; stopping banks it (terminal).
        const double reward = now_return - prev_return;
        prev_return = now_return;
        episode_reward += reward;
        const bool terminal =
            action == kStop || t + 1 == curve.max_iterations();
        std::vector<double> next_state = state;
        if (!terminal) {
          std::vector<double> next_history = best_history;
          next_history.push_back(curve.best_perf_at(t + 1));
          next_state = rl::early_stop_state(t + 1, curve.max_iterations(),
                                            next_history);
        }
        agent_.observe(state, action, reward, next_state, terminal);
        if (terminal) break;
      }
      agent_.learn(4);
      reward_sum += episode_reward;
    }
    epoch_rewards.push_back(reward_sum / options_.episodes_per_epoch);

    // Stagnation check: "5% or less increase across five iterations".
    if (epoch + 1 >= options_.min_epochs &&
        epoch_rewards.size() > options_.stagnation_window) {
      const double now = epoch_rewards.back();
      const double then =
          epoch_rewards[epoch_rewards.size() - 1 - options_.stagnation_window];
      if (then > 0.0 && (now - then) / then <= options_.stagnation_threshold) {
        break;
      }
    }
  }
  offline_trained_ = true;
  agent_.set_epsilon(0.02);  // evaluation mode online, tiny exploration
  return epoch_rewards;
}

void EarlyStopping::reset_episode() {
  best_history_.clear();
  last_state_.clear();
  last_return_ = 0.0;
}

bool EarlyStopping::stop(unsigned current_iteration, double best_perf_mbps) {
  // A NaN/inf observation (a failed or degenerate evaluation upstream)
  // would poison the Q-network weights through the shaped reward;
  // treat it as zero bandwidth instead — the worst legal observation.
  if (!std::isfinite(best_perf_mbps)) best_perf_mbps = 0.0;
  const double norm = best_perf_mbps / options_.perf_normalizer_mbps;
  if (best_history_.empty()) {
    // First observation of this run.
    best_history_.push_back(norm);
  } else {
    best_history_.push_back(std::max(norm, best_history_.back()));
  }
  const std::vector<double> state = rl::early_stop_state(
      current_iteration, options_.max_iterations, best_history_);

  // Online learning: credit the previous decision with the shaped reward.
  const double now_return =
      (best_history_.back() - best_history_.front()) *
      static_cast<double>(options_.max_iterations) /
      static_cast<double>(current_iteration + 1);
  if (!last_state_.empty()) {
    agent_.observe(last_state_, kContinue, now_return - last_return_, state,
                   false);
    agent_.learn(1);
  }
  last_return_ = now_return;
  last_state_ = state;

  bool should_stop;
  if (current_iteration + 1 < options_.min_iterations) {
    should_stop = false;
  } else if (options_.expected_production_runs == 0) {
    should_stop = agent_.best_action(state) == kStop;
  } else {
    // Production-run-aware stopping: a user who will run the tuned
    // application many times can afford extra tuning, so quitting
    // requires the stop action to dominate by a margin that grows with
    // the expected run count.
    const std::vector<double> q = agent_.q_values(state);
    const double margin =
        0.003 * std::log2(1.0 + static_cast<double>(
                                    options_.expected_production_runs) /
                                    100.0);
    should_stop = q[kStop] > q[kContinue] + margin;
  }
  if (should_stop) {
    agent_.observe(state, kStop, 0.0, state, true);
    agent_.learn(1);
  }

  static obs::Counter* decisions =
      &obs::MetricsRegistry::global().counter("rl.early_stop.decisions");
  static obs::Counter* stops =
      &obs::MetricsRegistry::global().counter("rl.early_stop.stops");
  decisions->add(1);
  if (should_stop) stops->add(1);
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // The agent runs between generations with no clock of its own; the
    // ambient timestamp is the tuner's budget clock at the call site.
    const std::vector<double> q = agent_.q_values(state);
    tracer.instant("rl", should_stop ? "early_stop.stop" : "early_stop.continue",
                   obs::Tracer::ambient_seconds(), obs::kPidRl, /*tid=*/0,
                   {{"iteration", std::to_string(current_iteration)},
                    {"best_mbps", obs::json_number(best_perf_mbps)},
                    {"q_continue", obs::json_number(q[kContinue])},
                    {"q_stop", obs::json_number(q[kStop])}});
  }
  return should_stop;
}

}  // namespace tunio::core
