#include "service/service_objective.hpp"

namespace tunio::service {

ServiceObjective::ServiceObjective(tuner::Objective& inner,
                                   EvalBinding binding)
    : inner_(inner), binding_(binding) {}

tuner::Evaluation ServiceObjective::evaluate(const cfg::Configuration& config) {
  if (binding_.cache != nullptr) {
    if (auto hit = binding_.cache->get(binding_.fingerprint, config.indices())) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      hit->eval_seconds = 0.0;  // billed like a fitness-cache hit
      return *hit;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  const tuner::Evaluation eval = inner_.evaluate(config);
  if (binding_.cache != nullptr) {
    binding_.cache->put(binding_.fingerprint, config.indices(), eval);
  }
  return eval;
}

std::vector<tuner::Evaluation> ServiceObjective::evaluate_batch(
    const std::vector<cfg::Configuration>& configs) {
  BatchScope batch_scope(configs.size());
  std::vector<tuner::Evaluation> results(configs.size());

  // Satisfy what the shared cache already knows.
  std::vector<cfg::Configuration> misses;
  std::vector<std::size_t> miss_slot;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (binding_.cache != nullptr) {
      if (auto hit =
              binding_.cache->get(binding_.fingerprint, configs[i].indices())) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        hit->eval_seconds = 0.0;  // billed like a fitness-cache hit
        results[i] = *hit;
        continue;
      }
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    misses.push_back(configs[i]);
    miss_slot.push_back(i);
  }

  // Fan the fresh work out over the engine (or run it serially).
  const std::vector<tuner::Evaluation> fresh =
      binding_.engine != nullptr ? binding_.engine->evaluate_batch(inner_, misses)
                                 : inner_.evaluate_batch(misses);
  for (std::size_t m = 0; m < misses.size(); ++m) {
    if (binding_.cache != nullptr) {
      binding_.cache->put(binding_.fingerprint, misses[m].indices(), fresh[m]);
    }
    results[miss_slot[m]] = fresh[m];
  }
  return results;
}

}  // namespace tunio::service
