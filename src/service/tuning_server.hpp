// The tuning server: named tuning jobs over a shared evaluation engine
// and result cache.
//
// A server owns one `EvalEngine` and one `ResultCache` and runs up to
// `max_concurrent_jobs` genetic-tuning jobs at a time over them (queued
// jobs start as slots free up). Clients `submit` a job — workload
// objective, budget, GA options — then poll `progress`, `cancel`, or
// block in `wait`. Cancellation is cooperative and takes effect at the
// next generation boundary, so a cancelled job still carries a valid
// partial `TuningResult`; resubmitting with
// `GaOptions::seed_indices = progress.best_indices` resumes the session
// from where it stopped (the shared cache makes the replayed elite
// evaluations free).
//
// Determinism: a job's `TuningResult` depends only on its spec (GA seed,
// objective seed, budget) — never on worker count, queue order, or what
// other jobs run concurrently — provided its cache fingerprint is not
// shared with a job evaluating the same genomes (shared hits bill zero
// seconds, which is the point of sharing, but changes that job's budget
// accounting relative to running alone).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "config/space.hpp"
#include "service/eval_engine.hpp"
#include "service/result_cache.hpp"
#include "tuner/genetic_tuner.hpp"

namespace tunio::service {

using JobId = std::uint64_t;

enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };

std::string job_state_name(JobState state);

struct JobSpec {
  std::string name;
  /// The real evaluator. Must outlive the job (shared ownership); should
  /// be `concurrent_safe` for the engine to help.
  std::shared_ptr<tuner::Objective> objective;
  /// Cache namespace (workload + testbed identity). 0 derives one from
  /// `name`, which keeps distinct-named jobs from cross-hitting.
  std::uint64_t fingerprint = 0;
  /// Search backend (see tuners::backend_names). "ga" runs the
  /// historical genetic pipeline; other names route through the tuners
  /// registry and driver. Progress beacons, cancellation, caching and
  /// budget accounting work identically for every backend.
  std::string backend = "ga";
  tuner::GaOptions ga;
  /// Knowledge inputs for the "rule" backend (parameter name, weight)
  /// and impact scores — ignored by the other backends.
  std::vector<std::pair<std::string, double>> hints;
  std::vector<double> impact;
  /// Optional extra stop policy, consulted after every generation.
  tuner::Stopper stopper;
};

/// Snapshot of a job, refreshed at every generation boundary.
struct JobProgress {
  JobId id = 0;
  std::string name;
  std::string backend;  ///< search backend the job runs ("ga", "bo", ...)
  JobState state = JobState::kQueued;
  unsigned generations_done = 0;
  double best_perf = 0.0;
  double initial_perf = 0.0;
  double seconds_spent = 0.0;  ///< simulated budget, not wall-clock
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Best genome so far — the resume seed for a follow-up job.
  std::optional<std::vector<std::size_t>> best_indices;
  std::string error;  ///< set when state == kFailed
};

struct ServerOptions {
  unsigned max_concurrent_jobs = 2;
  EngineOptions engine;
  CacheOptions cache;
};

class TuningServer {
 public:
  explicit TuningServer(const cfg::ConfigSpace& space,
                        ServerOptions options = {});
  /// Cancels queued jobs, lets running generations finish, joins.
  ~TuningServer();

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  JobId submit(JobSpec spec);

  /// Requests cancellation. Queued jobs cancel immediately; running jobs
  /// stop at the next generation boundary. Returns false for unknown or
  /// already-terminal jobs.
  bool cancel(JobId id);

  JobProgress progress(JobId id) const;

  /// Blocks until the job reaches a terminal state. Returns the (full or
  /// partial) result for done/cancelled jobs; throws `Error` for failed
  /// ones.
  tuner::TuningResult wait(JobId id);
  void wait_all();

  struct ServiceStats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_cancelled = 0;
    std::uint64_t jobs_failed = 0;
    std::uint64_t engine_evaluations = 0;  ///< tasks run on the pool
    unsigned workers = 0;
    ResultCache::Stats cache;
  };
  ServiceStats stats() const;

  ResultCache& cache() { return cache_; }
  EvalEngine& engine() { return engine_; }
  const cfg::ConfigSpace& space() const { return space_; }

 private:
  struct Job {
    JobId id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::atomic<bool> cancel_requested{false};
    JobProgress snapshot;
    std::optional<tuner::TuningResult> result;
  };

  void scheduler_loop();
  void run_job(Job& job);
  Job& job_ref(JobId id);
  const Job& job_ref(JobId id) const;

  const cfg::ConfigSpace& space_;
  ServerOptions options_;
  EvalEngine engine_;
  ResultCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable job_ready_;   ///< queue -> schedulers
  std::condition_variable job_update_;  ///< progress/terminal -> waiters
  std::map<JobId, std::unique_ptr<Job>> jobs_;
  std::deque<JobId> pending_;
  JobId next_id_ = 1;
  bool stopping_ = false;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_cancelled_ = 0;
  std::uint64_t jobs_failed_ = 0;

  std::vector<std::thread> schedulers_;
};

}  // namespace tunio::service
