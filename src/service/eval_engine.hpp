// The parallel evaluation engine: a fixed-size worker pool that scores a
// batch of configurations concurrently.
//
// Serial evaluation is the scalability ceiling of the genetic pipeline —
// every generation is an embarrassingly parallel batch of independent
// testbed runs, yet `GeneticTuner` historically walked them one by one.
// The engine lifts that: each worker provisions its own simulated
// testbed (objectives create a fresh MpiSim/PfsSimulator per run) and
// every evaluation draws noise from a per-genome RNG stream
// (`derive_stream(seed, hash_indices(genome))`), so a batch's results
// are bit-identical regardless of worker count, scheduling, or
// completion order. Only *wall-clock* time shrinks; the simulated
// budget billed to a tuning run is unchanged.
//
// One engine is shared by all tuning jobs of a service: batches from
// concurrent jobs interleave over the same workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "tuner/objective.hpp"

namespace tunio::service {

struct EngineOptions {
  /// Worker threads. 0 = one per hardware thread (at least one).
  unsigned workers = 0;
};

class EvalEngine {
 public:
  explicit EvalEngine(EngineOptions options = {});
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Evaluates `configs` over the pool; `results[i]` corresponds to
  /// `configs[i]`. Bit-identical to the serial path (see file comment).
  /// Objectives that are not `concurrent_safe` fall back to their own
  /// (serial) `evaluate_batch`. Safe to call from several threads at
  /// once; the calling thread blocks until its batch completes.
  std::vector<tuner::Evaluation> evaluate_batch(
      tuner::Objective& objective,
      const std::vector<cfg::Configuration>& configs);

  /// Completed single evaluations (across all batches).
  std::uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }
  /// Completed batches.
  std::uint64_t batches_completed() const {
    return batches_completed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  void post(std::function<void()> task);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> tasks_completed_{0};
  std::atomic<std::uint64_t> batches_completed_{0};
};

}  // namespace tunio::service
