// Shared result cache: memoizes configuration evaluations across tuning
// sessions and clients.
//
// A tuning service sees heavy repeat traffic — elitism re-presents the
// best genomes every generation, interactive sessions resume from a
// previous best, and different clients tune the same workload — and the
// built-in objectives are deterministic per (testbed seed, genome), so
// a remembered result is exactly the result a re-run would produce.
// The cache is keyed by `(workload fingerprint, genome)`: the
// fingerprint namespaces entries per workload/testbed combination so
// unrelated jobs can share one cache without collisions.
//
// Sharded for concurrency (each shard has its own lock and LRU list),
// with hit/miss/eviction counters and optional JSON persistence. Only
// `perf_mbps` and `eval_seconds` survive a save/load round trip; the
// full per-run metering detail is in-memory only.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tuner/objective.hpp"

namespace tunio::service {

struct CacheOptions {
  /// Total entry budget, split evenly across shards (LRU within each).
  std::size_t capacity = 4096;
  unsigned shards = 8;
};

class ResultCache {
 public:
  explicit ResultCache(CacheOptions options = {});

  /// Looks up an evaluation; counts a hit or a miss.
  std::optional<tuner::Evaluation> get(std::uint64_t fingerprint,
                                       const std::vector<std::size_t>& genome);

  /// Remembers an evaluation (refreshes LRU position on re-insert).
  void put(std::uint64_t fingerprint, const std::vector<std::size_t>& genome,
           const tuner::Evaluation& eval);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    /// Simulated seconds the hits would have cost to re-run.
    double seconds_saved = 0.0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Stats stats() const;

  std::size_t size() const;
  void clear();

  /// Serializes every entry to a JSON document.
  std::string to_json() const;
  /// Merges entries from a `to_json` document; returns how many loaded.
  /// Throws `Error` on malformed input.
  std::size_t load_json(const std::string& json);
  /// File convenience wrappers; return false on I/O failure.
  bool save_file(const std::string& path) const;
  bool load_file(const std::string& path);

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    std::vector<std::size_t> genome;
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<Key, tuner::Evaluation>> lru;
    std::unordered_map<Key, decltype(lru)::iterator, KeyHash> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    double seconds_saved = 0.0;
  };

  Shard& shard_for(const Key& key);
  const Shard& shard_for(const Key& key) const;

  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tunio::service
