#include "service/tuning_server.hpp"

#include <exception>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "service/service_objective.hpp"
#include "tuners/registry.hpp"

namespace tunio::service {

namespace {

/// Cached registry handles (see PfsMetrics for the pattern rationale).
struct ServerMetrics {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& cancelled;
  obs::Counter& failed;
  obs::Gauge& running;

  static ServerMetrics& get() {
    static ServerMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
      return new ServerMetrics{
          registry.counter("service.server.jobs_submitted"),
          registry.counter("service.server.jobs_completed"),
          registry.counter("service.server.jobs_cancelled"),
          registry.counter("service.server.jobs_failed"),
          registry.gauge("service.server.jobs_running"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

std::string job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

TuningServer::TuningServer(const cfg::ConfigSpace& space, ServerOptions options)
    : space_(space),
      options_(options),
      engine_(options.engine),
      cache_(options.cache) {
  TUNIO_CHECK_MSG(options_.max_concurrent_jobs > 0,
                  "server needs at least one job slot");
  schedulers_.reserve(options_.max_concurrent_jobs);
  for (unsigned i = 0; i < options_.max_concurrent_jobs; ++i) {
    schedulers_.emplace_back([this] { scheduler_loop(); });
  }
}

TuningServer::~TuningServer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Queued jobs will never run; running jobs get a cancel request and
    // finish their current generation.
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
        job->snapshot.state = JobState::kCancelled;
        ++jobs_cancelled_;
      }
      job->cancel_requested.store(true, std::memory_order_relaxed);
    }
    pending_.clear();
  }
  job_ready_.notify_all();
  job_update_.notify_all();
  for (std::thread& t : schedulers_) t.join();
}

JobId TuningServer::submit(JobSpec spec) {
  TUNIO_CHECK_MSG(spec.objective != nullptr, "job needs an objective");
  TUNIO_CHECK_MSG(tuners::is_backend(spec.backend),
                  "unknown tuner backend '" + spec.backend + "'");
  if (spec.fingerprint == 0) {
    std::vector<std::size_t> chars(spec.name.begin(), spec.name.end());
    spec.fingerprint = derive_stream(0x5E21'1CE0, hash_indices(chars));
  }
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TUNIO_CHECK_MSG(!stopping_, "server is shutting down");
    id = next_id_++;
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = std::move(spec);
    job->snapshot.id = id;
    job->snapshot.name = job->spec.name;
    job->snapshot.backend = job->spec.backend;
    jobs_.emplace(id, std::move(job));
    pending_.push_back(id);
  }
  ServerMetrics::get().submitted.add(1);
  job_ready_.notify_one();
  return id;
}

TuningServer::Job& TuningServer::job_ref(JobId id) {
  auto it = jobs_.find(id);
  TUNIO_CHECK_MSG(it != jobs_.end(), "unknown job id");
  return *it->second;
}

const TuningServer::Job& TuningServer::job_ref(JobId id) const {
  auto it = jobs_.find(id);
  TUNIO_CHECK_MSG(it != jobs_.end(), "unknown job id");
  return *it->second;
}

bool TuningServer::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued: {
      job.state = JobState::kCancelled;
      job.snapshot.state = JobState::kCancelled;
      job.cancel_requested.store(true, std::memory_order_relaxed);
      ++jobs_cancelled_;
      for (auto p = pending_.begin(); p != pending_.end(); ++p) {
        if (*p == id) {
          pending_.erase(p);
          break;
        }
      }
      job_update_.notify_all();
      return true;
    }
    case JobState::kRunning:
      job.cancel_requested.store(true, std::memory_order_relaxed);
      return true;
    case JobState::kDone:
    case JobState::kCancelled:
    case JobState::kFailed:
      return false;
  }
  return false;
}

JobProgress TuningServer::progress(JobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return job_ref(id).snapshot;
}

tuner::TuningResult TuningServer::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job& job = job_ref(id);
  job_update_.wait(lock, [&job] {
    return job.state == JobState::kDone || job.state == JobState::kCancelled ||
           job.state == JobState::kFailed;
  });
  if (job.state == JobState::kFailed) {
    throw Error("job '" + job.spec.name + "' failed: " + job.snapshot.error);
  }
  return job.result.value_or(tuner::TuningResult{});
}

void TuningServer::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  job_update_.wait(lock, [this] {
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::kQueued || job->state == JobState::kRunning) {
        return false;
      }
    }
    return true;
  });
}

TuningServer::ServiceStats TuningServer::stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.jobs_submitted = next_id_ - 1;
    stats.jobs_completed = jobs_completed_;
    stats.jobs_cancelled = jobs_cancelled_;
    stats.jobs_failed = jobs_failed_;
  }
  stats.engine_evaluations = engine_.tasks_completed();
  stats.workers = engine_.workers();
  stats.cache = cache_.stats();
  return stats;
}

void TuningServer::scheduler_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      const JobId id = pending_.front();
      pending_.pop_front();
      job = &job_ref(id);
      job->state = JobState::kRunning;
      job->snapshot.state = JobState::kRunning;
    }
    ServerMetrics::get().running.add(1.0);
    run_job(*job);
    ServerMetrics::get().running.add(-1.0);
    job_update_.notify_all();
  }
}

void TuningServer::run_job(Job& job) {
  try {
    ServiceObjective objective(
        *job.spec.objective,
        EvalBinding{&engine_, &cache_, job.spec.fingerprint});

    // The stopper doubles as the per-generation progress beacon and the
    // cancellation point; tuning state stays consistent because it only
    // runs at generation boundaries.
    tuner::Stopper user_stopper = job.spec.stopper;
    tuner::Stopper beacon = [this, &job, &objective, user_stopper](
                                unsigned generation,
                                const tuner::TuningResult& so_far) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        JobProgress& snap = job.snapshot;
        snap.generations_done = so_far.generations_run;
        snap.best_perf = so_far.best_perf;
        snap.initial_perf = so_far.initial_perf;
        snap.seconds_spent = so_far.total_seconds;
        snap.cache_hits = objective.cache_hits();
        snap.cache_misses = objective.cache_misses();
        if (so_far.best_config.has_value()) {
          snap.best_indices = so_far.best_config->indices();
        }
      }
      job_update_.notify_all();
      if (job.cancel_requested.load(std::memory_order_relaxed)) return true;
      return user_stopper && user_stopper(generation, so_far);
    };

    tuner::TuningResult result;
    if (job.spec.backend == "ga") {
      // Historical path: the GA drives itself (bit-identical to every
      // pre-backend release).
      tuner::GeneticTuner tuner(space_, objective, job.spec.ga);
      tuner.set_stopper(beacon);
      result = tuner.run();
    } else {
      tuners::TunerSpec tuner_spec;
      tuner_spec.seed = job.spec.ga.seed;
      tuner_spec.batch = job.spec.ga.population;
      tuner_spec.max_iterations = job.spec.ga.max_generations;
      tuner_spec.seed_indices = job.spec.ga.seed_indices;
      tuner_spec.ga = job.spec.ga;
      tuner_spec.hints = job.spec.hints;
      tuner_spec.impact = job.spec.impact;
      const std::unique_ptr<tuners::Tuner> backend =
          tuners::make_tuner(job.spec.backend, space_, objective, tuner_spec);
      tuners::DriveOptions drive_options;
      drive_options.stopper = beacon;
      result = tuners::drive(*backend, objective, drive_options).tuning;
    }
    const bool cancelled =
        job.cancel_requested.load(std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(mutex_);
    job.result = std::move(result);
    job.state = cancelled ? JobState::kCancelled : JobState::kDone;
    job.snapshot.state = job.state;
    job.snapshot.cache_hits = objective.cache_hits();
    job.snapshot.cache_misses = objective.cache_misses();
    if (cancelled) {
      ++jobs_cancelled_;
      ServerMetrics::get().cancelled.add(1);
    } else {
      ++jobs_completed_;
      ServerMetrics::get().completed.add(1);
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    job.state = JobState::kFailed;
    job.snapshot.state = JobState::kFailed;
    job.snapshot.error = e.what();
    ++jobs_failed_;
    ServerMetrics::get().failed.add(1);
  }
}

}  // namespace tunio::service
