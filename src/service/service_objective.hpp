// ServiceObjective: the decorator that plugs a tuning run into the
// service machinery.
//
// It wraps any `tuner::Objective` and, per batch, (1) satisfies genomes
// from the shared `ResultCache` and (2) fans the misses out over the
// `EvalEngine`. Because the built-in objectives are deterministic per
// (testbed seed, genome), a cache hit returns exactly what a re-run
// would have produced — so it is billed like `GeneticTuner`'s own
// fitness cache: `eval_seconds = 0`, nothing was re-run. The real cost
// the hit avoided is tracked in `ResultCache::Stats::seconds_saved`.
#pragma once

#include <atomic>
#include <cstdint>

#include "service/eval_engine.hpp"
#include "service/result_cache.hpp"
#include "tuner/objective.hpp"

namespace tunio::service {

/// How a tuning run binds to the service: both members optional —
/// engine-only parallelizes without memoization, cache-only memoizes
/// serially, neither degrades to the wrapped objective untouched.
struct EvalBinding {
  EvalEngine* engine = nullptr;
  ResultCache* cache = nullptr;
  /// Cache namespace; must identify the workload *and* testbed so two
  /// jobs share entries only when their evaluations are interchangeable.
  std::uint64_t fingerprint = 0;

  bool enabled() const { return engine != nullptr || cache != nullptr; }
};

class ServiceObjective final : public tuner::Objective {
 public:
  /// `inner` must outlive this objective; so must the binding's targets.
  ServiceObjective(tuner::Objective& inner, EvalBinding binding);

  std::string name() const override { return inner_.name(); }
  tuner::Evaluation evaluate(const cfg::Configuration& config) override;
  std::vector<tuner::Evaluation> evaluate_batch(
      const std::vector<cfg::Configuration>& configs) override;
  bool concurrent_safe() const override { return inner_.concurrent_safe(); }
  /// Fresh (non-cached) evaluations only — cache hits run nothing.
  std::uint64_t evaluations() const override { return inner_.evaluations(); }

  std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  tuner::Objective& inner_;
  EvalBinding binding_;
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
};

}  // namespace tunio::service
