#include "service/result_cache.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace tunio::service {

namespace {

/// Cached registry handles (see PfsMetrics for the pattern rationale).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& insertions;
  obs::Counter& evictions;
  obs::Gauge& seconds_saved;

  static CacheMetrics& get() {
    static CacheMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
      return new CacheMetrics{
          registry.counter("service.cache.hits"),
          registry.counter("service.cache.misses"),
          registry.counter("service.cache.insertions"),
          registry.counter("service.cache.evictions"),
          registry.gauge("service.cache.seconds_saved"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

std::size_t ResultCache::KeyHash::operator()(const Key& key) const {
  return static_cast<std::size_t>(
      derive_stream(key.fingerprint, hash_indices(key.genome)));
}

ResultCache::ResultCache(CacheOptions options) {
  TUNIO_CHECK_MSG(options.shards > 0, "cache needs at least one shard");
  TUNIO_CHECK_MSG(options.capacity > 0, "cache needs nonzero capacity");
  per_shard_capacity_ = std::max<std::size_t>(
      1, (options.capacity + options.shards - 1) / options.shards);
  shards_.reserve(options.shards);
  for (unsigned i = 0; i < options.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::shard_for(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

const ResultCache::Shard& ResultCache::shard_for(const Key& key) const {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<tuner::Evaluation> ResultCache::get(
    std::uint64_t fingerprint, const std::vector<std::size_t>& genome) {
  Key key{fingerprint, genome};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    CacheMetrics::get().misses.add(1);
    return std::nullopt;
  }
  ++shard.hits;
  CacheMetrics::get().hits.add(1);
  CacheMetrics::get().seconds_saved.add(it->second->second.eval_seconds);
  shard.seconds_saved += it->second->second.eval_seconds;
  // Refresh recency.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ResultCache::put(std::uint64_t fingerprint,
                      const std::vector<std::size_t>& genome,
                      const tuner::Evaluation& eval) {
  Key key{fingerprint, genome};
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = eval;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, eval);
  shard.index.emplace(std::move(key), shard.lru.begin());
  ++shard.insertions;
  CacheMetrics::get().insertions.add(1);
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
    CacheMetrics::get().evictions.add(1);
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.entries += shard->lru.size();
    total.seconds_saved += shard->seconds_saved;
  }
  return total;
}

std::size_t ResultCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->lru.size();
  }
  return n;
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

namespace {

/// Shortest round-trip rendering of a double.
std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal recursive-descent reader for the documents `to_json` emits
/// (whitespace-tolerant, field order fixed). Not a general JSON parser —
/// the cache owns both ends of the wire.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    TUNIO_CHECK_MSG(pos_ < text_.size() && text_[pos_] == c,
                    std::string("cache JSON: expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_key(const std::string& name) {
    expect('"');
    TUNIO_CHECK_MSG(text_.compare(pos_, name.size(), name) == 0,
                    "cache JSON: expected key \"" + name + "\"");
    pos_ += name.size();
    expect('"');
    expect(':');
  }

  double number() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    TUNIO_CHECK_MSG(end > pos_, "cache JSON: expected a number");
    const double value = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return value;
  }

  std::uint64_t unsigned_number() {
    return static_cast<std::uint64_t>(number());
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string ResultCache::to_json() const {
  std::ostringstream out;
  out << "{\"entries\":[";
  bool first = true;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // Oldest first, so replaying the document into a fresh cache leaves
    // the most recently used entries freshest.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      if (!first) out << ",";
      first = false;
      out << "{\"fingerprint\":" << it->first.fingerprint << ",\"genome\":[";
      for (std::size_t g = 0; g < it->first.genome.size(); ++g) {
        if (g > 0) out << ",";
        out << it->first.genome[g];
      }
      out << "],\"perf_mbps\":" << render_double(it->second.perf_mbps)
          << ",\"eval_seconds\":" << render_double(it->second.eval_seconds)
          << "}";
    }
  }
  out << "]}";
  return out.str();
}

std::size_t ResultCache::load_json(const std::string& json) {
  JsonReader reader(json);
  reader.expect('{');
  reader.expect_key("entries");
  reader.expect('[');
  std::size_t loaded = 0;
  if (!reader.consume(']')) {
    do {
      reader.expect('{');
      reader.expect_key("fingerprint");
      const std::uint64_t fingerprint = reader.unsigned_number();
      reader.expect(',');
      reader.expect_key("genome");
      reader.expect('[');
      std::vector<std::size_t> genome;
      if (!reader.consume(']')) {
        do {
          genome.push_back(static_cast<std::size_t>(reader.unsigned_number()));
        } while (reader.consume(','));
        reader.expect(']');
      }
      reader.expect(',');
      reader.expect_key("perf_mbps");
      tuner::Evaluation eval;
      eval.perf_mbps = reader.number();
      reader.expect(',');
      reader.expect_key("eval_seconds");
      eval.eval_seconds = reader.number();
      reader.expect('}');
      put(fingerprint, genome, eval);
      ++loaded;
    } while (reader.consume(','));
    reader.expect(']');
  }
  reader.expect('}');
  return loaded;
}

bool ResultCache::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

bool ResultCache::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  load_json(buffer.str());
  return true;
}

}  // namespace tunio::service
