#include "service/eval_engine.hpp"

#include <exception>

#include "obs/metrics.hpp"

namespace tunio::service {

namespace {

// Engine throughput is the service's headline metric, so these publish
// live (per task/batch, not per simulated op — cheap enough).
obs::Counter& engine_tasks_counter() {
  static obs::Counter* counter =
      &obs::MetricsRegistry::global().counter("service.engine.tasks");
  return *counter;
}

obs::Counter& engine_batches_counter() {
  static obs::Counter* counter =
      &obs::MetricsRegistry::global().counter("service.engine.batches");
  return *counter;
}

}  // namespace

EvalEngine::EvalEngine(EngineOptions options) {
  unsigned workers = options.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

EvalEngine::~EvalEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void EvalEngine::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  work_ready_.notify_one();
}

void EvalEngine::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
    engine_tasks_counter().add(1);
  }
}

std::vector<tuner::Evaluation> EvalEngine::evaluate_batch(
    tuner::Objective& objective,
    const std::vector<cfg::Configuration>& configs) {
  // Objectives with shared mutable state cannot fan out; their own
  // serial batch path preserves correctness (and the result contract).
  if (!objective.concurrent_safe() || configs.size() <= 1) {
    const std::vector<tuner::Evaluation> results =
        objective.evaluate_batch(configs);
    batches_completed_.fetch_add(1, std::memory_order_relaxed);
    engine_batches_counter().add(1);
    return results;
  }

  struct BatchState {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining = configs.size();

  std::vector<tuner::Evaluation> results(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    post([&objective, &configs, &results, state, i] {
      std::exception_ptr error;
      try {
        results[i] = objective.evaluate(configs[i]);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (error && !state->error) state->error = error;
      if (--state->remaining == 0) state->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining == 0; });
  if (state->error) std::rethrow_exception(state->error);
  batches_completed_.fetch_add(1, std::memory_order_relaxed);
  engine_batches_counter().add(1);
  return results;
}

}  // namespace tunio::service
