// Seeded uniform random search — the tournament's control backend.
//
// Proposes fixed-size batches of uniform draws from the configuration
// space (the first batch leads with the starting point so
// `initial_perf` means the same thing as everywhere else). Any backend
// claiming to be "sample efficient" has to beat this on
// best-bandwidth-per-evaluation; see bench/tuner_tournament.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "tuners/tuner_base.hpp"

namespace tunio::tuners {

struct RandomOptions {
  unsigned batch = 8;
  /// Iteration horizon (the driver's budget usually stops earlier).
  unsigned max_iterations = 50;
  std::uint64_t seed = 0x5EED'0DD5;
  /// Optional starting configuration (domain indices); defaults start.
  std::optional<std::vector<std::size_t>> seed_indices;
};

class RandomTuner final : public TunerBase {
 public:
  RandomTuner(const cfg::ConfigSpace& space, RandomOptions options = {});

 protected:
  std::vector<cfg::Configuration> next_batch() override;
  void absorb(const std::vector<cfg::Configuration>& batch,
              const std::vector<tuner::Evaluation>& evals) override;

 private:
  RandomOptions options_;
  Rng rng_;
};

}  // namespace tunio::tuners
