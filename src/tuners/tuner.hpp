// The pluggable tuner-backend interface.
//
// TunIO's search loop was historically welded to one strategy — the
// genetic pipeline of `src/tuner` — which made the paper's "few
// evaluations to a near-best config" claim untestable against
// alternatives. This subsystem splits the loop into two halves:
//
//   * a `Tuner` proposes batches of configurations and absorbs their
//     evaluations — pure search strategy, no objective access;
//   * the `drive()` harness owns the objective, the simulated-time
//     budget and the stopping policy, and is the only place
//     `Objective::evaluate_batch` is called — so every backend composes
//     unchanged with the parallel evaluation engine, the shared result
//     cache, the record/replay fast path and the RL early stopper.
//
// Backends are registered by name (see registry.hpp): "ga" adapts the
// original GeneticTuner (bit-identical to `GeneticTuner::run`), "bo" is
// an asynchronous batched Bayesian optimizer, "rule" a deterministic
// knowledge-driven searcher seeded from linter hints and impact
// rankings, "random" the random-search control. `bench/tuner_tournament`
// races them under equal budgets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/space.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/objective.hpp"

namespace tunio::tuners {

/// A search strategy over a `cfg::ConfigSpace`. One iteration is one
/// `propose` / `observe` round; `progress()` exposes the same
/// `TuningResult` the genetic pipeline reports, so downstream consumers
/// (RoTI curves, stoppers, benches) work across backends unchanged.
class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Registry name of the backend ("ga", "bo", "rule", "random").
  virtual std::string name() const = 0;

  /// Proposes the next batch of configurations to evaluate *fresh*.
  /// Batches should be sized to keep `Objective::evaluate_batch` (and
  /// the service evaluation engine behind it) fully utilized. An empty
  /// batch is legal — the iteration still advances on `observe` (e.g. a
  /// GA generation fully satisfied from its fitness cache).
  virtual std::vector<cfg::Configuration> propose() = 0;

  /// Reports evaluations for exactly the configurations the last
  /// `propose` returned, in the same order.
  virtual void observe(const std::vector<tuner::Evaluation>& evals) = 0;

  /// Progress so far: history, best config/perf, simulated budget spent.
  virtual const tuner::TuningResult& progress() const = 0;

  /// True once the backend will propose nothing further.
  virtual bool done() const = 0;

  /// Driver notification that an external policy (budget exhaustion or
  /// a stopper) terminated the search.
  virtual void finish(bool early_stopped) = 0;
};

/// Driver policy: how long a backend may search.
struct DriveOptions {
  /// Simulated-seconds budget; the search stops at the first iteration
  /// boundary at or past it. 0 = unlimited (backend decides).
  double budget_seconds = 0.0;
  /// Hard iteration cap on top of the backend's own horizon. 0 = none.
  unsigned max_iterations = 0;
  /// Consulted after every iteration with the backend's progress — the
  /// same contract as `GeneticTuner`'s stopper, so the RL early stopper
  /// and the heuristic baselines plug in unchanged.
  tuner::Stopper stopper;
};

/// What a driven search produced, plus the attribution counters the
/// tournament report uses to separate search quality from cache luck.
/// The counter deltas are read from the global `MetricsRegistry`, so
/// they attribute cleanly only when no other evaluations run
/// concurrently with this drive (true for benches and tests; a shared
/// service should rely on per-cache stats instead).
struct DriveResult {
  tuner::TuningResult tuning;
  /// Cumulative fresh evaluations after each iteration (parallel to
  /// `tuning.history`) — the x-axis of evals-to-target curves.
  std::vector<std::uint64_t> evaluations;
  std::uint64_t fresh_evaluations = 0;  ///< total configs sent to evaluate
  std::uint64_t replayed_evals = 0;     ///< Δ tuner.eval.replayed
  std::uint64_t interpreted_evals = 0;  ///< Δ tuner.eval.interpreted
  std::uint64_t result_cache_hits = 0;  ///< Δ service.cache.hits
  std::uint64_t result_cache_misses = 0;  ///< Δ service.cache.misses
  /// Whether the objective qualified for the record/replay fast path,
  /// and the gate's justification either way (e.g. "no tuned_* reads"
  /// vs "tuned value reaches h5dwrite_all at line 12" or "static
  /// analysis failed: ..."). Explains `replayed_evals == 0` at a glance.
  bool replay_eligible = false;
  std::string replay_gate_reason;
};

/// Runs `tuner` against `objective` until the backend is done, the
/// budget is spent, the iteration cap is hit, or the stopper fires.
DriveResult drive(Tuner& tuner, tuner::Objective& objective,
                  const DriveOptions& options = {});

}  // namespace tunio::tuners
