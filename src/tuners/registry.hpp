// Backend registry: tuner construction by name.
//
// One `TunerSpec` carries the knobs every backend understands (seed,
// batch width, iteration horizon, starting configuration) plus the
// backend-specific extras (GA options, linter hints, impact scores), so
// callers — the pipeline, the tuning service, the tournament bench —
// select a search strategy with a string and stay agnostic of its type.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tuner/genetic_tuner.hpp"
#include "tuners/tuner.hpp"

namespace tunio::tuners {

struct TunerSpec {
  std::uint64_t seed = 0x5EED;
  /// Proposal batch width for the batched backends (bo/random). The GA's
  /// batch is its population (see `ga.population`).
  unsigned batch = 8;
  /// Backend iteration horizon; the driver's budget usually stops
  /// earlier. Applied as `max_generations` for the GA.
  unsigned max_iterations = 50;
  /// Optional starting configuration (domain indices) for every backend.
  std::optional<std::vector<std::size_t>> seed_indices;

  /// GA-specific knobs ("ga" backend). `seed`, `max_iterations` and
  /// `seed_indices` above override the matching fields.
  tuner::GaOptions ga;

  /// Knowledge inputs for the "rule" backend.
  std::vector<std::pair<std::string, double>> hints;
  std::vector<double> impact;
};

/// Names accepted by `make_tuner`, in tournament order.
const std::vector<std::string>& backend_names();

bool is_backend(const std::string& name);

/// Builds backend `name` over `space`. `objective` is only captured by
/// the GA (its fitness cache lives inside `GeneticTuner`); the other
/// backends touch the objective exclusively through `drive()`. Throws
/// `common::Error` on an unknown name.
std::unique_ptr<Tuner> make_tuner(const std::string& name,
                                  const cfg::ConfigSpace& space,
                                  tuner::Objective& objective,
                                  const TunerSpec& spec = {});

}  // namespace tunio::tuners
