#include "tuners/tuner.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace tunio::tuners {

namespace {

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

}  // namespace

DriveResult drive(Tuner& tuner, tuner::Objective& objective,
                  const DriveOptions& options) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& iterations =
      registry.counter("tuners." + tuner.name() + ".iterations");
  obs::Counter& proposals =
      registry.counter("tuners." + tuner.name() + ".proposals");

  const std::uint64_t replayed0 = counter_value("tuner.eval.replayed");
  const std::uint64_t interpreted0 = counter_value("tuner.eval.interpreted");
  const std::uint64_t cache_hits0 = counter_value("service.cache.hits");
  const std::uint64_t cache_misses0 = counter_value("service.cache.misses");

  DriveResult out;
  unsigned iteration = 0;
  while (!tuner.done()) {
    const std::vector<cfg::Configuration> batch = tuner.propose();
    proposals.add(batch.size());
    out.fresh_evaluations += batch.size();
    // Evaluated even when empty: a cache-satisfied GA generation still
    // issues its (empty) batch, matching `GeneticTuner::run` exactly.
    const std::vector<tuner::Evaluation> evals =
        objective.evaluate_batch(batch);
    tuner.observe(evals);
    iterations.add(1);
    out.evaluations.push_back(out.fresh_evaluations);

    const tuner::TuningResult& progress = tuner.progress();
    TUNIO_CHECK_MSG(progress.generations_run == iteration + 1,
                    "backend '" + tuner.name() +
                        "' did not advance its iteration count");
    if (options.stopper && options.stopper(iteration, progress)) {
      tuner.finish(/*early_stopped=*/true);
      break;
    }
    ++iteration;
    if (options.budget_seconds > 0.0 &&
        progress.total_seconds >= options.budget_seconds) {
      tuner.finish(/*early_stopped=*/false);
      break;
    }
    if (options.max_iterations > 0 && iteration >= options.max_iterations) {
      tuner.finish(/*early_stopped=*/false);
      break;
    }
  }

  out.tuning = tuner.progress();
  out.replayed_evals = counter_value("tuner.eval.replayed") - replayed0;
  out.interpreted_evals =
      counter_value("tuner.eval.interpreted") - interpreted0;
  out.result_cache_hits = counter_value("service.cache.hits") - cache_hits0;
  out.result_cache_misses =
      counter_value("service.cache.misses") - cache_misses0;
  const tuner::ReplayGate gate = objective.replay_gate();
  out.replay_eligible = gate.eligible;
  out.replay_gate_reason = gate.reason;
  return out;
}

}  // namespace tunio::tuners
