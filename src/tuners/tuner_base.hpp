// Shared bookkeeping for the non-GA backends.
//
// `TunerBase` owns everything every backend must report identically —
// the `TuningResult` history, best-config tracking, simulated-budget
// accounting, per-backend metrics counters and tracer spans on the
// tuning-budget clock — so a concrete backend only implements its search
// logic: `next_batch()` (what to try) and `absorb()` (what to learn).
//
// Convention: the first configuration of the first batch is the
// starting point (the stack defaults or the caller's seed), and its
// evaluation is reported as `initial_perf` — matching the GA, whose
// individual 0 of generation 0 plays the same role.
#pragma once

#include <string>
#include <vector>

#include "config/space.hpp"
#include "tuners/tuner.hpp"

namespace tunio::tuners {

class TunerBase : public Tuner {
 public:
  TunerBase(std::string backend_name, const cfg::ConfigSpace& space);

  std::string name() const override { return name_; }
  std::vector<cfg::Configuration> propose() final;
  void observe(const std::vector<tuner::Evaluation>& evals) final;
  const tuner::TuningResult& progress() const override { return result_; }
  bool done() const override { return done_; }
  void finish(bool early_stopped) override;

 protected:
  /// The next batch of configurations to evaluate. Backends signal
  /// exhaustion with `set_done()` (an empty batch alone is not terminal).
  virtual std::vector<cfg::Configuration> next_batch() = 0;

  /// Learn from the evaluations of the batch `next_batch` returned.
  /// Called after the iteration's history entry is recorded, so
  /// `best_perf()` already reflects this batch.
  virtual void absorb(const std::vector<cfg::Configuration>& batch,
                      const std::vector<tuner::Evaluation>& evals) = 0;

  /// No further proposals; the driver will stop after this iteration.
  void set_done() { done_ = true; }

  /// Best perf observed so far (-1 before any observation).
  double best_perf() const { return best_perf_; }
  const cfg::ConfigSpace& space() const { return space_; }
  unsigned iteration() const { return iteration_; }

 private:
  const cfg::ConfigSpace& space_;
  std::string name_;
  tuner::TuningResult result_;
  std::vector<cfg::Configuration> pending_;
  bool pending_issued_ = false;
  bool done_ = false;
  unsigned iteration_ = 0;
  double best_perf_ = -1.0;
  double cumulative_seconds_ = 0.0;
};

}  // namespace tunio::tuners
