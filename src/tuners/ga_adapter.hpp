// GeneticTuner behind the `Tuner` interface.
//
// The adapter forwards `propose`/`observe` to the stepping API the GA
// core exposes (`begin_iteration`/`observe_iteration`) — the same calls
// `GeneticTuner::run` itself makes, in the same order — so a driven
// adapter reproduces a `run()` bit-identically: identical RNG draw
// sequence, identical evaluate_batch batches, identical history.
// Regression-tested in tests/tuners_test.cpp and gated by the tournament
// baseline in CI.
#pragma once

#include <memory>
#include <string>

#include "tuner/genetic_tuner.hpp"
#include "tuners/tuner.hpp"

namespace tunio::tuners {

class GaTunerAdapter final : public Tuner {
 public:
  /// Same signature as the GA itself; `objective` is what the driver
  /// evaluates against (the GA core never calls it in stepping mode).
  GaTunerAdapter(const cfg::ConfigSpace& space, tuner::Objective& objective,
                 tuner::GaOptions options = {});

  /// Smart Configuration Generation passthrough (GA-specific hook).
  void set_subset_provider(tuner::SubsetProvider provider);

  std::string name() const override { return "ga"; }
  std::vector<cfg::Configuration> propose() override;
  void observe(const std::vector<tuner::Evaluation>& evals) override;
  const tuner::TuningResult& progress() const override;
  bool done() const override;
  void finish(bool early_stopped) override;

 private:
  tuner::GeneticTuner ga_;
};

}  // namespace tunio::tuners
