#include "tuners/ga_adapter.hpp"

namespace tunio::tuners {

GaTunerAdapter::GaTunerAdapter(const cfg::ConfigSpace& space,
                               tuner::Objective& objective,
                               tuner::GaOptions options)
    : ga_(space, objective, options) {}

void GaTunerAdapter::set_subset_provider(tuner::SubsetProvider provider) {
  ga_.set_subset_provider(std::move(provider));
}

std::vector<cfg::Configuration> GaTunerAdapter::propose() {
  return ga_.begin_iteration();
}

void GaTunerAdapter::observe(const std::vector<tuner::Evaluation>& evals) {
  ga_.observe_iteration(evals);
}

const tuner::TuningResult& GaTunerAdapter::progress() const {
  return ga_.progress();
}

bool GaTunerAdapter::done() const { return ga_.exhausted(); }

void GaTunerAdapter::finish(bool early_stopped) {
  if (early_stopped) ga_.mark_early_stopped();
}

}  // namespace tunio::tuners
