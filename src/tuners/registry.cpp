#include "tuners/registry.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "tuners/bo_tuner.hpp"
#include "tuners/ga_adapter.hpp"
#include "tuners/random_tuner.hpp"
#include "tuners/rule_tuner.hpp"

namespace tunio::tuners {

const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> kNames = {"ga", "bo", "rule",
                                                  "random"};
  return kNames;
}

bool is_backend(const std::string& name) {
  const std::vector<std::string>& names = backend_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<Tuner> make_tuner(const std::string& name,
                                  const cfg::ConfigSpace& space,
                                  tuner::Objective& objective,
                                  const TunerSpec& spec) {
  if (name == "ga") {
    tuner::GaOptions options = spec.ga;
    options.seed = spec.seed;
    options.max_generations = spec.max_iterations;
    if (spec.seed_indices.has_value()) options.seed_indices = spec.seed_indices;
    return std::make_unique<GaTunerAdapter>(space, objective, options);
  }
  if (name == "bo") {
    BoOptions options;
    options.seed = spec.seed;
    options.batch = spec.batch;
    options.initial_design = std::max(spec.batch, 2u);
    options.max_iterations = spec.max_iterations;
    options.seed_indices = spec.seed_indices;
    return std::make_unique<BoTuner>(space, options);
  }
  if (name == "rule") {
    RuleOptions options;
    options.hints = spec.hints;
    options.impact = spec.impact;
    options.seed_indices = spec.seed_indices;
    return std::make_unique<RuleTuner>(space, options);
  }
  if (name == "random") {
    RandomOptions options;
    options.seed = spec.seed;
    options.batch = spec.batch;
    options.max_iterations = spec.max_iterations;
    options.seed_indices = spec.seed_indices;
    return std::make_unique<RandomTuner>(space, options);
  }
  throw InvalidArgument("unknown tuner backend '" + name +
                        "' (known: ga, bo, rule, random)");
}

}  // namespace tunio::tuners
