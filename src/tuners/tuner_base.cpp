#include "tuners/tuner_base.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tunio::tuners {

TunerBase::TunerBase(std::string backend_name, const cfg::ConfigSpace& space)
    : space_(space), name_(std::move(backend_name)) {}

std::vector<cfg::Configuration> TunerBase::propose() {
  TUNIO_CHECK_MSG(!pending_issued_, "propose before observing the last batch");
  TUNIO_CHECK_MSG(!done_, "backend '" + name_ + "' is done");
  pending_ = next_batch();
  pending_issued_ = true;
  return pending_;
}

void TunerBase::observe(const std::vector<tuner::Evaluation>& evals) {
  TUNIO_CHECK_MSG(pending_issued_, "observe without a propose");
  TUNIO_CHECK_MSG(evals.size() == pending_.size(),
                  "evaluate_batch returned wrong arity");
  pending_issued_ = false;

  double billed_seconds = 0.0;
  double iteration_best = -1.0;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    billed_seconds += evals[i].eval_seconds;
    iteration_best = std::max(iteration_best, evals[i].perf_mbps);
    if (evals[i].perf_mbps > best_perf_) {
      best_perf_ = evals[i].perf_mbps;
      result_.best_config = pending_[i];
    }
  }
  if (iteration_ == 0 && !evals.empty()) {
    // First config of the first batch is the starting point.
    result_.initial_perf = evals.front().perf_mbps;
  }

  const double iteration_start = cumulative_seconds_;
  cumulative_seconds_ += billed_seconds;
  obs::Tracer::set_ambient_seconds(cumulative_seconds_);

  tuner::GenerationStats stats;
  stats.generation = iteration_;
  stats.generation_best_perf = iteration_best;
  stats.best_perf = best_perf_;
  stats.cumulative_seconds = cumulative_seconds_;
  result_.history.push_back(stats);
  result_.best_perf = best_perf_;
  result_.total_seconds = cumulative_seconds_;
  result_.generations_run = iteration_ + 1;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("tuners." + name_ + ".evaluations").add(evals.size());
  registry.gauge("tuners." + name_ + ".best_mbps").set(best_perf_);
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // Same axis as GA generations: the cumulative tuning-budget clock.
    tracer.span("tuner", name_ + ".iteration", iteration_start,
                cumulative_seconds_, obs::kPidTuner, /*tid=*/0,
                {{"iteration", std::to_string(iteration_)},
                 {"best_mbps", obs::json_number(best_perf_)},
                 {"batch", std::to_string(evals.size())}});
  }

  absorb(pending_, evals);
  pending_.clear();
  ++iteration_;
}

void TunerBase::finish(bool early_stopped) {
  if (early_stopped) result_.early_stopped = true;
  done_ = true;
}

}  // namespace tunio::tuners
