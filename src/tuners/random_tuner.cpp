#include "tuners/random_tuner.hpp"

#include "common/error.hpp"

namespace tunio::tuners {

RandomTuner::RandomTuner(const cfg::ConfigSpace& space, RandomOptions options)
    : TunerBase("random", space), options_(options), rng_(options.seed) {
  TUNIO_CHECK_MSG(options_.batch > 0, "random batch must be positive");
  if (options_.seed_indices.has_value()) {
    TUNIO_CHECK_MSG(options_.seed_indices->size() == space.num_parameters(),
                    "seed configuration arity mismatch");
  }
}

std::vector<cfg::Configuration> RandomTuner::next_batch() {
  std::vector<cfg::Configuration> batch;
  if (iteration() == 0) {
    batch.emplace_back(
        &space(), options_.seed_indices.has_value()
                      ? *options_.seed_indices
                      : space().default_configuration().indices());
  }
  while (batch.size() < options_.batch) {
    std::vector<std::size_t> indices(space().num_parameters());
    for (std::size_t p = 0; p < indices.size(); ++p) {
      indices[p] = rng_.index(space().parameter(p).domain.size());
    }
    batch.emplace_back(&space(), std::move(indices));
  }
  return batch;
}

void RandomTuner::absorb(const std::vector<cfg::Configuration>&,
                         const std::vector<tuner::Evaluation>&) {
  if (iteration() + 1 >= options_.max_iterations) set_done();
}

}  // namespace tunio::tuners
