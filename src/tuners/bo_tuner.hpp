// Asynchronous batched Bayesian optimization over the config space.
//
// In the spirit of Dorier et al.'s asynchronous BO for HPC storage
// tuning (PAPERS.md): a surrogate model over the encoded configuration
// space proposes whole batches via expected improvement, hallucinating
// the outcomes of still-pending points ("kriging believer") so the
// parallel evaluation engine behind `Objective::evaluate_batch` stays
// fully utilized instead of waiting for one point at a time.
//
// The surrogate is a Gaussian process with an RBF kernel over the
// normalized domain-index encoding (each parameter's index mapped to
// [0, 1]; the domains are ordered by construction, so neighboring
// indices are neighboring values). Observed perf is standardized before
// fitting; predictions are destandardized for the acquisition. Candidate
// points come from a seeded pool of uniform draws plus mutations of the
// incumbent, so the whole search is deterministic in (seed, objective).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "tuners/tuner_base.hpp"

namespace tunio::tuners {

struct BoOptions {
  /// Proposals per iteration (sized to the evaluation engine's width).
  unsigned batch = 8;
  /// Seeded warmup configurations (defaults + explorers) before the
  /// surrogate takes over.
  unsigned initial_design = 8;
  /// Candidate pool evaluated by the acquisition per batch slot.
  unsigned candidate_pool = 160;
  /// Iteration horizon (the driver's budget usually stops earlier).
  unsigned max_iterations = 50;
  /// RBF length scale over the dimension-normalized squared distance.
  double length_scale = 0.35;
  /// Observation noise on the standardized scale (keeps K well-posed).
  double nugget = 1e-3;
  /// Exploration margin of the expected-improvement acquisition.
  double ei_xi = 0.01;
  /// Surrogate fit cap: beyond this many observations, the fit keeps the
  /// best quarter plus the most recent remainder (O(n^3) guard).
  std::size_t max_observations = 224;
  std::uint64_t seed = 0xB0'5EED;
  /// Optional starting configuration (domain indices); defaults start.
  std::optional<std::vector<std::size_t>> seed_indices;
};

class BoTuner final : public TunerBase {
 public:
  BoTuner(const cfg::ConfigSpace& space, BoOptions options = {});

  /// Observations absorbed so far (for tests).
  std::size_t observations() const { return xs_.size(); }

 protected:
  std::vector<cfg::Configuration> next_batch() override;
  void absorb(const std::vector<cfg::Configuration>& batch,
              const std::vector<tuner::Evaluation>& evals) override;

 private:
  std::vector<double> encode(const std::vector<std::size_t>& indices) const;
  std::vector<std::size_t> random_indices();
  std::vector<std::size_t> mutated_incumbent();

  BoOptions options_;
  Rng rng_;
  std::vector<std::size_t> incumbent_;  ///< best genome observed
  /// Observed data set (encoded points / raw perf).
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  /// Genome hashes ever proposed or observed (dedup).
  std::vector<std::uint64_t> seen_;
};

}  // namespace tunio::tuners
