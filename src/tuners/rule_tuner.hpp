// Deterministic knowledge-driven searcher.
//
// RuleTuner encodes what the static-analysis layer already knows about a
// workload instead of learning it from scratch: parameters implicated by
// `LintReport::tuning_hints()` and ranked high by Smart Configuration
// Generation's impact scores are swept first. The search itself is plain
// prioritized coordinate descent — evaluate every alternative value of
// one parameter per iteration (the whole sweep goes out as one batch, so
// the parallel evaluation engine stays busy), adopt a strict
// improvement, move down the priority list, and stop after a full pass
// without improvement. No randomness anywhere: identical inputs produce
// identical proposals, which makes it the reproducible baseline of the
// tournament.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tuners/tuner_base.hpp"

namespace tunio::tuners {

struct RuleOptions {
  /// (parameter name, weight) pairs, e.g. `LintReport::tuning_hints()`.
  /// Names unknown to the space are ignored.
  std::vector<std::pair<std::string, double>> hints;
  /// Per-parameter impact scores (e.g. `SmartConfigGen::impact_scores`);
  /// empty = uniform. Priority is impact * (1 + hint weight).
  std::vector<double> impact;
  /// Full sweeps over the priority list before giving up. The search
  /// usually converges earlier (a pass without improvement stops it).
  unsigned max_passes = 4;
  /// Optional starting configuration (domain indices); defaults start.
  std::optional<std::vector<std::size_t>> seed_indices;
};

class RuleTuner final : public TunerBase {
 public:
  RuleTuner(const cfg::ConfigSpace& space, RuleOptions options = {});

  /// The parameter sweep order the options produced (for tests).
  const std::vector<std::size_t>& sweep_order() const { return order_; }

 protected:
  std::vector<cfg::Configuration> next_batch() override;
  void absorb(const std::vector<cfg::Configuration>& batch,
              const std::vector<tuner::Evaluation>& evals) override;

 private:
  /// Unseen single-parameter variants of `current_` at parameter `p`.
  std::vector<std::vector<std::size_t>> alternatives(std::size_t p) const;
  /// Advances cursor/pass state to the next sweepable parameter, or
  /// finishes the search.
  void advance();

  RuleOptions options_;
  std::vector<std::size_t> order_;  ///< params by descending priority
  std::vector<std::size_t> current_;
  double current_perf_ = -1.0;
  std::size_t cursor_ = 0;      ///< position in order_ being swept
  std::size_t sweep_param_ = 0;  ///< param of the in-flight batch
  unsigned passes_ = 0;
  bool pass_improved_ = false;
  std::vector<std::uint64_t> seen_;  ///< genome hashes ever evaluated
};

}  // namespace tunio::tuners
