#include "tuners/bo_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace tunio::tuners {

namespace {

/// Dense Gaussian process with an RBF kernel, fit by Cholesky
/// factorization. Sized for tuning budgets (a few hundred observations);
/// everything is plain O(n^2)/O(n^3) double math, fully deterministic.
class Gp {
 public:
  Gp(const std::vector<std::vector<double>>& xs, const std::vector<double>& ys,
     double length_scale, double nugget)
      : xs_(xs), length_scale_(length_scale) {
    const std::size_t n = xs.size();
    TUNIO_CHECK_MSG(n > 0 && ys.size() == n, "GP needs matching data");
    dims_ = xs.front().size();

    // Standardize targets so kernel amplitudes and nuggets are scale-free.
    y_mean_ = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
    double var = 0.0;
    for (double y : ys) var += (y - y_mean_) * (y - y_mean_);
    y_std_ = std::sqrt(var / n);
    if (y_std_ < 1e-12) y_std_ = 1.0;

    std::vector<double> k(n * n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = kernel(xs[i], xs[j]);
        k[i * n + j] = v;
        k[j * n + i] = v;
      }
    }
    // Cholesky with escalating jitter: duplicate-free data plus the
    // nugget almost always factors on the first try.
    lower_.assign(n * n, 0.0);
    double jitter = nugget;
    for (int attempt = 0; attempt < 6; ++attempt) {
      if (cholesky(k, jitter, n)) break;
      jitter *= 10.0;
      TUNIO_CHECK_MSG(attempt + 1 < 6, "GP kernel matrix is not PD");
    }

    std::vector<double> y_standardized(n);
    for (std::size_t i = 0; i < n; ++i) {
      y_standardized[i] = (ys[i] - y_mean_) / y_std_;
    }
    alpha_ = solve(y_standardized);
  }

  /// Posterior mean (raw units) and standard deviation (raw units).
  void predict(const std::vector<double>& x, double& mean,
               double& stddev) const {
    const std::size_t n = xs_.size();
    std::vector<double> kstar(n);
    for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, xs_[i]);
    double mu = 0.0;
    for (std::size_t i = 0; i < n; ++i) mu += kstar[i] * alpha_[i];
    // var = k(x,x) - k*^T K^-1 k* via one triangular solve.
    const std::vector<double> v = forward_solve(kstar);
    double quad = 0.0;
    for (double value : v) quad += value * value;
    const double var = std::max(0.0, 1.0 - quad);
    mean = y_mean_ + y_std_ * mu;
    stddev = y_std_ * std::sqrt(var);
  }

 private:
  double kernel(const std::vector<double>& a,
                const std::vector<double>& b) const {
    double r2 = 0.0;
    for (std::size_t d = 0; d < dims_; ++d) {
      const double diff = a[d] - b[d];
      r2 += diff * diff;
    }
    r2 /= static_cast<double>(dims_);
    return std::exp(-r2 / (2.0 * length_scale_ * length_scale_));
  }

  bool cholesky(const std::vector<double>& k, double jitter, std::size_t n) {
    std::fill(lower_.begin(), lower_.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = k[i * n + j] + (i == j ? jitter : 0.0);
        for (std::size_t m = 0; m < j; ++m) {
          sum -= lower_[i * n + m] * lower_[j * n + m];
        }
        if (i == j) {
          if (sum <= 0.0) return false;
          lower_[i * n + i] = std::sqrt(sum);
        } else {
          lower_[i * n + j] = sum / lower_[j * n + j];
        }
      }
    }
    return true;
  }

  /// L z = b.
  std::vector<double> forward_solve(const std::vector<double>& b) const {
    const std::size_t n = xs_.size();
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
      double sum = b[i];
      for (std::size_t j = 0; j < i; ++j) sum -= lower_[i * n + j] * z[j];
      z[i] = sum / lower_[i * n + i];
    }
    return z;
  }

  /// K a = b (forward then backward substitution).
  std::vector<double> solve(const std::vector<double>& b) const {
    const std::size_t n = xs_.size();
    std::vector<double> z = forward_solve(b);
    std::vector<double> a(n);
    for (std::size_t ii = n; ii-- > 0;) {
      double sum = z[ii];
      for (std::size_t j = ii + 1; j < n; ++j) sum -= lower_[j * n + ii] * a[j];
      a[ii] = sum / lower_[ii * n + ii];
    }
    return a;
  }

  const std::vector<std::vector<double>>& xs_;
  std::size_t dims_ = 0;
  double length_scale_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  std::vector<double> lower_;  ///< row-major L of K = L L^T
  std::vector<double> alpha_;  ///< K^-1 y (standardized)
};

constexpr double kSqrt2Pi = 2.50662827463100050;

double normal_pdf(double z) { return std::exp(-0.5 * z * z) / kSqrt2Pi; }

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Expected improvement over `best` (maximization).
double expected_improvement(double mean, double stddev, double best,
                            double xi) {
  if (stddev < 1e-12) return std::max(0.0, mean - best - xi);
  const double z = (mean - best - xi) / stddev;
  return (mean - best - xi) * normal_cdf(z) + stddev * normal_pdf(z);
}

}  // namespace

BoTuner::BoTuner(const cfg::ConfigSpace& space, BoOptions options)
    : TunerBase("bo", space), options_(options), rng_(options.seed) {
  TUNIO_CHECK_MSG(options_.batch > 0, "BO batch must be positive");
  TUNIO_CHECK_MSG(options_.initial_design > 0, "BO needs a warmup design");
  if (options_.seed_indices.has_value()) {
    TUNIO_CHECK_MSG(options_.seed_indices->size() == space.num_parameters(),
                    "seed configuration arity mismatch");
    incumbent_ = *options_.seed_indices;
  } else {
    incumbent_ = space.default_configuration().indices();
  }
}

std::vector<double> BoTuner::encode(
    const std::vector<std::size_t>& indices) const {
  std::vector<double> x(indices.size());
  for (std::size_t p = 0; p < indices.size(); ++p) {
    const std::size_t n = space().parameter(p).domain.size();
    x[p] = n <= 1 ? 0.5
                  : static_cast<double>(indices[p]) /
                        static_cast<double>(n - 1);
  }
  return x;
}

std::vector<std::size_t> BoTuner::random_indices() {
  std::vector<std::size_t> indices(space().num_parameters());
  for (std::size_t p = 0; p < indices.size(); ++p) {
    indices[p] = rng_.index(space().parameter(p).domain.size());
  }
  return indices;
}

std::vector<std::size_t> BoTuner::mutated_incumbent() {
  // Local moves around the best genome: step one or two parameters to a
  // neighboring domain index (the domains are ordered, so +-1 index is
  // the smallest meaningful move).
  std::vector<std::size_t> indices = incumbent_;
  const unsigned moves = 1 + static_cast<unsigned>(rng_.chance(0.5));
  for (unsigned m = 0; m < moves; ++m) {
    const std::size_t p = rng_.index(indices.size());
    const std::size_t n = space().parameter(p).domain.size();
    if (n <= 1) continue;
    if (rng_.chance(0.5)) {
      indices[p] = indices[p] + 1 < n ? indices[p] + 1 : indices[p] - 1;
    } else {
      indices[p] = indices[p] > 0 ? indices[p] - 1 : indices[p] + 1;
    }
  }
  return indices;
}

std::vector<cfg::Configuration> BoTuner::next_batch() {
  std::vector<cfg::Configuration> batch;
  auto is_new = [&](const std::vector<std::size_t>& indices) {
    return std::find(seen_.begin(), seen_.end(), hash_indices(indices)) ==
           seen_.end();
  };
  auto take = [&](const std::vector<std::size_t>& indices) {
    seen_.push_back(hash_indices(indices));
    batch.emplace_back(&space(), indices);
  };

  if (iteration() == 0) {
    // Warmup design: the starting point plus seeded explorers.
    take(incumbent_);
    unsigned attempts = 0;
    while (batch.size() < options_.initial_design &&
           attempts < options_.initial_design * 20) {
      const std::vector<std::size_t> candidate = random_indices();
      if (is_new(candidate)) take(candidate);
      ++attempts;
    }
    return batch;
  }

  // Surrogate-guided batch. Pending picks are hallucinated at their
  // posterior mean ("kriging believer") so one batch spreads out instead
  // of proposing the acquisition argmax `batch` times.
  std::vector<std::vector<double>> xs = xs_;
  std::vector<double> ys = ys_;
  for (unsigned slot = 0; slot < options_.batch; ++slot) {
    const Gp gp(xs, ys, options_.length_scale, options_.nugget);
    const double best = *std::max_element(ys.begin(), ys.end());

    double best_ei = -1.0;
    std::vector<std::size_t> best_candidate;
    double best_mean = 0.0;
    for (unsigned c = 0; c < options_.candidate_pool; ++c) {
      // Half the pool explores uniformly, half exploits locally.
      const std::vector<std::size_t> candidate =
          c % 2 == 0 ? random_indices() : mutated_incumbent();
      if (!is_new(candidate)) continue;
      double mean = 0.0;
      double stddev = 0.0;
      gp.predict(encode(candidate), mean, stddev);
      const double ei =
          expected_improvement(mean, stddev, best, options_.ei_xi);
      if (ei > best_ei) {
        best_ei = ei;
        best_candidate = candidate;
        best_mean = mean;
      }
    }
    if (best_candidate.empty()) break;  // pool exhausted (tiny spaces)
    take(best_candidate);
    xs.push_back(encode(best_candidate));
    ys.push_back(best_mean);  // hallucinated outcome for the pending point
  }
  return batch;
}

void BoTuner::absorb(const std::vector<cfg::Configuration>& batch,
                     const std::vector<tuner::Evaluation>& evals) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    xs_.push_back(encode(batch[i].indices()));
    ys_.push_back(evals[i].perf_mbps);
    if (evals[i].perf_mbps >= best_perf()) {
      incumbent_ = batch[i].indices();
    }
  }
  // O(n^3) guard: keep the best quarter plus the most recent remainder.
  if (xs_.size() > options_.max_observations) {
    const std::size_t keep_best = options_.max_observations / 4;
    const std::size_t keep_recent = options_.max_observations - keep_best;
    std::vector<std::size_t> order(xs_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return ys_[a] > ys_[b]; });
    std::vector<bool> keep(xs_.size(), false);
    for (std::size_t i = 0; i < keep_best; ++i) keep[order[i]] = true;
    for (std::size_t i = xs_.size(), kept = 0;
         i-- > 0 && kept < keep_recent;) {
      if (!keep[i]) {
        keep[i] = true;
        ++kept;
      }
    }
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      if (keep[i]) {
        xs.push_back(std::move(xs_[i]));
        ys.push_back(ys_[i]);
      }
    }
    xs_ = std::move(xs);
    ys_ = std::move(ys);
  }
  if (iteration() + 1 >= options_.max_iterations) set_done();
}

}  // namespace tunio::tuners
