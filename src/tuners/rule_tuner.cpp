#include "tuners/rule_tuner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tunio::tuners {

RuleTuner::RuleTuner(const cfg::ConfigSpace& space, RuleOptions options)
    : TunerBase("rule", space), options_(std::move(options)) {
  const std::size_t dim = space.num_parameters();
  TUNIO_CHECK_MSG(options_.impact.empty() || options_.impact.size() == dim,
                  "impact vector arity mismatch");
  TUNIO_CHECK_MSG(options_.max_passes > 0, "rule search needs >= 1 pass");

  if (options_.seed_indices.has_value()) {
    TUNIO_CHECK_MSG(options_.seed_indices->size() == dim,
                    "seed configuration arity mismatch");
    current_ = *options_.seed_indices;
  } else {
    current_ = space.default_configuration().indices();
  }

  // Priority = impact * (1 + hint weight); unknown hint names are
  // ignored so lint output for a different stack degrades gracefully.
  std::vector<double> priority(dim, 1.0);
  if (!options_.impact.empty()) priority = options_.impact;
  for (const auto& [name, weight] : options_.hints) {
    if (space.has(name)) priority[space.index_of(name)] *= 1.0 + weight;
  }
  for (std::size_t p = 0; p < dim; ++p) {
    if (space.parameter(p).domain.size() > 1) order_.push_back(p);
  }
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return priority[a] > priority[b];
                   });
}

std::vector<std::vector<std::size_t>> RuleTuner::alternatives(
    std::size_t p) const {
  std::vector<std::vector<std::size_t>> out;
  const std::size_t n = space().parameter(p).domain.size();
  for (std::size_t v = 0; v < n; ++v) {
    if (v == current_[p]) continue;
    std::vector<std::size_t> indices = current_;
    indices[p] = v;
    if (std::find(seen_.begin(), seen_.end(), hash_indices(indices)) ==
        seen_.end()) {
      out.push_back(std::move(indices));
    }
  }
  return out;
}

void RuleTuner::advance() {
  while (true) {
    if (cursor_ >= order_.size()) {
      ++passes_;
      if (!pass_improved_ || passes_ >= options_.max_passes) {
        set_done();
        return;
      }
      cursor_ = 0;
      pass_improved_ = false;
    }
    if (!alternatives(order_[cursor_]).empty()) return;
    ++cursor_;
  }
}

std::vector<cfg::Configuration> RuleTuner::next_batch() {
  std::vector<cfg::Configuration> batch;
  if (iteration() == 0) {
    // Evaluate the starting point alone: it anchors `initial_perf` and
    // every later sweep compares against its adopted descendant.
    seen_.push_back(hash_indices(current_));
    batch.emplace_back(&space(), current_);
    return batch;
  }
  sweep_param_ = order_[cursor_];
  for (std::vector<std::size_t>& indices : alternatives(sweep_param_)) {
    seen_.push_back(hash_indices(indices));
    batch.emplace_back(&space(), std::move(indices));
  }
  return batch;
}

void RuleTuner::absorb(const std::vector<cfg::Configuration>& batch,
                       const std::vector<tuner::Evaluation>& evals) {
  if (iteration() == 0) {
    current_perf_ = evals.empty() ? -1.0 : evals.front().perf_mbps;
    advance();  // finishes immediately when every domain is a singleton
    return;
  }
  std::size_t best = batch.size();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (evals[i].perf_mbps > current_perf_ &&
        (best == batch.size() || evals[i].perf_mbps > evals[best].perf_mbps)) {
      best = i;
    }
  }
  if (best != batch.size()) {
    // Strict improvement: adopt and keep sweeping from the new point.
    current_ = batch[best].indices();
    current_perf_ = evals[best].perf_mbps;
    pass_improved_ = true;
  }
  ++cursor_;
  advance();
}

}  // namespace tunio::tuners
