// Library parameter inventories for Figure 1.
//
// Figure 1 of the paper counts user-level parameter permutations of
// several HPC I/O libraries, "utilizing a lower bound of two values for
// discrete parameters and five for continuous parameters". This module
// records those inventories and computes the permutation counts the
// figure reports (e.g. HDF5 + MPI ≈ 10²¹ permutations).
#pragma once

#include <string>
#include <vector>

namespace tunio::cfg {

struct LibraryInventory {
  std::string name;
  unsigned binary_params = 0;      ///< discrete, lower-bounded at 2 values
  unsigned ternary_params = 0;     ///< discrete with 3 documented values
  unsigned continuous_params = 0;  ///< lower-bounded at 5 values

  unsigned total_params() const {
    return binary_params + ternary_params + continuous_params;
  }
  /// log10 of the parameter-value permutation count.
  double log10_permutations() const;
  double permutations() const;
};

/// The libraries of Figure 1: HDF5, PNetCDF, MPI, ADIOS, OpenSHMEM-X,
/// Hermes (plus the Lustre user-settable knobs used in §IV).
std::vector<LibraryInventory> figure1_inventories();

/// Permutations of a composed stack (product over members).
double stack_permutations(const std::vector<LibraryInventory>& stack);

}  // namespace tunio::cfg
