#include "config/xml.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace tunio::cfg {

namespace {

struct Tag {
  std::string name;
  bool closing = false;
  std::size_t end = 0;  ///< index just past '>'
};

/// Scans the tag starting at `pos` (xml[pos] == '<').
Tag scan_tag(const std::string& xml, std::size_t pos) {
  Tag tag;
  std::size_t i = pos + 1;
  if (i < xml.size() && xml[i] == '/') {
    tag.closing = true;
    ++i;
  }
  const std::size_t close = xml.find('>', i);
  TUNIO_CHECK_MSG(close != std::string::npos, "unterminated XML tag");
  tag.name = xml.substr(i, close - i);
  // Trim trailing whitespace/attributes (we support none).
  const std::size_t space = tag.name.find_first_of(" \t\n\r");
  if (space != std::string::npos) tag.name.resize(space);
  tag.end = close + 1;
  return tag;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string to_xml(const Configuration& config) {
  const ConfigSpace& space = config.space();
  std::ostringstream os;
  os << "<Parameters>\n";
  for (Layer layer : {Layer::kHdf5, Layer::kMpiIo, Layer::kLustre}) {
    os << "  <" << layer_name(layer) << ">\n";
    for (std::size_t i = 0; i < space.num_parameters(); ++i) {
      const Parameter& p = space.parameter(i);
      if (p.layer != layer) continue;
      os << "    <" << p.name << ">" << config.value(i) << "</" << p.name
         << ">\n";
    }
    os << "  </" << layer_name(layer) << ">\n";
  }
  os << "</Parameters>\n";
  return os.str();
}

Configuration from_xml(const ConfigSpace& space, const std::string& xml) {
  Configuration config = space.default_configuration();
  std::vector<std::string> stack;
  std::size_t pos = 0;
  while ((pos = xml.find('<', pos)) != std::string::npos) {
    const Tag tag = scan_tag(xml, pos);
    if (tag.closing) {
      TUNIO_CHECK_MSG(!stack.empty() && stack.back() == tag.name,
                      "mismatched closing tag: " + tag.name);
      stack.pop_back();
      pos = tag.end;
      continue;
    }
    // Leaf parameter tags appear at depth 2 (Parameters > Layer > param).
    if (stack.size() == 2) {
      const std::size_t close_open = xml.find('<', tag.end);
      TUNIO_CHECK_MSG(close_open != std::string::npos,
                      "unterminated value for " + tag.name);
      const std::string text = trim(xml.substr(tag.end, close_open - tag.end));
      TUNIO_CHECK_MSG(space.has(tag.name), "unknown parameter tag: " + tag.name);
      const std::size_t param = space.index_of(tag.name);
      const std::uint64_t value = std::stoull(text);
      const auto& domain = space.parameter(param).domain;
      const auto it = std::find(domain.begin(), domain.end(), value);
      TUNIO_CHECK_MSG(it != domain.end(),
                      "value not in domain of " + tag.name + ": " + text);
      config.set_index(param,
                       static_cast<std::size_t>(it - domain.begin()));
      const Tag closing = scan_tag(xml, close_open);
      TUNIO_CHECK_MSG(closing.closing && closing.name == tag.name,
                      "mismatched parameter tag: " + tag.name);
      pos = closing.end;
      continue;
    }
    stack.push_back(tag.name);
    pos = tag.end;
  }
  TUNIO_CHECK_MSG(stack.empty(), "unclosed XML tags");
  return config;
}

}  // namespace tunio::cfg
