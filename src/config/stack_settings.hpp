// Translating a `Configuration` into concrete settings for each layer of
// the simulated stack — the moral equivalent of H5Tuner's dynamic
// property-override mechanism, which injects parameter values into an
// unmodified HDF5 application at run time.
#pragma once

#include "config/space.hpp"
#include "hdf5lite/properties.hpp"
#include "mpiio/mpiio.hpp"
#include "pfs/pfs.hpp"

namespace tunio::cfg {

/// Fully resolved per-layer settings derived from one configuration.
struct StackSettings {
  pfs::CreateOptions lustre;      ///< striping_factor / striping_unit
  mpiio::Hints mpiio;             ///< cb_nodes / cb_buffer_size / collective
  h5::FileAccessProps fapl;       ///< alignment, sieve, metadata knobs
  h5::ChunkCacheProps chunk_cache;
};

/// Expands `config` (which must come from `ConfigSpace::tunio12()` or a
/// space with the same parameter names) into per-layer settings.
StackSettings resolve(const Configuration& config);

/// The stack defaults (what an untuned application gets).
StackSettings default_settings();

}  // namespace tunio::cfg
