#include "config/space.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace tunio::cfg {

std::string layer_name(Layer layer) {
  switch (layer) {
    case Layer::kHdf5:
      return "High_Level_IO_Library";
    case Layer::kMpiIo:
      return "Middleware_Layer";
    case Layer::kLustre:
      return "Parallel_File_System";
  }
  return "Unknown";
}

Configuration::Configuration(const ConfigSpace* space,
                             std::vector<std::size_t> indices)
    : space_(space), indices_(std::move(indices)) {
  TUNIO_CHECK_MSG(space_ != nullptr, "configuration needs a space");
  TUNIO_CHECK_MSG(indices_.size() == space_->num_parameters(),
                  "configuration/space arity mismatch");
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    TUNIO_CHECK_MSG(indices_[i] < space_->parameter(i).domain.size(),
                    "domain index out of range for " +
                        space_->parameter(i).name);
  }
}

std::size_t Configuration::index(std::size_t param) const {
  TUNIO_CHECK_MSG(param < indices_.size(), "parameter out of range");
  return indices_[param];
}

void Configuration::set_index(std::size_t param, std::size_t domain_index) {
  TUNIO_CHECK_MSG(param < indices_.size(), "parameter out of range");
  TUNIO_CHECK_MSG(domain_index < space_->parameter(param).domain.size(),
                  "domain index out of range for " +
                      space_->parameter(param).name);
  indices_[param] = domain_index;
}

std::uint64_t Configuration::value(std::size_t param) const {
  return space_->parameter(param).domain[index(param)];
}

std::uint64_t Configuration::value(const std::string& name) const {
  return value(space_->index_of(name));
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ",";
    os << space_->parameter(i).name << "=" << value(i);
  }
  return os.str();
}

ConfigSpace::ConfigSpace(std::vector<Parameter> parameters)
    : parameters_(std::move(parameters)) {
  TUNIO_CHECK_MSG(!parameters_.empty(), "empty configuration space");
  for (const Parameter& p : parameters_) {
    TUNIO_CHECK_MSG(!p.domain.empty(), "parameter with empty domain: " + p.name);
    TUNIO_CHECK_MSG(p.default_index < p.domain.size(),
                    "default index out of range: " + p.name);
  }
}

const Parameter& ConfigSpace::parameter(std::size_t i) const {
  TUNIO_CHECK_MSG(i < parameters_.size(), "parameter index out of range");
  return parameters_[i];
}

std::size_t ConfigSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    if (parameters_[i].name == name) return i;
  }
  throw InvalidArgument("unknown parameter: " + name);
}

bool ConfigSpace::has(const std::string& name) const {
  for (const Parameter& p : parameters_) {
    if (p.name == name) return true;
  }
  return false;
}

double ConfigSpace::permutations() const {
  double product = 1.0;
  for (const Parameter& p : parameters_) {
    product *= static_cast<double>(p.domain.size());
  }
  return product;
}

double ConfigSpace::log10_permutations() const {
  double sum = 0.0;
  for (const Parameter& p : parameters_) {
    sum += std::log10(static_cast<double>(p.domain.size()));
  }
  return sum;
}

Configuration ConfigSpace::default_configuration() const {
  std::vector<std::size_t> indices;
  indices.reserve(parameters_.size());
  for (const Parameter& p : parameters_) indices.push_back(p.default_index);
  return Configuration(this, std::move(indices));
}

ConfigSpace ConfigSpace::tunio12() {
  // Values chosen so the product of domain sizes is
  // 8*9*8*8*3*8*8*10*8*8*2*2 = 2,264,924,160 > 2.18e9, matching §IV.
  std::vector<Parameter> params;

  // --- Lustre ---
  params.push_back({"striping_factor",
                    Layer::kLustre,
                    {1, 2, 4, 8, 16, 32, 48, 64},
                    0,
                    "number of OSTs a file is striped across"});
  params.push_back({"striping_unit",
                    Layer::kLustre,
                    {64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB,
                     2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB},
                    4,
                    "stripe size in bytes"});

  // --- MPI-IO ---
  params.push_back({"cb_nodes",
                    Layer::kMpiIo,
                    {1, 2, 4, 8, 16, 32, 64, 128},
                    0,
                    "number of collective-buffering aggregators"});
  params.push_back({"cb_buffer_size",
                    Layer::kMpiIo,
                    {1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB,
                     64 * MiB, 128 * MiB},
                    4,
                    "per-aggregator staging buffer"});
  params.push_back({"romio_collective",
                    Layer::kMpiIo,
                    {0, 1, 2},  // 0=auto 1=enable 2=disable
                    0,
                    "collective buffering mode (auto/enable/disable)"});

  // --- HDF5 ---
  params.push_back({"sieve_buf_size",
                    Layer::kHdf5,
                    {64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB,
                     2 * MiB, 4 * MiB, 8 * MiB},
                    0,
                    "raw-data sieve buffer size"});
  params.push_back({"alignment",
                    Layer::kHdf5,
                    {1, 64 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB,
                     4 * MiB, 16 * MiB},
                    0,
                    "file-space allocation alignment"});
  params.push_back({"chunk_cache",
                    Layer::kHdf5,
                    {1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB,
                     64 * MiB, 128 * MiB, 256 * MiB, 512 * MiB},
                    0,
                    "chunk cache capacity (rdcc_nbytes)"});
  params.push_back({"meta_block_size",
                    Layer::kHdf5,
                    {2 * KiB, 8 * KiB, 32 * KiB, 64 * KiB, 256 * KiB, 1 * MiB,
                     4 * MiB, 16 * MiB},
                    0,
                    "metadata aggregation block size"});
  params.push_back({"mdc_config",
                    Layer::kHdf5,
                    {2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB, 48 * MiB,
                     64 * MiB, 128 * MiB},
                    0,
                    "metadata cache capacity"});
  params.push_back({"coll_metadata_ops",
                    Layer::kHdf5,
                    {0, 1},
                    0,
                    "collective metadata reads"});
  params.push_back({"coll_metadata_write",
                    Layer::kHdf5,
                    {0, 1},
                    0,
                    "collective metadata writes"});

  return ConfigSpace(std::move(params));
}

}  // namespace tunio::cfg
