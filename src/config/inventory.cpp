#include "config/inventory.hpp"

#include <cmath>

namespace tunio::cfg {

double LibraryInventory::log10_permutations() const {
  return binary_params * std::log10(2.0) + ternary_params * std::log10(3.0) +
         continuous_params * std::log10(5.0);
}

double LibraryInventory::permutations() const {
  return std::pow(10.0, log10_permutations());
}

std::vector<LibraryInventory> figure1_inventories() {
  // Parameter counts follow the public reference manuals the paper cites
  // ([5] HDF5, [6] MPI, [34] PNetCDF, [35] ADIOS, [36] OpenSHMEM-X,
  // [12] Hermes); these are lower bounds, as in the paper. HDF5 + MPI
  // multiply out to ~4 × 10²¹, matching the paper's 3.81 × 10²¹ order.
  return {
      {"HDF5", 17, 1, 6},        // property lists: ~24 user-level knobs
      {"PNetCDF", 10, 0, 4},
      {"MPI (incl. MPI-IO)", 30, 0, 4},
      {"ADIOS", 22, 0, 6},
      {"OpenSHMEM-X", 12, 0, 2},
      {"Hermes", 14, 0, 5},
      {"Lustre (user-settable)", 4, 0, 2},
  };
}

double stack_permutations(const std::vector<LibraryInventory>& stack) {
  double log10_total = 0.0;
  for (const LibraryInventory& lib : stack) {
    log10_total += lib.log10_permutations();
  }
  return std::pow(10.0, log10_total);
}

}  // namespace tunio::cfg
