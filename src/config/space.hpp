// The tuning configuration space.
//
// §IV of the paper tunes 12 parameters across HDF5, MPI-IO and Lustre
// ("a search space of over 2.18 billion permutations"). `ConfigSpace`
// models that space: each `Parameter` has a named discrete domain (the
// values a tuner may pick), a default, and the I/O-stack layer it belongs
// to. A `Configuration` is an assignment of one domain index per
// parameter — the genome the genetic tuner evolves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace tunio::cfg {

/// I/O-stack layer a parameter configures.
enum class Layer { kHdf5, kMpiIo, kLustre };

std::string layer_name(Layer layer);

struct Parameter {
  std::string name;
  Layer layer;
  std::vector<std::uint64_t> domain;  ///< raw values (enums encoded as ints)
  std::size_t default_index = 0;
  std::string description;
};

class ConfigSpace;

/// One point in the configuration space: a domain index per parameter.
class Configuration {
 public:
  Configuration(const ConfigSpace* space, std::vector<std::size_t> indices);

  const ConfigSpace& space() const { return *space_; }
  std::size_t size() const { return indices_.size(); }

  std::size_t index(std::size_t param) const;
  void set_index(std::size_t param, std::size_t domain_index);

  /// Raw value of parameter `param` under this configuration.
  std::uint64_t value(std::size_t param) const;
  std::uint64_t value(const std::string& name) const;

  const std::vector<std::size_t>& indices() const { return indices_; }

  bool operator==(const Configuration& other) const {
    return indices_ == other.indices_;
  }

  /// Compact "name=value,..." rendering for logs.
  std::string to_string() const;

 private:
  const ConfigSpace* space_;
  std::vector<std::size_t> indices_;
};

class ConfigSpace {
 public:
  explicit ConfigSpace(std::vector<Parameter> parameters);

  /// The canonical 12-parameter space of the paper's evaluation
  /// (HDF5 + MPI-IO + Lustre; > 2.18e9 permutations).
  static ConfigSpace tunio12();

  std::size_t num_parameters() const { return parameters_.size(); }
  const Parameter& parameter(std::size_t i) const;
  const std::vector<Parameter>& parameters() const { return parameters_; }

  /// Index of a parameter by name; throws if unknown.
  std::size_t index_of(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Total number of value permutations (product of domain sizes).
  double permutations() const;
  double log10_permutations() const;

  Configuration default_configuration() const;

 private:
  std::vector<Parameter> parameters_;
};

}  // namespace tunio::cfg
