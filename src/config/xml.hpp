// H5Tuner-style XML serialization of configurations.
//
// The reference TunIO implementation builds on H5Tuner, which overrides
// HDF5 application parameters via an XML file grouped by I/O-stack layer:
//
//   <Parameters>
//     <High_Level_IO_Library>
//       <sieve_buf_size>262144</sieve_buf_size>
//       ...
//     </High_Level_IO_Library>
//     <Middleware_Layer>...</Middleware_Layer>
//     <Parallel_File_System>...</Parallel_File_System>
//   </Parameters>
//
// This module writes and parses that format with a deliberately small,
// dependency-free scanner (tags + integer text nodes only).
#pragma once

#include <string>

#include "config/space.hpp"

namespace tunio::cfg {

/// Renders `config` as H5Tuner-style XML.
std::string to_xml(const Configuration& config);

/// Parses H5Tuner-style XML produced by `to_xml` (or hand-written in the
/// same shape) into a configuration over `space`. Unknown parameter tags
/// throw; missing parameters keep their defaults. Values must be members
/// of the parameter's domain.
Configuration from_xml(const ConfigSpace& space, const std::string& xml);

}  // namespace tunio::cfg
