#include "config/stack_settings.hpp"

#include "common/error.hpp"

namespace tunio::cfg {

StackSettings resolve(const Configuration& config) {
  StackSettings s;

  s.lustre.stripe_count =
      static_cast<unsigned>(config.value("striping_factor"));
  s.lustre.stripe_size = config.value("striping_unit");

  s.mpiio.cb_nodes = static_cast<unsigned>(config.value("cb_nodes"));
  s.mpiio.cb_buffer_size = config.value("cb_buffer_size");
  switch (config.value("romio_collective")) {
    case 0:
      s.mpiio.collective = mpiio::CollectiveMode::kAuto;
      break;
    case 1:
      s.mpiio.collective = mpiio::CollectiveMode::kEnable;
      break;
    case 2:
      s.mpiio.collective = mpiio::CollectiveMode::kDisable;
      break;
    default:
      throw InvalidArgument("bad romio_collective value");
  }

  s.fapl.sieve_buf_size = config.value("sieve_buf_size");
  s.fapl.alignment = config.value("alignment");
  s.fapl.alignment_threshold = s.fapl.alignment > 1 ? s.fapl.alignment / 2 : 0;
  s.fapl.meta_block_size = config.value("meta_block_size");
  s.fapl.mdc_nbytes = config.value("mdc_config");
  s.fapl.coll_metadata_ops = config.value("coll_metadata_ops") != 0;
  s.fapl.coll_metadata_write = config.value("coll_metadata_write") != 0;

  s.chunk_cache.rdcc_nbytes = config.value("chunk_cache");
  return s;
}

StackSettings default_settings() {
  const ConfigSpace space = ConfigSpace::tunio12();
  return resolve(space.default_configuration());
}

}  // namespace tunio::cfg
