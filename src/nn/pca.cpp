#include "nn/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace tunio::nn {

namespace {

/// Cyclic Jacobi eigen-decomposition of a symmetric matrix (row-major).
void jacobi_eigen(std::vector<double>& a, std::size_t n,
                  std::vector<double>& eigenvalues,
                  std::vector<double>& eigenvectors) {
  eigenvectors.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eigenvectors[i * n + i] = 1.0;

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        off += a[p * n + q] * a[p * n + q];
      }
    }
    if (off < 1e-18) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-15) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = eigenvectors[k * n + p];
          const double vkq = eigenvectors[k * n + q];
          eigenvectors[k * n + p] = c * vkp - s * vkq;
          eigenvectors[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }
  eigenvalues.resize(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = a[i * n + i];
}

}  // namespace

PcaResult pca_fit(const std::vector<std::vector<double>>& samples) {
  TUNIO_CHECK_MSG(!samples.empty(), "PCA over empty sample set");
  const std::size_t dim = samples.front().size();
  TUNIO_CHECK_MSG(dim > 0, "PCA over zero-dimensional samples");
  for (const auto& row : samples) {
    TUNIO_CHECK_MSG(row.size() == dim, "ragged PCA samples");
  }

  PcaResult result;
  result.means.assign(dim, 0.0);
  for (const auto& row : samples) {
    for (std::size_t j = 0; j < dim; ++j) result.means[j] += row[j];
  }
  for (double& m : result.means) m /= static_cast<double>(samples.size());

  // Covariance.
  std::vector<double> cov(dim * dim, 0.0);
  for (const auto& row : samples) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double di = row[i] - result.means[i];
      for (std::size_t j = i; j < dim; ++j) {
        cov[i * dim + j] += di * (row[j] - result.means[j]);
      }
    }
  }
  const double denom = std::max<std::size_t>(1, samples.size() - 1);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = i; j < dim; ++j) {
      cov[i * dim + j] /= denom;
      cov[j * dim + i] = cov[i * dim + j];
    }
  }

  std::vector<double> eigenvalues;
  std::vector<double> eigenvectors;
  jacobi_eigen(cov, dim, eigenvalues, eigenvectors);

  // Sort components by descending eigenvalue.
  std::vector<std::size_t> order(dim);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return eigenvalues[a] > eigenvalues[b];
  });
  result.components.reserve(dim);
  result.eigenvalues.reserve(dim);
  for (std::size_t k : order) {
    std::vector<double> component(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      component[i] = eigenvectors[i * dim + k];
    }
    result.components.push_back(std::move(component));
    result.eigenvalues.push_back(std::max(0.0, eigenvalues[k]));
  }
  return result;
}

std::vector<double> pca_importance(const PcaResult& pca) {
  TUNIO_CHECK_MSG(!pca.components.empty(), "importance of empty PCA");
  const std::size_t dim = pca.components.front().size();
  std::vector<double> importance(dim, 0.0);
  for (std::size_t k = 0; k < pca.components.size(); ++k) {
    for (std::size_t i = 0; i < dim; ++i) {
      importance[i] += std::abs(pca.components[k][i]) * pca.eigenvalues[k];
    }
  }
  const double total =
      std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

}  // namespace tunio::nn
