// A small fully connected network with ReLU hidden layers, linear output,
// MSE loss and Adam — the C++ stand-in for the paper's Keras models.
//
// Supports everything the TunIO agents need: forward evaluation, a view
// of the last hidden activation (the Smart Configuration Generation
// "state observation"), single-sample and mini-batch SGD/Adam training,
// and soft parameter copies (target networks for Q-learning).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace tunio::nn {

struct AdamParams {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class DenseNet {
 public:
  /// `layer_sizes` = {input, hidden..., output}; at least {in, out}.
  DenseNet(std::vector<std::size_t> layer_sizes, Rng& rng,
           AdamParams adam = {});

  std::size_t input_size() const { return layer_sizes_.front(); }
  std::size_t output_size() const { return layer_sizes_.back(); }

  /// Forward pass.
  std::vector<double> forward(const std::vector<double>& input) const;

  /// Forward pass that also returns the last hidden layer's activation
  /// (the embedding used as RL "state observation").
  std::vector<double> forward_with_embedding(
      const std::vector<double>& input, std::vector<double>* embedding) const;

  /// One Adam step on a single (input, target) pair; returns the MSE.
  double train(const std::vector<double>& input,
               const std::vector<double>& target);

  /// One Adam step on a single sample where only `output_index`'s error
  /// is propagated (Q-learning updates one action's value).
  double train_output(const std::vector<double>& input,
                      std::size_t output_index, double target);

  /// Mini-batch training epoch over all samples; returns the mean MSE.
  double train_epoch(const std::vector<std::vector<double>>& inputs,
                     const std::vector<std::vector<double>>& targets);

  /// θ ← τ·other + (1−τ)·θ (target-network soft update).
  void soft_update_from(const DenseNet& other, double tau);

  /// Hard parameter copy.
  void copy_from(const DenseNet& other);

 private:
  struct Layer {
    Matrix weights;  ///< out × in
    std::vector<double> bias;
    // Adam state
    Matrix m_w, v_w;
    std::vector<double> m_b, v_b;
  };

  /// Backprop for one sample given an output-error vector dL/dy.
  void backward(const std::vector<double>& input,
                const std::vector<double>& out_error);

  std::vector<std::size_t> layer_sizes_;
  std::vector<Layer> layers_;
  AdamParams adam_;
  std::uint64_t step_ = 0;

  // scratch from the last forward_cached call
  mutable std::vector<std::vector<double>> activations_;
  std::vector<double> forward_cached(const std::vector<double>& input) const;
};

}  // namespace tunio::nn
