// A minimal dense matrix for the neural-network components.
//
// The RL agents' networks are tiny (tens of units), so the priority is
// clarity and cache-friendly row-major storage, not BLAS.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace tunio::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = A * x (x.size() == cols).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// y = A^T * x (x.size() == rows).
  std::vector<double> multiply_transposed(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tunio::nn
