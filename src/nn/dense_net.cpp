#include "nn/dense_net.hpp"

#include <algorithm>
#include <cmath>

namespace tunio::nn {

DenseNet::DenseNet(std::vector<std::size_t> layer_sizes, Rng& rng,
                   AdamParams adam)
    : layer_sizes_(std::move(layer_sizes)), adam_(adam) {
  TUNIO_CHECK_MSG(layer_sizes_.size() >= 2, "network needs >= 2 layers");
  layers_.reserve(layer_sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    const std::size_t in = layer_sizes_[l];
    const std::size_t out = layer_sizes_[l + 1];
    Layer layer;
    layer.weights = Matrix(out, in);
    // He initialization for the ReLU stack.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (double& w : layer.weights.data()) w = rng.normal(0.0, scale);
    layer.bias.assign(out, 0.0);
    layer.m_w = Matrix(out, in);
    layer.v_w = Matrix(out, in);
    layer.m_b.assign(out, 0.0);
    layer.v_b.assign(out, 0.0);
    layers_.push_back(std::move(layer));
  }
}

std::vector<double> DenseNet::forward_cached(
    const std::vector<double>& input) const {
  TUNIO_CHECK_MSG(input.size() == input_size(), "input size mismatch");
  activations_.clear();
  activations_.push_back(input);
  std::vector<double> current = input;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    std::vector<double> z = layers_[l].weights.multiply(current);
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += layers_[l].bias[i];
    if (l + 1 < layers_.size()) {
      for (double& v : z) v = std::max(0.0, v);  // ReLU hidden
    }
    activations_.push_back(z);
    current = std::move(z);
  }
  return current;
}

std::vector<double> DenseNet::forward(const std::vector<double>& input) const {
  return forward_cached(input);
}

std::vector<double> DenseNet::forward_with_embedding(
    const std::vector<double>& input, std::vector<double>* embedding) const {
  std::vector<double> out = forward_cached(input);
  if (embedding != nullptr && activations_.size() >= 2) {
    *embedding = activations_[activations_.size() - 2];
  }
  return out;
}

void DenseNet::backward(const std::vector<double>& input,
                        const std::vector<double>& out_error) {
  (void)input;  // activations_[0] already holds it
  ++step_;
  const double lr = adam_.learning_rate;
  const double b1 = adam_.beta1;
  const double b2 = adam_.beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(step_));

  std::vector<double> delta = out_error;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    Layer& layer = layers_[l];
    const std::vector<double>& a_in = activations_[l];
    // Gradient wrt pre-activation: hidden layers carry the ReLU mask.
    if (l + 1 < layers_.size()) {
      const std::vector<double>& a_out = activations_[l + 1];
      for (std::size_t i = 0; i < delta.size(); ++i) {
        if (a_out[i] <= 0.0) delta[i] = 0.0;
      }
    }
    // Parameter updates (Adam).
    for (std::size_t o = 0; o < layer.weights.rows(); ++o) {
      for (std::size_t i = 0; i < layer.weights.cols(); ++i) {
        const double grad = delta[o] * a_in[i];
        double& m = layer.m_w(o, i);
        double& v = layer.v_w(o, i);
        m = b1 * m + (1.0 - b1) * grad;
        v = b2 * v + (1.0 - b2) * grad * grad;
        layer.weights(o, i) -=
            lr * (m / bc1) / (std::sqrt(v / bc2) + adam_.epsilon);
      }
      double& mb = layer.m_b[o];
      double& vb = layer.v_b[o];
      mb = b1 * mb + (1.0 - b1) * delta[o];
      vb = b2 * vb + (1.0 - b2) * delta[o] * delta[o];
      layer.bias[o] -= lr * (mb / bc1) / (std::sqrt(vb / bc2) + adam_.epsilon);
    }
    if (l > 0) {
      delta = layer.weights.multiply_transposed(delta);
    }
  }
}

double DenseNet::train(const std::vector<double>& input,
                       const std::vector<double>& target) {
  TUNIO_CHECK_MSG(target.size() == output_size(), "target size mismatch");
  const std::vector<double> out = forward_cached(input);
  std::vector<double> error(out.size());
  double mse = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double diff = out[i] - target[i];
    error[i] = 2.0 * diff / static_cast<double>(out.size());
    mse += diff * diff;
  }
  mse /= static_cast<double>(out.size());
  backward(input, error);
  return mse;
}

double DenseNet::train_output(const std::vector<double>& input,
                              std::size_t output_index, double target) {
  TUNIO_CHECK_MSG(output_index < output_size(), "output index out of range");
  const std::vector<double> out = forward_cached(input);
  std::vector<double> error(out.size(), 0.0);
  const double diff = out[output_index] - target;
  error[output_index] = 2.0 * diff;
  backward(input, error);
  return diff * diff;
}

double DenseNet::train_epoch(const std::vector<std::vector<double>>& inputs,
                             const std::vector<std::vector<double>>& targets) {
  TUNIO_CHECK_MSG(inputs.size() == targets.size(), "dataset size mismatch");
  TUNIO_CHECK_MSG(!inputs.empty(), "empty training set");
  double total = 0.0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    total += train(inputs[i], targets[i]);
  }
  return total / static_cast<double>(inputs.size());
}

void DenseNet::soft_update_from(const DenseNet& other, double tau) {
  TUNIO_CHECK_MSG(layer_sizes_ == other.layer_sizes_,
                  "soft update across mismatched architectures");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    auto& mine = layers_[l];
    const auto& theirs = other.layers_[l];
    for (std::size_t i = 0; i < mine.weights.data().size(); ++i) {
      mine.weights.data()[i] = tau * theirs.weights.data()[i] +
                               (1.0 - tau) * mine.weights.data()[i];
    }
    for (std::size_t i = 0; i < mine.bias.size(); ++i) {
      mine.bias[i] = tau * theirs.bias[i] + (1.0 - tau) * mine.bias[i];
    }
  }
}

void DenseNet::copy_from(const DenseNet& other) { soft_update_from(other, 1.0); }

}  // namespace tunio::nn
