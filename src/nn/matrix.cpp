#include "nn/matrix.hpp"

namespace tunio::nn {

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  TUNIO_CHECK_MSG(x.size() == cols_, "matrix-vector size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

std::vector<double> Matrix::multiply_transposed(
    const std::vector<double>& x) const {
  TUNIO_CHECK_MSG(x.size() == rows_, "matrix^T-vector size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
  }
  return y;
}

}  // namespace tunio::nn
