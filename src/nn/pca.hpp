// Principal Component Analysis via Jacobi eigen-decomposition of the
// covariance matrix.
//
// Used by Smart Configuration Generation's offline training: "a PCA
// analysis is performed on the parameters with respect to perf to train
// the model to isolate the most impactful parameters" (§III-C). The
// loading magnitudes of the dominant components, weighted by explained
// variance, score each parameter's impact.
#pragma once

#include <cstddef>
#include <vector>

namespace tunio::nn {

struct PcaResult {
  /// components[k] = unit-length loading vector of the k-th component,
  /// sorted by descending eigenvalue.
  std::vector<std::vector<double>> components;
  /// Eigenvalues (variances along each component), same order.
  std::vector<double> eigenvalues;
  /// Column means removed before the decomposition.
  std::vector<double> means;
};

/// Fits PCA to `rows` samples of dimension `dim` (row-major `data`).
PcaResult pca_fit(const std::vector<std::vector<double>>& samples);

/// Per-dimension importance: sum over components of
/// |loading| * eigenvalue, normalized to sum to 1.
std::vector<double> pca_importance(const PcaResult& pca);

}  // namespace tunio::nn
