// Baseline stopping policies the paper compares TunIO against.
#pragma once

#include "tuner/genetic_tuner.hpp"

namespace tunio::tuner {

/// The heuristic early stopper of §IV-C: stop when the best perf has not
/// improved by `threshold` (relative) over the last `window` iterations.
/// Defaults are the paper's 5% / 5 iterations.
Stopper make_heuristic_stopper(double threshold = 0.05, unsigned window = 5);

/// "Maximizing Performance" stopping (§IV-C): an oracle that stops the
/// moment perf reaches `target_perf` (the known optimum); the paper
/// assumes a perfect model for this comparison.
Stopper make_max_performance_stopper(double target_perf);

/// Never stops (full-budget tuning / HSTuner "No Stop").
Stopper make_no_stopper();

}  // namespace tunio::tuner
