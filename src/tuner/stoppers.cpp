#include "tuner/stoppers.hpp"

namespace tunio::tuner {

Stopper make_heuristic_stopper(double threshold, unsigned window) {
  return [threshold, window](unsigned generation,
                             const TuningResult& progress) {
    if (generation + 1 <= window) return false;
    const auto& history = progress.history;
    const double now = history.back().best_perf;
    const double then =
        history[history.size() - 1 - window].best_perf;
    if (then <= 0.0) return false;
    return (now - then) / then < threshold;
  };
}

Stopper make_max_performance_stopper(double target_perf) {
  return [target_perf](unsigned, const TuningResult& progress) {
    return progress.best_perf >= target_perf;
  };
}

Stopper make_no_stopper() {
  return [](unsigned, const TuningResult&) { return false; };
}

}  // namespace tunio::tuner
