#include "tuner/objective.hpp"

#include <atomic>
#include <bit>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "minic/parser.hpp"
#include "obs/metrics.hpp"
#include "replay/hooks.hpp"
#include "replay/invariance.hpp"
#include "replay/optrace.hpp"
#include "replay/replayer.hpp"
#include "workloads/sources.hpp"

namespace tunio::tuner {

std::vector<Evaluation> Objective::evaluate_batch(
    const std::vector<cfg::Configuration>& configs) {
  BatchScope scope(configs.size());
  std::vector<Evaluation> results;
  results.reserve(configs.size());
  for (const cfg::Configuration& config : configs) {
    results.push_back(evaluate(config));
  }
  return results;
}

namespace {
thread_local bool g_in_batch = false;
}  // namespace

Objective::BatchScope::BatchScope(std::size_t requested)
    : counted_(!g_in_batch) {
  if (!counted_) return;
  g_in_batch = true;
  // Cache-effectiveness attribution: together with
  // `tuner.eval.interpreted` / `tuner.eval.replayed` (below) and
  // `service.cache.hits` / `service.cache.misses` (ResultCache), the
  // deltas of these counters around a search separate work the search
  // requested from work actually simulated.
  static obs::Counter* batches =
      &obs::MetricsRegistry::global().counter("tuner.eval.batches");
  static obs::Counter* requests =
      &obs::MetricsRegistry::global().counter("tuner.eval.requested");
  batches->add(1);
  requests->add(requested);
}

Objective::BatchScope::~BatchScope() {
  if (counted_) g_in_batch = false;
}

namespace {

/// Shared run-averaging logic for both objective flavors.
///
/// Concurrency-safe by construction: every evaluation provisions its own
/// simulated testbed (fresh MpiSim/PfsSimulator per run) and draws its
/// measurement noise from an RNG stream derived from the testbed seed and
/// the genome alone. Results therefore depend only on (seed, config) —
/// never on call order, interleaving, or which thread ran the evaluation.
class ObjectiveBase : public Objective {
 public:
  ObjectiveBase(TestbedOptions testbed, ReplayGate gate)
      : testbed_(testbed), gate_(std::move(gate)) {}

  ReplayGate replay_gate() const override { return gate_; }

  Evaluation evaluate(const cfg::Configuration& config) override {
    const std::shared_ptr<const GenomeInputs> in = genome_inputs(config);
    // The simulation is deterministic in (seed, config): run the stack
    // once and let the `runs_per_eval` volatility samples below perturb
    // that single measurement. Bit-identical to simulating every run.
    const RunOutcome out = run_via_fast_path(in->settings);
    Evaluation eval;
    double perf_sum = 0.0;
    double seconds_sum = 0.0;
    for (const double factor : in->noise_factors) {
      // Platform volatility: multiplicative measurement noise.
      perf_sum += std::max(0.0, out.perf_mbps * factor);
      seconds_sum += out.seconds;
    }
    eval.detail = out.detail;
    eval.perf_mbps = perf_sum / testbed_.runs_per_eval;
    // Only one run's time is billed to the budget (see header comment),
    // plus the fixed per-evaluation launch overhead.
    eval.eval_seconds =
        seconds_sum / testbed_.runs_per_eval + testbed_.launch_overhead_seconds;
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    static obs::Histogram* perf_hist =
        &obs::MetricsRegistry::global().histogram(
            "tuner.eval.perf_mbps", {100.0, 1000.0, 5000.0, 20000.0});
    perf_hist->observe(eval.perf_mbps, name());
    return eval;
  }

  bool concurrent_safe() const override { return true; }

  std::uint64_t evaluations() const override {
    return evaluations_.load(std::memory_order_relaxed);
  }

 protected:
  struct RunOutcome {
    double perf_mbps;
    SimSeconds seconds;
    trace::PerfResult detail;
  };
  /// Must be safe to call concurrently: the stack objects are per-call,
  /// so implementations may only read shared state.
  virtual RunOutcome run_once(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                              const cfg::StackSettings& settings) = 0;

  TestbedOptions testbed_;
  std::atomic<std::uint64_t> evaluations_ = 0;

 private:
  // --- record-once/replay-many fast path ---------------------------------
  //
  // State machine (all transitions under mutex_):
  //
  //   kIdle --record--> kRecording --ok--> kRecorded --verify--> kVerifying
  //     --bit-identical--> kVerified (replay-only from here on)
  //     --any mismatch / invalid trace--> kDisabled (interpret forever)
  //
  // Evaluations arriving while a record or verify is in flight on another
  // thread simply interpret; the scheme therefore never blocks and stays
  // bit-identical under any interleaving (replay is only used after it was
  // proven to produce the same bits as interpretation).

  enum class FastState {
    kIdle,
    kRecording,
    kRecorded,
    kVerifying,
    kVerified,
    kDisabled,
  };
  enum class Path { kInterpret, kRecord, kVerify, kReplay };

  /// Everything an evaluation derives from the configuration alone: the
  /// resolved stack settings and the noise factors `1 + N(0, sigma)`,
  /// drawn from the per-genome stream (see class comment). Both depend
  /// only on (testbed seed, genome), and recomputing them — mt19937_64
  /// seeding above all — dominates the per-evaluation overhead once the
  /// simulation itself is replayed, so they are memoized per genome.
  struct GenomeInputs {
    std::vector<std::size_t> indices;  ///< guards against hash collisions
    cfg::StackSettings settings;
    std::vector<double> noise_factors;
  };

  std::shared_ptr<const GenomeInputs> genome_inputs(
      const cfg::Configuration& config) {
    const std::uint64_t key = hash_indices(config.indices());
    {
      std::lock_guard<std::mutex> lock(inputs_mutex_);
      const auto it = inputs_cache_.find(key);
      if (it != inputs_cache_.end() && it->second->indices == config.indices())
        return it->second;
    }
    auto entry = std::make_shared<GenomeInputs>();
    entry->indices = config.indices();
    entry->settings = cfg::resolve(config);
    Rng rng(derive_stream(testbed_.seed, key));
    entry->noise_factors.reserve(testbed_.runs_per_eval);
    for (unsigned run = 0; run < testbed_.runs_per_eval; ++run) {
      entry->noise_factors.push_back(
          1.0 + rng.normal(0.0, testbed_.measurement_noise));
    }
    std::lock_guard<std::mutex> lock(inputs_mutex_);
    if (inputs_cache_.size() < kInputsCacheCap) inputs_cache_[key] = entry;
    return entry;
  }

  RunOutcome run_interpreted(const cfg::StackSettings& settings) {
    mpisim::MpiSim mpi(testbed_.num_ranks);
    pfs::PfsSimulator fs(testbed_.pfs);
    return run_once(mpi, fs, settings);
  }

  RunOutcome run_replayed(const replay::OpTrace& trace,
                          const cfg::StackSettings& settings) {
    mpisim::MpiSim mpi(testbed_.num_ranks);
    pfs::PfsSimulator fs(testbed_.pfs);
    const replay::ReplayResult r = replay::replay(trace, mpi, fs, settings);
    return {r.perf.perf_mbps, r.sim_seconds, r.perf};
  }

  static bool same_outcome(const RunOutcome& a, const RunOutcome& b) {
    return replay::bit_identical(a.detail, b.detail) &&
           std::bit_cast<std::uint64_t>(a.seconds) ==
               std::bit_cast<std::uint64_t>(b.seconds);
  }

  static void count(const char* metric) {
    obs::MetricsRegistry::global().counter(metric).add(1);
  }

  RunOutcome run_via_fast_path(const cfg::StackSettings& settings) {
    Path path = Path::kInterpret;
    std::shared_ptr<const replay::OpTrace> trace;
    if (gate_.eligible && testbed_.replay != ReplayMode::kOff) {
      std::lock_guard<std::mutex> lock(mutex_);
      switch (state_) {
        case FastState::kIdle:
          state_ = FastState::kRecording;
          path = Path::kRecord;
          break;
        case FastState::kRecorded:
          state_ = FastState::kVerifying;
          path = Path::kVerify;
          trace = trace_;
          break;
        case FastState::kVerified:
          path = testbed_.replay == ReplayMode::kVerify ? Path::kVerify
                                                        : Path::kReplay;
          trace = trace_;
          break;
        default:
          // Record/verify in flight on another thread, or disabled.
          break;
      }
    }
    switch (path) {
      case Path::kRecord: {
        replay::Recorder recorder;
        RunOutcome out;
        {
          mpisim::MpiSim mpi(testbed_.num_ranks);
          pfs::PfsSimulator fs(testbed_.pfs);
          replay::RecordScope scope(recorder);
          out = run_once(mpi, fs, settings);
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (recorder.valid()) {
          trace_ = std::make_shared<const replay::OpTrace>(recorder.take());
          state_ = FastState::kRecorded;
        } else {
          state_ = FastState::kDisabled;
        }
        count("tuner.eval.interpreted");
        return out;
      }
      case Path::kVerify: {
        const RunOutcome interpreted = run_interpreted(settings);
        const RunOutcome replayed = run_replayed(*trace, settings);
        const bool identical = same_outcome(interpreted, replayed);
        if (testbed_.replay == ReplayMode::kVerify) {
          TUNIO_CHECK_MSG(identical,
                          "replay diverged from interpretation in " + name());
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (state_ == FastState::kVerifying) {
            state_ = identical ? FastState::kVerified : FastState::kDisabled;
          }
        }
        count("tuner.eval.interpreted");
        return interpreted;
      }
      case Path::kReplay:
        count("tuner.eval.replayed");
        return run_replayed(*trace, settings);
      case Path::kInterpret:
        break;
    }
    count("tuner.eval.interpreted");
    return run_interpreted(settings);
  }

  const ReplayGate gate_;
  std::mutex mutex_;
  /// Bounds the per-genome inputs cache; overflow just recomputes.
  static constexpr std::size_t kInputsCacheCap = 1u << 16;
  std::mutex inputs_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const GenomeInputs>>
      inputs_cache_;

  FastState state_ = FastState::kIdle;
  std::shared_ptr<const replay::OpTrace> trace_;
};

class WorkloadObjective final : public ObjectiveBase {
 public:
  WorkloadObjective(std::shared_ptr<const wl::Workload> workload,
                    TestbedOptions testbed, wl::RunOptions run_options)
      : ObjectiveBase(testbed, gate(workload->name())),
        workload_(std::move(workload)),
        run_options_(std::move(run_options)) {}

  std::string name() const override { return workload_->name(); }

  /// A native driver qualifies for the replay fast path when its mini-C
  /// source is known and the settings-taint gate proves the op stream
  /// free of tuned_* influence. (Drivers without a registered source —
  /// custom workloads — conservatively stay on the interpreted path.)
  /// The recorded trace still comes from the driver itself; the source
  /// is only the invariance evidence.
  static ReplayGate gate(const std::string& workload_name) {
    const std::optional<std::string> source =
        wl::sources::source_for(workload_name);
    if (!source) {
      return {false, "no mini-C source registered for " + workload_name};
    }
    try {
      const replay::InvarianceReport report =
          replay::analyze_invariance(minic::parse(*source));
      return {!report.dependent, report.reason};
    } catch (const std::exception& e) {
      return {false, std::string("source analysis failed: ") + e.what()};
    }
  }

 protected:
  RunOutcome run_once(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                      const cfg::StackSettings& settings) override {
    const wl::RunResult result =
        workload_->run(mpi, fs, settings, run_options_);
    return {result.perf.perf_mbps, result.sim_seconds, result.perf};
  }

 private:
  std::shared_ptr<const wl::Workload> workload_;
  wl::RunOptions run_options_;
};

class KernelObjective final : public ObjectiveBase {
 public:
  KernelObjective(const minic::Program& program, TestbedOptions testbed,
                  interp::InterpOptions interp_options)
      : ObjectiveBase(testbed, gate(program)),
        program_(minic::clone(program)),
        interp_options_(std::move(interp_options)) {}

  std::string name() const override { return "minic-program"; }

  static ReplayGate gate(const minic::Program& program) {
    const replay::InvarianceReport report =
        replay::analyze_invariance(program);
    return {!report.dependent, report.reason};
  }

 protected:
  RunOutcome run_once(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                      const cfg::StackSettings& settings) override {
    const interp::InterpResult result =
        interp::execute(program_, mpi, fs, settings, interp_options_);
    return {result.perf.perf_mbps, result.sim_seconds, result.perf};
  }

 private:
  minic::Program program_;
  interp::InterpOptions interp_options_;
};

}  // namespace

std::unique_ptr<Objective> make_workload_objective(
    std::shared_ptr<const wl::Workload> workload, TestbedOptions testbed,
    wl::RunOptions run_options) {
  return std::make_unique<WorkloadObjective>(std::move(workload), testbed,
                                             std::move(run_options));
}

std::unique_ptr<Objective> make_kernel_objective(
    const minic::Program& program, TestbedOptions testbed,
    interp::InterpOptions interp_options) {
  return std::make_unique<KernelObjective>(program, testbed,
                                           std::move(interp_options));
}

}  // namespace tunio::tuner
