#include "tuner/objective.hpp"

#include <atomic>

#include "common/rng.hpp"
#include "minic/parser.hpp"
#include "obs/metrics.hpp"

namespace tunio::tuner {

std::vector<Evaluation> Objective::evaluate_batch(
    const std::vector<cfg::Configuration>& configs) {
  std::vector<Evaluation> results;
  results.reserve(configs.size());
  for (const cfg::Configuration& config : configs) {
    results.push_back(evaluate(config));
  }
  return results;
}

namespace {

/// Shared run-averaging logic for both objective flavors.
///
/// Concurrency-safe by construction: every evaluation provisions its own
/// simulated testbed (fresh MpiSim/PfsSimulator per run) and draws its
/// measurement noise from an RNG stream derived from the testbed seed and
/// the genome alone. Results therefore depend only on (seed, config) —
/// never on call order, interleaving, or which thread ran the evaluation.
class ObjectiveBase : public Objective {
 public:
  explicit ObjectiveBase(TestbedOptions testbed) : testbed_(testbed) {}

  Evaluation evaluate(const cfg::Configuration& config) override {
    const cfg::StackSettings settings = cfg::resolve(config);
    // Per-genome noise stream (see class comment).
    Rng rng(derive_stream(testbed_.seed, hash_indices(config.indices())));
    Evaluation eval;
    double perf_sum = 0.0;
    double seconds_sum = 0.0;
    for (unsigned run = 0; run < testbed_.runs_per_eval; ++run) {
      mpisim::MpiSim mpi(testbed_.num_ranks);
      pfs::PfsSimulator fs(testbed_.pfs);
      auto [perf, seconds, detail] = run_once(mpi, fs, settings);
      // Platform volatility: multiplicative measurement noise.
      const double noisy =
          perf * (1.0 + rng.normal(0.0, testbed_.measurement_noise));
      perf_sum += std::max(0.0, noisy);
      seconds_sum += seconds;
      eval.detail = detail;
    }
    eval.perf_mbps = perf_sum / testbed_.runs_per_eval;
    // Only one run's time is billed to the budget (see header comment),
    // plus the fixed per-evaluation launch overhead.
    eval.eval_seconds =
        seconds_sum / testbed_.runs_per_eval + testbed_.launch_overhead_seconds;
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    static obs::Histogram* perf_hist =
        &obs::MetricsRegistry::global().histogram(
            "tuner.eval.perf_mbps", {100.0, 1000.0, 5000.0, 20000.0});
    perf_hist->observe(eval.perf_mbps, name());
    return eval;
  }

  bool concurrent_safe() const override { return true; }

  std::uint64_t evaluations() const override {
    return evaluations_.load(std::memory_order_relaxed);
  }

 protected:
  struct RunOutcome {
    double perf_mbps;
    SimSeconds seconds;
    trace::PerfResult detail;
  };
  /// Must be safe to call concurrently: the stack objects are per-call,
  /// so implementations may only read shared state.
  virtual RunOutcome run_once(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                              const cfg::StackSettings& settings) = 0;

  TestbedOptions testbed_;
  std::atomic<std::uint64_t> evaluations_ = 0;
};

class WorkloadObjective final : public ObjectiveBase {
 public:
  WorkloadObjective(std::shared_ptr<const wl::Workload> workload,
                    TestbedOptions testbed, wl::RunOptions run_options)
      : ObjectiveBase(testbed),
        workload_(std::move(workload)),
        run_options_(std::move(run_options)) {}

  std::string name() const override { return workload_->name(); }

 protected:
  RunOutcome run_once(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                      const cfg::StackSettings& settings) override {
    const wl::RunResult result =
        workload_->run(mpi, fs, settings, run_options_);
    return {result.perf.perf_mbps, result.sim_seconds, result.perf};
  }

 private:
  std::shared_ptr<const wl::Workload> workload_;
  wl::RunOptions run_options_;
};

class KernelObjective final : public ObjectiveBase {
 public:
  KernelObjective(const minic::Program& program, TestbedOptions testbed,
                  interp::InterpOptions interp_options)
      : ObjectiveBase(testbed), interp_options_(std::move(interp_options)) {
    for (const minic::Function& fn : program.functions) {
      minic::Function copy;
      copy.return_type = fn.return_type;
      copy.name = fn.name;
      copy.params = fn.params;
      copy.line = fn.line;
      copy.body = minic::clone(*fn.body);
      program_.functions.push_back(std::move(copy));
    }
    program_.next_stmt_id = program.next_stmt_id;
  }

  std::string name() const override { return "minic-program"; }

 protected:
  RunOutcome run_once(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                      const cfg::StackSettings& settings) override {
    const interp::InterpResult result =
        interp::execute(program_, mpi, fs, settings, interp_options_);
    return {result.perf.perf_mbps, result.sim_seconds, result.perf};
  }

 private:
  minic::Program program_;
  interp::InterpOptions interp_options_;
};

}  // namespace

std::unique_ptr<Objective> make_workload_objective(
    std::shared_ptr<const wl::Workload> workload, TestbedOptions testbed,
    wl::RunOptions run_options) {
  return std::make_unique<WorkloadObjective>(std::move(workload), testbed,
                                             std::move(run_options));
}

std::unique_ptr<Objective> make_kernel_objective(
    const minic::Program& program, TestbedOptions testbed,
    interp::InterpOptions interp_options) {
  return std::make_unique<KernelObjective>(program, testbed,
                                           std::move(interp_options));
}

}  // namespace tunio::tuner
