// The genetic tuning pipeline (HSTuner-style, built on a DEAP-like loop).
//
// "The tuning framework is built using [DEAP] ... It is used to generate
// the configuration, use the results of the configuration evaluation to
// select the next generation's parents ... The tuning pipeline employs
// elitism ... To account for [its] drawbacks, TunIO employs tournament
// selection, a technique where three individuals are chosen randomly
// from the population of an iteration/generation, and the best two are
// carried forward as parents for the next generation." (§III-A)
//
// TunIO's components attach via two hooks:
//   * SubsetProvider — Smart Configuration Generation: restricts the
//     genes that crossover/mutation may touch in a generation; frozen
//     genes keep the elite's values (impact-first search-space
//     reduction);
//   * Stopper — Early Stopping: consulted after every generation.
//
// Running without hooks *is* the HSTuner baseline.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "config/space.hpp"
#include "tuner/objective.hpp"

namespace tunio::tuner {

struct GaOptions {
  unsigned population = 16;
  double crossover_prob = 0.9;    ///< per offspring pair
  double mutation_prob = 0.12;    ///< per gene
  unsigned tournament_size = 3;   ///< pick 3, best 2 become parents
  unsigned elitism = 1;           ///< best individuals carried through
  unsigned max_generations = 50;
  std::uint64_t seed = 0x5EED;
  /// Cache fitness by genome: elite individuals are not re-run.
  bool cache_evaluations = true;
  /// Per-gene probability of deviating from the defaults in the initial
  /// population. H5Evolve-style seeding: generation 0 explores *around*
  /// the stack defaults rather than uniformly at random, so discovery
  /// effort is spread over the run instead of front-loaded.
  double init_mutation_prob = 0.08;
  /// Optional starting individual (domain indices). When set, individual
  /// 0 of generation 0 is this configuration instead of the defaults —
  /// used by interactive sessions to resume from a previous best.
  std::optional<std::vector<std::size_t>> seed_indices;
};

/// Everything known after generation `generation` finished.
struct GenerationStats {
  unsigned generation = 0;
  double generation_best_perf = 0.0;  ///< best individual this generation
  double best_perf = 0.0;             ///< best seen so far (elitism)
  double cumulative_seconds = 0.0;    ///< tuning budget spent so far
  std::vector<std::size_t> subset;    ///< tuned parameter subset (empty=all)
};

struct TuningResult {
  double initial_perf = 0.0;  ///< default configuration's perf
  std::vector<GenerationStats> history;
  std::optional<cfg::Configuration> best_config;
  double best_perf = 0.0;
  double total_seconds = 0.0;
  unsigned generations_run = 0;
  bool early_stopped = false;
};

/// Decides the parameter subset to tune in the coming generation.
/// Receives the 0-based generation index and the progress so far.
using SubsetProvider = std::function<std::vector<std::size_t>(
    unsigned generation, const TuningResult& progress)>;

/// Returns true to terminate tuning after this generation.
using Stopper =
    std::function<bool(unsigned generation, const TuningResult& progress)>;

class GeneticTuner {
 public:
  GeneticTuner(const cfg::ConfigSpace& space, Objective& objective,
               GaOptions options = {});

  void set_subset_provider(SubsetProvider provider);
  void set_stopper(Stopper stopper);

  /// Runs the full tuning pipeline: drives the stepping API below until
  /// the generation budget is exhausted or the stopper fires.
  TuningResult run();

  // --- stepping API (the `tuners::Tuner` face of the GA) -----------------
  //
  // `run()` is exactly `while (!exhausted()) observe_iteration(
  // objective.evaluate_batch(begin_iteration()))` plus the stopper, so an
  // external driver interleaving the same calls reproduces `run()`
  // bit-identically: the RNG draw order (initial population, then one
  // breeding pass per generation) and the evaluate_batch sequence are the
  // same whichever loop issues them.

  /// Breeds (or initializes) the coming generation's population, consults
  /// the subset provider, partitions the population against the fitness
  /// cache, and returns the configurations that need fresh evaluation —
  /// possibly empty when every individual is a cache hit (the generation
  /// still advances on `observe_iteration`).
  std::vector<cfg::Configuration> begin_iteration();

  /// Accepts evaluations for exactly the configurations the last
  /// `begin_iteration` returned (same order). Updates bests, history and
  /// metrics; returns the simulated seconds billed to the budget.
  double observe_iteration(const std::vector<Evaluation>& fresh);

  /// Tuning progress so far (valid after the first `observe_iteration`).
  const TuningResult& progress() const { return result_; }

  /// True once `max_generations` generations have been observed.
  bool exhausted() const { return exhausted_; }

  /// Records that an external stopper terminated the search.
  void mark_early_stopped();

 private:
  using Genome = std::vector<std::size_t>;

  cfg::Configuration to_config(const Genome& genome) const;
  Genome random_genome();

  /// Breeds `population_` into the next generation (elitism, tournament
  /// selection, crossover, mutation, subset masking).
  void breed();

  /// Tournament: sample `tournament_size`, return the best two.
  std::pair<const Genome*, const Genome*> tournament(
      const std::vector<Genome>& population,
      const std::vector<double>& scores);

  const cfg::ConfigSpace& space_;
  Objective& objective_;
  GaOptions options_;
  Rng rng_;
  SubsetProvider subset_provider_;
  Stopper stopper_;
  /// Caches the *full* evaluation (perf and simulated cost), keyed by
  /// genome. Hits re-use the perf and bill zero seconds to the budget —
  /// the same accounting the service-layer result cache uses, so a run
  /// behaves identically whichever cache satisfies a repeat genome.
  std::map<Genome, Evaluation> fitness_cache_;

  // Stepping state.
  TuningResult result_;
  std::vector<Genome> population_;
  std::vector<double> scores_;
  Genome best_genome_;
  double best_perf_ = -1.0;
  double cumulative_seconds_ = 0.0;
  unsigned generation_ = 0;  ///< generation currently in flight
  bool initialized_ = false;
  bool exhausted_ = false;
  bool pending_ = false;  ///< begin_iteration issued, observe outstanding
  std::vector<std::size_t> subset_;       ///< this generation's free genes
  std::vector<std::size_t> last_subset_;  ///< masks the *next* breeding
  std::vector<std::size_t> batch_slot_;   ///< population index per batch entry
};

}  // namespace tunio::tuner
