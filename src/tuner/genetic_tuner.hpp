// The genetic tuning pipeline (HSTuner-style, built on a DEAP-like loop).
//
// "The tuning framework is built using [DEAP] ... It is used to generate
// the configuration, use the results of the configuration evaluation to
// select the next generation's parents ... The tuning pipeline employs
// elitism ... To account for [its] drawbacks, TunIO employs tournament
// selection, a technique where three individuals are chosen randomly
// from the population of an iteration/generation, and the best two are
// carried forward as parents for the next generation." (§III-A)
//
// TunIO's components attach via two hooks:
//   * SubsetProvider — Smart Configuration Generation: restricts the
//     genes that crossover/mutation may touch in a generation; frozen
//     genes keep the elite's values (impact-first search-space
//     reduction);
//   * Stopper — Early Stopping: consulted after every generation.
//
// Running without hooks *is* the HSTuner baseline.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "config/space.hpp"
#include "tuner/objective.hpp"

namespace tunio::tuner {

struct GaOptions {
  unsigned population = 16;
  double crossover_prob = 0.9;    ///< per offspring pair
  double mutation_prob = 0.12;    ///< per gene
  unsigned tournament_size = 3;   ///< pick 3, best 2 become parents
  unsigned elitism = 1;           ///< best individuals carried through
  unsigned max_generations = 50;
  std::uint64_t seed = 0x5EED;
  /// Cache fitness by genome: elite individuals are not re-run.
  bool cache_evaluations = true;
  /// Per-gene probability of deviating from the defaults in the initial
  /// population. H5Evolve-style seeding: generation 0 explores *around*
  /// the stack defaults rather than uniformly at random, so discovery
  /// effort is spread over the run instead of front-loaded.
  double init_mutation_prob = 0.08;
  /// Optional starting individual (domain indices). When set, individual
  /// 0 of generation 0 is this configuration instead of the defaults —
  /// used by interactive sessions to resume from a previous best.
  std::optional<std::vector<std::size_t>> seed_indices;
};

/// Everything known after generation `generation` finished.
struct GenerationStats {
  unsigned generation = 0;
  double generation_best_perf = 0.0;  ///< best individual this generation
  double best_perf = 0.0;             ///< best seen so far (elitism)
  double cumulative_seconds = 0.0;    ///< tuning budget spent so far
  std::vector<std::size_t> subset;    ///< tuned parameter subset (empty=all)
};

struct TuningResult {
  double initial_perf = 0.0;  ///< default configuration's perf
  std::vector<GenerationStats> history;
  std::optional<cfg::Configuration> best_config;
  double best_perf = 0.0;
  double total_seconds = 0.0;
  unsigned generations_run = 0;
  bool early_stopped = false;
};

/// Decides the parameter subset to tune in the coming generation.
/// Receives the 0-based generation index and the progress so far.
using SubsetProvider = std::function<std::vector<std::size_t>(
    unsigned generation, const TuningResult& progress)>;

/// Returns true to terminate tuning after this generation.
using Stopper =
    std::function<bool(unsigned generation, const TuningResult& progress)>;

class GeneticTuner {
 public:
  GeneticTuner(const cfg::ConfigSpace& space, Objective& objective,
               GaOptions options = {});

  void set_subset_provider(SubsetProvider provider);
  void set_stopper(Stopper stopper);

  /// Runs the full tuning pipeline.
  TuningResult run();

 private:
  using Genome = std::vector<std::size_t>;

  cfg::Configuration to_config(const Genome& genome) const;
  Genome random_genome();

  /// Scores a whole population through `Objective::evaluate_batch`,
  /// consulting the fitness cache first. Fills `scores` (perf per
  /// individual) and returns the simulated seconds billed — the sum of
  /// the fresh evaluations' costs; cache hits bill nothing.
  double evaluate_population(const std::vector<Genome>& population,
                             std::vector<double>& scores);

  /// Tournament: sample `tournament_size`, return the best two.
  std::pair<const Genome*, const Genome*> tournament(
      const std::vector<Genome>& population,
      const std::vector<double>& scores);

  const cfg::ConfigSpace& space_;
  Objective& objective_;
  GaOptions options_;
  Rng rng_;
  SubsetProvider subset_provider_;
  Stopper stopper_;
  /// Caches the *full* evaluation (perf and simulated cost), keyed by
  /// genome. Hits re-use the perf and bill zero seconds to the budget —
  /// the same accounting the service-layer result cache uses, so a run
  /// behaves identically whichever cache satisfies a repeat genome.
  std::map<Genome, Evaluation> fitness_cache_;
};

}  // namespace tunio::tuner
