// Configuration evaluation: the fitness function of the tuning pipeline.
//
// An `Objective` runs the application (or its I/O kernel) on a freshly
// provisioned simulated testbed under one configuration and reports the
// paper's `perf` plus the simulated time the evaluation cost. Following
// the paper's methodology, each evaluation averages `runs_per_eval`
// runs (3 on Cori, "to mitigate the volatility of the platform") while
// billing only a single run's time to the tuning budget ("the time cost
// of running the application is not accumulated across runs"). Since the
// simulation is deterministic in (seed, config), the stack is run once
// per evaluation and the per-run volatility samples perturb that single
// measurement — bit-identical to simulating every run, at a third of the
// cost.
//
// On top of that, objectives whose op stream provably does not depend on
// the tuned settings (checked with the static def-use slicer) use a
// record-once/replay-many fast path: the first evaluation records a flat
// trace of stack operations, the second verifies that replaying it is
// bit-identical to interpreting, and every later evaluation replays the
// trace straight into the hdf5lite/mpiio/pfs stack — skipping the
// interpreter or workload driver entirely. See src/replay.
#pragma once

#include <memory>
#include <string>

#include "config/space.hpp"
#include "config/stack_settings.hpp"
#include "interp/interp.hpp"
#include "minic/ast.hpp"
#include "trace/meter.hpp"
#include "workloads/workload.hpp"

namespace tunio::tuner {

/// Result of evaluating one configuration.
struct Evaluation {
  double perf_mbps = 0.0;        ///< averaged objective
  SimSeconds eval_seconds = 0.0; ///< tuning-budget cost of this evaluation
  trace::PerfResult detail;      ///< last run's full metering
};

/// Controls the record/replay evaluation fast path.
enum class ReplayMode {
  /// Record on the first evaluation, verify bit-identity on the second,
  /// replay from the third on. Objectives that cannot prove their op
  /// stream settings-invariant never leave the interpreted path.
  kAuto,
  /// Never record or replay; always run the interpreter / native driver.
  kOff,
  /// Replay AND interpret every evaluation, throwing on any divergence.
  /// Slower than kOff; intended for debugging the replay engine.
  kVerify,
};

/// Simulated testbed description (the paper's 4-node/128-process rig).
struct TestbedOptions {
  unsigned num_ranks = 128;
  pfs::PfsProfile pfs;
  unsigned runs_per_eval = 3;
  /// Relative measurement noise per run (platform volatility).
  double measurement_noise = 0.02;
  /// Fixed cost billed per evaluation regardless of the application's
  /// runtime: job launch, srun spin-up, configuration injection. This is
  /// why even a near-instant I/O kernel cannot make evaluations free.
  SimSeconds launch_overhead_seconds = 30.0;
  std::uint64_t seed = 0xC0'FFEE;
  ReplayMode replay = ReplayMode::kAuto;
};

/// Verdict of the replay-eligibility gate for one objective: whether the
/// record/replay fast path may engage, and the gate's justification
/// (e.g. "no tuned_* reads", "tuned value reaches h5dwrite_all at line
/// 12", "no mini-C source registered"). Surfaced through
/// `DriveResult::replay_gate_reason` so a tuning run can explain why it
/// interpreted every evaluation.
struct ReplayGate {
  bool eligible = false;
  std::string reason;
};

class Objective {
 public:
  virtual ~Objective() = default;
  virtual std::string name() const = 0;
  virtual Evaluation evaluate(const cfg::Configuration& config) = 0;

  /// The replay-eligibility verdict for this objective. Custom
  /// objectives default to ineligible: there is no program to prove
  /// settings-invariant.
  virtual ReplayGate replay_gate() const {
    return {false, "custom objective: no static invariance evidence"};
  }

  /// Evaluates a batch of configurations; `results[i]` corresponds to
  /// `configs[i]`. The default implementation is a serial loop over
  /// `evaluate`. Overrides may run the batch concurrently (the service
  /// evaluation engine does), but must return results bit-identical to
  /// the serial path — which the built-in objectives guarantee by
  /// drawing each evaluation's noise from a per-genome RNG stream
  /// (`derive_stream(seed, hash_indices(genome))`) instead of one shared
  /// sequential stream.
  virtual std::vector<Evaluation> evaluate_batch(
      const std::vector<cfg::Configuration>& configs);

  /// True when `evaluate` may be called from several threads at once.
  /// The built-in workload/kernel objectives qualify: every run
  /// provisions a fresh simulated testbed and the per-genome RNG streams
  /// share no state. Stateful custom objectives should leave this false;
  /// the evaluation engine then falls back to serial evaluation.
  virtual bool concurrent_safe() const { return false; }

  /// Total evaluations performed so far.
  virtual std::uint64_t evaluations() const = 0;

 protected:
  /// Counts one top-level batch into the `tuner.eval.batches` /
  /// `tuner.eval.requested` counters. `evaluate_batch` implementations
  /// open one scope for the whole call; nested scopes (a caching
  /// objective delegating its misses to the inner objective's
  /// `evaluate_batch`) count nothing, so the counters measure what the
  /// search requested, not how the layers split the work.
  class BatchScope {
   public:
    explicit BatchScope(std::size_t requested);
    ~BatchScope();
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    bool counted_;
  };
};

/// Evaluates a native workload driver.
std::unique_ptr<Objective> make_workload_objective(
    std::shared_ptr<const wl::Workload> workload, TestbedOptions testbed = {},
    wl::RunOptions run_options = {});

/// Evaluates a mini-C program (full application or discovered kernel)
/// through the interpreter.
std::unique_ptr<Objective> make_kernel_objective(
    const minic::Program& program, TestbedOptions testbed = {},
    interp::InterpOptions interp_options = {});

}  // namespace tunio::tuner
