#include "tuner/genetic_tuner.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tunio::tuner {

namespace {

/// Cached registry handles (see PfsMetrics for the pattern rationale).
struct TunerMetrics {
  obs::Counter& generations;
  obs::Counter& evaluations;
  obs::Counter& cache_hits;
  obs::Gauge& budget_seconds;

  static TunerMetrics& get() {
    static TunerMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
      return new TunerMetrics{
          registry.counter("tuner.generations"),
          registry.counter("tuner.evaluations"),
          registry.counter("tuner.fitness_cache_hits"),
          registry.gauge("tuner.budget_seconds"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

GeneticTuner::GeneticTuner(const cfg::ConfigSpace& space, Objective& objective,
                           GaOptions options)
    : space_(space),
      objective_(objective),
      options_(options),
      rng_(options.seed) {
  TUNIO_CHECK_MSG(options_.population >= 4, "population too small");
  TUNIO_CHECK_MSG(options_.tournament_size >= 2, "tournament too small");
  TUNIO_CHECK_MSG(options_.elitism < options_.population,
                  "elitism must leave room for offspring");
  exhausted_ = options_.max_generations == 0;
}

void GeneticTuner::set_subset_provider(SubsetProvider provider) {
  subset_provider_ = std::move(provider);
}

void GeneticTuner::set_stopper(Stopper stopper) {
  stopper_ = std::move(stopper);
}

cfg::Configuration GeneticTuner::to_config(const Genome& genome) const {
  return cfg::Configuration(&space_, genome);
}

GeneticTuner::Genome GeneticTuner::random_genome() {
  // Mutant of the defaults (see GaOptions::init_mutation_prob).
  Genome genome = space_.default_configuration().indices();
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (rng_.chance(options_.init_mutation_prob)) {
      genome[i] = rng_.index(space_.parameter(i).domain.size());
    }
  }
  return genome;
}

std::pair<const GeneticTuner::Genome*, const GeneticTuner::Genome*>
GeneticTuner::tournament(const std::vector<Genome>& population,
                         const std::vector<double>& scores) {
  // Choose `tournament_size` distinct contestants; the best two win.
  std::vector<std::size_t> contestants;
  while (contestants.size() < options_.tournament_size) {
    const std::size_t pick = rng_.index(population.size());
    if (std::find(contestants.begin(), contestants.end(), pick) ==
        contestants.end()) {
      contestants.push_back(pick);
    }
  }
  std::sort(contestants.begin(), contestants.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  return {&population[contestants[0]], &population[contestants[1]]};
}

void GeneticTuner::breed() {
  const std::vector<std::size_t>& subset = last_subset_;
  std::vector<Genome> next;
  next.reserve(population_.size());
  // Elitism: the best individuals survive unchanged.
  {
    std::vector<std::size_t> order(population_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scores_[a] > scores_[b];
    });
    for (unsigned e = 0; e < options_.elitism; ++e) {
      next.push_back(population_[order[e]]);
    }
  }
  while (next.size() < options_.population) {
    auto [parent_a, parent_b] = tournament(population_, scores_);
    Genome child_a = *parent_a;
    Genome child_b = *parent_b;
    if (rng_.chance(options_.crossover_prob)) {
      // Uniform crossover.
      for (std::size_t g = 0; g < child_a.size(); ++g) {
        if (rng_.chance(0.5)) std::swap(child_a[g], child_b[g]);
      }
    }
    // With a restricted subset, concentrate the same mutation pressure
    // on the few free genes (a masked generation should explore its
    // subspace as vigorously as a full generation explores the space).
    const double gene_mutation_prob =
        subset.empty()
            ? options_.mutation_prob
            : std::max(options_.mutation_prob,
                       std::min(0.5, options_.mutation_prob *
                                         static_cast<double>(
                                             space_.num_parameters()) /
                                         static_cast<double>(subset.size())));
    auto mutate = [&](Genome& genome) {
      for (std::size_t g = 0; g < genome.size(); ++g) {
        if (rng_.chance(gene_mutation_prob)) {
          genome[g] = rng_.index(space_.parameter(g).domain.size());
        }
      }
    };
    mutate(child_a);
    mutate(child_b);
    // Impact-first masking: genes outside the subset are frozen at the
    // elite's values, so the search only explores high-impact axes.
    if (!subset.empty()) {
      auto in_subset = [&](std::size_t g) {
        return std::binary_search(subset.begin(), subset.end(), g);
      };
      for (std::size_t g = 0; g < child_a.size(); ++g) {
        if (!in_subset(g)) {
          child_a[g] = best_genome_[g];
          child_b[g] = best_genome_[g];
        }
      }
    }
    next.push_back(std::move(child_a));
    if (next.size() < options_.population) {
      next.push_back(std::move(child_b));
    }
  }
  population_ = std::move(next);
  scores_.assign(population_.size(), 0.0);
}

std::vector<cfg::Configuration> GeneticTuner::begin_iteration() {
  TUNIO_CHECK_MSG(!pending_, "begin_iteration before observing the last one");
  TUNIO_CHECK_MSG(!exhausted_, "tuner already ran its full budget");

  if (!initialized_) {
    // Initial population: the stack defaults (or the caller's seed
    // configuration) plus mutated explorers. Individual 0 also measures
    // the starting perf reported as `initial_perf`.
    if (options_.seed_indices.has_value()) {
      TUNIO_CHECK_MSG(options_.seed_indices->size() == space_.num_parameters(),
                      "seed configuration arity mismatch");
      population_.push_back(*options_.seed_indices);
    } else {
      population_.push_back(space_.default_configuration().indices());
    }
    while (population_.size() < options_.population) {
      population_.push_back(random_genome());
    }
    scores_.assign(population_.size(), 0.0);
    best_genome_ = population_.front();
    initialized_ = true;
  } else {
    // Breed the next generation from the observed one. The mask is the
    // subset active when those scores were produced (`last_subset_`);
    // the provider below picks the subset for the *following* breeding,
    // exactly the call order of the historical single-loop `run()`.
    breed();
  }

  // Smart Configuration Generation hook: which genes may move.
  subset_.clear();
  if (subset_provider_) {
    subset_ = subset_provider_(generation_, result_);
    std::sort(subset_.begin(), subset_.end());
    subset_.erase(std::unique(subset_.begin(), subset_.end()), subset_.end());
    TUNIO_CHECK_MSG(subset_.empty() || subset_.back() < space_.num_parameters(),
                    "subset index out of range");
  }

  // Partition the generation into cache hits and fresh work. The fresh
  // genomes go through `evaluate_batch` as one batch, so a parallel
  // objective (the service evaluation engine) overlaps them; duplicates
  // within a generation are evaluated once when caching is on.
  std::vector<cfg::Configuration> batch;
  batch_slot_.clear();
  std::map<Genome, std::size_t> in_batch;
  for (std::size_t i = 0; i < population_.size(); ++i) {
    if (options_.cache_evaluations) {
      if (fitness_cache_.count(population_[i]) > 0 ||
          in_batch.count(population_[i]) > 0) {
        continue;
      }
      in_batch.emplace(population_[i], batch.size());
    }
    batch.push_back(to_config(population_[i]));
    batch_slot_.push_back(i);
  }
  pending_ = true;
  return batch;
}

double GeneticTuner::observe_iteration(const std::vector<Evaluation>& fresh) {
  TUNIO_CHECK_MSG(pending_, "observe_iteration without a begin_iteration");
  TUNIO_CHECK_MSG(fresh.size() == batch_slot_.size(),
                  "evaluate_batch returned wrong arity");
  pending_ = false;

  TunerMetrics::get().evaluations.add(fresh.size());
  TunerMetrics::get().cache_hits.add(population_.size() - batch_slot_.size());

  // Budget accounting sums the *simulated* cost of the fresh evaluations
  // — never wall-clock — so a parallel engine bills exactly what a
  // serial run would. Cache hits bill zero: nothing was re-run.
  double billed_seconds = 0.0;
  for (const Evaluation& eval : fresh) billed_seconds += eval.eval_seconds;

  if (options_.cache_evaluations) {
    for (std::size_t b = 0; b < fresh.size(); ++b) {
      fitness_cache_.emplace(population_[batch_slot_[b]], fresh[b]);
    }
    for (std::size_t i = 0; i < population_.size(); ++i) {
      scores_[i] = fitness_cache_.at(population_[i]).perf_mbps;
    }
  } else {
    for (std::size_t b = 0; b < fresh.size(); ++b) {
      scores_[batch_slot_[b]] = fresh[b].perf_mbps;
    }
  }

  const double generation_start = cumulative_seconds_;
  cumulative_seconds_ += billed_seconds;
  // Downstream RL hooks (stoppers, subset pickers) run between
  // generations and own no clock; the ambient timestamp hands them the
  // tuning-budget time so their trace events land on the right axis.
  obs::Tracer::set_ambient_seconds(cumulative_seconds_);
  double generation_best = -1.0;
  for (std::size_t i = 0; i < population_.size(); ++i) {
    generation_best = std::max(generation_best, scores_[i]);
    if (scores_[i] > best_perf_) {
      best_perf_ = scores_[i];
      best_genome_ = population_[i];
    }
  }
  if (generation_ == 0) {
    result_.initial_perf = scores_[0];  // the default configuration
  }

  GenerationStats stats;
  stats.generation = generation_;
  stats.generation_best_perf = generation_best;
  stats.best_perf = best_perf_;
  stats.cumulative_seconds = cumulative_seconds_;
  stats.subset = subset_;
  result_.history.push_back(stats);
  result_.best_perf = best_perf_;
  result_.best_config = to_config(best_genome_);
  result_.total_seconds = cumulative_seconds_;
  result_.generations_run = generation_ + 1;

  TunerMetrics::get().generations.add(1);
  TunerMetrics::get().budget_seconds.add(cumulative_seconds_ -
                                         generation_start);
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // Generations live on the cumulative tuning-budget clock, a
    // different axis from the per-run sim clocks of the stack spans.
    tracer.span("tuner", "generation", generation_start, cumulative_seconds_,
                obs::kPidTuner, /*tid=*/0,
                {{"generation", std::to_string(generation_)},
                 {"best_mbps", obs::json_number(best_perf_)},
                 {"gen_best_mbps", obs::json_number(generation_best)}});
  }

  last_subset_ = subset_;
  ++generation_;
  if (generation_ >= options_.max_generations) exhausted_ = true;
  return billed_seconds;
}

void GeneticTuner::mark_early_stopped() {
  result_.early_stopped = true;
  exhausted_ = true;
}

TuningResult GeneticTuner::run() {
  while (!exhausted_) {
    const std::vector<cfg::Configuration> batch = begin_iteration();
    const std::vector<Evaluation> fresh = objective_.evaluate_batch(batch);
    observe_iteration(fresh);

    // Early stopping hook.
    if (stopper_ && stopper_(generation_ - 1, result_)) {
      mark_early_stopped();
      break;
    }
  }
  return result_;
}

}  // namespace tunio::tuner
