#include "tuner/genetic_tuner.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tunio::tuner {

namespace {

/// Cached registry handles (see PfsMetrics for the pattern rationale).
struct TunerMetrics {
  obs::Counter& generations;
  obs::Counter& evaluations;
  obs::Counter& cache_hits;
  obs::Gauge& budget_seconds;

  static TunerMetrics& get() {
    static TunerMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
      return new TunerMetrics{
          registry.counter("tuner.generations"),
          registry.counter("tuner.evaluations"),
          registry.counter("tuner.fitness_cache_hits"),
          registry.gauge("tuner.budget_seconds"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

GeneticTuner::GeneticTuner(const cfg::ConfigSpace& space, Objective& objective,
                           GaOptions options)
    : space_(space),
      objective_(objective),
      options_(options),
      rng_(options.seed) {
  TUNIO_CHECK_MSG(options_.population >= 4, "population too small");
  TUNIO_CHECK_MSG(options_.tournament_size >= 2, "tournament too small");
  TUNIO_CHECK_MSG(options_.elitism < options_.population,
                  "elitism must leave room for offspring");
}

void GeneticTuner::set_subset_provider(SubsetProvider provider) {
  subset_provider_ = std::move(provider);
}

void GeneticTuner::set_stopper(Stopper stopper) {
  stopper_ = std::move(stopper);
}

cfg::Configuration GeneticTuner::to_config(const Genome& genome) const {
  return cfg::Configuration(&space_, genome);
}

GeneticTuner::Genome GeneticTuner::random_genome() {
  // Mutant of the defaults (see GaOptions::init_mutation_prob).
  Genome genome = space_.default_configuration().indices();
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (rng_.chance(options_.init_mutation_prob)) {
      genome[i] = rng_.index(space_.parameter(i).domain.size());
    }
  }
  return genome;
}

double GeneticTuner::evaluate_population(const std::vector<Genome>& population,
                                         std::vector<double>& scores) {
  // Partition the generation into cache hits and fresh work. The fresh
  // genomes go through `evaluate_batch` as one batch, so a parallel
  // objective (the service evaluation engine) overlaps them; duplicates
  // within a generation are evaluated once when caching is on.
  std::vector<cfg::Configuration> batch;
  std::vector<std::size_t> batch_slot;  // population index of batch[i]
  std::map<Genome, std::size_t> in_batch;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (options_.cache_evaluations) {
      if (fitness_cache_.count(population[i]) > 0 ||
          in_batch.count(population[i]) > 0) {
        continue;
      }
      in_batch.emplace(population[i], batch.size());
    }
    batch.push_back(to_config(population[i]));
    batch_slot.push_back(i);
  }

  const std::vector<Evaluation> fresh = objective_.evaluate_batch(batch);
  TUNIO_CHECK_MSG(fresh.size() == batch.size(),
                  "evaluate_batch returned wrong arity");
  TunerMetrics::get().evaluations.add(batch.size());
  TunerMetrics::get().cache_hits.add(population.size() - batch_slot.size());

  // Budget accounting sums the *simulated* cost of the fresh evaluations
  // — never wall-clock — so a parallel engine bills exactly what a
  // serial run would. Cache hits bill zero: nothing was re-run.
  double billed_seconds = 0.0;
  for (const Evaluation& eval : fresh) billed_seconds += eval.eval_seconds;

  if (options_.cache_evaluations) {
    for (std::size_t b = 0; b < batch.size(); ++b) {
      fitness_cache_.emplace(population[batch_slot[b]], fresh[b]);
    }
    for (std::size_t i = 0; i < population.size(); ++i) {
      scores[i] = fitness_cache_.at(population[i]).perf_mbps;
    }
  } else {
    for (std::size_t b = 0; b < batch.size(); ++b) {
      scores[batch_slot[b]] = fresh[b].perf_mbps;
    }
  }
  return billed_seconds;
}

std::pair<const GeneticTuner::Genome*, const GeneticTuner::Genome*>
GeneticTuner::tournament(const std::vector<Genome>& population,
                         const std::vector<double>& scores) {
  // Choose `tournament_size` distinct contestants; the best two win.
  std::vector<std::size_t> contestants;
  while (contestants.size() < options_.tournament_size) {
    const std::size_t pick = rng_.index(population.size());
    if (std::find(contestants.begin(), contestants.end(), pick) ==
        contestants.end()) {
      contestants.push_back(pick);
    }
  }
  std::sort(contestants.begin(), contestants.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  return {&population[contestants[0]], &population[contestants[1]]};
}

TuningResult GeneticTuner::run() {
  TuningResult result;

  // Initial population: the stack defaults (or the caller's seed
  // configuration) plus mutated explorers. Individual 0 also measures
  // the starting perf reported as `initial_perf`.
  std::vector<Genome> population;
  if (options_.seed_indices.has_value()) {
    TUNIO_CHECK_MSG(options_.seed_indices->size() == space_.num_parameters(),
                    "seed configuration arity mismatch");
    population.push_back(*options_.seed_indices);
  } else {
    population.push_back(space_.default_configuration().indices());
  }
  while (population.size() < options_.population) {
    population.push_back(random_genome());
  }

  double cumulative_seconds = 0.0;
  std::vector<double> scores(population.size(), 0.0);
  Genome best_genome = population.front();
  double best_perf = -1.0;

  for (unsigned generation = 0; generation < options_.max_generations;
       ++generation) {
    // Smart Configuration Generation hook: which genes may move.
    std::vector<std::size_t> subset;
    if (subset_provider_) {
      subset = subset_provider_(generation, result);
      std::sort(subset.begin(), subset.end());
      subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
      TUNIO_CHECK_MSG(
          subset.empty() || subset.back() < space_.num_parameters(),
          "subset index out of range");
    }

    // Evaluate the population (one batch; possibly in parallel).
    const double generation_start = cumulative_seconds;
    cumulative_seconds += evaluate_population(population, scores);
    // Downstream RL hooks (stoppers, subset pickers) run between
    // generations and own no clock; the ambient timestamp hands them the
    // tuning-budget time so their trace events land on the right axis.
    obs::Tracer::set_ambient_seconds(cumulative_seconds);
    double generation_best = -1.0;
    for (std::size_t i = 0; i < population.size(); ++i) {
      generation_best = std::max(generation_best, scores[i]);
      if (scores[i] > best_perf) {
        best_perf = scores[i];
        best_genome = population[i];
      }
    }
    if (generation == 0) {
      result.initial_perf = scores[0];  // the default configuration
    }

    GenerationStats stats;
    stats.generation = generation;
    stats.generation_best_perf = generation_best;
    stats.best_perf = best_perf;
    stats.cumulative_seconds = cumulative_seconds;
    stats.subset = subset;
    result.history.push_back(stats);
    result.best_perf = best_perf;
    result.best_config = to_config(best_genome);
    result.total_seconds = cumulative_seconds;
    result.generations_run = generation + 1;

    TunerMetrics::get().generations.add(1);
    TunerMetrics::get().budget_seconds.add(cumulative_seconds -
                                           generation_start);
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      // Generations live on the cumulative tuning-budget clock, a
      // different axis from the per-run sim clocks of the stack spans.
      tracer.span("tuner", "generation", generation_start, cumulative_seconds,
                  obs::kPidTuner, /*tid=*/0,
                  {{"generation", std::to_string(generation)},
                   {"best_mbps", obs::json_number(best_perf)},
                   {"gen_best_mbps", obs::json_number(generation_best)}});
    }

    // Early stopping hook.
    if (stopper_ && stopper_(generation, result)) {
      result.early_stopped = true;
      break;
    }
    if (generation + 1 == options_.max_generations) break;

    // Breed the next generation.
    std::vector<Genome> next;
    next.reserve(population.size());
    // Elitism: the best individuals survive unchanged.
    {
      std::vector<std::size_t> order(population.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return scores[a] > scores[b];
      });
      for (unsigned e = 0; e < options_.elitism; ++e) {
        next.push_back(population[order[e]]);
      }
    }
    while (next.size() < options_.population) {
      auto [parent_a, parent_b] = tournament(population, scores);
      Genome child_a = *parent_a;
      Genome child_b = *parent_b;
      if (rng_.chance(options_.crossover_prob)) {
        // Uniform crossover.
        for (std::size_t g = 0; g < child_a.size(); ++g) {
          if (rng_.chance(0.5)) std::swap(child_a[g], child_b[g]);
        }
      }
      // With a restricted subset, concentrate the same mutation pressure
      // on the few free genes (a masked generation should explore its
      // subspace as vigorously as a full generation explores the space).
      const double gene_mutation_prob =
          subset.empty()
              ? options_.mutation_prob
              : std::max(options_.mutation_prob,
                         std::min(0.5, options_.mutation_prob *
                                           static_cast<double>(
                                               space_.num_parameters()) /
                                           static_cast<double>(subset.size())));
      auto mutate = [&](Genome& genome) {
        for (std::size_t g = 0; g < genome.size(); ++g) {
          if (rng_.chance(gene_mutation_prob)) {
            genome[g] = rng_.index(space_.parameter(g).domain.size());
          }
        }
      };
      mutate(child_a);
      mutate(child_b);
      // Impact-first masking: genes outside the subset are frozen at the
      // elite's values, so the search only explores high-impact axes.
      if (!subset.empty()) {
        auto in_subset = [&](std::size_t g) {
          return std::binary_search(subset.begin(), subset.end(), g);
        };
        for (std::size_t g = 0; g < child_a.size(); ++g) {
          if (!in_subset(g)) {
            child_a[g] = best_genome[g];
            child_b[g] = best_genome[g];
          }
        }
      }
      next.push_back(std::move(child_a));
      if (next.size() < options_.population) {
        next.push_back(std::move(child_b));
      }
    }
    population = std::move(next);
    scores.assign(population.size(), 0.0);
  }
  return result;
}

}  // namespace tunio::tuner
