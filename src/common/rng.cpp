#include "common/rng.hpp"

// Header-only today; the translation unit anchors the library and keeps a
// stable place for future out-of-line additions.
namespace tunio {}
