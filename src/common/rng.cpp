#include "common/rng.hpp"

namespace tunio {

std::uint64_t mix64(std::uint64_t x) {
  // SplitMix64 finalizer (Steele, Lea, Flood; public domain reference
  // implementation). Full avalanche: every input bit affects every
  // output bit, so nearby seeds yield unrelated streams.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t hash_indices(const std::vector<std::size_t>& indices) {
  // FNV-1a over the elements, then mixed: cheap, order-sensitive, and
  // stable across platforms (no size_t-width dependence in the result).
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t v : indices) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 0x100000001B3ull;
  }
  return mix64(h);
}

std::uint64_t derive_stream(std::uint64_t root_seed, std::uint64_t item_hash) {
  return mix64(root_seed ^ mix64(item_hash));
}

}  // namespace tunio
