#include "common/error.hpp"

#include <sstream>

namespace tunio {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::ostringstream os;
  os << "TUNIO_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace tunio
