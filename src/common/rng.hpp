// Seeded random number generation.
//
// Every stochastic component (genetic operators, RL exploration, noise in
// the device models) draws from an explicitly seeded `Rng` so that whole
// experiments are reproducible from a single seed.
//
// Thread safety: an `Rng` is NOT thread-safe — each thread (or each unit
// of work that must be order-independent) gets its own generator. For
// work items evaluated concurrently, derive an independent stream per
// item with `derive_stream(root_seed, hash_indices(item))`: the stream
// depends only on the root seed and the item itself, never on which
// worker ran it or in what order, so concurrent runs are bit-identical
// to serial ones.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/error.hpp"

namespace tunio {

/// SplitMix64 finalizer: scrambles a 64-bit value into a well-mixed one.
std::uint64_t mix64(std::uint64_t x);

/// Order-sensitive hash of an index vector (a tuner genome, a shard key).
std::uint64_t hash_indices(const std::vector<std::size_t>& indices);

/// Deterministic per-item seed: combines a root seed with an item hash so
/// every item gets an independent, reproducible RNG stream.
std::uint64_t derive_stream(std::uint64_t root_seed, std::uint64_t item_hash);

/// Per-rank compute-time jitter shared by the workload drivers, the
/// mini-C interpreter, and the replay executor: SplitMix64-style hash of
/// (rank, salt) into [0.97, 1.03]. One definition so recorded compute
/// phases replay with bit-identical durations.
inline double compute_jitter(unsigned rank, unsigned salt) {
  std::uint64_t z = (static_cast<std::uint64_t>(rank) << 32) ^ salt;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double unit = static_cast<double>(z % 10000) / 10000.0;
  return 0.97 + 0.06 * unit;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x7'1010) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    TUNIO_CHECK_MSG(lo <= hi, "empty integer range");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    TUNIO_CHECK_MSG(n > 0, "index() over empty range");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Normal draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& items) {
    TUNIO_CHECK_MSG(!items.empty(), "choice() over empty vector");
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derives an independent child generator (stable given draw order).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tunio
