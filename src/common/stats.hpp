// Small statistics helpers shared by the tuner, the RL components, and
// the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace tunio {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  ///< population variance
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Linear interpolation percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// `n` evenly spaced samples from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Pearson correlation of two equal-length series (0 if degenerate).
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Exponential moving average over a series with smoothing factor alpha.
std::vector<double> ema(const std::vector<double>& xs, double alpha);

}  // namespace tunio
