#include "common/timeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tunio {

ResourceTimeline::Grant ResourceTimeline::acquire(SimSeconds earliest_start,
                                                  SimSeconds duration) {
  TUNIO_CHECK_MSG(duration >= 0.0, "negative service duration");
  Grant grant;
  grant.begin = std::max(earliest_start, next_free_);
  grant.end = grant.begin + duration;
  next_free_ = grant.end;
  busy_time_ += duration;
  ++grants_;
  return grant;
}

void ResourceTimeline::reset() {
  next_free_ = 0.0;
  busy_time_ = 0.0;
  grants_ = 0;
}

SharedChannel::SharedChannel(Bps aggregate_bandwidth,
                             SimSeconds message_latency)
    : bandwidth_(aggregate_bandwidth), latency_(message_latency) {
  TUNIO_CHECK_MSG(aggregate_bandwidth > 0.0, "channel bandwidth must be > 0");
  TUNIO_CHECK_MSG(message_latency >= 0.0, "negative channel latency");
}

SimSeconds SharedChannel::transfer(SimSeconds start, Bytes bytes) {
  // The channel's aggregate bandwidth is consumed in arrival order: a
  // transfer cannot begin draining before earlier traffic has drained.
  const SimSeconds drain = static_cast<double>(bytes) / bandwidth_;
  const SimSeconds begin = std::max(start, horizon_);
  horizon_ = begin + drain;
  bytes_moved_ += bytes;
  ++transfers_;
  return begin + latency_ + drain;
}

void SharedChannel::reset() {
  horizon_ = 0.0;
  bytes_moved_ = 0;
  transfers_ = 0;
}

}  // namespace tunio
