// Resource timelines: the core primitive of the discrete-time simulator.
//
// A `ResourceTimeline` models a serially shared device (an OST, the
// metadata server, a network link): a request arriving at simulated time
// `t` with service duration `d` begins at `max(t, next_free)` and the
// resource stays busy until it finishes. Contention between simulated
// MPI ranks therefore emerges naturally — concurrent requests to the same
// OST queue behind each other, while requests to different OSTs proceed
// in parallel.
//
// A `SharedChannel` models a bandwidth-shared medium (the interconnect):
// each transfer pays a fixed latency plus bytes/bandwidth, and aggregate
// utilization is tracked so that sustained overload stretches transfers.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace tunio {

/// A serially shared resource with FIFO service.
class ResourceTimeline {
 public:
  struct Grant {
    SimSeconds begin = 0.0;  ///< when service actually started
    SimSeconds end = 0.0;    ///< when service completed
  };

  /// Requests `duration` seconds of exclusive service starting no earlier
  /// than `earliest_start`. Returns the granted [begin, end) interval and
  /// advances the resource's busy horizon.
  Grant acquire(SimSeconds earliest_start, SimSeconds duration);

  /// The earliest time a new request could begin service.
  SimSeconds next_free() const { return next_free_; }

  /// Total busy seconds granted so far (for utilization reports).
  SimSeconds busy_time() const { return busy_time_; }

  /// Number of grants issued.
  std::uint64_t grants() const { return grants_; }

  /// Forgets all scheduled work (fresh run on the same topology).
  void reset();

 private:
  SimSeconds next_free_ = 0.0;
  SimSeconds busy_time_ = 0.0;
  std::uint64_t grants_ = 0;
};

/// A bandwidth-shared channel with per-message latency.
///
/// Each transfer of `bytes` starting at `t` completes at
/// `max(t, horizon_credit) + latency + bytes / bandwidth`, where the
/// horizon models head-of-line pressure when offered load exceeds the
/// channel's aggregate bandwidth.
class SharedChannel {
 public:
  SharedChannel(Bps aggregate_bandwidth, SimSeconds message_latency);

  /// Schedules a transfer; returns its completion time.
  SimSeconds transfer(SimSeconds start, Bytes bytes);

  Bytes bytes_moved() const { return bytes_moved_; }
  std::uint64_t transfers() const { return transfers_; }

  void reset();

 private:
  Bps bandwidth_;
  SimSeconds latency_;
  SimSeconds horizon_ = 0.0;  ///< time through which aggregate bw is spoken for
  Bytes bytes_moved_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace tunio
