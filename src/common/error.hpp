// Error handling for the TunIO library.
//
// The simulator treats programming errors (bad arguments, violated
// invariants) as exceptions carrying a formatted message. `TUNIO_CHECK`
// is the assertion macro used throughout; it stays active in release
// builds because the simulator's correctness is the product.
#pragma once

#include <stdexcept>
#include <string>

namespace tunio {

/// Base exception for all TunIO errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument or configuration value is invalid.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when mini-C source fails to lex/parse or the interpreter traps.
class SourceError : public Error {
 public:
  explicit SourceError(const std::string& what) : Error(what) {}
};

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& message);

}  // namespace tunio

#define TUNIO_CHECK(expr)                                        \
  do {                                                           \
    if (!(expr)) {                                               \
      ::tunio::check_failed(__FILE__, __LINE__, #expr, "");      \
    }                                                            \
  } while (false)

#define TUNIO_CHECK_MSG(expr, msg)                               \
  do {                                                           \
    if (!(expr)) {                                               \
      ::tunio::check_failed(__FILE__, __LINE__, #expr, (msg));   \
    }                                                            \
  } while (false)
