#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace tunio {

double to_mbps(Bps bytes_per_second) { return bytes_per_second / MB; }

double to_minutes(SimSeconds seconds) { return seconds / 60.0; }

std::string format_bytes(Bytes bytes) {
  std::array<char, 64> buf{};
  if (bytes >= GiB) {
    std::snprintf(buf.data(), buf.size(), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(GiB));
  } else if (bytes >= MiB) {
    std::snprintf(buf.data(), buf.size(), "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(MiB));
  } else if (bytes >= KiB) {
    std::snprintf(buf.data(), buf.size(), "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(KiB));
  } else {
    std::snprintf(buf.data(), buf.size(), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf.data();
}

std::string format_bandwidth(Bps bytes_per_second) {
  std::array<char, 64> buf{};
  if (bytes_per_second >= GB) {
    std::snprintf(buf.data(), buf.size(), "%.2f GB/s", bytes_per_second / GB);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f MB/s", bytes_per_second / MB);
  }
  return buf.data();
}

std::string format_minutes(SimSeconds seconds) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.1f min", to_minutes(seconds));
  return buf.data();
}

}  // namespace tunio
