// Byte-size, time, and bandwidth units used across the TunIO simulator.
//
// All simulated time is kept in seconds (double), all sizes in bytes
// (std::uint64_t), and all bandwidths in bytes/second (double). Helpers
// here make literals readable (`64 * MiB`) and reports human-friendly
// ("2.30 GB/s").
#pragma once

#include <cstdint>
#include <string>

namespace tunio {

using Bytes = std::uint64_t;
/// Simulated wall-clock time in seconds.
using SimSeconds = double;
/// Bandwidth in bytes per second.
using Bps = double;

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

/// Decimal megabytes/second, the unit the paper reports `perf` in.
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

/// Converts bytes/second to decimal MB/s (the paper's bandwidth unit).
double to_mbps(Bps bytes_per_second);

/// Converts simulated seconds to minutes (the paper's tuning-cost unit).
double to_minutes(SimSeconds seconds);

/// Formats a byte count as a human-readable string ("4.0 MiB").
std::string format_bytes(Bytes bytes);

/// Formats a bandwidth as a human-readable string ("2.30 GB/s").
std::string format_bandwidth(Bps bytes_per_second);

/// Formats simulated seconds as "H:MM:SS" style or "123.4 min".
std::string format_minutes(SimSeconds seconds);

}  // namespace tunio
