#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tunio {

double mean(const std::vector<double>& xs) {
  TUNIO_CHECK_MSG(!xs.empty(), "mean of empty series");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_of(const std::vector<double>& xs) {
  TUNIO_CHECK_MSG(!xs.empty(), "min of empty series");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  TUNIO_CHECK_MSG(!xs.empty(), "max of empty series");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) {
  TUNIO_CHECK_MSG(!xs.empty(), "percentile of empty series");
  TUNIO_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  TUNIO_CHECK_MSG(n >= 2, "linspace needs at least 2 samples");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;
  return out;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  TUNIO_CHECK_MSG(xs.size() == ys.size(), "pearson over mismatched series");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ema(const std::vector<double>& xs, double alpha) {
  TUNIO_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "ema alpha out of (0,1]");
  std::vector<double> out;
  out.reserve(xs.size());
  double acc = 0.0;
  bool first = true;
  for (double x : xs) {
    acc = first ? x : alpha * x + (1.0 - alpha) * acc;
    first = false;
    out.push_back(acc);
  }
  return out;
}

}  // namespace tunio
