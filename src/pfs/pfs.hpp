// A discrete-time Lustre-like parallel file system simulator.
//
// This is the storage substrate underneath the whole TunIO stack. It
// models the pieces of a Lustre deployment whose interactions the tuned
// parameters (`striping_factor`, `striping_unit`, alignment, collective
// buffering) actually exercise:
//
//   * a pool of OSTs, each a serially shared device with seek latency,
//     streaming bandwidth, per-request overhead, and a read-modify-write
//     penalty for partial-block writes;
//   * a metadata server (MDS) with per-op latency, serially shared;
//   * a shared interconnect with aggregate bandwidth and message latency;
//   * a memory tier (think `/dev/shm`) used by TunIO's I/O path
//     switching transformation.
//
// All operations take the caller's simulated clock and return the
// completion time; contention between concurrent callers emerges from
// the shared `ResourceTimeline`s.
//
// Files can be addressed two ways. `create_file`/`open_file` return an
// integer `FileHandle`; the handle-taking `read`/`write`/`file_size`/...
// overloads are the hot path — no per-op string hashing. The path-based
// API is kept as a thin wrapper (one hash lookup per call) for cold-path
// callers. Handles stay valid until `reset()`; like a POSIX fd held
// across unlink, a handle outlives `remove()` of its path.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/timeline.hpp"
#include "common/units.hpp"
#include "pfs/layout.hpp"

namespace tunio::pfs {

/// Storage tier a file lives on.
enum class Tier {
  kDisk,    ///< striped across OSTs (Lustre scratch)
  kMemory,  ///< node-local memory (I/O path switching target)
};

/// Cost model for one OST.
struct OstProfile {
  SimSeconds seek_latency = 3e-3;       ///< per discontiguous request
  Bps stream_bandwidth = 2.8 * GB;      ///< sustained per-OST throughput
  SimSeconds request_overhead = 150e-6; ///< fixed RPC/service overhead
  Bytes rmw_block = 1 * MiB;            ///< write granularity of the device
  double rmw_read_factor = 1.0;         ///< cost multiple for RMW pre-reads
};

/// Cost model for the metadata server.
struct MdsProfile {
  SimSeconds op_latency = 800e-6;  ///< create/open/stat/close service time
};

/// Cost model for the interconnect between compute nodes and servers.
/// The aggregate bandwidth is *job-scoped*: a 4-node job can only inject
/// ~nodes × NIC bandwidth into the fabric regardless of its total
/// capacity. The 500-node end-to-end experiment raises this accordingly.
struct NetworkProfile {
  Bps aggregate_bandwidth = 40 * GB;  ///< 4 nodes × ~10 GB/s injection
  SimSeconds message_latency = 5e-6;
};

/// Cost model for the memory tier.
struct MemoryProfile {
  Bps bandwidth = 12 * GB;  ///< per-process memcpy-like bandwidth
  SimSeconds latency = 1e-6;
};

/// Whole-system profile. Defaults approximate Cori's scratch filesystem
/// scaled to the 4-node/128-process experiments of the paper.
struct PfsProfile {
  unsigned num_osts = 64;
  OstProfile ost;
  MdsProfile mds;
  NetworkProfile network;
  MemoryProfile memory;
  Bytes default_stripe_size = 1 * MiB;   ///< Lustre default striping_unit
  unsigned default_stripe_count = 1;     ///< Lustre default striping_factor
};

/// Access-size histogram (Darshan's POSIX_SIZE_*_ buckets, condensed).
/// Buckets: <4 KiB, 4–64 KiB, 64 KiB–1 MiB, 1–16 MiB, ≥16 MiB.
struct SizeHistogram {
  static constexpr std::size_t kBuckets = 5;
  std::array<std::uint64_t, kBuckets> counts{};

  void record(Bytes size);
  std::uint64_t total() const;
  /// Bucket label for reports ("4K-64K", ...).
  static const char* label(std::size_t bucket);

  SizeHistogram& operator-=(const SizeHistogram& other);
};

/// Aggregate operation counters (Darshan-style, PFS layer).
struct PfsCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
  std::uint64_t metadata_ops = 0;
  Bytes rmw_bytes = 0;  ///< extra bytes pre-read by partial-block writes
  SizeHistogram read_sizes;
  SizeHistogram write_sizes;

  PfsCounters& operator-=(const PfsCounters& other);
};

/// Striping policy requested at file creation.
struct CreateOptions {
  std::optional<Bytes> stripe_size;      ///< default: profile default
  std::optional<unsigned> stripe_count;  ///< default: profile default
  Tier tier = Tier::kDisk;
};

/// One completed client-level I/O request (what a Darshan wrapper sees).
struct IoRequest {
  bool is_write = false;
  Bytes bytes = 0;
  SimSeconds start = 0.0;  ///< caller's clock when the request was issued
  SimSeconds end = 0.0;    ///< completion time
};

/// Observes every completed read/write against a simulator — the hook
/// `RunMeter` uses to recover op-level I/O windows for runs that never
/// mark phases, without polling counters.
class IoObserver {
 public:
  virtual ~IoObserver() = default;
  virtual void on_io(const IoRequest& request) = 0;
};

/// Stable identifier for an open simulated file (see header comment).
using FileHandle = std::uint32_t;

/// Result of resolving a file to a handle: the handle plus the
/// completion time of the MDS operation that produced it.
struct OpenResult {
  FileHandle handle = 0;
  SimSeconds done = 0.0;
};

class PfsSimulator {
 public:
  explicit PfsSimulator(PfsProfile profile = {});
  /// Flushes this simulator's accumulated counters into the global
  /// metrics registry (`pfs.*` series).
  ~PfsSimulator();

  PfsSimulator(const PfsSimulator&) = delete;
  PfsSimulator& operator=(const PfsSimulator&) = delete;

  const PfsProfile& profile() const { return profile_; }

  /// Creates (or truncates) a file; returns its handle and the
  /// completion time of the MDS op. Re-creating an existing path reuses
  /// its handle (truncate semantics: old handles see the new file).
  OpenResult create_file(const std::string& path, SimSeconds start,
                         const CreateOptions& options = {});

  /// Opens an existing file (MDS op). Throws if absent.
  OpenResult open_file(const std::string& path, SimSeconds start);

  /// Resolves a path to its handle without charging an MDS op — the
  /// analogue of consulting an already-cached dentry. Empty if absent.
  std::optional<FileHandle> find_file(const std::string& path) const;

  /// Creates (or truncates) a file; returns completion time of the MDS op.
  SimSeconds create(const std::string& path, SimSeconds start,
                    const CreateOptions& options = {});

  /// Opens an existing file (MDS op). Throws if absent.
  SimSeconds open(const std::string& path, SimSeconds start);

  /// Removes a file if present (MDS op). Outstanding handles keep
  /// working, like a POSIX fd held across unlink.
  SimSeconds remove(const std::string& path, SimSeconds start);

  /// A pure-metadata operation against the MDS (stat, attr update, ...).
  SimSeconds metadata_op(SimSeconds start);

  /// Writes [offset, offset+length); returns completion time. The handle
  /// overload is the allocation- and hash-free hot path.
  SimSeconds write(FileHandle handle, SimSeconds start, Bytes offset,
                   Bytes length);
  SimSeconds write(const std::string& path, SimSeconds start, Bytes offset,
                   Bytes length);

  /// Reads [offset, offset+length); returns completion time.
  SimSeconds read(FileHandle handle, SimSeconds start, Bytes offset,
                  Bytes length);
  SimSeconds read(const std::string& path, SimSeconds start, Bytes offset,
                  Bytes length);

  bool exists(const std::string& path) const;
  Bytes file_size(FileHandle handle) const;
  Bytes file_size(const std::string& path) const;
  Tier file_tier(FileHandle handle) const;
  Tier file_tier(const std::string& path) const;
  const StripeLayout& file_layout(FileHandle handle) const;
  const StripeLayout& file_layout(const std::string& path) const;

  const PfsCounters& counters() const { return counters_; }

  /// At most one observer at a time; nullptr detaches. The observer must
  /// outlive its registration.
  void set_io_observer(IoObserver* observer) { observer_ = observer; }
  IoObserver* io_observer() const { return observer_; }

  /// Per-OST busy time (utilization diagnostics for benches).
  std::vector<SimSeconds> ost_busy_times() const;

  /// Clears all files, timelines and counters; keeps the profile.
  void reset();

  /// Rewinds all device/network timelines to t=0 but keeps files and
  /// counters. Used to separate a run from setup I/O that happened
  /// "before" it (e.g. producing an input dataset).
  void quiesce();

 private:
  /// Sentinel for "no request serviced on this OST object yet" — never
  /// equal to a real object offset, so first accesses are non-sequential.
  static constexpr Bytes kNeverAccessed = ~Bytes{0};

  struct File {
    StripeLayout layout;
    Tier tier = Tier::kDisk;
    Bytes size = 0;
    /// Last byte serviced per OST object, to detect sequential access.
    /// Flat vector indexed by absolute OST id (kNeverAccessed = none).
    std::vector<Bytes> last_end_per_ost;
  };

  File& lookup(const std::string& path);
  const File& lookup(const std::string& path) const;
  FileHandle handle_of(const std::string& path) const;
  File& file_at(FileHandle handle);
  const File& file_at(FileHandle handle) const;

  /// Services one per-OST extent; returns completion time.
  SimSeconds service_extent(File& file, const StripeExtent& extent,
                            SimSeconds start, bool is_write);

  SimSeconds memory_io(SimSeconds start, Bytes length) const;

  /// Tells the observer and tracer about one completed request.
  void note_io(bool is_write, Bytes length, SimSeconds start, SimSeconds end);

  /// Publishes counters accumulated since the last publish (and current
  /// OST busy time) into the global metrics registry.
  void publish_metrics();

  PfsProfile profile_;
  std::vector<ResourceTimeline> osts_;
  ResourceTimeline mds_;
  SharedChannel network_;
  /// Handle-indexed file table (deque: references stay stable) plus the
  /// path index used by the wrapper API and create/open/remove.
  std::deque<File> files_;
  std::unordered_map<std::string, FileHandle> index_;
  PfsCounters counters_;
  PfsCounters flushed_;  ///< already published to the metrics registry
  IoObserver* observer_ = nullptr;
  unsigned next_ost_offset_ = 0;  ///< round-robin start OST for new files
};

}  // namespace tunio::pfs
