#include "pfs/layout.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tunio::pfs {

StripeLayout::StripeLayout(Bytes stripe_size, unsigned stripe_count,
                           unsigned ost_offset, unsigned total_osts)
    : stripe_size_(stripe_size),
      stripe_count_(stripe_count),
      ost_offset_(ost_offset),
      total_osts_(total_osts) {
  TUNIO_CHECK_MSG(stripe_size_ > 0, "stripe size must be positive");
  TUNIO_CHECK_MSG(stripe_count_ > 0, "stripe count must be positive");
  TUNIO_CHECK_MSG(total_osts_ > 0, "OST pool must be non-empty");
  stripe_count_ = std::min(stripe_count_, total_osts_);
}

unsigned StripeLayout::ost_for(Bytes offset) const {
  const Bytes stripe_index = offset / stripe_size_;
  const auto within = static_cast<unsigned>(stripe_index % stripe_count_);
  return (ost_offset_ + within) % total_osts_;
}

Bytes StripeLayout::object_offset_for(Bytes offset) const {
  const Bytes stripe_index = offset / stripe_size_;
  const Bytes round = stripe_index / stripe_count_;
  return round * stripe_size_ + offset % stripe_size_;
}

std::vector<StripeExtent> StripeLayout::split(Bytes offset,
                                              Bytes length) const {
  std::vector<StripeExtent> pieces;
  for_each_extent(offset, length,
                  [&pieces](const StripeExtent& piece) { pieces.push_back(piece); });
  return pieces;
}

}  // namespace tunio::pfs
