#include "pfs/layout.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tunio::pfs {

StripeLayout::StripeLayout(Bytes stripe_size, unsigned stripe_count,
                           unsigned ost_offset, unsigned total_osts)
    : stripe_size_(stripe_size),
      stripe_count_(stripe_count),
      ost_offset_(ost_offset),
      total_osts_(total_osts) {
  TUNIO_CHECK_MSG(stripe_size_ > 0, "stripe size must be positive");
  TUNIO_CHECK_MSG(stripe_count_ > 0, "stripe count must be positive");
  TUNIO_CHECK_MSG(total_osts_ > 0, "OST pool must be non-empty");
  stripe_count_ = std::min(stripe_count_, total_osts_);
}

unsigned StripeLayout::ost_for(Bytes offset) const {
  const Bytes stripe_index = offset / stripe_size_;
  const auto within = static_cast<unsigned>(stripe_index % stripe_count_);
  return (ost_offset_ + within) % total_osts_;
}

Bytes StripeLayout::object_offset_for(Bytes offset) const {
  const Bytes stripe_index = offset / stripe_size_;
  const Bytes round = stripe_index / stripe_count_;
  return round * stripe_size_ + offset % stripe_size_;
}

std::vector<StripeExtent> StripeLayout::split(Bytes offset,
                                              Bytes length) const {
  std::vector<StripeExtent> pieces;
  Bytes cursor = offset;
  Bytes remaining = length;
  while (remaining > 0) {
    const Bytes within_stripe = cursor % stripe_size_;
    const Bytes piece_len = std::min(remaining, stripe_size_ - within_stripe);
    StripeExtent piece;
    piece.ost = ost_for(cursor);
    piece.object_offset = object_offset_for(cursor);
    piece.file_offset = cursor;
    piece.length = piece_len;
    if (!pieces.empty() && pieces.back().ost == piece.ost &&
        pieces.back().object_offset + pieces.back().length ==
            piece.object_offset) {
      pieces.back().length += piece_len;
    } else {
      pieces.push_back(piece);
    }
    cursor += piece_len;
    remaining -= piece_len;
  }
  return pieces;
}

}  // namespace tunio::pfs
