// File striping layout, mirroring Lustre's RAID-0 object layout.
//
// A file is striped round-robin across `stripe_count` OSTs in units of
// `stripe_size` bytes (Lustre's `striping_factor` and `striping_unit`
// tunables). `StripeLayout::split` decomposes a byte extent of the file
// into the per-OST object extents it touches — the exact mapping Lustre
// clients perform before issuing RPCs to storage servers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace tunio::pfs {

/// One contiguous piece of a file extent that lands on a single OST.
struct StripeExtent {
  unsigned ost = 0;           ///< absolute OST index serving this piece
  Bytes object_offset = 0;    ///< offset within that OST's backing object
  Bytes file_offset = 0;      ///< offset within the file
  Bytes length = 0;
};

class StripeLayout {
 public:
  /// `ost_offset` is the index of the first OST used by this file (Lustre
  /// spreads file start OSTs to balance load); `total_osts` is the pool.
  StripeLayout(Bytes stripe_size, unsigned stripe_count, unsigned ost_offset,
               unsigned total_osts);

  Bytes stripe_size() const { return stripe_size_; }
  unsigned stripe_count() const { return stripe_count_; }
  unsigned ost_offset() const { return ost_offset_; }

  /// Decomposes the file extent [offset, offset+length) into per-OST
  /// pieces, in ascending file-offset order. Adjacent pieces on the same
  /// OST (possible when stripe_count == 1) are coalesced.
  std::vector<StripeExtent> split(Bytes offset, Bytes length) const;

  /// Visitor form of split(): invokes `visit(const StripeExtent&)` for
  /// each coalesced piece without materializing a vector. This is the
  /// simulator's inner loop — every simulated read/write decomposes its
  /// extent — so it must not allocate.
  template <typename Visitor>
  void for_each_extent(Bytes offset, Bytes length, Visitor&& visit) const {
    Bytes cursor = offset;
    Bytes remaining = length;
    StripeExtent pending;
    bool have_pending = false;
    while (remaining > 0) {
      const Bytes within_stripe = cursor % stripe_size_;
      const Bytes piece_len = std::min(remaining, stripe_size_ - within_stripe);
      StripeExtent piece{ost_for(cursor), object_offset_for(cursor), cursor,
                         piece_len};
      if (have_pending && pending.ost == piece.ost &&
          pending.object_offset + pending.length == piece.object_offset) {
        pending.length += piece_len;
      } else {
        if (have_pending) visit(pending);
        pending = piece;
        have_pending = true;
      }
      cursor += piece_len;
      remaining -= piece_len;
    }
    if (have_pending) visit(pending);
  }

  /// The OST serving a given file offset.
  unsigned ost_for(Bytes offset) const;

  /// Offset within the OST object backing a given file offset.
  Bytes object_offset_for(Bytes offset) const;

 private:
  Bytes stripe_size_;
  unsigned stripe_count_;
  unsigned ost_offset_;
  unsigned total_osts_;
};

}  // namespace tunio::pfs
