#include "pfs/pfs.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tunio::pfs {

namespace {

/// Cached handles into the global registry — resolved once per process,
/// so publishing is a handful of relaxed atomic adds.
struct PfsMetrics {
  obs::Counter& reads;
  obs::Counter& writes;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
  obs::Counter& metadata_ops;
  obs::Counter& rmw_bytes;
  obs::Counter& simulators;
  obs::Gauge& ost_busy_seconds;
  obs::Histogram& read_sizes;
  obs::Histogram& write_sizes;

  static PfsMetrics& get() {
    static PfsMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
      return new PfsMetrics{
          registry.counter("pfs.reads"),
          registry.counter("pfs.writes"),
          registry.counter("pfs.bytes_read"),
          registry.counter("pfs.bytes_written"),
          registry.counter("pfs.metadata_ops"),
          registry.counter("pfs.rmw_bytes"),
          registry.counter("pfs.simulators_retired"),
          registry.gauge("pfs.ost_busy_seconds"),
          registry.histogram("pfs.read_size_bytes",
                             obs::darshan_size_bounds()),
          registry.histogram("pfs.write_size_bytes",
                             obs::darshan_size_bounds()),
      };
    }();
    return *metrics;
  }
};

std::vector<std::uint64_t> histogram_counts(const SizeHistogram& sizes) {
  return {sizes.counts.begin(), sizes.counts.end()};
}

}  // namespace

void SizeHistogram::record(Bytes size) {
  std::size_t bucket;
  if (size < 4 * KiB) bucket = 0;
  else if (size < 64 * KiB) bucket = 1;
  else if (size < 1 * MiB) bucket = 2;
  else if (size < 16 * MiB) bucket = 3;
  else bucket = 4;
  ++counts[bucket];
}

std::uint64_t SizeHistogram::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts) sum += c;
  return sum;
}

const char* SizeHistogram::label(std::size_t bucket) {
  static const char* kLabels[kBuckets] = {"<4K", "4K-64K", "64K-1M", "1M-16M",
                                          ">=16M"};
  return bucket < kBuckets ? kLabels[bucket] : "?";
}

SizeHistogram& SizeHistogram::operator-=(const SizeHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts[i] -= other.counts[i];
  return *this;
}

PfsCounters& PfsCounters::operator-=(const PfsCounters& other) {
  reads -= other.reads;
  writes -= other.writes;
  bytes_read -= other.bytes_read;
  bytes_written -= other.bytes_written;
  metadata_ops -= other.metadata_ops;
  rmw_bytes -= other.rmw_bytes;
  read_sizes -= other.read_sizes;
  write_sizes -= other.write_sizes;
  return *this;
}

PfsSimulator::PfsSimulator(PfsProfile profile)
    : profile_(profile),
      osts_(profile.num_osts),
      network_(profile.network.aggregate_bandwidth,
               profile.network.message_latency) {
  TUNIO_CHECK_MSG(profile_.num_osts > 0, "PFS needs at least one OST");
}

PfsSimulator::~PfsSimulator() {
  publish_metrics();
  PfsMetrics::get().simulators.add(1);
}

void PfsSimulator::publish_metrics() {
  // Publishing happens at coarse boundaries (teardown, reset, quiesce)
  // rather than per request: that keeps the hot I/O path free of shared
  // atomics, at the cost of the registry lagging by the runs in flight.
  PfsCounters delta = counters_;
  delta -= flushed_;
  flushed_ = counters_;
  PfsMetrics& metrics = PfsMetrics::get();
  metrics.reads.add(delta.reads);
  metrics.writes.add(delta.writes);
  metrics.bytes_read.add(delta.bytes_read);
  metrics.bytes_written.add(delta.bytes_written);
  metrics.metadata_ops.add(delta.metadata_ops);
  metrics.rmw_bytes.add(delta.rmw_bytes);
  metrics.read_sizes.add_bucketed(histogram_counts(delta.read_sizes),
                                  static_cast<double>(delta.bytes_read));
  metrics.write_sizes.add_bucketed(histogram_counts(delta.write_sizes),
                                   static_cast<double>(delta.bytes_written));
  // OST busy time needs no flushed-baseline: every publish point rewinds
  // the timelines (or destroys them), so each busy span is added once.
  SimSeconds busy = 0.0;
  for (const ResourceTimeline& ost : osts_) busy += ost.busy_time();
  metrics.ost_busy_seconds.add(busy);
}

void PfsSimulator::note_io(bool is_write, Bytes length, SimSeconds start,
                           SimSeconds end) {
  if (observer_ != nullptr) {
    observer_->on_io(IoRequest{is_write, length, start, end});
  }
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.span("pfs", is_write ? "write" : "read", start, end,
                obs::kPidStack, /*tid=*/0,
                {{"bytes", obs::json_number(static_cast<double>(length))}});
  }
}

OpenResult PfsSimulator::create_file(const std::string& path, SimSeconds start,
                                     const CreateOptions& options) {
  const Bytes stripe_size =
      options.stripe_size.value_or(profile_.default_stripe_size);
  const unsigned stripe_count =
      options.stripe_count.value_or(profile_.default_stripe_count);
  File file{StripeLayout(stripe_size, stripe_count, next_ost_offset_,
                         profile_.num_osts),
            options.tier, 0,
            std::vector<Bytes>(profile_.num_osts, kNeverAccessed)};
  next_ost_offset_ = (next_ost_offset_ + stripe_count) % profile_.num_osts;
  auto [it, inserted] =
      index_.try_emplace(path, static_cast<FileHandle>(files_.size()));
  if (inserted) {
    files_.push_back(std::move(file));
  } else {
    // Truncate: the path keeps its handle, the file starts over.
    files_[it->second] = std::move(file);
  }
  return {it->second, metadata_op(start)};
}

OpenResult PfsSimulator::open_file(const std::string& path, SimSeconds start) {
  return {handle_of(path), metadata_op(start)};
}

std::optional<FileHandle> PfsSimulator::find_file(
    const std::string& path) const {
  auto it = index_.find(path);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

SimSeconds PfsSimulator::create(const std::string& path, SimSeconds start,
                                const CreateOptions& options) {
  return create_file(path, start, options).done;
}

SimSeconds PfsSimulator::open(const std::string& path, SimSeconds start) {
  TUNIO_CHECK_MSG(exists(path), "open of missing file: " + path);
  return metadata_op(start);
}

SimSeconds PfsSimulator::remove(const std::string& path, SimSeconds start) {
  // Only the name goes away; the file object stays behind so any handle
  // already resolved for this path keeps working (POSIX unlink-with-open-fd
  // semantics). `reset()` reclaims everything.
  index_.erase(path);
  return metadata_op(start);
}

SimSeconds PfsSimulator::metadata_op(SimSeconds start) {
  ++counters_.metadata_ops;
  return mds_.acquire(start, profile_.mds.op_latency).end;
}

SimSeconds PfsSimulator::memory_io(SimSeconds start, Bytes length) const {
  return start + profile_.memory.latency +
         static_cast<double>(length) / profile_.memory.bandwidth;
}

SimSeconds PfsSimulator::service_extent(File& file, const StripeExtent& extent,
                                        SimSeconds start, bool is_write) {
  ResourceTimeline& ost = osts_[extent.ost];
  const OstProfile& prof = profile_.ost;

  // Sequentiality: a request that continues where the previous one on this
  // OST object ended skips the seek. (kNeverAccessed never compares equal
  // to a real offset, so the first request on an object always seeks.)
  Bytes& last_end = file.last_end_per_ost[extent.ost];
  const bool sequential = last_end == extent.object_offset;
  last_end = extent.object_offset + extent.length;

  SimSeconds service = prof.request_overhead +
                       static_cast<double>(extent.length) /
                           prof.stream_bandwidth;
  if (!sequential) service += prof.seek_latency;

  if (is_write && !sequential) {
    // Partial leading/trailing device blocks force a read-modify-write:
    // the untouched remainder of each partial block must be pre-read.
    // Sequential appends are exempt — client page caches absorb streaming
    // partial blocks and flush them whole.
    const Bytes block = prof.rmw_block;
    const Bytes head_pad = extent.object_offset % block;
    const Bytes tail_end = (extent.object_offset + extent.length) % block;
    Bytes pre_read = 0;
    if (head_pad != 0) pre_read += head_pad;
    if (tail_end != 0 && extent.length + head_pad > tail_end) {
      pre_read += block - tail_end;
    }
    if (extent.length + pre_read < block && pre_read > 0) {
      // Tiny write inside one block: cap the pre-read at one block.
      pre_read = std::min<Bytes>(pre_read, block);
    }
    if (pre_read > 0) {
      service += prof.rmw_read_factor *
                 static_cast<double>(pre_read) / prof.stream_bandwidth;
      counters_.rmw_bytes += pre_read;
    }
  }

  if (is_write) {
    // Data crosses the network to the server, then the OST services it.
    const SimSeconds arrived = network_.transfer(start, extent.length);
    return ost.acquire(arrived, service).end;
  }
  // Reads: OST services the request, then data returns over the network.
  const SimSeconds served = ost.acquire(start, service).end;
  return network_.transfer(served, extent.length);
}

SimSeconds PfsSimulator::write(FileHandle handle, SimSeconds start,
                               Bytes offset, Bytes length) {
  File& file = file_at(handle);
  ++counters_.writes;
  counters_.bytes_written += length;
  counters_.write_sizes.record(length);
  file.size = std::max(file.size, offset + length);
  if (file.tier == Tier::kMemory) {
    const SimSeconds done = memory_io(start, length);
    note_io(/*is_write=*/true, length, start, done);
    return done;
  }

  SimSeconds done = start;
  file.layout.for_each_extent(offset, length, [&](const StripeExtent& extent) {
    done = std::max(done, service_extent(file, extent, start, /*write=*/true));
  });
  note_io(/*is_write=*/true, length, start, done);
  return done;
}

SimSeconds PfsSimulator::write(const std::string& path, SimSeconds start,
                               Bytes offset, Bytes length) {
  return write(handle_of(path), start, offset, length);
}

SimSeconds PfsSimulator::read(FileHandle handle, SimSeconds start,
                              Bytes offset, Bytes length) {
  File& file = file_at(handle);
  ++counters_.reads;
  counters_.bytes_read += length;
  counters_.read_sizes.record(length);
  if (file.tier == Tier::kMemory) {
    const SimSeconds done = memory_io(start, length);
    note_io(/*is_write=*/false, length, start, done);
    return done;
  }

  SimSeconds done = start;
  file.layout.for_each_extent(offset, length, [&](const StripeExtent& extent) {
    done =
        std::max(done, service_extent(file, extent, start, /*write=*/false));
  });
  note_io(/*is_write=*/false, length, start, done);
  return done;
}

SimSeconds PfsSimulator::read(const std::string& path, SimSeconds start,
                              Bytes offset, Bytes length) {
  return read(handle_of(path), start, offset, length);
}

bool PfsSimulator::exists(const std::string& path) const {
  return index_.count(path) > 0;
}

Bytes PfsSimulator::file_size(FileHandle handle) const {
  return file_at(handle).size;
}

Bytes PfsSimulator::file_size(const std::string& path) const {
  return lookup(path).size;
}

Tier PfsSimulator::file_tier(FileHandle handle) const {
  return file_at(handle).tier;
}

Tier PfsSimulator::file_tier(const std::string& path) const {
  return lookup(path).tier;
}

const StripeLayout& PfsSimulator::file_layout(FileHandle handle) const {
  return file_at(handle).layout;
}

const StripeLayout& PfsSimulator::file_layout(const std::string& path) const {
  return lookup(path).layout;
}

std::vector<SimSeconds> PfsSimulator::ost_busy_times() const {
  std::vector<SimSeconds> busy;
  busy.reserve(osts_.size());
  for (const ResourceTimeline& ost : osts_) busy.push_back(ost.busy_time());
  return busy;
}

void PfsSimulator::reset() {
  publish_metrics();
  for (ResourceTimeline& ost : osts_) ost.reset();
  mds_.reset();
  network_.reset();
  files_.clear();
  index_.clear();
  counters_ = {};
  flushed_ = {};
  next_ost_offset_ = 0;
}

void PfsSimulator::quiesce() {
  publish_metrics();
  for (ResourceTimeline& ost : osts_) ost.reset();
  mds_.reset();
  network_.reset();
  for (File& file : files_) {
    std::fill(file.last_end_per_ost.begin(), file.last_end_per_ost.end(),
              kNeverAccessed);
  }
}

FileHandle PfsSimulator::handle_of(const std::string& path) const {
  auto it = index_.find(path);
  TUNIO_CHECK_MSG(it != index_.end(), "unknown file: " + path);
  return it->second;
}

PfsSimulator::File& PfsSimulator::file_at(FileHandle handle) {
  TUNIO_CHECK_MSG(handle < files_.size(), "invalid file handle");
  return files_[handle];
}

const PfsSimulator::File& PfsSimulator::file_at(FileHandle handle) const {
  TUNIO_CHECK_MSG(handle < files_.size(), "invalid file handle");
  return files_[handle];
}

PfsSimulator::File& PfsSimulator::lookup(const std::string& path) {
  return files_[handle_of(path)];
}

const PfsSimulator::File& PfsSimulator::lookup(const std::string& path) const {
  return files_[handle_of(path)];
}

}  // namespace tunio::pfs
