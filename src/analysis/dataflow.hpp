// Reaching definitions over a FunctionCfg, solved by a classic worklist
// iteration, and the def-use / use-def chains derived from the solution.
//
// A definition is (CFG node, variable): declarations and assignments
// define their target; function parameters are modelled as definitions at
// the synthetic entry node. GEN/KILL are per node; IN/OUT sets are dense
// bitsets over the function's definitions. The solver iterates
//
//   IN[n]  = ∪_{p ∈ pred(n)} OUT[p]
//   OUT[n] = GEN[n] ∪ (IN[n] − KILL[n])
//
// to a fixpoint. Chains link every variable *use* (a statement reading
// the variable in its own expressions) to the definitions that may flow
// into it — the backbone of the backward slicer and of the linter's
// dead-write pass.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"

namespace tunio::analysis {

struct Definition {
  int node = -1;       ///< CFG node performing the definition
  int stmt_id = -1;    ///< defining statement id; -1 for parameter defs
  std::string name;    ///< variable defined
};

class ReachingDefinitions {
 public:
  ReachingDefinitions(const minic::Function& fn, const FunctionCfg& cfg);

  const std::vector<Definition>& definitions() const { return defs_; }

  /// Indices (into definitions()) of defs of `name` reaching the *entry*
  /// of `node`.
  std::vector<int> reaching(int node, const std::string& name) const;

  /// Worklist passes until fixpoint (exposed for tests).
  int solver_passes() const { return solver_passes_; }

 private:
  using Bits = std::vector<std::uint64_t>;
  bool test(const Bits& bits, int i) const {
    return (bits[i >> 6] >> (i & 63)) & 1u;
  }

  const FunctionCfg* cfg_;
  std::vector<Definition> defs_;
  std::vector<Bits> in_, out_;
  int solver_passes_ = 0;
};

/// Chains between statements (ids): a use maps to the definitions that
/// may reach it; a definition maps to the uses it may reach. Parameter
/// definitions have no statement and appear in neither map. A definition
/// with an empty use set is a dead store.
struct DefUseChains {
  std::map<int, std::set<int>> use_to_defs;
  std::map<int, std::set<int>> def_to_uses;

  const std::set<int>& defs_of_use(int stmt_id) const {
    static const std::set<int> kEmpty;
    auto it = use_to_defs.find(stmt_id);
    return it == use_to_defs.end() ? kEmpty : it->second;
  }
  const std::set<int>& uses_of_def(int stmt_id) const {
    static const std::set<int> kEmpty;
    auto it = def_to_uses.find(stmt_id);
    return it == def_to_uses.end() ? kEmpty : it->second;
  }
};

DefUseChains build_def_use(const minic::Function& fn, const FunctionCfg& cfg,
                           const ReachingDefinitions& rd);

}  // namespace tunio::analysis
