// Abstract interpretation over the mini-C AST: a forward worklist solver
// on the per-function CFG (cfg.hpp) computing, for every statement, an
// environment mapping variables to a product-domain value:
//
//   * an integer interval [lo, hi] over int64 (constant propagation plus
//     range reasoning, widened at loop heads so the fixpoint terminates);
//   * a settings-taint bit: whether the value may derive from a `tuned_*`
//     builtin read (data flow through expressions, assignments, calls and
//     returns; implicit flow through tainted branch/loop conditions);
//   * a handle-provenance set: which `h5dcreate` call sites a dataset
//     handle may originate from, so byte-volume predictions can recover
//     element sizes without def-use uniqueness (joins merge provenance;
//     an empty set means "unknown", read as a top element size).
//
// The analysis is interprocedural via memoized per-(function, abstract
// arguments, caller-control-taint) contexts, solved depth-first at the
// call site. Loop trip counts are bounded structurally: for-loops whose
// header matches `for (i = a; i < b; i = i + c)` (and the <=, >, >=
// variants) get trip-count intervals from the interval endpoints of a, b
// and c; everything else is [0, unbounded].
//
// Soundness notes. Concrete mini-C arithmetic is two's-complement int64,
// so any abstract operation whose exact result could leave the int64
// range returns top (wrap-around covers the whole domain) — this is the
// "overflow saturation" the interval tests pin down. Implicit taint is
// computed from the *current* environments of a statement's structural
// ancestors and re-stabilized in an outer loop after each inner fixpoint,
// so late-arriving condition taint always reaches the controlled body.
// Programs the solver cannot finish soundly (recursion, call-depth or
// transfer budgets exceeded) throw; consumers treat that as unanalyzable
// rather than trusting partial results.
//
// Consumers: the static I/O cost model (cost_model.hpp) and the replay
// invariance gate (src/replay/invariance.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "common/error.hpp"
#include "minic/ast.hpp"

namespace tunio::analysis {

/// Integer interval over int64. The extremes double as "unbounded"
/// markers: since concrete values are int64, lo == kMin literally means
/// "as low as the type allows" and is rendered as -inf.
struct Interval {
  static constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

  std::int64_t lo = kMin;
  std::int64_t hi = kMax;

  static Interval top() { return {}; }
  static Interval constant(std::int64_t v) { return {v, v}; }
  static Interval range(std::int64_t lo, std::int64_t hi) { return {lo, hi}; }

  bool is_top() const { return lo == kMin && hi == kMax; }
  bool is_constant() const { return lo == hi; }
  bool bounded_below() const { return lo != kMin; }
  bool bounded_above() const { return hi != kMax; }
  bool bounded() const { return bounded_below() && bounded_above(); }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  bool contains(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  /// True when every value is strictly nonzero (used to decide branches).
  bool excludes_zero() const { return lo > 0 || hi < 0; }
  bool is_zero() const { return lo == 0 && hi == 0; }

  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const Interval& o) const { return !(*this == o); }

  Interval join(const Interval& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }
  /// Standard widening: bounds that moved since `*this` jump to ±inf.
  Interval widen(const Interval& next) const {
    return {next.lo < lo ? kMin : lo, next.hi > hi ? kMax : hi};
  }

  std::string str() const;
};

// Abstract arithmetic (all sound w.r.t. int64 wrap-around: overflow -> top).
Interval abs_add(const Interval& a, const Interval& b);
Interval abs_sub(const Interval& a, const Interval& b);
Interval abs_mul(const Interval& a, const Interval& b);
Interval abs_div(const Interval& a, const Interval& b);
Interval abs_mod(const Interval& a, const Interval& b);
Interval abs_neg(const Interval& a);
Interval abs_min(const Interval& a, const Interval& b);
Interval abs_max(const Interval& a, const Interval& b);

// Nonnegative saturating arithmetic for *counts* (op counts, byte
// volumes): inputs are clamped to [0, inf) — a negative concrete size
// would be cast to a huge uint64 by the interpreter, which "unbounded
// above" covers — and products saturate to kMax instead of wrapping.
Interval count_clamp(const Interval& a);
Interval count_add(const Interval& a, const Interval& b);
Interval count_mul(const Interval& a, const Interval& b);

/// One abstract value: interval x taint x handle provenance.
struct AbsValue {
  Interval range;
  bool tainted = false;
  /// Possible defining `h5dcreate` call sites when this value is a
  /// dataset handle. Empty = unknown provenance (top). Capped; joins
  /// that would exceed the cap collapse to unknown.
  std::set<const minic::Expr*> origins;

  static constexpr std::size_t kMaxOrigins = 8;

  static AbsValue top() { return {}; }
  static AbsValue top_tainted() {
    AbsValue v;
    v.tainted = true;
    return v;
  }
  static AbsValue constant(std::int64_t value) {
    AbsValue v;
    v.range = Interval::constant(value);
    return v;
  }

  AbsValue join(const AbsValue& o) const;

  bool operator==(const AbsValue& o) const {
    return range == o.range && tainted == o.tainted && origins == o.origins;
  }
  bool operator!=(const AbsValue& o) const { return !(*this == o); }
};

/// Abstract environment at a program point. Ordered map so fixpoint
/// comparison and iteration are deterministic.
using AbsEnv = std::map<std::string, AbsValue>;

struct AbsintOptions {
  /// Abstract result of `mpi_size()`. Narrow this to a constant when the
  /// rank count is known (the differential tests do) for exact volumes.
  Interval mpi_ranks = Interval::range(1, 1 << 22);
  /// Loop-head visits before widening kicks in.
  int widen_after = 3;
  /// Transfer budget per function context; exceeding it aborts the
  /// analysis (AnalysisLimit) rather than returning unsound state.
  int max_transfers = 50000;
  /// Depth budget for the interprocedural call chain.
  int max_call_depth = 16;
  /// Total memoized contexts across the program; once exceeded, further
  /// calls reuse an all-top/all-tainted context per function (sound but
  /// imprecise; sets `approximate()`).
  int max_contexts = 128;
};

/// One analyzed (function, abstract arguments, caller control-taint)
/// instance with its post-fixpoint facts.
struct FunctionContext {
  const minic::Function* function = nullptr;
  std::vector<AbsValue> args;
  /// True when every call site reaching this context executes under
  /// settings-tainted control (the taint flows into everything the body
  /// does, including its op-emitting calls).
  bool control_tainted = false;

  /// Environment on entry to each statement's CFG node (post-fixpoint).
  /// Only statements this context reached are present.
  std::map<int, AbsEnv> stmt_in;
  /// Join of all returned values (top when the function may fall off
  /// the end).
  AbsValue result;
  /// Iteration-count interval per for/while statement id.
  std::map<int, Interval> loop_trips;
  /// Statement ids whose execution is control-dependent on tainted
  /// conditions (or inherited via `control_tainted`).
  std::set<int> tainted_control;
  /// Final callee context per user-function call expression.
  std::map<const minic::Expr*, const FunctionContext*> call_targets;
  /// A `return` statement executes under tainted control: the program's
  /// exit value leaks the settings even if no op argument does.
  bool has_tainted_return = false;
  int transfers = 0;
};

/// Thrown when an analysis budget (transfers, call depth) is exceeded or
/// recursion is detected; partial results would be unsound, so none are
/// exposed. Consumers report the program as unanalyzable.
class AnalysisLimit : public Error {
 public:
  explicit AnalysisLimit(const std::string& what) : Error(what) {}
};

class AbstractInterpreter {
 public:
  explicit AbstractInterpreter(const minic::Program& program,
                               AbsintOptions options = {});

  /// Analyzes `main` (and, transitively, everything it calls). Throws
  /// AnalysisLimit on budget exhaustion or recursion and common::Error
  /// when the program has no `main`. Idempotent.
  const FunctionContext& analyze_main();

  const ProgramIndex& index() const { return index_; }
  const AbsintOptions& options() const { return options_; }

  /// Element-size interval recorded at each h5dcreate call site (join
  /// over every abstract evaluation that reached it).
  const std::map<const minic::Expr*, Interval>& dataset_elem_sizes() const {
    return elem_sizes_;
  }
  /// Element-size interval for a dataset-handle value: join over its
  /// provenance sites; top when provenance is unknown.
  Interval elem_size_of(const AbsValue& handle) const;

  /// True when the context cap forced all-top fallback contexts; results
  /// are still sound, just imprecise.
  bool approximate() const { return approximate_; }
  int total_transfers() const { return total_transfers_; }

  /// Re-evaluates `expr` in the recorded entry environment of `stmt_id`
  /// within `ctx` (read-only: user calls resolve through the recorded
  /// `call_targets`; unresolved calls yield tainted top).
  AbsValue eval_at(const FunctionContext& ctx, int stmt_id,
                   const minic::Expr& expr) const;

 private:
  struct NodeState {
    bool reached = false;
    AbsEnv in;
    int visits = 0;
    bool ctl_used = false;
  };
  struct Solver;  // transient per-context worklist state

  const FunctionContext* get_context(const minic::Function& fn,
                                     std::vector<AbsValue> args,
                                     bool control_tainted, int depth);
  void solve(FunctionContext& ctx, int depth);
  // `solver == nullptr` means read-only mode (eval_at): user calls are
  // resolved through recorded call_targets and nothing is mutated.
  AbsValue eval(const minic::Expr& expr, const AbsEnv& env,
                FunctionContext* ctx, Solver* solver, int depth);
  AbsValue eval_call(const minic::Expr& call, const AbsEnv& env,
                     FunctionContext* ctx, Solver* solver, int depth);
  bool control_taint(FunctionContext& ctx, Solver& solver,
                     const minic::Stmt& stmt, int depth);
  Interval trip_count(FunctionContext& ctx, Solver& solver,
                      const minic::Stmt& loop, int depth);

  const minic::Program* program_;
  AbsintOptions options_;
  ProgramIndex index_;
  std::map<const minic::Function*, FunctionCfg> cfgs_;

  std::deque<FunctionContext> contexts_;  // stable addresses
  std::map<std::string, FunctionContext*> memo_;
  std::set<const minic::Function*> in_progress_;
  std::map<const minic::Expr*, Interval> elem_sizes_;
  const FunctionContext* main_ = nullptr;

  mutable int total_transfers_ = 0;
  bool approximate_ = false;
};

}  // namespace tunio::analysis
