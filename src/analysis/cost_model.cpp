#include "analysis/cost_model.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/error.hpp"

namespace tunio::analysis {

using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;

std::string site_kind_name(SiteKind kind) {
  switch (kind) {
    case SiteKind::kWrite: return "write";
    case SiteKind::kRead: return "read";
    case SiteKind::kMeta: return "meta";
    case SiteKind::kCompute: return "compute";
    case SiteKind::kBarrier: return "barrier";
  }
  return "<?>";
}

bool ProgramCost::any_tainted_site() const {
  for (const SiteCost& site : sites) {
    if (site.tainted) return true;
  }
  return false;
}

bool ProgramCost::bounded() const {
  for (const SiteCost& site : sites) {
    if (!site.calls.bounded_above()) return false;
    if ((site.kind == SiteKind::kWrite || site.kind == SiteKind::kRead) &&
        !site.bytes.bounded_above()) {
      return false;
    }
  }
  return true;
}

namespace {

const Interval kOne = Interval::constant(1);

enum class OpClass {
  kNone,
  kBulkWrite,
  kBulkRead,
  kStridedWrite,
  kStridedRead,
  kLogWrite,
  kFileOpen,
  kDatasetCreate,
  kMetaOther,
  kCompute,
  kBarrier,
};

OpClass classify(const std::string& name) {
  if (name == "h5dwrite_all") return OpClass::kBulkWrite;
  if (name == "h5dread_all") return OpClass::kBulkRead;
  if (name == "h5dwrite_strided") return OpClass::kStridedWrite;
  if (name == "h5dread_strided") return OpClass::kStridedRead;
  if (name == "fprintf_log") return OpClass::kLogWrite;
  if (name == "h5fcreate" || name == "h5fopen") return OpClass::kFileOpen;
  if (name == "h5dcreate") return OpClass::kDatasetCreate;
  if (name == "h5dopen" || name == "h5dclose" || name == "h5fclose" ||
      name == "h5set_chunking") {
    return OpClass::kMetaOther;
  }
  if (name == "compute") return OpClass::kCompute;
  if (name == "mpi_barrier") return OpClass::kBarrier;
  return OpClass::kNone;
}

SiteKind site_kind(OpClass cls) {
  switch (cls) {
    case OpClass::kBulkWrite:
    case OpClass::kStridedWrite:
    case OpClass::kLogWrite:
      return SiteKind::kWrite;
    case OpClass::kBulkRead:
    case OpClass::kStridedRead:
      return SiteKind::kRead;
    case OpClass::kCompute:
      return SiteKind::kCompute;
    case OpClass::kBarrier:
      return SiteKind::kBarrier;
    default:
      return SiteKind::kMeta;
  }
}

/// A return that may leave the function before later statements run:
/// anything but the unconditional final top-level statement.
bool has_early_return(const Function& fn) {
  if (fn.body == nullptr) return false;
  const std::vector<minic::StmtPtr>& top = fn.body->statements;
  bool found = false;
  const std::function<void(const Stmt&, bool)> walk = [&](const Stmt& stmt,
                                                          bool top_level) {
    if (found) return;
    if (stmt.kind == StmtKind::kReturn) {
      const bool is_final = top_level && !top.empty() &&
                            top.back().get() == &stmt;
      if (!is_final) found = true;
      return;
    }
    if (stmt.init) walk(*stmt.init, false);
    if (stmt.update) walk(*stmt.update, false);
    if (stmt.body) walk(*stmt.body, false);
    if (stmt.else_body) walk(*stmt.else_body, false);
    for (const minic::StmtPtr& child : stmt.statements) {
      walk(*child, top_level && stmt.kind == StmtKind::kBlock);
    }
  };
  walk(*fn.body, true);
  return found;
}

class CostWalker {
 public:
  explicit CostWalker(const AbstractInterpreter& absint) : absint_(absint) {}

  void run(const FunctionContext& main) { walk_context(main, kOne, 0); }

  bool tainted_control_exit() const { return tainted_control_exit_; }

  std::vector<SiteCost> take_sites() {
    std::vector<SiteCost> out;
    out.reserve(sites_.size());
    for (auto& [expr, site] : sites_) out.push_back(std::move(site));
    std::sort(out.begin(), out.end(), [](const SiteCost& a,
                                         const SiteCost& b) {
      if (a.line != b.line) return a.line < b.line;
      if (a.col != b.col) return a.col < b.col;
      return a.stmt_id < b.stmt_id;
    });
    return out;
  }

 private:
  void walk_context(const FunctionContext& ctx, const Interval& exec,
                    int depth) {
    TUNIO_CHECK_MSG(depth < 64, "cost model: call walk too deep");
    if (ctx.function->body == nullptr) return;
    const bool floor_zero = has_early_return(*ctx.function);
    walk_stmt(ctx, *ctx.function->body, exec, floor_zero, depth);
  }

  static Interval floored(const Interval& exec, bool floor_zero) {
    return floor_zero ? Interval::range(0, exec.hi) : exec;
  }

  void walk_stmt(const FunctionContext& ctx, const Stmt& stmt,
                 const Interval& exec, bool floor_zero, int depth) {
    switch (stmt.kind) {
      case StmtKind::kBlock:
        for (const minic::StmtPtr& child : stmt.statements) {
          walk_stmt(ctx, *child, exec, floor_zero, depth);
        }
        return;
      case StmtKind::kDecl:
      case StmtKind::kAssign:
      case StmtKind::kExprStmt:
        if (stmt.value != nullptr) {
          visit_expr(ctx, stmt, *stmt.value, exec, floor_zero, depth);
        }
        return;
      case StmtKind::kReturn:
        if (ctx.control_tainted || ctx.tainted_control.count(stmt.id) > 0) {
          tainted_control_exit_ = true;
        }
        if (stmt.value != nullptr) {
          visit_expr(ctx, stmt, *stmt.value, exec, floor_zero, depth);
        }
        return;
      case StmtKind::kIf: {
        Interval then_mult = Interval::range(0, 1);
        Interval else_mult = Interval::range(0, 1);
        if (stmt.cond != nullptr) {
          const Interval cond =
              absint_.eval_at(ctx, stmt.id, *stmt.cond).range;
          if (cond.is_zero()) {
            then_mult = Interval::constant(0);
            else_mult = kOne;
          } else if (cond.excludes_zero()) {
            then_mult = kOne;
            else_mult = Interval::constant(0);
          }
          visit_expr(ctx, stmt, *stmt.cond, exec, floor_zero, depth);
        }
        if (stmt.body != nullptr) {
          walk_stmt(ctx, *stmt.body, count_mul(exec, then_mult), floor_zero,
                    depth);
        }
        if (stmt.else_body != nullptr) {
          walk_stmt(ctx, *stmt.else_body, count_mul(exec, else_mult),
                    floor_zero, depth);
        }
        return;
      }
      case StmtKind::kFor:
      case StmtKind::kWhile: {
        const auto it = ctx.loop_trips.find(stmt.id);
        // Absent trip count: the loop was never reached in this context.
        const Interval trips =
            it != ctx.loop_trips.end() ? it->second : Interval::constant(0);
        if (stmt.init != nullptr) {
          walk_stmt(ctx, *stmt.init, exec, floor_zero, depth);
        }
        if (stmt.cond != nullptr) {
          // The condition runs once more than the body.
          visit_expr(ctx, stmt, *stmt.cond,
                     count_mul(exec, count_add(trips, kOne)), floor_zero,
                     depth);
        }
        const Interval body_exec = count_mul(exec, trips);
        if (stmt.body != nullptr) {
          walk_stmt(ctx, *stmt.body, body_exec, floor_zero, depth);
        }
        if (stmt.update != nullptr) {
          walk_stmt(ctx, *stmt.update, body_exec, floor_zero, depth);
        }
        return;
      }
    }
  }

  void visit_expr(const FunctionContext& ctx, const Stmt& stmt,
                  const Expr& expr, const Interval& exec, bool floor_zero,
                  int depth) {
    for (const minic::ExprPtr& child : expr.children) {
      if (child) visit_expr(ctx, stmt, *child, exec, floor_zero, depth);
    }
    if (expr.kind != ExprKind::kCall) return;

    if (const FunctionContext* const* found = lookup(ctx, expr)) {
      walk_context(**found, floored(exec, floor_zero), depth + 1);
      return;
    }
    const OpClass cls = classify(expr.text);
    if (cls == OpClass::kNone) return;
    record_site(ctx, stmt, expr, cls, floored(exec, floor_zero));
  }

  const FunctionContext* const* lookup(const FunctionContext& ctx,
                                       const Expr& expr) const {
    const auto it = ctx.call_targets.find(&expr);
    return it == ctx.call_targets.end() ? nullptr : &it->second;
  }

  void record_site(const FunctionContext& ctx, const Stmt& stmt,
                   const Expr& call, OpClass cls, const Interval& exec) {
    SiteCost& site = sites_[&call];
    if (site.site == nullptr) {
      site.site = &call;
      site.stmt_id = stmt.id;
      site.line = call.line;
      site.col = call.col;
      site.function = ctx.function->name;
      site.callee = call.text;
      site.kind = site_kind(cls);
    }
    site.calls = count_add(site.calls, exec);
    site.in_loop = site.in_loop || exec.hi > 1 || !exec.bounded_above();

    bool arg_taint = false;
    for (const minic::ExprPtr& arg : call.children) {
      if (arg && absint_.eval_at(ctx, stmt.id, *arg).tainted) {
        arg_taint = true;
        break;
      }
    }
    site.tainted = site.tainted || arg_taint || ctx.control_tainted ||
                   ctx.tainted_control.count(stmt.id) > 0;

    Interval payload = Interval::constant(0);
    Interval rank_mult = kOne;
    switch (cls) {
      case OpClass::kBulkWrite:
      case OpClass::kBulkRead:
        if (call.children.size() >= 2) {
          const AbsValue handle =
              absint_.eval_at(ctx, stmt.id, *call.children[0]);
          const Interval per =
              absint_.eval_at(ctx, stmt.id, *call.children[1]).range;
          payload = count_mul(per, absint_.elem_size_of(handle));
          rank_mult = absint_.options().mpi_ranks;
        }
        break;
      case OpClass::kStridedWrite:
      case OpClass::kStridedRead:
        if (call.children.size() >= 3) {
          const AbsValue handle =
              absint_.eval_at(ctx, stmt.id, *call.children[0]);
          const Interval elems =
              absint_.eval_at(ctx, stmt.id, *call.children[2]).range;
          payload = count_mul(elems, absint_.elem_size_of(handle));
          rank_mult = absint_.options().mpi_ranks;
        }
        break;
      case OpClass::kLogWrite:
        if (call.children.size() >= 2) {
          payload = count_clamp(
              absint_.eval_at(ctx, stmt.id, *call.children[1]).range);
        }
        break;
      default:
        break;
    }
    if (site.kind == SiteKind::kWrite || site.kind == SiteKind::kRead) {
      site.payload_per_call = payload_seen_.insert(&call).second
                                  ? payload
                                  : site.payload_per_call.join(payload);
      site.bytes = count_add(site.bytes,
                             count_mul(count_mul(exec, payload), rank_mult));
    }
  }

  const AbstractInterpreter& absint_;
  std::map<const Expr*, SiteCost> sites_;
  std::set<const Expr*> payload_seen_;
  bool tainted_control_exit_ = false;
};

}  // namespace

ProgramCost predict_cost(const Program& program, const CostOptions& options) {
  ProgramCost out;
  try {
    AbstractInterpreter absint(program, options.absint);
    const FunctionContext& main = absint.analyze_main();
    CostWalker walker(absint);
    walker.run(main);
    out.sites = walker.take_sites();
    out.tainted_control_exit = walker.tainted_control_exit();
    out.approximate = absint.approximate();
    out.solver_transfers = absint.total_transfers();

    for (const SiteCost& site : out.sites) {
      switch (site.kind) {
        case SiteKind::kWrite:
          out.write_ops = count_add(out.write_ops, site.calls);
          out.bytes_written = count_add(out.bytes_written, site.bytes);
          break;
        case SiteKind::kRead:
          out.read_ops = count_add(out.read_ops, site.calls);
          out.bytes_read = count_add(out.bytes_read, site.bytes);
          break;
        case SiteKind::kMeta:
          if (site.callee == "h5fcreate" || site.callee == "h5fopen") {
            out.file_opens = count_add(out.file_opens, site.calls);
          } else if (site.callee == "h5dcreate") {
            out.dataset_creates = count_add(out.dataset_creates, site.calls);
          }
          break;
        default:
          break;
      }
    }
    out.analyzable = true;
  } catch (const std::exception& e) {
    out.analyzable = false;
    out.failure = e.what();
    out.sites.clear();
  }
  return out;
}

std::vector<std::pair<std::string, double>> static_impact(
    const ProgramCost& cost) {
  std::map<std::string, double> weight;
  const auto boost = [&](const char* param, double w) { weight[param] += w; };

  if (!cost.analyzable) return {};

  constexpr std::int64_t kSmallBytes = 64 * 1024;
  constexpr std::int64_t kLargeBytes = 4 * 1024 * 1024;

  bool large_contiguous = false;
  bool strided_loops = false;
  bool small_writes = false;
  for (const SiteCost& site : cost.sites) {
    if (site.kind != SiteKind::kWrite && site.kind != SiteKind::kRead) {
      continue;
    }
    const bool bulk = site.callee == "h5dwrite_all" ||
                      site.callee == "h5dread_all";
    const bool strided = site.callee == "h5dwrite_strided" ||
                         site.callee == "h5dread_strided";
    if (bulk && site.payload_per_call.lo >= kLargeBytes) {
      large_contiguous = true;
    }
    if (strided && site.in_loop) strided_loops = true;
    if (site.kind == SiteKind::kWrite && site.in_loop &&
        site.payload_per_call.bounded_above() &&
        site.payload_per_call.hi > 0 &&
        site.payload_per_call.hi < kSmallBytes) {
      small_writes = true;
    }
  }
  if (large_contiguous) {
    boost("striping_factor", 3.0);
    boost("cb_nodes", 2.5);
    boost("striping_unit", 1.5);
  }
  if (strided_loops) {
    boost("romio_collective", 2.0);
    boost("cb_nodes", 1.5);
    boost("cb_buffer_size", 1.5);
  }
  if (small_writes) {
    boost("cb_buffer_size", 2.0);
    boost("sieve_buf_size", 1.5);
    boost("striping_unit", 1.0);
  }
  const Interval meta = count_add(cost.file_opens, cost.dataset_creates);
  if (meta.hi >= 16) {
    boost("mdc_config", 2.0);
    boost("meta_block_size", 1.5);
    boost("coll_metadata_ops", 1.0);
  }
  if (cost.read_ops.hi > 0) {
    boost("chunk_cache", 1.5);
    boost("sieve_buf_size", 1.0);
  }

  double max_weight = 0.0;
  for (const auto& [param, w] : weight) {
    max_weight = std::max(max_weight, w);
  }
  std::vector<std::pair<std::string, double>> out(weight.begin(),
                                                  weight.end());
  if (max_weight > 0.0) {
    for (auto& [param, w] : out) w /= max_weight;
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

}  // namespace tunio::analysis
