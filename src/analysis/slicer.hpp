// Backward program slicer from I/O call sites — the precise marking
// engine behind Application I/O Discovery (§III-B).
//
// Where the legacy name-based marker keeps *every* statement defining a
// variable whose name is a dependent anywhere in the function, the slicer
// follows actual def-use chains on the control-flow graph: a definition
// is kept only when it may *reach* a kept use. The result is always a
// subset of the legacy marking (verified by differential tests) with
// identical interpreter-observable I/O:
//
//   seed     statements whose own expressions call an I/O-prefixed
//            builtin or a (transitively) I/O-performing user function;
//   data     every use in a kept statement pulls in its reaching
//            definitions (worklist to fixpoint);
//   control  every kept statement pulls in its structural ancestors
//            (enclosing loops/branches/blocks), whose conditions then
//            pull their own data dependencies; a kept for-loop keeps its
//            init/update header machinery;
//   scope    every name a kept statement touches keeps its in-scope
//            declaration (the interpreter rejects assignments to
//            undeclared variables);
//   calls    user functions invoked from kept statements become live;
//            live functions keep their return statements (control flow
//            out of a surviving function is preserved).
#pragma once

#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "minic/ast.hpp"

namespace tunio::analysis {

struct SliceResult {
  /// Ids of statements that must be kept to preserve the program's I/O.
  std::set<int> kept;
  /// User functions that (transitively) perform I/O.
  std::unordered_set<std::string> io_functions;
  /// Functions surviving the slice: main plus everything reachable from
  /// kept statements.
  std::unordered_set<std::string> live_functions;
};

/// Slices `program` backward from every I/O call site. Throws
/// Error/SourceError when the program cannot be analyzed (discovery then
/// falls back to the legacy marker).
SliceResult slice_io(const minic::Program& program,
                     const std::vector<std::string>& io_prefixes);

}  // namespace tunio::analysis
