#include "analysis/slicer.hpp"

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "common/error.hpp"

namespace tunio::analysis {

using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;

namespace {

bool has_prefix(const std::string& name,
                const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

class Slicer {
 public:
  Slicer(const Program& program, const std::vector<std::string>& io_prefixes)
      : program_(program), io_prefixes_(io_prefixes), index_(program) {
    for (const Function& fn : program.functions) {
      auto cfg = std::make_unique<FunctionCfg>(build_cfg(fn));
      auto rd = std::make_unique<ReachingDefinitions>(fn, *cfg);
      chains_[&fn] = build_def_use(fn, *cfg, *rd);
      cfgs_[&fn] = std::move(cfg);
      rds_[&fn] = std::move(rd);
    }
    compute_io_functions();
  }

  SliceResult run() {
    make_live("main");
    // Seed: statements whose own expressions perform I/O.
    for (int id : index_.ids()) {
      if (stmt_does_io(*index_.record(id).stmt)) keep(id);
    }
    while (!worklist_.empty()) {
      const int id = worklist_.front();
      worklist_.pop_front();
      process(id);
    }
    SliceResult result;
    result.kept = std::move(kept_);
    result.io_functions = std::move(io_functions_);
    result.live_functions = std::move(live_);
    return result;
  }

 private:
  bool is_io_call(const Expr& e) const {
    return e.kind == ExprKind::kCall &&
           (has_prefix(e.text, io_prefixes_) || io_functions_.count(e.text));
  }

  bool stmt_does_io(const Stmt& stmt) const {
    bool io = false;
    for_each_own_expr(stmt, [&](const Expr& e) {
      if (is_io_call(e)) io = true;
    });
    return io;
  }

  /// A user function performs I/O when its body (transitively) contains
  /// an I/O-prefixed call — same fixpoint as the legacy marker.
  void compute_io_functions() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Function& fn : program_.functions) {
        if (io_functions_.count(fn.name)) continue;
        bool contains = false;
        for (int id : index_.function_stmts(fn)) {
          if (stmt_does_io(*index_.record(id).stmt)) {
            contains = true;
            break;
          }
        }
        if (contains) {
          io_functions_.insert(fn.name);
          changed = true;
        }
      }
    }
  }

  void keep(int id) {
    if (id < 0 || kept_.count(id)) return;
    kept_.insert(id);
    worklist_.push_back(id);
  }

  void make_live(const std::string& name) {
    if (live_.count(name)) return;
    const Function* fn = program_.find(name);
    if (fn == nullptr) return;
    live_.insert(name);
    // Control flow out of a surviving function is preserved: all its
    // return statements are kept (mirrors the legacy marker, which the
    // differential tests use as an over-approximation oracle).
    for (int id : index_.function_stmts(*fn)) {
      if (index_.record(id).stmt->kind == StmtKind::kReturn) keep(id);
    }
  }

  void process(int id) {
    const StmtRecord& rec = index_.record(id);
    const Stmt& stmt = *rec.stmt;

    // Control dependence: structural ancestors survive so the statement
    // still executes under the same conditions (the ancestors' own
    // conditions pull their data dependencies when processed).
    if (rec.parent != nullptr) keep(rec.parent->id);

    // A kept for-loop keeps its header machinery.
    if (stmt.init) keep(stmt.init->id);
    if (stmt.update) keep(stmt.update->id);

    // Data dependence: reaching definitions of every name this statement
    // reads.
    const DefUseChains& chains = chains_.at(rec.function);
    for (int def_id : chains.defs_of_use(id)) keep(def_id);

    // Scope: the interpreter rejects reads of and assignments to
    // undeclared names, so every referenced name keeps its declaration.
    for (const std::string& name : names_used(stmt)) {
      keep(index_.binding(id, name));
    }
    if (stmt.kind == StmtKind::kAssign) {
      keep(index_.binding(id, stmt.name));
    }

    // Interprocedural: user functions invoked here survive.
    for_each_own_expr(stmt, [&](const Expr& e) {
      if (e.kind == ExprKind::kCall && program_.find(e.text) != nullptr) {
        make_live(e.text);
      }
    });
  }

  const Program& program_;
  const std::vector<std::string>& io_prefixes_;
  ProgramIndex index_;
  std::unordered_map<const Function*, std::unique_ptr<FunctionCfg>> cfgs_;
  std::unordered_map<const Function*, std::unique_ptr<ReachingDefinitions>>
      rds_;
  std::unordered_map<const Function*, DefUseChains> chains_;
  std::unordered_set<std::string> io_functions_;
  std::unordered_set<std::string> live_;
  std::set<int> kept_;
  std::deque<int> worklist_;
};

}  // namespace

SliceResult slice_io(const Program& program,
                     const std::vector<std::string>& io_prefixes) {
  TUNIO_CHECK_MSG(program.find("main") != nullptr,
                  "slicer needs a main() function");
  return Slicer(program, io_prefixes).run();
}

}  // namespace tunio::analysis
