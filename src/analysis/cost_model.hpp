// Static I/O cost model: per-call-site and per-program op-count and
// byte-volume predictions as intervals, derived from the abstract
// interpreter (absint.hpp).
//
// Semantics mirror the interpreter's application-level accounting
// (replay::app_io_counts is the measured twin):
//
//   h5dwrite_all/h5dread_all(d, per)     1 op per call; bytes =
//                                        per x elem_size(d) x ranks
//   h5d{write,read}_strided(d, blk, n)   1 op per call; bytes =
//                                        n x elem_size(d) x ranks
//   fprintf_log(path, bytes)             1 write op; `bytes` once
//                                        (rank 0 only — not x ranks)
//   h5fcreate/h5fopen                    one file open each
//   h5dcreate                            one dataset create each
//
// Execution counts multiply the enclosing loops' trip-count intervals
// and a [0, 1] factor per statically unresolved branch; a function
// containing an early return has every lower bound floored at zero
// (execution may stop before any later site). Sites also carry the
// settings-taint verdict the replay invariance gate consumes: whether a
// tainted value reaches the call's arguments or its control flow.
#pragma once

#include <string>
#include <vector>

#include "analysis/absint.hpp"
#include "minic/ast.hpp"

namespace tunio::analysis {

enum class SiteKind { kWrite, kRead, kMeta, kCompute, kBarrier };

std::string site_kind_name(SiteKind kind);

/// Predicted cost of one op-emitting call site, aggregated over every
/// calling context that reaches it.
struct SiteCost {
  const minic::Expr* site = nullptr;
  int stmt_id = 0;
  int line = 0;
  int col = 0;
  std::string function;  ///< enclosing mini-C function
  std::string callee;    ///< builtin name
  SiteKind kind = SiteKind::kMeta;
  /// Times this call executes across the whole program.
  Interval calls = Interval::constant(0);
  /// Per-rank bytes moved by one call (transfers and log writes; the
  /// linter's request-size checks use this). Meta sites: [0, 0].
  Interval payload_per_call = Interval::constant(0);
  /// Total bytes across all calls and ranks (log writes: rank 0 only).
  Interval bytes = Interval::constant(0);
  /// A settings-tainted value reaches an argument, or the call executes
  /// under settings-tainted control.
  bool tainted = false;
  bool in_loop = false;
};

/// Whole-program prediction. All intervals are sound over-approximations
/// of what replay::app_io_counts measures on any interpreted run with a
/// rank count inside `CostOptions::absint.mpi_ranks`.
struct ProgramCost {
  std::vector<SiteCost> sites;
  Interval write_ops = Interval::constant(0);
  Interval read_ops = Interval::constant(0);
  Interval bytes_written = Interval::constant(0);
  Interval bytes_read = Interval::constant(0);
  Interval file_opens = Interval::constant(0);
  Interval dataset_creates = Interval::constant(0);

  /// False when the abstract interpreter could not finish soundly
  /// (recursion, budget exhaustion, no main, parse-level surprises);
  /// `failure` then says why and the intervals are meaningless.
  bool analyzable = false;
  std::string failure;
  /// Context budget forced all-top fallbacks: still sound, less precise.
  bool approximate = false;
  /// A return statement executes under settings-tainted control — the
  /// program's exit value leaks the settings.
  bool tainted_control_exit = false;
  int solver_transfers = 0;

  bool any_tainted_site() const;
  /// True when every transfer site has bounded call and byte intervals.
  bool bounded() const;
};

struct CostOptions {
  AbsintOptions absint;
};

/// Runs the abstract interpreter and folds its facts into per-site and
/// per-program cost intervals. Never throws: failures are reported
/// through `ProgramCost::analyzable` / `failure`.
ProgramCost predict_cost(const minic::Program& program,
                         const CostOptions& options = {});

/// Static impact pre-ranking: config-space parameter weights in (0, 1]
/// derived from the predicted workload shape (large contiguous transfers
/// -> stripe-level parallelism; small repeated writes -> collective
/// buffering; metadata churn -> metadata knobs; read traffic -> caching).
/// Same format as LintReport::tuning_hints, normalized to max 1 and
/// deterministically ordered.
std::vector<std::pair<std::string, double>> static_impact(
    const ProgramCost& cost);

}  // namespace tunio::analysis
