#include "analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "common/error.hpp"
#include "minic/parser.hpp"

namespace tunio::analysis {

using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;

std::string kind_name(LintKind kind) {
  switch (kind) {
    case LintKind::kSmallWritesInLoop: return "small-writes-in-loop";
    case LintKind::kOpenCloseInLoop: return "open-close-in-loop";
    case LintKind::kCreateOverwriteInLoop: return "create-overwrite-in-loop";
    case LintKind::kStripeUnalignedAccess: return "stripe-unaligned-access";
    case LintKind::kIndependentIoInLoop: return "independent-io-in-loop";
    case LintKind::kDeadWrite: return "dead-write";
    case LintKind::kContiguousLargeAccess: return "contiguous-large-access";
    case LintKind::kUnboundedLoopIo: return "unbounded-loop-io";
    case LintKind::kSettingsDependentIo: return "settings-dependent-io";
  }
  return "<?>";
}

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "<?>";
}

std::string format(const Diagnostic& d) {
  std::ostringstream out;
  out << d.function << ":" << d.line << ":" << d.column << ": "
      << severity_name(d.severity) << ": " << kind_name(d.kind) << ": "
      << d.message;
  if (!d.hint_params.empty()) {
    out << " [hints: ";
    for (std::size_t i = 0; i < d.hint_params.size(); ++i) {
      if (i) out << ", ";
      out << d.hint_params[i];
    }
    out << "]";
  }
  return out.str();
}

bool LintReport::has_errors() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::size_t LintReport::count(LintKind kind) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.kind == kind) ++n;
  }
  return n;
}

std::vector<std::pair<std::string, double>> LintReport::tuning_hints() const {
  std::map<std::string, double> weight;
  for (const Diagnostic& d : diagnostics) {
    const double w = d.severity == Severity::kError
                         ? 3.0
                         : d.severity == Severity::kWarning ? 2.0 : 1.0;
    for (const std::string& param : d.hint_params) weight[param] += w;
  }
  // Static-impact pre-ranking: already normalized to (0, 1], folded in
  // at one info-severity unit so it refines ties without drowning the
  // diagnostics' explicit findings.
  for (const auto& [param, w] : static_impact(cost)) weight[param] += w;
  double max_weight = 0.0;
  for (const auto& [param, w] : weight) max_weight = std::max(max_weight, w);
  std::vector<std::pair<std::string, double>> hints(weight.begin(),
                                                    weight.end());
  if (max_weight > 0.0) {
    for (auto& [param, w] : hints) w /= max_weight;
  }
  std::sort(hints.begin(), hints.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return hints;
}

namespace {

/// Per-function dataflow bundle the passes share.
struct FunctionAnalysis {
  const Function* function = nullptr;
  std::unique_ptr<FunctionCfg> cfg;
  std::unique_ptr<ReachingDefinitions> rd;
  DefUseChains chains;
};

class Linter {
 public:
  Linter(const Program& program, const LintOptions& options)
      : program_(program), options_(options), index_(program) {
    for (const Function& fn : program.functions) {
      FunctionAnalysis fa;
      fa.function = &fn;
      fa.cfg = std::make_unique<FunctionCfg>(build_cfg(fn));
      fa.rd = std::make_unique<ReachingDefinitions>(fn, *fa.cfg);
      fa.chains = build_def_use(fn, *fa.cfg, *fa.rd);
      analyses_[&fn] = std::move(fa);
    }
    compute_loop_residency();
    // The cost model powers the interval fallbacks and the unbounded /
    // settings-dependent passes; an unanalyzable program just loses
    // those refinements (predict_cost never throws).
    report_.cost = predict_cost(program);
    for (const SiteCost& site : report_.cost.sites) {
      site_of_[site.site] = &site;
    }
  }

  LintReport run() {
    for (const Function& fn : program_.functions) {
      for (int id : index_.function_stmts(fn)) check_stmt(id);
      check_dead_writes(fn);
    }
    check_cost_sites();
    // Deterministic order: by function appearance, then line, then kind.
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
    return std::move(report_);
  }

 private:
  // --- constant folding through reaching definitions ---------------------

  /// Folds `expr` (evaluated at CFG node `node` of `fa`) to a constant,
  /// resolving variables through their unique reaching definition.
  std::optional<std::int64_t> fold(const FunctionAnalysis& fa, int node,
                                   const Expr& expr,
                                   std::set<int>* visited) const {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        return expr.int_value;
      case ExprKind::kUnary: {
        if (expr.text != "-") return std::nullopt;
        auto v = fold(fa, node, *expr.children[0], visited);
        return v ? std::optional<std::int64_t>(-*v) : std::nullopt;
      }
      case ExprKind::kBinary: {
        auto a = fold(fa, node, *expr.children[0], visited);
        auto b = fold(fa, node, *expr.children[1], visited);
        if (!a || !b) return std::nullopt;
        if (expr.text == "+") return *a + *b;
        if (expr.text == "-") return *a - *b;
        if (expr.text == "*") return *a * *b;
        if (expr.text == "/" && *b != 0) return *a / *b;
        if (expr.text == "%" && *b != 0) return *a % *b;
        return std::nullopt;
      }
      case ExprKind::kVar: {
        const std::vector<int> defs = fa.rd->reaching(node, expr.text);
        if (defs.size() != 1) return std::nullopt;  // ambiguous or unknown
        const Definition& def = fa.rd->definitions()[defs[0]];
        if (def.stmt_id < 0) return std::nullopt;  // parameter
        if (visited->count(def.stmt_id)) return std::nullopt;
        visited->insert(def.stmt_id);
        const Stmt* def_stmt = index_.record(def.stmt_id).stmt;
        if (def_stmt->value == nullptr) return std::nullopt;
        return fold(fa, def.node, *def_stmt->value, visited);
      }
      default:
        return std::nullopt;
    }
  }

  std::optional<std::int64_t> fold_at(const FunctionAnalysis& fa, int stmt_id,
                                      const Expr& expr) const {
    const int node = fa.cfg->node_of(stmt_id);
    if (node < 0) return std::nullopt;
    std::set<int> visited;
    return fold(fa, node, expr, &visited);
  }

  /// Element size of the dataset handle `handle` as used at `stmt_id`:
  /// follows the handle's unique reaching definition to its h5dcreate and
  /// folds the element-size argument.
  std::optional<std::int64_t> elem_size_of(const FunctionAnalysis& fa,
                                           int stmt_id,
                                           const Expr& handle) const {
    if (handle.kind != ExprKind::kVar) return std::nullopt;
    const int node = fa.cfg->node_of(stmt_id);
    if (node < 0) return std::nullopt;
    const std::vector<int> defs = fa.rd->reaching(node, handle.text);
    if (defs.size() != 1) return std::nullopt;
    const Definition& def = fa.rd->definitions()[defs[0]];
    if (def.stmt_id < 0) return std::nullopt;
    const Stmt* def_stmt = index_.record(def.stmt_id).stmt;
    if (def_stmt->value == nullptr ||
        def_stmt->value->kind != ExprKind::kCall ||
        def_stmt->value->text != "h5dcreate" ||
        def_stmt->value->children.size() < 4) {
      return std::nullopt;
    }
    return fold_at(fa, def.stmt_id, *def_stmt->value->children[2]);
  }

  // --- loop residency ----------------------------------------------------

  /// A function is loop-resident when any of its call sites sits inside a
  /// loop (or inside another loop-resident function): its body executes
  /// once per iteration even though it is lexically loop-free.
  void compute_loop_residency() {
    struct CallSite {
      const Function* caller;
      int loop_depth;
    };
    std::unordered_map<const Function*, std::vector<CallSite>> sites;
    for (int id : index_.ids()) {
      const StmtRecord& rec = index_.record(id);
      for_each_own_expr(*rec.stmt, [&](const Expr& e) {
        if (e.kind != ExprKind::kCall) return;
        const Function* callee = program_.find(e.text);
        if (callee != nullptr) {
          sites[callee].push_back({rec.function, rec.loop_depth});
        }
      });
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Function& fn : program_.functions) {
        if (loop_resident_.count(&fn)) continue;
        for (const CallSite& site : sites[&fn]) {
          if (site.loop_depth > 0 || loop_resident_.count(site.caller)) {
            loop_resident_.insert(&fn);
            changed = true;
            break;
          }
        }
      }
    }
  }

  bool in_loop(const StmtRecord& rec) const {
    return rec.loop_depth > 0 || loop_resident_.count(rec.function) > 0;
  }

  // --- diagnostics -------------------------------------------------------

  void emit(LintKind kind, Severity severity, const Expr& at,
            const StmtRecord& rec, std::string message,
            std::vector<std::string> hints) {
    Diagnostic d;
    d.kind = kind;
    d.severity = severity;
    d.line = at.line;
    d.column = at.col;
    d.function = rec.function->name;
    d.message = std::move(message);
    d.hint_params = std::move(hints);
    report_.diagnostics.push_back(std::move(d));
  }

  static std::string bytes_str(std::int64_t bytes) {
    return std::to_string(bytes) + " bytes";
  }

  void check_stmt(int id) {
    const StmtRecord& rec = index_.record(id);
    const FunctionAnalysis& fa = analyses_.at(rec.function);
    const bool looped = in_loop(rec);

    for_each_own_expr(*rec.stmt, [&](const Expr& e) {
      if (e.kind != ExprKind::kCall) return;
      const std::string& name = e.text;

      if (name == "h5fcreate" || name == "h5fopen" || name == "h5fclose") {
        if (looped) {
          emit(LintKind::kOpenCloseInLoop, Severity::kWarning, e, rec,
               name + " inside a loop: per-iteration open/close churn "
                      "round-trips the metadata server",
               {"mdc_config", "meta_block_size", "coll_metadata_ops",
                "coll_metadata_write"});
        }
        if (name == "h5fcreate" && looped && !e.children.empty() &&
            e.children[0]->kind == ExprKind::kStringLit) {
          emit(LintKind::kCreateOverwriteInLoop, Severity::kError, e, rec,
               "h5fcreate(\"" + e.children[0]->text +
                   "\") recreates the same file every iteration, "
                   "overwriting previously written data",
               {"mdc_config", "meta_block_size", "coll_metadata_ops",
                "coll_metadata_write"});
        }
        return;
      }

      if (name == "fprintf_log" && e.children.size() == 2) {
        const auto bytes = fold_at(fa, id, *e.children[1]);
        if (looped && bytes && *bytes > 0 &&
            static_cast<std::uint64_t>(*bytes) < options_.small_write_bytes) {
          emit(LintKind::kSmallWritesInLoop, Severity::kWarning, e, rec,
               "log write of " + bytes_str(*bytes) +
                   " inside a loop; per-request overhead dominates at this "
                   "size — aggregate or buffer",
               {"cb_buffer_size", "sieve_buf_size", "striping_unit"});
        }
        return;
      }

      if (name == "h5set_chunking" && e.children.size() == 1) {
        check_chunking(fa, rec, id, e);
        return;
      }

      const bool strided =
          name == "h5dwrite_strided" || name == "h5dread_strided";
      const bool bulk = name == "h5dwrite_all" || name == "h5dread_all";
      if (!strided && !bulk) return;
      const bool is_write = name.rfind("h5dwrite", 0) == 0;

      std::optional<std::int64_t> bytes;
      if (strided && e.children.size() == 3) {
        const auto elems = fold_at(fa, id, *e.children[2]);
        const auto elem_size = elem_size_of(fa, id, *e.children[0]);
        if (elems && elem_size) bytes = *elems * *elem_size;
      } else if (bulk && e.children.size() == 2) {
        const auto per_rank = fold_at(fa, id, *e.children[1]);
        const auto elem_size = elem_size_of(fa, id, *e.children[0]);
        if (per_rank && elem_size) bytes = *per_rank * *elem_size;
      }

      // Interval fallback: where def-use folding fails (joined handles,
      // interprocedural values), the abstract interpreter's per-site
      // payload may still pin the size exactly — or bound it tightly
      // enough for a definite verdict (see check_payload_bounds).
      Interval payload = Interval::constant(0);
      if (const SiteCost* site = site_of(e)) {
        payload = site->payload_per_call;
        if (!bytes && payload.is_constant() && payload.lo > 0) {
          bytes = payload.lo;
        }
      }
      if (!bytes) {
        check_payload_bounds(e, rec, payload, looped, is_write, bulk);
      }

      if (strided && looped) {
        emit(LintKind::kIndependentIoInLoop, Severity::kWarning, e, rec,
             "per-block strided " +
                 std::string(is_write ? "write" : "read") +
                 " inside a loop issues independent requests; a collective "
                 "transfer would coalesce them",
             {"romio_collective", "cb_nodes", "cb_buffer_size"});
      }
      if (bytes && *bytes > 0) {
        const auto ubytes = static_cast<std::uint64_t>(*bytes);
        if (strided && ubytes % options_.stripe_alignment != 0) {
          emit(LintKind::kStripeUnalignedAccess, Severity::kWarning, e, rec,
               "strided block of " + bytes_str(*bytes) +
                   " is not a multiple of the " +
                   std::to_string(options_.stripe_alignment) +
                   "-byte stripe unit; accesses straddle OST boundaries",
               {"alignment", "striping_unit", "chunk_cache"});
        }
        if (looped && is_write && ubytes < options_.small_write_bytes) {
          emit(LintKind::kSmallWritesInLoop, Severity::kWarning, e, rec,
               "write of " + bytes_str(*bytes) +
                   " inside a loop; per-request overhead dominates at this "
                   "size — aggregate or buffer",
               {"cb_buffer_size", "sieve_buf_size", "striping_unit"});
        }
        if (bulk && ubytes >= options_.large_access_bytes) {
          emit(LintKind::kContiguousLargeAccess, Severity::kInfo, e, rec,
               "contiguous " + std::string(is_write ? "write" : "read") +
                   " of " + bytes_str(*bytes) +
                   " per rank; access is contiguous-large, so stripe-level "
                   "parallelism dominates — prioritize striping_factor / "
                   "cb_nodes",
               {"striping_factor", "cb_nodes", "striping_unit"});
        }
      }
    });
  }

  const SiteCost* site_of(const Expr& call) const {
    const auto it = site_of_.find(&call);
    return it == site_of_.end() ? nullptr : it->second;
  }

  /// Definite small/large verdicts from payload *intervals* when the
  /// exact size is unknown: an upper bound under the small-write
  /// threshold, or a lower bound over the large-access threshold, is
  /// already conclusive.
  void check_payload_bounds(const Expr& e, const StmtRecord& rec,
                            const Interval& payload, bool looped,
                            bool is_write, bool bulk) {
    if (looped && is_write && payload.hi > 0 && payload.bounded_above() &&
        static_cast<std::uint64_t>(payload.hi) < options_.small_write_bytes) {
      emit(LintKind::kSmallWritesInLoop, Severity::kWarning, e, rec,
           "write of at most " + bytes_str(payload.hi) +
               " inside a loop; per-request overhead dominates at this "
               "size — aggregate or buffer",
           {"cb_buffer_size", "sieve_buf_size", "striping_unit"});
    }
    if (bulk && payload.lo > 0 &&
        static_cast<std::uint64_t>(payload.lo) >=
            options_.large_access_bytes) {
      emit(LintKind::kContiguousLargeAccess, Severity::kInfo, e, rec,
           "contiguous " + std::string(is_write ? "write" : "read") +
               " of at least " + bytes_str(payload.lo) +
               " per rank; access is contiguous-large, so stripe-level "
               "parallelism dominates — prioritize striping_factor / "
               "cb_nodes",
           {"striping_factor", "cb_nodes", "striping_unit"});
    }
  }

  /// Diagnostics the cost model alone can see: transfer sites whose
  /// statically predicted call count has no upper bound, and sites whose
  /// arguments or control flow carry settings taint.
  void check_cost_sites() {
    if (!report_.cost.analyzable) return;
    for (const SiteCost& site : report_.cost.sites) {
      if (site.kind != SiteKind::kWrite && site.kind != SiteKind::kRead) {
        continue;
      }
      const StmtRecord& rec = index_.record(site.stmt_id);
      if (site.in_loop && !site.calls.bounded_above()) {
        emit(LintKind::kUnboundedLoopIo, Severity::kWarning, *site.site, rec,
             site.callee +
                 " repeats without a statically resolvable loop bound; "
                 "total I/O volume is unpredictable — bound the loop or "
                 "rely on collective buffering",
             {"cb_buffer_size", "romio_collective", "cb_nodes"});
      }
      if (site.tainted) {
        emit(LintKind::kSettingsDependentIo, Severity::kInfo, *site.site, rec,
             site.callee +
                 " observes tuned settings (argument or control flow), so "
                 "the op stream changes across configurations; the "
                 "record/replay evaluation fast path is disabled",
             {});
      }
    }
  }

  /// Chunk sizes are declared in elements; the element size comes from
  /// the next h5dcreate in the same function (chunking is sticky state
  /// applied to the next dataset created).
  void check_chunking(const FunctionAnalysis& fa, const StmtRecord& rec,
                      int id, const Expr& call) {
    const auto elems = fold_at(fa, id, *call.children[0]);
    if (!elems || *elems <= 0) return;
    for (int other : index_.function_stmts(*rec.function)) {
      if (other <= id) continue;
      const Stmt* stmt = index_.record(other).stmt;
      std::optional<std::int64_t> elem_size;
      for_each_own_expr(*stmt, [&](const Expr& e) {
        if (e.kind == ExprKind::kCall && e.text == "h5dcreate" &&
            e.children.size() >= 4 && !elem_size) {
          elem_size = fold_at(fa, other, *e.children[2]);
        }
      });
      if (!elem_size) continue;
      const std::int64_t chunk_bytes = *elems * *elem_size;
      if (chunk_bytes > 0 && static_cast<std::uint64_t>(chunk_bytes) %
                                     options_.stripe_alignment !=
                                 0) {
        emit(LintKind::kStripeUnalignedAccess, Severity::kWarning, call, rec,
             "chunk of " + bytes_str(chunk_bytes) +
                 " is not a multiple of the " +
                 std::to_string(options_.stripe_alignment) +
                 "-byte stripe unit; chunked accesses straddle OST "
                 "boundaries",
             {"alignment", "striping_unit", "chunk_cache"});
      }
      return;  // only the next dataset inherits the pending chunk size
    }
  }

  /// Dead writes: assignments whose definition no later statement can
  /// read. Assignments whose right-hand side calls a function are spared
  /// (the call's side effects may be the point).
  void check_dead_writes(const Function& fn) {
    const FunctionAnalysis& fa = analyses_.at(&fn);
    for (const auto& [def_id, uses] : fa.chains.def_to_uses) {
      if (!uses.empty()) continue;
      const StmtRecord& rec = index_.record(def_id);
      if (rec.stmt->kind != StmtKind::kAssign) continue;
      bool has_call = false;
      for_each_own_expr(*rec.stmt, [&](const Expr& e) {
        if (e.kind == ExprKind::kCall) has_call = true;
      });
      if (has_call) continue;
      Diagnostic d;
      d.kind = LintKind::kDeadWrite;
      d.severity = Severity::kWarning;
      d.line = rec.stmt->line;
      d.column = rec.stmt->col;
      d.function = fn.name;
      d.message = "value assigned to '" + rec.stmt->name +
                  "' is never read (dead write)";
      report_.diagnostics.push_back(std::move(d));
    }
  }

  const Program& program_;
  const LintOptions& options_;
  ProgramIndex index_;
  std::unordered_map<const Function*, FunctionAnalysis> analyses_;
  std::set<const Function*> loop_resident_;
  std::unordered_map<const Expr*, const SiteCost*> site_of_;
  LintReport report_;
};

}  // namespace

LintReport lint(const Program& program, const LintOptions& options) {
  return Linter(program, options).run();
}

LintReport lint_source(const std::string& source, const LintOptions& options) {
  const Program program = minic::parse(source);
  LintReport report = lint(program, options);
  // The parsed AST dies with this scope: drop the per-site Expr pointers
  // so the report cannot dangle (line/col/callee/intervals remain).
  for (SiteCost& site : report.cost.sites) site.site = nullptr;
  return report;
}

}  // namespace tunio::analysis
