#include "analysis/cfg.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tunio::analysis {

using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;

namespace {

void walk_expr(const Expr& expr,
               const std::function<void(const Expr&)>& fn) {
  fn(expr);
  for (const auto& child : expr.children) walk_expr(*child, fn);
}

}  // namespace

void for_each_own_expr(const Stmt& stmt,
                       const std::function<void(const Expr&)>& fn) {
  if (stmt.value) walk_expr(*stmt.value, fn);
  if (stmt.cond) walk_expr(*stmt.cond, fn);
}

std::vector<std::string> names_used(const Stmt& stmt) {
  std::vector<std::string> names;
  for_each_own_expr(stmt, [&](const Expr& e) {
    if (e.kind == ExprKind::kVar) names.push_back(e.text);
  });
  return names;
}

std::string name_defined(const Stmt& stmt) {
  if (stmt.kind == StmtKind::kDecl || stmt.kind == StmtKind::kAssign) {
    return stmt.name;
  }
  return {};
}

// --- ProgramIndex ----------------------------------------------------------

ProgramIndex::ProgramIndex(const Program& program) : program_(&program) {
  for (const Function& fn : program.functions) index_function(fn);
  std::sort(ids_.begin(), ids_.end());
}

const StmtRecord& ProgramIndex::record(int stmt_id) const {
  auto it = records_.find(stmt_id);
  TUNIO_CHECK_MSG(it != records_.end(),
                  "unknown statement id " + std::to_string(stmt_id));
  return it->second;
}

std::vector<int> ProgramIndex::function_stmts(const Function& fn) const {
  std::vector<int> out;
  for (int id : ids_) {
    if (records_.at(id).function == &fn) out.push_back(id);
  }
  return out;
}

int ProgramIndex::binding(int stmt_id, const std::string& name) const {
  auto stmt_it = bindings_.find(stmt_id);
  if (stmt_it == bindings_.end()) return -1;
  auto name_it = stmt_it->second.find(name);
  return name_it == stmt_it->second.end() ? -1 : name_it->second;
}

void ProgramIndex::index_function(const Function& fn) {
  std::vector<std::unordered_map<std::string, int>> scopes;
  scopes.emplace_back();
  for (const auto& [type, pname] : fn.params) {
    (void)type;
    scopes.back()[pname] = -1;  // parameters bind to no statement
  }
  index_stmt(*fn.body, nullptr, &fn, 0, &scopes);
}

void ProgramIndex::record_bindings(
    const Stmt& stmt,
    const std::vector<std::unordered_map<std::string, int>>& scopes) {
  auto resolve = [&](const std::string& name) {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return -1;
  };
  auto& slot = bindings_[stmt.id];
  for (const std::string& name : names_used(stmt)) {
    slot.emplace(name, resolve(name));
  }
  const std::string defined = name_defined(stmt);
  if (!defined.empty() && stmt.kind == StmtKind::kAssign) {
    slot.emplace(defined, resolve(defined));
  }
}

void ProgramIndex::index_stmt(
    const Stmt& stmt, const Stmt* parent, const Function* fn, int loop_depth,
    std::vector<std::unordered_map<std::string, int>>* scopes) {
  records_[stmt.id] = StmtRecord{&stmt, parent, fn, loop_depth};
  ids_.push_back(stmt.id);
  record_bindings(stmt, *scopes);
  if (stmt.kind == StmtKind::kDecl) {
    // The declaration binds its own name for the rest of the scope (its
    // initializer, evaluated first, still sees any outer binding — but
    // mini-C rejects shadowing at runtime, so self-binding is safe here).
    (*scopes).back()[stmt.name] = stmt.id;
    bindings_[stmt.id][stmt.name] = stmt.id;
  }

  const int child_loop_depth =
      loop_depth +
      (stmt.kind == StmtKind::kFor || stmt.kind == StmtKind::kWhile ? 1 : 0);

  switch (stmt.kind) {
    case StmtKind::kBlock:
      scopes->emplace_back();
      for (const minic::StmtPtr& child : stmt.statements) {
        index_stmt(*child, &stmt, fn, loop_depth, scopes);
      }
      scopes->pop_back();
      break;
    case StmtKind::kFor:
      // The for-header opens its own scope (the interpreter pushes one
      // around init + body). Init runs once, so it stays at the outer
      // loop depth; body and update execute per iteration.
      scopes->emplace_back();
      if (stmt.init) index_stmt(*stmt.init, &stmt, fn, loop_depth, scopes);
      if (stmt.body) {
        index_stmt(*stmt.body, &stmt, fn, child_loop_depth, scopes);
      }
      if (stmt.update) {
        index_stmt(*stmt.update, &stmt, fn, child_loop_depth, scopes);
      }
      scopes->pop_back();
      break;
    case StmtKind::kWhile:
      if (stmt.body) {
        index_stmt(*stmt.body, &stmt, fn, child_loop_depth, scopes);
      }
      break;
    case StmtKind::kIf:
      if (stmt.body) index_stmt(*stmt.body, &stmt, fn, loop_depth, scopes);
      if (stmt.else_body) {
        index_stmt(*stmt.else_body, &stmt, fn, loop_depth, scopes);
      }
      break;
    default:
      break;
  }
}

// --- FunctionCfg -----------------------------------------------------------

int FunctionCfg::node_of(int stmt_id) const {
  auto it = stmt_node_.find(stmt_id);
  return it == stmt_node_.end() ? -1 : it->second;
}

int FunctionCfg::add_node(const Stmt* stmt) {
  const int node = static_cast<int>(node_stmt_.size());
  node_stmt_.push_back(stmt);
  succ_.emplace_back();
  pred_.emplace_back();
  if (stmt != nullptr) stmt_node_[stmt->id] = node;
  return node;
}

void FunctionCfg::add_edge(int from, int to) {
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

std::vector<int> FunctionCfg::wire(const Stmt& stmt, std::vector<int> preds) {
  auto connect = [&](int node) {
    for (int p : preds) add_edge(p, node);
  };
  switch (stmt.kind) {
    case StmtKind::kBlock: {
      for (const minic::StmtPtr& child : stmt.statements) {
        preds = wire(*child, std::move(preds));
      }
      return preds;
    }
    case StmtKind::kDecl:
    case StmtKind::kAssign:
    case StmtKind::kExprStmt: {
      const int node = add_node(&stmt);
      connect(node);
      return {node};
    }
    case StmtKind::kReturn: {
      const int node = add_node(&stmt);
      connect(node);
      add_edge(node, kExit);
      return {};  // no fall-through
    }
    case StmtKind::kIf: {
      const int cond = add_node(&stmt);
      connect(cond);
      std::vector<int> exits = wire(*stmt.body, {cond});
      if (stmt.else_body) {
        std::vector<int> else_exits = wire(*stmt.else_body, {cond});
        exits.insert(exits.end(), else_exits.begin(), else_exits.end());
      } else {
        exits.push_back(cond);  // condition false falls through
      }
      return exits;
    }
    case StmtKind::kWhile: {
      const int cond = add_node(&stmt);
      connect(cond);
      const std::vector<int> body_exits = wire(*stmt.body, {cond});
      for (int e : body_exits) add_edge(e, cond);
      return {cond};
    }
    case StmtKind::kFor: {
      if (stmt.init) preds = wire(*stmt.init, std::move(preds));
      const int cond = add_node(&stmt);  // the kFor node = condition test
      connect(cond);
      std::vector<int> body_exits = wire(*stmt.body, {cond});
      if (stmt.update) body_exits = wire(*stmt.update, std::move(body_exits));
      for (int e : body_exits) add_edge(e, cond);
      return {cond};
    }
  }
  throw Error("unreachable statement kind in CFG construction");
}

FunctionCfg build_cfg(const Function& fn) {
  FunctionCfg cfg;
  cfg.function_ = &fn;
  const int entry = cfg.add_node(nullptr);
  const int exit = cfg.add_node(nullptr);
  TUNIO_CHECK(entry == FunctionCfg::kEntry && exit == FunctionCfg::kExit);
  const std::vector<int> falls = cfg.wire(*fn.body, {entry});
  for (int node : falls) cfg.add_edge(node, exit);
  return cfg;
}

}  // namespace tunio::analysis
