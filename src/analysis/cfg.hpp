// Static-analysis foundation over the mini-C AST: a flat statement index
// (parents, enclosing function, loop depth, lexical scope bindings) and a
// per-function control-flow graph.
//
// The CFG gives every *executable* statement a node — declarations,
// assignments, expression statements, returns, and the condition of each
// if/while/for (the structural statement itself acts as its condition
// node; for-init and for-update are ordinary nodes of their own, wired
// into the loop in evaluation order). Blocks are transparent. Two
// synthetic nodes, entry and exit, bracket the function.
//
// Downstream passes (reaching definitions in dataflow.hpp, the backward
// slicer in slicer.hpp, the anti-pattern linter in lint.hpp) all operate
// on this representation.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "minic/ast.hpp"

namespace tunio::analysis {

/// Flat per-statement facts gathered in one walk over the program.
struct StmtRecord {
  const minic::Stmt* stmt = nullptr;
  /// Enclosing structural statement (block, loop, branch, or the for-loop
  /// owning an init/update); null for a function's top-level body block.
  const minic::Stmt* parent = nullptr;
  const minic::Function* function = nullptr;
  /// Number of enclosing for/while statements (0 = straight-line code).
  int loop_depth = 0;
};

/// Whole-program statement index with lexical scope resolution.
class ProgramIndex {
 public:
  explicit ProgramIndex(const minic::Program& program);

  const minic::Program& program() const { return *program_; }

  bool has(int stmt_id) const { return records_.count(stmt_id) > 0; }
  const StmtRecord& record(int stmt_id) const;

  /// All indexed statement ids, ascending (== program order per function).
  const std::vector<int>& ids() const { return ids_; }

  /// Ids of the statements belonging to `fn`, ascending.
  std::vector<int> function_stmts(const minic::Function& fn) const;

  /// The declaration statement that binds `name` where `stmt_id` executes,
  /// or -1 when the name is a function parameter (or unresolved). Only
  /// names actually referenced by the statement are recorded.
  int binding(int stmt_id, const std::string& name) const;

 private:
  void index_function(const minic::Function& fn);
  void index_stmt(const minic::Stmt& stmt, const minic::Stmt* parent,
                  const minic::Function* fn, int loop_depth,
                  std::vector<std::unordered_map<std::string, int>>* scopes);
  void record_bindings(
      const minic::Stmt& stmt,
      const std::vector<std::unordered_map<std::string, int>>& scopes);

  const minic::Program* program_;
  std::unordered_map<int, StmtRecord> records_;
  std::vector<int> ids_;
  /// stmt id -> (referenced name -> binding decl id, -1 for parameters).
  std::unordered_map<int, std::unordered_map<std::string, int>> bindings_;
};

/// Per-function control-flow graph. Nodes are dense ints; node 0 is the
/// synthetic entry, node 1 the synthetic exit.
class FunctionCfg {
 public:
  static constexpr int kEntry = 0;
  static constexpr int kExit = 1;

  const minic::Function& function() const { return *function_; }

  int num_nodes() const { return static_cast<int>(succ_.size()); }

  /// CFG node of a statement id; -1 for statements without a node
  /// (blocks) or ids from other functions.
  int node_of(int stmt_id) const;
  /// Statement of a node; null for entry/exit.
  const minic::Stmt* stmt_of(int node) const { return node_stmt_[node]; }

  const std::vector<int>& successors(int node) const { return succ_[node]; }
  const std::vector<int>& predecessors(int node) const { return pred_[node]; }

 private:
  friend FunctionCfg build_cfg(const minic::Function& fn);

  int add_node(const minic::Stmt* stmt);
  void add_edge(int from, int to);
  /// Wires `stmt` after all of `preds`; returns the fall-through frontier.
  std::vector<int> wire(const minic::Stmt& stmt, std::vector<int> preds);

  const minic::Function* function_ = nullptr;
  std::vector<const minic::Stmt*> node_stmt_;
  std::unordered_map<int, int> stmt_node_;
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<int>> pred_;
};

FunctionCfg build_cfg(const minic::Function& fn);

/// Variable names read by the expressions the statement itself owns
/// (value / condition — not those of child statements; a for's init and
/// update are separate statements).
std::vector<std::string> names_used(const minic::Stmt& stmt);

/// The variable the statement defines (decl/assign target), or "".
std::string name_defined(const minic::Stmt& stmt);

/// Applies `fn` to every expression node owned by the statement itself.
void for_each_own_expr(const minic::Stmt& stmt,
                       const std::function<void(const minic::Expr&)>& fn);

}  // namespace tunio::analysis
