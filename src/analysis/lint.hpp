// I/O anti-pattern linter over the mini-C AST — static diagnostics for
// the access patterns the simulated stack punishes, each carrying
// machine-readable tuning hints (config-space parameter names) that
// Smart Configuration Generation consumes to bias its impact ranking.
//
// Detected patterns:
//   small-writes-in-loop      writes far below the stripe/buffer scale
//                             issued inside a loop (per-op overhead and
//                             RMW dominate);
//   open-close-in-loop        file open/create/close churn inside a loop
//                             (metadata-server round-trips per iteration);
//   create-overwrite-in-loop  h5fcreate of the *same constant path* every
//                             iteration — data loss plus metadata storm
//                             (error severity);
//   stripe-unaligned-access   chunk or strided-block byte sizes that are
//                             not a multiple of the smallest stripe unit
//                             (every access straddles an OST boundary);
//   independent-io-in-loop    per-block strided transfers in a loop where
//                             one collective transfer would coalesce;
//   dead-write                an assignment whose value no later
//                             statement can read (def-use chains);
//   contiguous-large-access   informational: large contiguous slab
//                             transfers — prioritize stripe-level
//                             parallelism parameters;
//   unbounded-loop-io         a transfer site whose statically predicted
//                             call count has no upper bound (loop bound
//                             not structurally resolvable) — total I/O
//                             volume is unpredictable;
//   settings-dependent-io     informational: a tuned_* value reaches this
//                             op's arguments or control flow, so the op
//                             stream changes across configurations and
//                             the record/replay fast path is disabled.
//
// Byte sizes are estimated by constant-folding call arguments; dataset
// element sizes are recovered through def-use chains (the handle's
// reaching h5dcreate). Where folding fails, the abstract interpreter's
// per-site payload intervals (analysis/cost_model.hpp) take over:
// a definite upper bound below the small-write threshold, or a definite
// lower bound above the large-access threshold, still fires the
// respective diagnostic. Loop context is interprocedural: a function
// with any call site inside a loop is analyzed as loop-resident.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cost_model.hpp"
#include "minic/ast.hpp"

namespace tunio::analysis {

enum class LintKind {
  kSmallWritesInLoop,
  kOpenCloseInLoop,
  kCreateOverwriteInLoop,
  kStripeUnalignedAccess,
  kIndependentIoInLoop,
  kDeadWrite,
  kContiguousLargeAccess,
  kUnboundedLoopIo,
  kSettingsDependentIo,
};

enum class Severity { kInfo, kWarning, kError };

std::string kind_name(LintKind kind);
std::string severity_name(Severity severity);

struct Diagnostic {
  LintKind kind{};
  Severity severity = Severity::kWarning;
  int line = 0;
  int column = 0;
  std::string function;  ///< enclosing mini-C function
  std::string message;
  /// Machine-readable hints: config-space parameter names this finding
  /// suggests prioritizing (e.g. "striping_factor", "cb_nodes").
  std::vector<std::string> hint_params;
};

/// `<function>:<line>:<col>: <severity>: <kind>: <message> [hints: ...]`.
std::string format(const Diagnostic& diagnostic);

struct LintOptions {
  /// Call-name prefixes treated as I/O (matches DiscoveryOptions).
  std::vector<std::string> io_prefixes = {"h5"};
  /// Writes below this estimated byte size count as "small".
  std::uint64_t small_write_bytes = 64 * 1024;
  /// Alignment boundary for stripe checks (the smallest striping_unit).
  std::uint64_t stripe_alignment = 64 * 1024;
  /// Contiguous transfers at or above this size are "large".
  std::uint64_t large_access_bytes = 4 * 1024 * 1024;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;
  /// Static I/O cost prediction of the linted program (op counts and
  /// byte volumes as intervals, per site and per program). Check
  /// `cost.analyzable` before trusting the intervals.
  ProgramCost cost;

  bool has_errors() const;
  std::size_t count(LintKind kind) const;

  /// Aggregated tuning hints: parameter name -> boost weight in (0, 1],
  /// severity-weighted (error 3, warning 2, info 1) and normalized to a
  /// max of 1, with the cost model's static-impact pre-ranking folded in
  /// at one info-severity unit (it corroborates rather than overrules
  /// the diagnostics). Feed to core::SmartConfigGen::apply_hints.
  std::vector<std::pair<std::string, double>> tuning_hints() const;
};

LintReport lint(const minic::Program& program, const LintOptions& options = {});

/// Convenience: parse + lint (lines/columns refer to `source` itself —
/// no normalization round-trip, so locations are the real ones).
LintReport lint_source(const std::string& source,
                       const LintOptions& options = {});

}  // namespace tunio::analysis
