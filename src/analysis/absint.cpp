#include "analysis/absint.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/error.hpp"

namespace tunio::analysis {

using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;

namespace {

constexpr std::int64_t kMin = Interval::kMin;
constexpr std::int64_t kMax = Interval::kMax;

bool representable(__int128 v) {
  return v > static_cast<__int128>(kMin) && v < static_cast<__int128>(kMax);
}

/// Builds an interval from exact __int128 bounds: representable bounds
/// are kept, anything that could wrap in concrete int64 arithmetic
/// widens the whole result to top.
Interval from_exact(__int128 lo, __int128 hi) {
  if (!representable(lo) || !representable(hi)) return Interval::top();
  return Interval::range(static_cast<std::int64_t>(lo),
                         static_cast<std::int64_t>(hi));
}

__int128 w(std::int64_t v) { return static_cast<__int128>(v); }

}  // namespace

std::string Interval::str() const {
  std::ostringstream out;
  out << "[";
  if (lo == kMin) {
    out << "-inf";
  } else {
    out << lo;
  }
  out << ", ";
  if (hi == kMax) {
    out << "+inf";
  } else {
    out << hi;
  }
  out << "]";
  return out.str();
}

Interval abs_add(const Interval& a, const Interval& b) {
  return from_exact(w(a.lo) + w(b.lo), w(a.hi) + w(b.hi));
}

Interval abs_sub(const Interval& a, const Interval& b) {
  return from_exact(w(a.lo) - w(b.hi), w(a.hi) - w(b.lo));
}

Interval abs_mul(const Interval& a, const Interval& b) {
  const __int128 c[4] = {w(a.lo) * w(b.lo), w(a.lo) * w(b.hi),
                         w(a.hi) * w(b.lo), w(a.hi) * w(b.hi)};
  return from_exact(std::min({c[0], c[1], c[2], c[3]}),
                    std::max({c[0], c[1], c[2], c[3]}));
}

Interval abs_div(const Interval& a, const Interval& b) {
  // Division by a range containing zero traps at runtime; no constraint
  // on the surviving executions is worth modeling here.
  if (b.lo <= 0 && b.hi >= 0) return Interval::top();
  const __int128 c[4] = {w(a.lo) / w(b.lo), w(a.lo) / w(b.hi),
                         w(a.hi) / w(b.lo), w(a.hi) / w(b.hi)};
  return from_exact(std::min({c[0], c[1], c[2], c[3]}),
                    std::max({c[0], c[1], c[2], c[3]}));
}

Interval abs_mod(const Interval& a, const Interval& b) {
  if (b.lo <= 0) return Interval::top();  // nonpositive divisors possible
  // Identity case: a already inside [0, min divisor).
  if (a.lo >= 0 && a.hi < b.lo) return a;
  const std::int64_t m = b.hi == kMax ? kMax : b.hi - 1;
  return Interval::range(a.lo >= 0 ? 0 : (m == kMax ? kMin : -m), m);
}

Interval abs_neg(const Interval& a) {
  return from_exact(-w(a.hi), -w(a.lo));
}

Interval abs_min(const Interval& a, const Interval& b) {
  return Interval::range(std::min(a.lo, b.lo), std::min(a.hi, b.hi));
}

Interval abs_max(const Interval& a, const Interval& b) {
  return Interval::range(std::max(a.lo, b.lo), std::max(a.hi, b.hi));
}

Interval count_clamp(const Interval& a) {
  // A possibly-negative size is cast to a huge uint64 by the
  // interpreter: only "anything nonnegative" covers that.
  if (a.lo < 0) return Interval::range(0, kMax);
  return a;
}

Interval count_add(const Interval& a, const Interval& b) {
  const Interval ca = count_clamp(a);
  const Interval cb = count_clamp(b);
  const __int128 lo = w(ca.lo) + w(cb.lo);
  const __int128 hi = w(ca.hi) + w(cb.hi);
  return Interval::range(
      representable(lo) ? static_cast<std::int64_t>(lo) : kMax,
      representable(hi) ? static_cast<std::int64_t>(hi) : kMax);
}

Interval count_mul(const Interval& a, const Interval& b) {
  const Interval ca = count_clamp(a);
  const Interval cb = count_clamp(b);
  const __int128 lo = w(ca.lo) * w(cb.lo);
  const __int128 hi = w(ca.hi) * w(cb.hi);
  return Interval::range(
      representable(lo) ? static_cast<std::int64_t>(lo) : kMax,
      representable(hi) ? static_cast<std::int64_t>(hi) : kMax);
}

AbsValue AbsValue::join(const AbsValue& o) const {
  AbsValue out;
  out.range = range.join(o.range);
  out.tainted = tainted || o.tainted;
  out.origins = origins;
  out.origins.insert(o.origins.begin(), o.origins.end());
  if (out.origins.size() > kMaxOrigins) out.origins.clear();  // -> unknown
  return out;
}

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

struct AbstractInterpreter::Solver {
  const FunctionCfg* cfg = nullptr;
  std::vector<NodeState> states;
  std::deque<int> worklist;
  std::vector<char> queued;
  /// Statement whose transfer is currently running (the call site for
  /// user-function calls evaluated inside it).
  const minic::Stmt* current_stmt = nullptr;
  /// Guards against re-entering control_taint while evaluating an
  /// ancestor condition that itself contains a user call.
  bool in_ctl_walk = false;

  void push(int node) {
    if (queued[node]) return;
    queued[node] = 1;
    worklist.push_back(node);
  }
  int pop() {
    const int node = worklist.front();
    worklist.pop_front();
    queued[node] = 0;
    return node;
  }
};

namespace {

AbsEnv join_envs(const AbsEnv& a, const AbsEnv& b) {
  AbsEnv out = a;
  for (const auto& [name, value] : b) {
    auto it = out.find(name);
    if (it == out.end()) {
      out.emplace(name, value);
    } else {
      it->second = it->second.join(value);
    }
  }
  return out;
}

AbsEnv widen_envs(const AbsEnv& prev, const AbsEnv& next) {
  AbsEnv out = next;
  for (auto& [name, value] : out) {
    auto it = prev.find(name);
    if (it != prev.end()) value.range = it->second.range.widen(value.range);
  }
  return out;
}

bool is_loop(const Stmt* stmt) {
  return stmt != nullptr &&
         (stmt->kind == StmtKind::kFor || stmt->kind == StmtKind::kWhile);
}

/// Exact ceiling division for positive operands.
std::int64_t ceil_div_128(__int128 span, __int128 step) {
  const __int128 t = (span + step - 1) / step;
  if (t >= static_cast<__int128>(kMax)) return kMax;
  return static_cast<std::int64_t>(t);
}

}  // namespace

AbstractInterpreter::AbstractInterpreter(const Program& program,
                                         AbsintOptions options)
    : program_(&program), options_(options), index_(program) {
  for (const Function& fn : program.functions) {
    cfgs_.emplace(&fn, build_cfg(fn));
  }
}

const FunctionContext& AbstractInterpreter::analyze_main() {
  if (main_ != nullptr) return *main_;
  const Function* fn = program_->find("main");
  TUNIO_CHECK_MSG(fn != nullptr, "absint: program has no main function");
  main_ = get_context(*fn, {}, /*control_tainted=*/false, /*depth=*/0);
  return *main_;
}

Interval AbstractInterpreter::elem_size_of(const AbsValue& handle) const {
  if (handle.origins.empty()) return Interval::top();
  Interval out;
  bool first = true;
  for (const Expr* site : handle.origins) {
    const auto it = elem_sizes_.find(site);
    const Interval e = it == elem_sizes_.end() ? Interval::top() : it->second;
    out = first ? e : out.join(e);
    first = false;
  }
  return out;
}

AbsValue AbstractInterpreter::eval_at(const FunctionContext& ctx, int stmt_id,
                                      const Expr& expr) const {
  const auto it = ctx.stmt_in.find(stmt_id);
  if (it == ctx.stmt_in.end()) return AbsValue::top_tainted();
  // Read-only mode (null solver) mutates nothing; see eval().
  auto* self = const_cast<AbstractInterpreter*>(this);
  return self->eval(expr, it->second, const_cast<FunctionContext*>(&ctx),
                    nullptr, options_.max_call_depth);
}

const FunctionContext* AbstractInterpreter::get_context(
    const Function& fn, std::vector<AbsValue> args, bool control_tainted,
    int depth) {
  if (in_progress_.count(&fn) > 0) {
    throw AnalysisLimit("absint: recursion involving function '" + fn.name +
                        "'");
  }
  if (depth >= options_.max_call_depth) {
    throw AnalysisLimit("absint: call depth limit (" +
                        std::to_string(options_.max_call_depth) +
                        ") exceeded at '" + fn.name + "'");
  }

  std::ostringstream key;
  key << static_cast<const void*>(&fn) << "|" << control_tainted;
  for (const AbsValue& arg : args) {
    key << "|" << arg.range.lo << ":" << arg.range.hi << ":" << arg.tainted;
    for (const Expr* origin : arg.origins) {
      key << ":" << static_cast<const void*>(origin);
    }
  }
  const std::string k = key.str();
  const auto it = memo_.find(k);
  if (it != memo_.end()) return it->second;

  if (static_cast<int>(contexts_.size()) >= options_.max_contexts) {
    // Context budget exhausted: fall back to one all-top, all-tainted
    // context per function — a superset of every possible call, so the
    // results stay sound while precision degrades.
    approximate_ = true;
    const std::string overflow_key =
        "overflow|" + std::string(fn.name) + "|" +
        std::to_string(reinterpret_cast<std::uintptr_t>(&fn));
    const auto oit = memo_.find(overflow_key);
    if (oit != memo_.end()) return oit->second;
    FunctionContext& ctx = contexts_.emplace_back();
    ctx.function = &fn;
    ctx.args.assign(fn.params.size(), AbsValue::top_tainted());
    ctx.control_tainted = true;
    memo_[overflow_key] = &ctx;
    in_progress_.insert(&fn);
    try {
      solve(ctx, depth);
    } catch (...) {
      in_progress_.erase(&fn);
      throw;
    }
    in_progress_.erase(&fn);
    return &ctx;
  }

  FunctionContext& ctx = contexts_.emplace_back();
  ctx.function = &fn;
  ctx.args = std::move(args);
  ctx.control_tainted = control_tainted;
  memo_[k] = &ctx;
  in_progress_.insert(&fn);
  try {
    solve(ctx, depth);
  } catch (...) {
    in_progress_.erase(&fn);
    throw;
  }
  in_progress_.erase(&fn);
  return &ctx;
}

bool AbstractInterpreter::control_taint(FunctionContext& ctx, Solver& solver,
                                        const Stmt& stmt, int depth) {
  if (ctx.control_tainted) return true;
  const bool was_walking = solver.in_ctl_walk;
  solver.in_ctl_walk = true;
  bool tainted = false;
  const Stmt* child = &stmt;
  const StmtRecord* rec = &index_.record(stmt.id);
  while (!tainted && rec->parent != nullptr) {
    const Stmt* parent = rec->parent;
    const bool via_for_init = parent->kind == StmtKind::kFor &&
                              parent->init != nullptr &&
                              parent->init.get() == child;
    const bool branching = parent->kind == StmtKind::kIf ||
                           parent->kind == StmtKind::kWhile ||
                           (parent->kind == StmtKind::kFor && !via_for_init);
    if (branching && parent->cond != nullptr) {
      const int node = solver.cfg->node_of(parent->id);
      if (node >= 0 && solver.states[node].reached) {
        const AbsValue cond = eval(*parent->cond, solver.states[node].in, &ctx,
                                   &solver, depth);
        tainted = cond.tainted;
      }
    }
    child = parent;
    rec = &index_.record(parent->id);
  }
  solver.in_ctl_walk = was_walking;
  return tainted;
}

AbsValue AbstractInterpreter::eval_call(const Expr& call, const AbsEnv& env,
                                        FunctionContext* ctx, Solver* solver,
                                        int depth) {
  const std::string& name = call.text;

  std::vector<AbsValue> args;
  args.reserve(call.children.size());
  for (const minic::ExprPtr& child : call.children) {
    args.push_back(eval(*child, env, ctx, solver, depth));
  }
  bool arg_taint = false;
  for (const AbsValue& a : args) arg_taint = arg_taint || a.tainted;

  // User-defined functions.
  if (const Function* fn = program_->find(name)) {
    if (solver == nullptr) {
      const auto it = ctx->call_targets.find(&call);
      if (it == ctx->call_targets.end()) return AbsValue::top_tainted();
      return it->second->result;
    }
    bool ctl = ctx->control_tainted;
    if (!ctl && !solver->in_ctl_walk && solver->current_stmt != nullptr) {
      ctl = control_taint(*ctx, *solver, *solver->current_stmt, depth);
    }
    const FunctionContext* callee = get_context(*fn, args, ctl, depth + 1);
    ctx->call_targets[&call] = callee;
    return callee->result;
  }

  // Builtins.
  if (name.rfind("tuned_", 0) == 0) return AbsValue::top_tainted();
  if (name == "mpi_size") {
    AbsValue v;
    v.range = options_.mpi_ranks;
    return v;
  }
  if (name == "min" || name == "max") {
    AbsValue v;
    if (args.size() == 2) {
      v.range = name == "min" ? abs_min(args[0].range, args[1].range)
                              : abs_max(args[0].range, args[1].range);
      v.tainted = arg_taint;
    }
    return v;
  }
  if (name == "reduced_iters") {
    AbsValue v;
    if (args.size() == 2) {
      const Interval divisor =
          abs_max(args[1].range, Interval::constant(1));
      v.range = abs_max(abs_div(args[0].range, divisor),
                        Interval::constant(1));
      v.tainted = arg_taint;
    }
    return v;
  }
  if (name == "h5dcreate") {
    AbsValue v;
    v.tainted = arg_taint;
    v.origins.insert(&call);
    if (solver != nullptr && args.size() >= 3) {
      const auto it = elem_sizes_.find(&call);
      elem_sizes_[&call] = it == elem_sizes_.end()
                               ? args[2].range
                               : it->second.join(args[2].range);
    }
    return v;
  }
  if (name == "h5fcreate" || name == "h5fopen" || name == "h5dopen") {
    AbsValue v;  // handle index: top, unknown provenance
    v.tainted = arg_taint;
    return v;
  }
  if (name == "h5fclose" || name == "h5dclose" || name == "h5set_chunking" ||
      name == "h5dwrite_all" || name == "h5dread_all" ||
      name == "h5dwrite_strided" || name == "h5dread_strided" ||
      name == "fprintf_log" || name == "compute" || name == "mpi_barrier") {
    AbsValue v = AbsValue::constant(0);  // the interpreter returns int64{0}
    v.tainted = arg_taint;
    return v;
  }
  // Unknown callee: the interpreter would trap; no value constraints.
  return AbsValue::top();
}

AbsValue AbstractInterpreter::eval(const Expr& expr, const AbsEnv& env,
                                   FunctionContext* ctx, Solver* solver,
                                   int depth) {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return AbsValue::constant(expr.int_value);
    case ExprKind::kFloatLit:
    case ExprKind::kStringLit:
      return AbsValue::top();  // non-integer: no interval constraints
    case ExprKind::kVar: {
      const auto it = env.find(expr.text);
      if (it == env.end()) return AbsValue::top();
      return it->second;
    }
    case ExprKind::kUnary: {
      const AbsValue v = eval(*expr.children[0], env, ctx, solver, depth);
      AbsValue out;
      out.tainted = v.tainted;
      if (expr.text == "-") {
        out.range = abs_neg(v.range);
      } else if (expr.text == "!") {
        out.range = v.range.is_zero()        ? Interval::constant(1)
                    : v.range.excludes_zero() ? Interval::constant(0)
                                              : Interval::range(0, 1);
      }
      return out;
    }
    case ExprKind::kBinary: {
      const AbsValue a = eval(*expr.children[0], env, ctx, solver, depth);
      const AbsValue b = eval(*expr.children[1], env, ctx, solver, depth);
      AbsValue out;
      out.tainted = a.tainted || b.tainted;
      const std::string& op = expr.text;
      if (op == "+") {
        out.range = abs_add(a.range, b.range);
      } else if (op == "-") {
        out.range = abs_sub(a.range, b.range);
      } else if (op == "*") {
        out.range = abs_mul(a.range, b.range);
      } else if (op == "/") {
        out.range = abs_div(a.range, b.range);
      } else if (op == "%") {
        out.range = abs_mod(a.range, b.range);
      } else if (op == "<") {
        out.range = a.range.hi < b.range.lo    ? Interval::constant(1)
                    : a.range.lo >= b.range.hi ? Interval::constant(0)
                                               : Interval::range(0, 1);
      } else if (op == "<=") {
        out.range = a.range.hi <= b.range.lo  ? Interval::constant(1)
                    : a.range.lo > b.range.hi ? Interval::constant(0)
                                              : Interval::range(0, 1);
      } else if (op == ">") {
        out.range = a.range.lo > b.range.hi    ? Interval::constant(1)
                    : a.range.hi <= b.range.lo ? Interval::constant(0)
                                               : Interval::range(0, 1);
      } else if (op == ">=") {
        out.range = a.range.lo >= b.range.hi  ? Interval::constant(1)
                    : a.range.hi < b.range.lo ? Interval::constant(0)
                                              : Interval::range(0, 1);
      } else if (op == "==") {
        out.range = (a.range.is_constant() && a.range == b.range)
                        ? Interval::constant(1)
                    : (a.range.hi < b.range.lo || a.range.lo > b.range.hi)
                        ? Interval::constant(0)
                        : Interval::range(0, 1);
      } else if (op == "!=") {
        out.range = (a.range.is_constant() && a.range == b.range)
                        ? Interval::constant(0)
                    : (a.range.hi < b.range.lo || a.range.lo > b.range.hi)
                        ? Interval::constant(1)
                        : Interval::range(0, 1);
      } else if (op == "&&") {
        out.range = (a.range.is_zero() || b.range.is_zero())
                        ? Interval::constant(0)
                    : (a.range.excludes_zero() && b.range.excludes_zero())
                        ? Interval::constant(1)
                        : Interval::range(0, 1);
      } else if (op == "||") {
        out.range = (a.range.excludes_zero() || b.range.excludes_zero())
                        ? Interval::constant(1)
                    : (a.range.is_zero() && b.range.is_zero())
                        ? Interval::constant(0)
                        : Interval::range(0, 1);
      }
      return out;
    }
    case ExprKind::kCall:
      return eval_call(expr, env, ctx, solver, depth);
  }
  return AbsValue::top();
}

Interval AbstractInterpreter::trip_count(FunctionContext& ctx, Solver& solver,
                                         const Stmt& loop, int depth) {
  const int head = solver.cfg->node_of(loop.id);
  if (head < 0 || !solver.states[head].reached) return Interval::range(0, 0);
  const AbsEnv& head_env = solver.states[head].in;

  if (loop.kind == StmtKind::kWhile) {
    if (loop.cond == nullptr) return Interval::range(1, kMax);
    const AbsValue cond = eval(*loop.cond, head_env, &ctx, &solver, depth);
    if (cond.range.is_zero()) return Interval::range(0, 0);
    return Interval::range(cond.range.excludes_zero() ? 1 : 0, kMax);
  }

  // for-loop: match `for (v = a; v OP b; v = v ± c)`.
  const Interval fallback = Interval::range(0, kMax);
  if (loop.cond == nullptr) return Interval::range(1, kMax);
  const AbsValue cond_val = eval(*loop.cond, head_env, &ctx, &solver, depth);
  if (cond_val.range.is_zero()) return Interval::range(0, 0);
  if (loop.init == nullptr || loop.update == nullptr) return fallback;
  const std::string var = name_defined(*loop.init);
  if (var.empty() || loop.init->value == nullptr) return fallback;
  if (name_defined(*loop.update) != var) return fallback;

  // Initial value, evaluated *before* the init statement runs.
  const int init_node = solver.cfg->node_of(loop.init->id);
  if (init_node < 0 || !solver.states[init_node].reached) return fallback;
  const Interval a0 =
      eval(*loop.init->value, solver.states[init_node].in, &ctx, &solver,
           depth)
          .range;

  // Normalize the condition to `var OP bound`.
  if (loop.cond->kind != ExprKind::kBinary) return fallback;
  std::string op = loop.cond->text;
  const Expr* lhs = loop.cond->children[0].get();
  const Expr* rhs = loop.cond->children[1].get();
  if (lhs->kind != ExprKind::kVar || lhs->text != var) {
    if (rhs->kind != ExprKind::kVar || rhs->text != var) return fallback;
    std::swap(lhs, rhs);
    if (op == "<") {
      op = ">";
    } else if (op == "<=") {
      op = ">=";
    } else if (op == ">") {
      op = "<";
    } else if (op == ">=") {
      op = "<=";
    }
  }
  const Interval bound = eval(*rhs, head_env, &ctx, &solver, depth).range;

  // Step: `var = var + c`, `var = c + var`, or `var = var - c`.
  const Expr* upd = loop.update->value.get();
  if (upd == nullptr || upd->kind != ExprKind::kBinary) return fallback;
  const bool plus = upd->text == "+";
  const bool minus = upd->text == "-";
  if (!plus && !minus) return fallback;
  const Expr* l = upd->children[0].get();
  const Expr* r = upd->children[1].get();
  const Expr* step_expr = nullptr;
  if (l->kind == ExprKind::kVar && l->text == var) {
    step_expr = r;
  } else if (plus && r->kind == ExprKind::kVar && r->text == var) {
    step_expr = l;
  } else {
    return fallback;
  }
  const int upd_node = solver.cfg->node_of(loop.update->id);
  if (upd_node < 0 || !solver.states[upd_node].reached) return fallback;
  Interval step =
      eval(*step_expr, solver.states[upd_node].in, &ctx, &solver, depth).range;
  if (minus) step = abs_neg(step);

  const auto bounded_trips = [](__int128 span_lo, __int128 span_hi,
                                const Interval& inc) -> Interval {
    // inc.lo > 0 guaranteed by the caller (strictly advancing).
    std::int64_t lo = 0;
    if (span_lo > 0) lo = ceil_div_128(span_lo, w(inc.hi));
    std::int64_t hi = 0;
    if (span_hi > 0) {
      hi = span_hi >= static_cast<__int128>(kMax)
               ? kMax
               : ceil_div_128(span_hi, w(inc.lo));
    }
    return Interval::range(lo, hi);
  };

  if ((op == "<" || op == "<=") && step.lo > 0) {
    const __int128 extra = op == "<=" ? 1 : 0;
    // Unknown endpoints leave the corresponding span unbounded.
    const __int128 span_hi = (bound.hi == kMax || a0.lo == kMin)
                                 ? static_cast<__int128>(kMax)
                                 : w(bound.hi) - w(a0.lo) + extra;
    const __int128 span_lo = (bound.lo == kMin || a0.hi == kMax)
                                 ? 0
                                 : w(bound.lo) - w(a0.hi) + extra;
    return bounded_trips(span_lo, span_hi, step);
  }
  if ((op == ">" || op == ">=") && step.hi < 0) {
    const Interval inc = abs_neg(step);
    const __int128 extra = op == ">=" ? 1 : 0;
    const __int128 span_hi = (a0.hi == kMax || bound.lo == kMin)
                                 ? static_cast<__int128>(kMax)
                                 : w(a0.hi) - w(bound.lo) + extra;
    const __int128 span_lo = (a0.lo == kMin || bound.hi == kMax)
                                 ? 0
                                 : w(a0.lo) - w(bound.hi) + extra;
    return bounded_trips(span_lo, span_hi, inc);
  }
  if (op == "!=" && step.is_constant() && step.lo == 1 && a0.hi != kMax &&
      bound.lo != kMin && a0.hi <= bound.lo) {
    // `for (v = a; v != b; v = v + 1)` with a <= b: exactly b - a trips.
    return from_exact(w(bound.lo) - w(a0.hi), w(bound.hi) - w(a0.lo));
  }
  return fallback;
}

void AbstractInterpreter::solve(FunctionContext& ctx, int depth) {
  const FunctionCfg& cfg = cfgs_.at(ctx.function);
  Solver solver;
  solver.cfg = &cfg;
  solver.states.resize(cfg.num_nodes());
  solver.queued.assign(cfg.num_nodes(), 0);

  // Entry environment: the abstract arguments, by parameter name.
  AbsEnv entry;
  for (std::size_t i = 0; i < ctx.function->params.size(); ++i) {
    const AbsValue v = i < ctx.args.size() ? ctx.args[i] : AbsValue::top();
    entry[ctx.function->params[i].second] = v;
  }
  solver.states[FunctionCfg::kEntry].reached = true;
  solver.states[FunctionCfg::kEntry].in = std::move(entry);
  solver.push(FunctionCfg::kEntry);

  std::optional<AbsValue> result;

  const auto transfer = [&](int node) -> AbsEnv {
    NodeState& state = solver.states[node];
    const Stmt* stmt = cfg.stmt_of(node);
    AbsEnv out = state.in;
    if (stmt == nullptr) {
      state.ctl_used = ctx.control_tainted;
      return out;
    }
    solver.current_stmt = stmt;
    const bool ctl = control_taint(ctx, solver, *stmt, depth);
    state.ctl_used = ctl;
    switch (stmt->kind) {
      case StmtKind::kDecl: {
        AbsValue v = stmt->value != nullptr
                         ? eval(*stmt->value, state.in, &ctx, &solver, depth)
                         : (stmt->decl_type == "int"
                                ? AbsValue::constant(0)
                                : AbsValue::top());
        v.tainted = v.tainted || ctl;
        out[stmt->name] = std::move(v);
        break;
      }
      case StmtKind::kAssign: {
        AbsValue v = stmt->value != nullptr
                         ? eval(*stmt->value, state.in, &ctx, &solver, depth)
                         : AbsValue::top();
        v.tainted = v.tainted || ctl;
        out[stmt->name] = std::move(v);
        break;
      }
      case StmtKind::kExprStmt:
        if (stmt->value != nullptr) {
          eval(*stmt->value, state.in, &ctx, &solver, depth);
        }
        break;
      case StmtKind::kReturn: {
        AbsValue v = stmt->value != nullptr
                         ? eval(*stmt->value, state.in, &ctx, &solver, depth)
                         : AbsValue::top();
        v.tainted = v.tainted || ctl;
        result = result ? result->join(v) : v;
        if (ctl) ctx.has_tainted_return = true;
        break;
      }
      case StmtKind::kFor:
      case StmtKind::kWhile:
      case StmtKind::kIf:
        if (stmt->cond != nullptr) {
          eval(*stmt->cond, state.in, &ctx, &solver, depth);
        }
        break;
      case StmtKind::kBlock:
        break;
    }
    solver.current_stmt = nullptr;
    return out;
  };

  // Inner worklist to a fixpoint; outer loop re-checks implicit-flow
  // taint against the final environments and re-runs until that is
  // stable too (taint is monotone, so this terminates quickly).
  while (true) {
    while (!solver.worklist.empty()) {
      const int node = solver.pop();
      if (++ctx.transfers > options_.max_transfers) {
        throw AnalysisLimit("absint: transfer budget exceeded in '" +
                            ctx.function->name + "'");
      }
      ++total_transfers_;
      ++solver.states[node].visits;
      const AbsEnv out = transfer(node);
      for (const int succ : cfg.successors(node)) {
        NodeState& target = solver.states[succ];
        if (!target.reached) {
          target.reached = true;
          target.in = out;
          solver.push(succ);
          continue;
        }
        AbsEnv joined = join_envs(target.in, out);
        if (is_loop(cfg.stmt_of(succ)) &&
            target.visits >= options_.widen_after) {
          joined = widen_envs(target.in, joined);
        }
        if (joined != target.in) {
          target.in = std::move(joined);
          solver.push(succ);
        }
      }
    }
    // Re-stabilize implicit-flow taint: a condition may have become
    // tainted after its controlled statements last ran.
    bool changed = false;
    for (int node = 0; node < cfg.num_nodes(); ++node) {
      NodeState& state = solver.states[node];
      if (!state.reached) continue;
      const Stmt* stmt = cfg.stmt_of(node);
      if (stmt == nullptr) continue;
      solver.current_stmt = stmt;
      const bool ctl = control_taint(ctx, solver, *stmt, depth);
      solver.current_stmt = nullptr;
      if (ctl != state.ctl_used) {
        solver.push(node);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Snapshot post-fixpoint facts.
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const NodeState& state = solver.states[node];
    if (!state.reached) continue;
    const Stmt* stmt = cfg.stmt_of(node);
    if (stmt == nullptr) continue;
    ctx.stmt_in[stmt->id] = state.in;
    if (state.ctl_used) ctx.tainted_control.insert(stmt->id);
    if (is_loop(stmt)) {
      ctx.loop_trips[stmt->id] = trip_count(ctx, solver, *stmt, depth);
    }
  }
  // A reachable exit fed by a non-return node means the function can
  // fall off the end; its value is then unconstrained.
  if (result) {
    for (const int pred : cfg.predecessors(FunctionCfg::kExit)) {
      const Stmt* stmt = cfg.stmt_of(pred);
      if (solver.states[pred].reached &&
          (stmt == nullptr || stmt->kind != StmtKind::kReturn)) {
        AbsValue top = AbsValue::top();
        top.tainted = result->tainted;
        result = result->join(top);
        break;
      }
    }
  }
  ctx.result = result.value_or(AbsValue::top());
}

}  // namespace tunio::analysis
