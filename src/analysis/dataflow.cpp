#include "analysis/dataflow.hpp"

#include <deque>
#include <unordered_map>

namespace tunio::analysis {

using minic::Function;
using minic::Stmt;

ReachingDefinitions::ReachingDefinitions(const Function& fn,
                                         const FunctionCfg& cfg)
    : cfg_(&cfg) {
  // Collect definitions: parameters at entry, then decls/assigns.
  for (const auto& [type, pname] : fn.params) {
    (void)type;
    defs_.push_back({FunctionCfg::kEntry, -1, pname});
  }
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const Stmt* stmt = cfg.stmt_of(node);
    if (stmt == nullptr) continue;
    const std::string defined = name_defined(*stmt);
    if (!defined.empty()) defs_.push_back({node, stmt->id, defined});
  }

  const int num_defs = static_cast<int>(defs_.size());
  const int words = (num_defs + 63) / 64;
  // Defs of each name, for KILL sets.
  std::unordered_map<std::string, std::vector<int>> defs_by_name;
  for (int d = 0; d < num_defs; ++d) defs_by_name[defs_[d].name].push_back(d);

  std::vector<Bits> gen(cfg.num_nodes(), Bits(words, 0));
  std::vector<Bits> kill(cfg.num_nodes(), Bits(words, 0));
  auto set_bit = [](Bits& bits, int i) { bits[i >> 6] |= 1ull << (i & 63); };
  for (int d = 0; d < num_defs; ++d) {
    set_bit(gen[defs_[d].node], d);
    for (int other : defs_by_name[defs_[d].name]) {
      if (other != d) set_bit(kill[defs_[d].node], other);
    }
  }

  in_.assign(cfg.num_nodes(), Bits(words, 0));
  out_.assign(cfg.num_nodes(), Bits(words, 0));

  // Worklist iteration to fixpoint (FIFO; each pop counts one pass over
  // a node).
  std::deque<int> worklist;
  std::vector<char> queued(cfg.num_nodes(), 1);
  for (int node = 0; node < cfg.num_nodes(); ++node) worklist.push_back(node);
  while (!worklist.empty()) {
    const int node = worklist.front();
    worklist.pop_front();
    queued[node] = 0;
    ++solver_passes_;

    Bits& in = in_[node];
    for (int p : cfg.predecessors(node)) {
      for (int w = 0; w < words; ++w) in[w] |= out_[p][w];
    }
    bool changed = false;
    for (int w = 0; w < words; ++w) {
      const std::uint64_t next = gen[node][w] | (in[w] & ~kill[node][w]);
      if (next != out_[node][w]) {
        out_[node][w] = next;
        changed = true;
      }
    }
    if (changed) {
      for (int s : cfg.successors(node)) {
        if (!queued[s]) {
          queued[s] = 1;
          worklist.push_back(s);
        }
      }
    }
  }
}

std::vector<int> ReachingDefinitions::reaching(int node,
                                               const std::string& name) const {
  std::vector<int> result;
  for (int d = 0; d < static_cast<int>(defs_.size()); ++d) {
    if (defs_[d].name == name && test(in_[node], d)) result.push_back(d);
  }
  return result;
}

DefUseChains build_def_use(const Function& fn, const FunctionCfg& cfg,
                           const ReachingDefinitions& rd) {
  (void)fn;
  DefUseChains chains;
  // Every definition appears in def_to_uses so dead stores are visible.
  for (const Definition& def : rd.definitions()) {
    if (def.stmt_id >= 0) chains.def_to_uses[def.stmt_id];
  }
  for (int node = 0; node < cfg.num_nodes(); ++node) {
    const Stmt* stmt = cfg.stmt_of(node);
    if (stmt == nullptr) continue;
    for (const std::string& name : names_used(*stmt)) {
      for (int d : rd.reaching(node, name)) {
        const Definition& def = rd.definitions()[d];
        if (def.stmt_id < 0) continue;  // parameter definition
        chains.use_to_defs[stmt->id].insert(def.stmt_id);
        chains.def_to_uses[def.stmt_id].insert(stmt->id);
      }
    }
  }
  return chains;
}

}  // namespace tunio::analysis
