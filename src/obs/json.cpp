#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace tunio::obs {

Json Json::boolean(bool value) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = value;
  return j;
}

Json Json::string(std::string value) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  TUNIO_CHECK_MSG(is_bool(), "JSON: not a bool");
  return bool_;
}

double Json::as_number() const {
  TUNIO_CHECK_MSG(is_number(), "JSON: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  TUNIO_CHECK_MSG(is_string(), "JSON: not a string");
  return string_;
}

const Json::Array& Json::items() const {
  TUNIO_CHECK_MSG(is_array(), "JSON: not an array");
  return array_;
}

const Json::Object& Json::members() const {
  TUNIO_CHECK_MSG(is_object(), "JSON: not an object");
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::push_back(Json value) {
  TUNIO_CHECK_MSG(is_array(), "JSON: push_back on non-array");
  array_.push_back(std::move(value));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  TUNIO_CHECK_MSG(is_object(), "JSON: set on non-object");
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  return buf;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  std::string pad;
  std::string close_pad;
  if (pretty) {
    pad.assign(1, '\n');
    pad.append(static_cast<std::size_t>(indent) *
                   (static_cast<std::size_t>(depth) + 1),
               ' ');
    close_pad.assign(1, '\n');
    close_pad.append(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
        ' ');
  }
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += json_number(number_); break;
    case Type::kString: out += json_quote(string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        out += pad;
        out += json_quote(object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json document() {
    Json value = parse_value();
    skip_ws();
    TUNIO_CHECK_MSG(pos_ == text_.size(),
                    "JSON: trailing characters at offset " +
                        std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("JSON: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  unsigned hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        TUNIO_CHECK_MSG(static_cast<unsigned char>(c) >= 0x20,
                        "JSON: raw control character in string");
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (!literal("\\u")) fail("unpaired surrogate");
            const unsigned low = hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= text_.size()) fail("truncated number");
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    try {
      std::size_t used = 0;
      const std::string slice = text_.substr(start, pos_ - start);
      const double value = std::stod(slice, &used);
      if (used != slice.size()) fail("malformed number");
      return Json::number(value);
    } catch (const Error&) {
      throw;
    } catch (...) {
      fail("malformed number");
    }
  }

  Json parse_value() {
    switch (peek()) {
      case '{': {
        ++pos_;
        Json obj = Json::object();
        if (consume('}')) return obj;
        do {
          std::string key = parse_string();
          expect(':');
          obj.set(std::move(key), parse_value());
        } while (consume(','));
        expect('}');
        return obj;
      }
      case '[': {
        ++pos_;
        Json arr = Json::array();
        if (consume(']')) return arr;
        do {
          arr.push_back(parse_value());
        } while (consume(','));
        expect(']');
        return arr;
      }
      case '"': return Json::string(parse_string());
      case 't':
        if (literal("true")) return Json::boolean(true);
        fail("bad literal");
      case 'f':
        if (literal("false")) return Json::boolean(false);
        fail("bad literal");
      case 'n':
        if (literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).document(); }

}  // namespace tunio::obs
