// Process-wide metrics registry: named counters, gauges and histograms
// that every layer of the stack publishes into.
//
// The paper's pipeline is driven by monitoring hooks ("such as Darshan")
// feeding the fitness function; production tuning additionally needs the
// *service* itself to be observable — how many PFS requests the fleet of
// simulated testbeds issued, what the chunk cache hit, how the shared
// result cache and evaluation engine are doing — without each component
// inventing its own stats struct and printf. The registry is that shared
// sink:
//
//   * instruments are named series ("pfs.bytes_written"), created on
//     first use and stable for the process lifetime, so call sites cache
//     a reference and updates are a relaxed atomic op — no registry lock
//     on the hot path;
//   * hot simulator loops (PFS, MPI, chunk cache) keep their existing
//     zero-cost local counters and flush the totals when the simulated
//     testbed is torn down, so per-request paths pay nothing; service
//     components (engine, cache, server) publish live per event;
//   * `snapshot()` captures every series at a point in time into a plain
//     value struct that serializes to JSON — the payload bench `--json`
//     reports and the CI perf gate consume.
//
// Histograms carry an exemplar: the label passed with the largest sample
// observed ("which objective produced the best perf"), Prometheus-style.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace tunio::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A settable / accumulating double (time totals, utilization, depths).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    // CAS loop: atomic<double>::fetch_add needs C++20 library support
    // that not every deployed toolchain ships.
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bound histogram with count/sum/max and a max-sample exemplar.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// Records one sample; `exemplar` (if nonempty) labels it, and the
  /// label of the largest sample seen so far is kept.
  void observe(double value, const std::string& exemplar = {});

  /// Bulk-merges pre-bucketed counts (one per bound, plus overflow);
  /// used by simulator teardown flushes that already kept Darshan-style
  /// size buckets. `counts` must have `bounds().size() + 1` entries.
  void add_bucketed(const std::vector<std::uint64_t>& counts, double sum);

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;

  std::vector<double> bounds_;
  /// counts_[i] = samples <= bounds_[i]; last entry = overflow.
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  Gauge sum_;
  mutable std::mutex exemplar_mutex_;
  double max_ = 0.0;
  bool has_max_ = false;
  std::string exemplar_;
};

/// Point-in-time copy of every instrument (safe to keep, serialize,
/// diff; later updates to the registry do not affect it).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< per bound + overflow
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::string exemplar;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a named counter/gauge; 0 when absent.
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramValue* histogram(const std::string& name) const;

  Json to_json() const;
};

class MetricsRegistry {
 public:
  /// Returns the named instrument, creating it on first use. References
  /// stay valid for the registry's lifetime — cache them at call sites.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies only on first creation; later callers get
  /// the existing instrument whatever bounds they pass.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument (bench isolation between runs). Instrument
  /// identities survive — cached references remain valid.
  void reset();

  /// The process-wide registry everything publishes into by default.
  static MetricsRegistry& global();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mutex_;  ///< guards the name tables, not updates
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

/// Darshan's condensed POSIX_SIZE buckets (<4K, 64K, 1M, 16M, overflow)
/// — the bounds the PFS size histograms publish with.
std::vector<double> darshan_size_bounds();

}  // namespace tunio::obs
