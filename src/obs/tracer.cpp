#include "obs/tracer.hpp"

#include <fstream>

#include "obs/json.hpp"

namespace tunio::obs {

namespace {
thread_local SimSeconds g_ambient_seconds = 0.0;
}  // namespace

void Tracer::set_ambient_seconds(SimSeconds t) { g_ambient_seconds = t; }
SimSeconds Tracer::ambient_seconds() { return g_ambient_seconds; }

void Tracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The cap bounds the data-plane (per-request PFS/MPI spans, which a
  // tuning run issues by the million). Control-plane events — metered
  // run phases, GA generations, RL decisions — are bounded by the
  // generation count, so they are kept even once the buffer is full:
  // a capped trace must still show *why* the I/O happened.
  if (events_.size() >= capacity_ && event.pid == kPidStack) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::span(std::string cat, std::string name, SimSeconds start,
                  SimSeconds end, std::uint32_t pid, std::uint32_t tid,
                  std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.ts_us = start * 1e6;
  event.dur_us = (end > start ? end - start : 0.0) * 1e6;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  record(std::move(event));
}

void Tracer::instant(std::string cat, std::string name, SimSeconds at,
                     std::uint32_t pid, std::uint32_t tid,
                     std::vector<std::pair<std::string, std::string>> args) {
  span(std::move(cat), std::move(name), at, at, pid, tid, std::move(args));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::set_capacity(std::size_t max_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = max_events;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(events_.size() * 160 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Process-name metadata so viewers label the clock domains.
  static constexpr std::pair<std::uint32_t, const char*> kProcesses[] = {
      {kPidStack, "stack (per-run sim clock)"},
      {kPidRun, "metered runs (per-run sim clock)"},
      {kPidTuner, "tuner (budget clock)"},
      {kPidRl, "rl agents (budget clock)"},
  };
  bool first = true;
  for (const auto& [pid, label] : kProcesses) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":" +
           json_quote(label) + "}}";
  }

  for (const TraceEvent& event : events_) {
    out += ",{\"ph\":\"X\",\"name\":" + json_quote(event.name) +
           ",\"cat\":" + json_quote(event.cat) +
           ",\"ts\":" + json_number(event.ts_us) +
           ",\"dur\":" + json_number(event.dur_us) +
           ",\"pid\":" + std::to_string(event.pid) +
           ",\"tid\":" + std::to_string(event.tid);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) out += ",";
        out += json_quote(event.args[i].first) + ":" + event.args[i].second;
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"droppedEvents\":" +
         std::to_string(dropped_.load(std::memory_order_relaxed)) + "}";
  return out;
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

}  // namespace tunio::obs
