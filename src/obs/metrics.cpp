#include "obs/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace tunio::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  TUNIO_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                  "histogram bounds must be ascending");
}

void Histogram::observe(double value, const std::string& exemplar) {
  std::size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.add(value);
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  if (!has_max_ || value > max_) {
    max_ = value;
    has_max_ = true;
    if (!exemplar.empty()) exemplar_ = exemplar;
  }
}

void Histogram::add_bucketed(const std::vector<std::uint64_t>& counts,
                             double sum) {
  TUNIO_CHECK_MSG(counts.size() == counts_.size(),
                  "bucketed merge arity mismatch");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts_[i].fetch_add(counts[i], std::memory_order_relaxed);
    total += counts[i];
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  sum_.add(sum);
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Json MetricsSnapshot::to_json() const {
  Json counters_json = Json::object();
  for (const CounterValue& c : counters) {
    counters_json.set(c.name, Json::number(static_cast<double>(c.value)));
  }
  Json gauges_json = Json::object();
  for (const GaugeValue& g : gauges) {
    gauges_json.set(g.name, Json::number(g.value));
  }
  Json histograms_json = Json::object();
  for (const HistogramValue& h : histograms) {
    Json entry = Json::object();
    Json bounds = Json::array();
    for (double b : h.bounds) bounds.push_back(Json::number(b));
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) {
      counts.push_back(Json::number(static_cast<double>(c)));
    }
    entry.set("bounds", std::move(bounds));
    entry.set("counts", std::move(counts));
    entry.set("count", Json::number(static_cast<double>(h.count)));
    entry.set("sum", Json::number(h.sum));
    entry.set("max", Json::number(h.max));
    if (!h.exemplar.empty()) entry.set("exemplar", Json::string(h.exemplar));
    histograms_json.set(h.name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters_json));
  out.set("gauges", std::move(gauges_json));
  out.set("histograms", std::move(histograms_json));
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_) {
    if (entry.name == name) return *entry.instrument;
  }
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : gauges_) {
    if (entry.name == name) return *entry.instrument;
  }
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : histograms_) {
    if (entry.name == name) return *entry.instrument;
  }
  histograms_.push_back(
      {name, std::make_unique<Histogram>(std::move(upper_bounds))});
  return *histograms_.back().instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snap.counters.push_back({entry.name, entry.instrument->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snap.gauges.push_back({entry.name, entry.instrument->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    const Histogram& h = *entry.instrument;
    MetricsSnapshot::HistogramValue value;
    value.name = entry.name;
    value.bounds = h.bounds_;
    value.counts.reserve(h.counts_.size());
    for (const auto& c : h.counts_) {
      value.counts.push_back(c.load(std::memory_order_relaxed));
    }
    value.count = h.count_.load(std::memory_order_relaxed);
    value.sum = h.sum_.value();
    {
      std::lock_guard<std::mutex> exemplar_lock(h.exemplar_mutex_);
      value.max = h.max_;
      value.exemplar = h.exemplar_;
    }
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_) {
    // No atomic "reset" API on Counter by design (it is monotonic for
    // publishers); the registry owns the instruments and may rewind.
    const std::uint64_t v = entry.instrument->value();
    entry.instrument->add(0 - v);  // wraps back to zero
  }
  for (const auto& entry : gauges_) entry.instrument->set(0.0);
  for (const auto& entry : histograms_) {
    Histogram& h = *entry.instrument;
    for (auto& c : h.counts_) c.store(0, std::memory_order_relaxed);
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.set(0.0);
    std::lock_guard<std::mutex> exemplar_lock(h.exemplar_mutex_);
    h.max_ = 0.0;
    h.has_max_ = false;
    h.exemplar_.clear();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

std::vector<double> darshan_size_bounds() {
  return {static_cast<double>(4 * KiB) - 1, static_cast<double>(64 * KiB) - 1,
          static_cast<double>(1 * MiB) - 1, static_cast<double>(16 * MiB) - 1};
}

}  // namespace tunio::obs
