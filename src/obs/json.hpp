// A small owned JSON document model: parse, build, serialize.
//
// The observability layer speaks JSON on every wire — metric snapshots,
// Chrome-trace files, bench reports, cached results, CI baselines — and
// each producer used to hand-roll its own emitter while consumers had no
// parser at all (the result cache's reader only accepts its own output).
// `Json` is the shared value tree: a strict recursive-descent parser for
// arbitrary JSON documents plus an ordered-object builder/serializer, so
// tools (the perf gate) and tests (trace well-formedness) can read what
// the stack writes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tunio::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered, so documents serialize the way they were built.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  static Json boolean(bool value);
  static Json number(double value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors throw `Error` on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;

  /// Builder mutators (throw on type mismatch).
  Json& push_back(Json value);            ///< array append
  Json& set(std::string key, Json value); ///< object upsert

  /// Serializes; `indent >= 0` pretty-prints with that step.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing garbage rejected).
  /// Throws `Error` with position info on malformed input.
  static Json parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;

  void dump_to(std::string& out, int indent, int depth) const;
};

/// Escapes `text` as a JSON string literal, including the quotes.
std::string json_quote(const std::string& text);

/// Shortest lossless rendering of a double (integers print bare).
std::string json_number(double value);

}  // namespace tunio::obs
