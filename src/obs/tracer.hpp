// Structured event tracing: Chrome-trace-format spans over simulated
// time, recordable from every layer of the stack.
//
// A whole tuning run — per-rank I/O phases, individual PFS request
// lifetimes, MPI collectives, GA generations, RL agent decisions — is
// captured as complete-events ("ph":"X") and written as a JSON document
// that chrome://tracing and Perfetto open directly.
//
// Cost model: tracing is off by default and every instrumented call site
// guards on `enabled()` — one relaxed atomic load — before building any
// event, so the disabled path adds near-zero work to the simulators'
// hot loops. When enabled, events append to a bounded in-memory buffer
// under a mutex; once the cap is reached further *data-plane* events
// (per-request PFS/MPI spans, millions per tuning run) are counted as
// dropped instead of growing without bound, while generation-bounded
// control-plane events (run phases, GA generations, RL decisions) are
// always kept.
//
// Timebases: the stack records *simulated* seconds. Two clock domains
// coexist — each evaluation's testbed starts at t=0 (pids `kPidStack`,
// `kPidRun`), while tuner/RL events run on the cumulative tuning-budget
// clock (pids `kPidTuner`, `kPidRl`). Each domain gets its own pid so
// trace viewers show them as separate processes. Layers that have no
// natural clock of their own (the RL agents are called between
// generations) stamp events with the thread-local *ambient* timestamp
// their caller published via `set_ambient_seconds`.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace tunio::obs {

/// Trace process ids: one per clock domain / component family.
inline constexpr std::uint32_t kPidStack = 1;  ///< PFS + MPI, per-run clock
inline constexpr std::uint32_t kPidRun = 2;    ///< metered run phases
inline constexpr std::uint32_t kPidTuner = 3;  ///< GA, tuning-budget clock
inline constexpr std::uint32_t kPidRl = 4;     ///< RL decisions

struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;   ///< simulated microseconds
  double dur_us = 0.0;  ///< 0 => instant event
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  /// Rendered as the event's "args" object; values are raw JSON
  /// fragments (use obs::json_number / obs::json_quote when building).
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  /// One relaxed load — the guard every instrumented call site uses.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Records a complete-event span over [start, end] simulated seconds.
  /// No-op (after the atomic check) when disabled.
  void span(std::string cat, std::string name, SimSeconds start,
            SimSeconds end, std::uint32_t pid, std::uint32_t tid,
            std::vector<std::pair<std::string, std::string>> args = {});

  /// Records an instant event at `at` simulated seconds.
  void instant(std::string cat, std::string name, SimSeconds at,
               std::uint32_t pid, std::uint32_t tid,
               std::vector<std::pair<std::string, std::string>> args = {});

  std::size_t size() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Buffer cap for data-plane events (`kPidStack`); spans beyond it
  /// are dropped and counted. Control-plane events (runs, tuner, RL)
  /// are generation-bounded and always kept. Applies to future records
  /// only.
  void set_capacity(std::size_t max_events);

  void clear();

  /// Serializes the buffer as a Chrome-trace JSON document
  /// (`{"traceEvents": [...], ...}`), including process-name metadata
  /// and a `droppedEvents` count.
  std::string to_json() const;

  /// Writes `to_json()` to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

  /// The process-wide tracer all built-in instrumentation records into.
  static Tracer& global();

  /// Ambient simulated time for layers without a clock of their own.
  /// Thread-local: concurrent tuning jobs each publish their own.
  static void set_ambient_seconds(SimSeconds t);
  static SimSeconds ambient_seconds();

 private:
  void record(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 1u << 18;  ///< 262144 events (~50 MB of JSON)
};

}  // namespace tunio::obs
