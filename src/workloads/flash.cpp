// FLASH-IO: the checkpoint/plotfile kernel of the FLASH astrophysics
// code.
//
// FLASH writes adaptive-mesh blocks into many chunked datasets: each rank
// owns `blocks_per_rank` blocks, interleaved across ranks inside every
// dataset (rank r writes blocks r, r+P, r+2P, ...). A checkpoint touches
// `checkpoint_datasets` datasets (the "unknowns" plus grid metadata), a
// plotfile a few smaller ones — making FLASH the metadata- and
// chunk-heavy member of the workload suite.
#include <sstream>

#include "hdf5lite/file.hpp"
#include "workloads/detail.hpp"
#include "workloads/workload.hpp"

namespace tunio::wl {

namespace {

class FlashWorkload final : public Workload {
 public:
  explicit FlashWorkload(FlashParams params) : params_(params) {}

  std::string name() const override { return "FLASH-IO"; }
  double design_alpha() const override { return 1.0; }

  RunResult run(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                const cfg::StackSettings& settings,
                const RunOptions& options) const override {
    const unsigned blocks =
        detail::reduce_iterations(params_.blocks_per_rank, options.loop_scale);
    const double extrapolate =
        detail::extrapolation_factor(params_.blocks_per_rank, blocks);

    trace::RunMeter meter(mpi, fs);
    meter.begin();
    const SimSeconds start = mpi.max_clock();

    meter.phase_begin(trace::Phase::kOther);
    detail::compute_phase(
        mpi, params_.compute_seconds_per_step * options.compute_scale,
        /*salt=*/7);

    meter.phase_begin(trace::Phase::kWrite);
    const Bytes elem = 8;  // double-precision unknowns
    const std::uint64_t block_elems = params_.block_bytes / elem;
    const std::uint64_t dataset_elems =
        block_elems * blocks * mpi.size();

    // Checkpoint file: every "unknown" variable is one chunked dataset
    // whose chunk is exactly one block.
    {
      h5::File file(mpi, fs, options.path_prefix + "_flash_chk.h5",
                    settings.fapl, settings.mpiio,
                    detail::create_options(settings, options));
      h5::DatasetCreateProps dcpl;
      dcpl.chunk_elements = block_elems;
      for (unsigned d = 0; d < params_.checkpoint_datasets; ++d) {
        std::ostringstream name;
        name << "unk" << d;
        h5::Dataset& ds = file.create_dataset(name.str(), elem, dataset_elems,
                                              dcpl, settings.chunk_cache);
        // Blocks are interleaved across ranks: block b of rank r sits at
        // global block index b*P + r.
        for (unsigned b = 0; b < blocks; ++b) {
          std::vector<h5::Selection> selections;
          selections.reserve(mpi.size());
          for (unsigned r = 0; r < mpi.size(); ++r) {
            const std::uint64_t global_block =
                static_cast<std::uint64_t>(b) * mpi.size() + r;
            selections.push_back({r, global_block * block_elems, block_elems});
          }
          ds.write(selections, h5::TransferProps{/*collective=*/true});
        }
      }
      file.close();
    }

    // Plotfile: fewer, smaller (single-precision, quarter-size) datasets.
    {
      h5::File file(mpi, fs, options.path_prefix + "_flash_plt.h5",
                    settings.fapl, settings.mpiio,
                    detail::create_options(settings, options));
      const std::uint64_t plot_block = block_elems / 4;
      h5::DatasetCreateProps dcpl;
      dcpl.chunk_elements = plot_block;
      for (unsigned d = 0; d < params_.plotfile_datasets; ++d) {
        std::ostringstream name;
        name << "plot" << d;
        h5::Dataset& ds =
            file.create_dataset(name.str(), 4, plot_block * blocks * mpi.size(),
                                dcpl, settings.chunk_cache);
        for (unsigned b = 0; b < blocks; ++b) {
          std::vector<h5::Selection> selections;
          selections.reserve(mpi.size());
          for (unsigned r = 0; r < mpi.size(); ++r) {
            const std::uint64_t global_block =
                static_cast<std::uint64_t>(b) * mpi.size() + r;
            selections.push_back({r, global_block * plot_block, plot_block});
          }
          ds.write(selections, h5::TransferProps{/*collective=*/true});
        }
      }
      file.close();
    }

    RunResult result;
    result.perf = meter.end();
    result.sim_seconds = mpi.max_clock() - start;
    result.predicted_bytes_written =
        static_cast<double>(result.perf.counters.bytes_written) * extrapolate;
    result.predicted_write_ops =
        static_cast<double>(result.perf.counters.write_ops) * extrapolate;
    return result;
  }

 private:
  FlashParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_flash(FlashParams params) {
  return std::make_unique<FlashWorkload>(params);
}

}  // namespace tunio::wl
