// BD-CATS: parallel DBSCAN clustering of particle data.
//
// BD-CATS reads trillion-particle datasets produced by codes like VPIC
// and clusters them; its I/O profile is read-dominated (collective reads
// of coordinate variables), with long clustering compute rounds and a
// small result write at the end — the α ≈ 0 counterpart of the other
// workloads, and the application used for the paper's end-to-end
// pipeline evaluation (Figures 11 and 12).
#include "hdf5lite/file.hpp"
#include "replay/hooks.hpp"
#include "workloads/detail.hpp"
#include "workloads/workload.hpp"

namespace tunio::wl {

namespace {

class BdcatsWorkload final : public Workload {
 public:
  explicit BdcatsWorkload(BdcatsParams params) : params_(params) {}

  std::string name() const override { return "BD-CATS"; }
  double design_alpha() const override { return 0.05; }

  RunResult run(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                const cfg::StackSettings& settings,
                const RunOptions& options) const override {
    const unsigned rounds = detail::reduce_iterations(
        params_.clustering_rounds, options.loop_scale);
    const double extrapolate =
        detail::extrapolation_factor(params_.clustering_rounds, rounds);

    const Bytes elem = 4;
    const std::uint64_t total = params_.particles_per_rank * mpi.size();
    const std::string input_path = options.path_prefix + "_bdcats_in.h5";

    // The input file exists before the run (produced earlier by VPIC):
    // materialize it, then rewind the clocks so its production is not
    // billed to this run.
    h5::File input(mpi, fs, input_path, settings.fapl, settings.mpiio,
                   detail::create_options(settings, options));
    for (unsigned v = 0; v < params_.variables; ++v) {
      h5::Dataset& ds = input.create_dataset("coord" + std::to_string(v),
                                             elem, total, {},
                                             settings.chunk_cache);
      std::vector<h5::Selection> selections;
      for (unsigned r = 0; r < mpi.size(); ++r) {
        selections.push_back(
            {r, r * params_.particles_per_rank, params_.particles_per_rank});
      }
      ds.write(selections, h5::TransferProps{true});
    }
    input.flush();
    mpi.reset();
    fs.quiesce();
    replay::note_mpi_reset();
    replay::note_fs_quiesce();

    trace::RunMeter meter(mpi, fs);
    meter.begin();
    const SimSeconds start = mpi.max_clock();

    // Every clustering round streams the coordinate variables back in
    // (neighborhood queries re-scan the point set), then computes.
    for (unsigned round = 0; round < rounds; ++round) {
      meter.phase_begin(trace::Phase::kRead);
      for (unsigned v = 0; v < params_.variables; ++v) {
        h5::Dataset& ds = input.dataset("coord" + std::to_string(v));
        std::vector<h5::Selection> selections;
        for (unsigned r = 0; r < mpi.size(); ++r) {
          selections.push_back(
              {r, r * params_.particles_per_rank, params_.particles_per_rank});
        }
        ds.read(selections, h5::TransferProps{true});
      }

      meter.phase_begin(trace::Phase::kOther);
      detail::compute_phase(
          mpi, params_.compute_seconds_per_round * options.compute_scale,
          /*salt=*/100 + round);
    }
    input.close();

    // Result write: cluster ids, small per rank.
    meter.phase_begin(trace::Phase::kWrite);
    {
      h5::File out(mpi, fs, options.path_prefix + "_bdcats_out.h5",
                   settings.fapl, settings.mpiio,
                   detail::create_options(settings, options));
      const std::uint64_t result_elems = params_.result_bytes_per_rank / elem;
      h5::Dataset& ds =
          out.create_dataset("cluster_ids", elem, result_elems * mpi.size(),
                             {}, settings.chunk_cache);
      std::vector<h5::Selection> selections;
      for (unsigned r = 0; r < mpi.size(); ++r) {
        selections.push_back({r, r * result_elems, result_elems});
      }
      ds.write(selections, h5::TransferProps{true});
      out.close();
    }

    RunResult result;
    result.perf = meter.end();
    result.sim_seconds = mpi.max_clock() - start;
    result.predicted_bytes_written =
        static_cast<double>(result.perf.counters.bytes_written) * extrapolate;
    result.predicted_write_ops =
        static_cast<double>(result.perf.counters.write_ops) * extrapolate;
    return result;
  }

 private:
  BdcatsParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_bdcats(BdcatsParams params) {
  return std::make_unique<BdcatsWorkload>(params);
}

}  // namespace tunio::wl
