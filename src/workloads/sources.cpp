#include "workloads/sources.hpp"

namespace tunio::wl::sources {

std::string macsio_vpic() {
  return R"SRC(
int write_dump(int step, int np)
{
  string path = "/scratch/macsio_" + step + ".h5";
  int file = h5fcreate(path);
  h5set_chunking(131072);
  int parts = 8;
  int ds = h5dcreate(file, "mesh", 8, np * parts * mpi_size());
  for (int p = 0; p < parts; p = p + 1)
  {
    h5dwrite_strided(ds, p, np);
  }
  h5dclose(ds);
  h5fclose(file);
  return 0;
}

int main()
{
  int num_dumps = 10;
  int part_elems = 131072;
  double t = 0.0;
  double dt = 0.125;
  double energy = 0.0;
  int rc = 0;
  for (int d = 0; d < num_dumps; d = d + 1)
  {
    double work = 2.0;
    compute(work);
    t = t + dt;
    energy = energy + t * 0.5;
    int checksum = d * 7 % 13;
    rc = write_dump(d, part_elems);
    for (int l = 0; l < 256; l = l + 1)
    {
      fprintf_log("/scratch/macsio.log", 512);
    }
    checksum = checksum + 1;
  }
  return rc;
}
)SRC";
}

std::string vpic() {
  return R"SRC(
int main()
{
  int np = 524288;
  int timesteps = 2;
  double t = 0.0;
  double dt = 0.01;
  int rc = 0;
  for (int step = 0; step < timesteps; step = step + 1)
  {
    double push_work = 8.0;
    compute(push_work);
    t = t + dt;
    string path = "/scratch/vpic_t" + step + ".h5";
    int file = h5fcreate(path);
    int total = np * mpi_size();
    for (int v = 0; v < 8; v = v + 1)
    {
      int elem = 4;
      if (v == 7)
      {
        elem = 8;
      }
      int ds = h5dcreate(file, "var" + v, elem, total);
      h5dwrite_all(ds, np);
      h5dclose(ds);
    }
    h5fclose(file);
    fprintf_log("/scratch/vpic.log", 256);
  }
  return rc;
}
)SRC";
}

std::string flash() {
  return R"SRC(
int main()
{
  int blocks = 8;
  int block_elems = 12288;
  int datasets = 12;
  double sim_time = 0.0;
  compute(5.0);
  int file = h5fcreate("/scratch/flash_chk.h5");
  h5set_chunking(12288);
  for (int d = 0; d < datasets; d = d + 1)
  {
    int total = block_elems * blocks * mpi_size();
    int ds = h5dcreate(file, "unk" + d, 8, total);
    for (int b = 0; b < blocks; b = b + 1)
    {
      h5dwrite_strided(ds, b, block_elems);
    }
    h5dclose(ds);
  }
  h5fclose(file);
  sim_time = sim_time + 1.0;
  int plot = h5fcreate("/scratch/flash_plt.h5");
  h5set_chunking(3072);
  for (int d = 0; d < 4; d = d + 1)
  {
    int ptotal = 3072 * blocks * mpi_size();
    int ds = h5dcreate(plot, "plot" + d, 4, ptotal);
    for (int b = 0; b < blocks; b = b + 1)
    {
      h5dwrite_strided(ds, b, 3072);
    }
    h5dclose(ds);
  }
  h5fclose(plot);
  fprintf_log("/scratch/flash.log", 400);
  return 0;
}
)SRC";
}

std::string hacc() {
  return R"SRC(
int main()
{
  int np = 1048576;
  double gravity_work = 6.0;
  compute(gravity_work);
  int file = h5fcreate("/scratch/hacc.h5");
  int total = np * mpi_size();
  for (int v = 0; v < 9; v = v + 1)
  {
    int elem = 4;
    if (v == 7)
    {
      elem = 8;
    }
    if (v == 8)
    {
      elem = 2;
    }
    int ds = h5dcreate(file, "var" + v, elem, total);
    h5dwrite_all(ds, np);
    h5dclose(ds);
  }
  h5fclose(file);
  return 0;
}
)SRC";
}

std::string bdcats() {
  return R"SRC(
int main()
{
  int np = 1048576;
  int rounds = 4;
  int total = np * mpi_size();
  int input = h5fopen("/scratch/bdcats_in.h5");
  int x = h5dcreate(input, "x", 4, total);
  int y = h5dcreate(input, "y", 4, total);
  int z = h5dcreate(input, "z", 4, total);
  h5dwrite_all(x, np);
  h5dwrite_all(y, np);
  h5dwrite_all(z, np);
  for (int round = 0; round < rounds; round = round + 1)
  {
    h5dread_all(x, np);
    h5dread_all(y, np);
    h5dread_all(z, np);
    double cluster_work = 10.0;
    compute(cluster_work);
    fprintf_log("/scratch/bdcats.log", 128);
  }
  int out = h5fcreate("/scratch/bdcats_out.h5");
  int ids = h5dcreate(out, "cluster_ids", 4, 65536 * mpi_size());
  h5dwrite_all(ids, 65536);
  h5fclose(out);
  h5fclose(input);
  return 0;
}
)SRC";
}

std::optional<std::string> source_for(const std::string& workload_name) {
  if (workload_name == "VPIC-IO") return vpic();
  if (workload_name == "FLASH-IO") return flash();
  if (workload_name == "HACC-IO") return hacc();
  if (workload_name == "MACSio") return macsio_vpic();
  if (workload_name == "BD-CATS") return bdcats();
  return std::nullopt;
}

}  // namespace tunio::wl::sources
