// Application workloads for the tuning experiments.
//
// Each workload reproduces the I/O pattern of one of the paper's
// applications:
//
//   * VPIC-IO   — plasma-physics particle dump: 8 variables, one big
//                 collective 1-D write per variable, write-only;
//   * FLASH-IO  — checkpoint + plotfiles: dozens of chunked datasets,
//                 block-strided medium writes, metadata-heavy;
//   * HACC-IO   — cosmology checkpoint: 9 variables, very large
//                 contiguous per-rank extents into one shared file;
//   * MACSio    — a configurable multi-purpose I/O proxy (the paper
//                 baselines its compute:I/O ratio on VPIC's Dipole runs),
//                 including the incidental logging writes that
//                 Application I/O Discovery strips;
//   * BD-CATS   — parallel DBSCAN clustering over particle data:
//                 read-dominated, long compute phases, small result
//                 writes.
//
// A workload runs as an SPMD program over the simulated stack and
// reports the paper's `perf` objective plus full counters.
//
// `RunOptions` expresses what TunIO's Application I/O Discovery does to
// a program: dropping non-I/O compute (`compute_scale = 0`), reducing
// I/O loops (`loop_scale < 1`, Loop Reduction), dropping incidental
// logging writes, and redirecting paths to the memory tier (I/O Path
// Switching). The discovery module derives these from real source
// analysis of the mini-C versions of the same programs (see
// `workloads/sources.hpp`); the native drivers honor them so that tuning
// pipelines can run either the full application or its I/O kernel.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "config/stack_settings.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"
#include "trace/meter.hpp"

namespace tunio::wl {

/// Source-transformation knobs applied to a run (see file comment).
struct RunOptions {
  double compute_scale = 1.0;   ///< 0 = compute stripped (I/O kernel)
  double loop_scale = 1.0;      ///< Loop Reduction factor (e.g. 0.01)
  bool include_log_writes = true;  ///< incidental logging / print I/O
  bool memory_tier = false;     ///< I/O Path Switching to /dev/shm
  std::string path_prefix = "/scratch/run";  ///< file name prefix
};

/// Result of one run, including loop-reduction scaling bookkeeping.
struct RunResult {
  trace::PerfResult perf;
  /// Counters extrapolated back to the full loop counts ("the scalable
  /// metrics for that I/O are then multiplied by the loop reductions to
  /// achieve a prediction for the original loop", §III-B).
  double predicted_bytes_written = 0.0;
  double predicted_write_ops = 0.0;
  SimSeconds sim_seconds = 0.0;  ///< wall time of the run (simulated)
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Fraction of data written over total transferred (the paper's α),
  /// as designed; the measured value comes out of the meter.
  virtual double design_alpha() const = 0;

  /// Executes the workload on a prepared stack. The caller owns reset
  /// semantics (fresh MpiSim/PfsSimulator per evaluation run).
  virtual RunResult run(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                        const cfg::StackSettings& settings,
                        const RunOptions& options = {}) const = 0;
};

/// --- concrete workloads -------------------------------------------------

struct VpicParams {
  std::uint64_t particles_per_rank = 1u << 19;  ///< 512Ki particles
  unsigned timesteps = 2;
  double compute_seconds_per_step = 8.0;
};
std::unique_ptr<Workload> make_vpic(VpicParams params = {});

struct FlashParams {
  unsigned blocks_per_rank = 8;
  Bytes block_bytes = 96 * KiB;      ///< one 4-D unknowns block
  unsigned checkpoint_datasets = 12; ///< unknowns + grid metadata
  unsigned plotfile_datasets = 4;
  double compute_seconds_per_step = 5.0;
};
std::unique_ptr<Workload> make_flash(FlashParams params = {});

struct HaccParams {
  std::uint64_t particles_per_rank = 1u << 20;
  unsigned variables = 9;
  double compute_seconds_per_step = 6.0;
};
std::unique_ptr<Workload> make_hacc(HaccParams params = {});

struct MacsioParams {
  unsigned num_dumps = 10;
  Bytes bytes_per_rank_per_dump = 8 * MiB;
  Bytes part_bytes = 1 * MiB;  ///< request granularity within a dump
  /// Compute:I/O ratio baselined on VPIC Dipole runs (the paper, §IV-A):
  /// VPIC dump cycles are I/O-dominated, so compute is a modest fraction
  /// of each cycle (that is why Fig. 8(a)'s kernel saves ~14%, not 10x).
  double compute_seconds_per_dump = 2.0;
  unsigned log_writes_per_dump = 256;  ///< incidental logging operations
  Bytes log_write_bytes = 512;
};
std::unique_ptr<Workload> make_macsio(MacsioParams params = {});

struct BdcatsParams {
  std::uint64_t particles_per_rank = 1u << 20;  ///< points read per rank
  unsigned variables = 3;         ///< x, y, z read for clustering
  unsigned clustering_rounds = 4;
  double compute_seconds_per_round = 10.0;
  Bytes result_bytes_per_rank = 256 * KiB;
};
std::unique_ptr<Workload> make_bdcats(BdcatsParams params = {});

}  // namespace tunio::wl
