#include "workloads/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "replay/hooks.hpp"
#include "workloads/detail.hpp"

namespace tunio::wl::detail {

double jitter(unsigned rank, unsigned salt) {
  return compute_jitter(rank, salt);
}

unsigned reduce_iterations(unsigned original, double loop_scale) {
  if (loop_scale >= 1.0) return original;
  const double scaled = std::round(static_cast<double>(original) * loop_scale);
  return std::max(1u, static_cast<unsigned>(scaled));
}

double extrapolation_factor(unsigned original, unsigned reduced) {
  return static_cast<double>(original) / static_cast<double>(reduced);
}

pfs::CreateOptions create_options(const cfg::StackSettings& settings,
                                  const RunOptions& options) {
  pfs::CreateOptions create = settings.lustre;
  if (options.memory_tier) create.tier = pfs::Tier::kMemory;
  return create;
}

void compute_phase(mpisim::MpiSim& mpi, double seconds, unsigned salt) {
  if (seconds <= 0.0) return;
  replay::note_compute(seconds, salt);
  for (unsigned r = 0; r < mpi.size(); ++r) {
    mpi.compute(r, seconds * jitter(r, salt));
  }
  mpi.barrier();
}

void log_write(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
               const std::string& log_path, Bytes bytes) {
  replay::note_log_write(log_path, bytes, /*settings_stripe=*/false,
                         /*memory_tier=*/false);
  if (!fs.exists(log_path)) {
    // Logs bypass striping: single-stripe files, as fopen would produce.
    pfs::CreateOptions opts;
    opts.stripe_count = 1;
    fs.create(log_path, mpi.clock(0), opts);
  }
  // Buffered stdio: the bytes are staged and flushed asynchronously, so
  // the writer only pays a library-call cost — but the operation and its
  // bytes still reach the filesystem (and its counters), which is what
  // Darshan-style monitoring sees.
  const Bytes offset = fs.file_size(log_path);
  const SimSeconds issued = mpi.clock(0);
  fs.write(log_path, issued, offset, bytes);  // completion not awaited
  mpi.compute(0, 5e-6);
}

}  // namespace tunio::wl::detail
