// Shared helpers for the concrete workload drivers.
#pragma once

#include <cstdint>
#include <string>

#include "config/stack_settings.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"
#include "workloads/workload.hpp"

namespace tunio::wl::detail {

/// Deterministic per-rank compute jitter in [0.97, 1.03]: real SPMD ranks
/// never finish compute phases in lockstep, and the resulting barrier
/// stalls are part of what I/O tuning has to live with.
double jitter(unsigned rank, unsigned salt);

/// Applies loop reduction to an iteration count: at least one iteration
/// survives ("whenever the loop iterations are too small to reduce ...
/// loop reduction will not be able to do anything", §IV-A).
unsigned reduce_iterations(unsigned original, double loop_scale);

/// original / reduced — the factor by which scalable metrics must be
/// multiplied to predict the full loop.
double extrapolation_factor(unsigned original, unsigned reduced);

/// Lustre create options for a run (tier switch applied).
pfs::CreateOptions create_options(const cfg::StackSettings& settings,
                                  const RunOptions& options);

/// Runs a compute phase across all ranks with per-rank jitter followed by
/// a barrier, as SPMD codes do between I/O phases.
void compute_phase(mpisim::MpiSim& mpi, double seconds, unsigned salt);

/// Emits one small "logging" write (rank 0 appending to a log file) — the
/// incidental I/O that Application I/O Discovery strips from kernels.
void log_write(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
               const std::string& log_path, Bytes bytes);

}  // namespace tunio::wl::detail
