// VPIC-IO: the particle-dump kernel of the VPIC plasma physics code.
//
// Each timestep, every rank appends its particles to eight 1-D variables
// (x, y, z, ux, uy, uz, energy as 4-byte floats; id as 8-byte ints) of a
// shared HDF5 file using collective writes — the canonical write-heavy
// HPC I/O benchmark (α = 1).
#include <sstream>

#include "hdf5lite/file.hpp"
#include "workloads/detail.hpp"
#include "workloads/workload.hpp"

namespace tunio::wl {

namespace {

class VpicWorkload final : public Workload {
 public:
  explicit VpicWorkload(VpicParams params) : params_(params) {}

  std::string name() const override { return "VPIC-IO"; }
  double design_alpha() const override { return 1.0; }

  RunResult run(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                const cfg::StackSettings& settings,
                const RunOptions& options) const override {
    const unsigned steps =
        detail::reduce_iterations(params_.timesteps, options.loop_scale);
    const double extrapolate =
        detail::extrapolation_factor(params_.timesteps, steps);

    trace::RunMeter meter(mpi, fs);
    meter.begin();
    const SimSeconds start = mpi.max_clock();

    static constexpr const char* kVars[] = {"x",  "y",  "z",      "ux",
                                            "uy", "uz", "energy", "id"};
    const std::uint64_t total =
        params_.particles_per_rank * mpi.size();

    for (unsigned step = 0; step < steps; ++step) {
      meter.phase_begin(trace::Phase::kOther);
      detail::compute_phase(
          mpi, params_.compute_seconds_per_step * options.compute_scale,
          /*salt=*/step);

      meter.phase_begin(trace::Phase::kWrite);
      std::ostringstream path;
      path << options.path_prefix << "_vpic_t" << step << ".h5";
      h5::File file(mpi, fs, path.str(), settings.fapl, settings.mpiio,
                    detail::create_options(settings, options));
      for (unsigned v = 0; v < 8; ++v) {
        const Bytes elem = (v == 7) ? 8 : 4;  // id is 64-bit
        h5::Dataset& ds = file.create_dataset(kVars[v], elem, total, {},
                                              settings.chunk_cache);
        std::vector<h5::Selection> selections;
        selections.reserve(mpi.size());
        for (unsigned r = 0; r < mpi.size(); ++r) {
          selections.push_back(
              {r, r * params_.particles_per_rank, params_.particles_per_rank});
        }
        ds.write(selections, h5::TransferProps{/*collective=*/true});
      }
      file.close();
    }

    RunResult result;
    result.perf = meter.end();
    result.sim_seconds = mpi.max_clock() - start;
    result.predicted_bytes_written =
        static_cast<double>(result.perf.counters.bytes_written) * extrapolate;
    result.predicted_write_ops =
        static_cast<double>(result.perf.counters.write_ops) * extrapolate;
    return result;
  }

 private:
  VpicParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_vpic(VpicParams params) {
  return std::make_unique<VpicWorkload>(params);
}

}  // namespace tunio::wl
