// MACSio: the Multi-purpose, Application-Centric, Scalable I/O proxy.
//
// MACSio is a workload *generator*: it emits configurable dump cycles of
// part-sized writes interleaved with compute. Per the paper (§IV-A), the
// compute-to-I/O ratio here is baselined on observed VPIC Dipole runs.
// MACSio also writes per-dump log/status lines — small incidental writes
// that are exactly the "trivial writes" the Application I/O Discovery
// component strips when it reduces the program to its I/O kernel.
#include <sstream>

#include "hdf5lite/file.hpp"
#include "workloads/detail.hpp"
#include "workloads/workload.hpp"

namespace tunio::wl {

namespace {

class MacsioWorkload final : public Workload {
 public:
  explicit MacsioWorkload(MacsioParams params) : params_(params) {}

  std::string name() const override { return "MACSio"; }
  double design_alpha() const override { return 1.0; }

  RunResult run(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                const cfg::StackSettings& settings,
                const RunOptions& options) const override {
    const unsigned dumps =
        detail::reduce_iterations(params_.num_dumps, options.loop_scale);
    const double extrapolate =
        detail::extrapolation_factor(params_.num_dumps, dumps);

    trace::RunMeter meter(mpi, fs);
    meter.begin();
    const SimSeconds start = mpi.max_clock();

    const std::uint64_t parts_per_rank =
        params_.bytes_per_rank_per_dump / params_.part_bytes;
    const Bytes elem = 8;
    const std::uint64_t part_elems = params_.part_bytes / elem;
    const std::uint64_t dump_elems =
        part_elems * parts_per_rank * mpi.size();
    const std::string log_path = options.path_prefix + "_macsio.log";

    for (unsigned dump = 0; dump < dumps; ++dump) {
      meter.phase_begin(trace::Phase::kOther);
      detail::compute_phase(
          mpi, params_.compute_seconds_per_dump * options.compute_scale,
          /*salt=*/dump);

      meter.phase_begin(trace::Phase::kWrite);
      std::ostringstream path;
      path << options.path_prefix << "_macsio_" << dump << ".h5";
      h5::File file(mpi, fs, path.str(), settings.fapl, settings.mpiio,
                    detail::create_options(settings, options));
      h5::DatasetCreateProps dcpl;
      dcpl.chunk_elements = part_elems;
      h5::Dataset& ds = file.create_dataset("mesh", elem, dump_elems, dcpl,
                                            settings.chunk_cache);
      // Each rank writes its parts; parts of a rank are contiguous.
      for (std::uint64_t p = 0; p < parts_per_rank; ++p) {
        std::vector<h5::Selection> selections;
        selections.reserve(mpi.size());
        for (unsigned r = 0; r < mpi.size(); ++r) {
          const std::uint64_t base =
              (static_cast<std::uint64_t>(r) * parts_per_rank + p) *
              part_elems;
          selections.push_back({r, base, part_elems});
        }
        ds.write(selections, h5::TransferProps{/*collective=*/true});
      }
      file.close();

      if (options.include_log_writes) {
        for (unsigned l = 0; l < params_.log_writes_per_dump; ++l) {
          detail::log_write(mpi, fs, log_path, params_.log_write_bytes);
        }
      }
    }

    RunResult result;
    result.perf = meter.end();
    result.sim_seconds = mpi.max_clock() - start;
    result.predicted_bytes_written =
        static_cast<double>(result.perf.counters.bytes_written) * extrapolate;
    result.predicted_write_ops =
        static_cast<double>(result.perf.counters.write_ops) * extrapolate;
    return result;
  }

 private:
  MacsioParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_macsio(MacsioParams params) {
  return std::make_unique<MacsioWorkload>(params);
}

}  // namespace tunio::wl
