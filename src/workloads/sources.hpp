// Mini-C sources of the workload applications.
//
// These are the programs Application I/O Discovery operates on: full
// applications with compute phases, diagnostics, logging, and I/O mixed
// together, as in the paper's Figure 5 example. The interpreter can run
// both the full program and the kernel that discovery extracts from it,
// which is how the Fig. 8 experiments measure kernel fidelity.
#pragma once

#include <optional>
#include <string>

namespace tunio::wl::sources {

/// MACSio baselined on the VPIC Dipole compute:I/O ratio (the workload of
/// the Fig. 8 experiments): dump loop with compute, diagnostics,
/// per-dump status logging, and a chunked HDF5 dump per cycle.
std::string macsio_vpic();

/// VPIC-IO particle dump: 8 variables, collective slab writes.
std::string vpic();

/// FLASH-IO checkpoint: block-strided writes into chunked datasets.
std::string flash();

/// HACC-IO checkpoint: large contiguous slab writes, 9 variables.
std::string hacc();

/// BD-CATS: read-dominated clustering over particle coordinates.
std::string bdcats();

/// Source of the workload with the given Workload::name() ("VPIC-IO",
/// "FLASH-IO", "HACC-IO", "MACSio", "BD-CATS"), or std::nullopt for an
/// unknown name. Lets callers analyze a native driver's I/O statically
/// (e.g. the replay fast path proving settings-invariance).
std::optional<std::string> source_for(const std::string& workload_name);

}  // namespace tunio::wl::sources
