// HACC-IO: the checkpoint kernel of the HACC cosmology code.
//
// HACC checkpoints write nine particle variables, each a very large
// contiguous per-rank extent into a single shared file — the classic
// "large sequential shared-file" pattern where Lustre striping and
// aggregator placement dominate.
#include "hdf5lite/file.hpp"
#include "workloads/detail.hpp"
#include "workloads/workload.hpp"

namespace tunio::wl {

namespace {

class HaccWorkload final : public Workload {
 public:
  explicit HaccWorkload(HaccParams params) : params_(params) {}

  std::string name() const override { return "HACC-IO"; }
  double design_alpha() const override { return 1.0; }

  RunResult run(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                const cfg::StackSettings& settings,
                const RunOptions& options) const override {
    const unsigned vars =
        detail::reduce_iterations(params_.variables, options.loop_scale);
    const double extrapolate =
        detail::extrapolation_factor(params_.variables, vars);

    trace::RunMeter meter(mpi, fs);
    meter.begin();
    const SimSeconds start = mpi.max_clock();

    meter.phase_begin(trace::Phase::kOther);
    detail::compute_phase(
        mpi, params_.compute_seconds_per_step * options.compute_scale,
        /*salt=*/13);

    meter.phase_begin(trace::Phase::kWrite);
    const std::uint64_t total = params_.particles_per_rank * mpi.size();
    h5::File file(mpi, fs, options.path_prefix + "_hacc.h5", settings.fapl,
                  settings.mpiio, detail::create_options(settings, options));
    for (unsigned v = 0; v < vars; ++v) {
      // xx, yy, zz, vx, vy, vz, phi are 4-byte; pid 8-byte; mask 2-byte.
      const Bytes elem = (v == 7) ? 8 : (v == 8) ? 2 : 4;
      h5::Dataset& ds = file.create_dataset("var" + std::to_string(v), elem,
                                            total, {}, settings.chunk_cache);
      std::vector<h5::Selection> selections;
      selections.reserve(mpi.size());
      for (unsigned r = 0; r < mpi.size(); ++r) {
        selections.push_back(
            {r, r * params_.particles_per_rank, params_.particles_per_rank});
      }
      ds.write(selections, h5::TransferProps{/*collective=*/true});
    }
    file.close();

    RunResult result;
    result.perf = meter.end();
    result.sim_seconds = mpi.max_clock() - start;
    result.predicted_bytes_written =
        static_cast<double>(result.perf.counters.bytes_written) * extrapolate;
    result.predicted_write_ops =
        static_cast<double>(result.perf.counters.write_ops) * extrapolate;
    return result;
  }

 private:
  HaccParams params_;
};

}  // namespace

std::unique_ptr<Workload> make_hacc(HaccParams params) {
  return std::make_unique<HaccWorkload>(params);
}

}  // namespace tunio::wl
