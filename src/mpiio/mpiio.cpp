#include "mpiio/mpiio.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tunio::mpiio {

namespace {

/// Rounds `value` down to a multiple of `granule` (granule > 0).
Bytes align_down(Bytes value, Bytes granule) {
  return value / granule * granule;
}

}  // namespace

MpiIoFile::MpiIoFile(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs,
                     std::string path, Hints hints,
                     const pfs::CreateOptions& create_options)
    : mpi_(mpi), fs_(fs), path_(std::move(path)), hints_(hints) {
  TUNIO_CHECK_MSG(hints_.cb_nodes > 0, "cb_nodes must be positive");
  TUNIO_CHECK_MSG(hints_.cb_buffer_size > 0, "cb_buffer_size must be positive");
  // File open/create is a synchronizing metadata operation performed once
  // on behalf of the communicator (rank 0 does the MDS round-trip).
  mpi_.barrier();
  const SimSeconds t = mpi_.max_clock();
  const pfs::OpenResult opened = fs_.exists(path_)
                                     ? fs_.open_file(path_, t)
                                     : fs_.create_file(path_, t, create_options);
  handle_ = opened.handle;
  for (unsigned r = 0; r < mpi_.size(); ++r) mpi_.set_clock(r, opened.done);
}

void MpiIoFile::write_at(unsigned rank, Bytes offset, Bytes length) {
  TUNIO_CHECK_MSG(open_, "write on closed file");
  if (length == 0) return;
  ++counters_.independent_writes;
  const SimSeconds done = fs_.write(handle_, mpi_.clock(rank), offset, length);
  mpi_.set_clock(rank, done);
}

void MpiIoFile::read_at(unsigned rank, Bytes offset, Bytes length) {
  TUNIO_CHECK_MSG(open_, "read on closed file");
  if (length == 0) return;
  ++counters_.independent_reads;
  const SimSeconds done = fs_.read(handle_, mpi_.clock(rank), offset, length);
  mpi_.set_clock(rank, done);
}

bool MpiIoFile::use_collective_buffering(
    const std::vector<Request>& requests) const {
  switch (hints_.collective) {
    case CollectiveMode::kEnable:
      return true;
    case CollectiveMode::kDisable:
      return false;
    case CollectiveMode::kAuto:
      break;
  }
  // ROMIO's heuristic, simplified: collective buffering pays off when many
  // ranks contribute small or interleaved extents; large contiguous
  // per-rank extents go independent.
  Bytes total = 0;
  unsigned active = 0;
  for (const Request& r : requests) {
    total += r.length;
    if (r.length > 0) ++active;
  }
  if (active <= 1) return false;
  const Bytes avg = total / active;
  return avg < 4 * MiB;
}

std::vector<MpiIoFile::Extent> MpiIoFile::coalesce(
    const std::vector<Request>& requests) {
  std::vector<Extent> extents;
  extents.reserve(requests.size());
  for (const Request& r : requests) {
    if (r.length > 0) extents.push_back({r.offset, r.length});
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  std::vector<Extent> merged;
  for (const Extent& e : extents) {
    if (!merged.empty() &&
        merged.back().offset + merged.back().length >= e.offset) {
      const Bytes end = std::max(merged.back().offset + merged.back().length,
                                 e.offset + e.length);
      merged.back().length = end - merged.back().offset;
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}

void MpiIoFile::two_phase(const std::vector<Request>& requests,
                          bool is_write) {
  // Phase 0: everyone arrives; offsets/lengths are exchanged (allreduce of
  // a small descriptor vector).
  mpi_.allreduce(64);
  const SimSeconds start = mpi_.max_clock();

  const std::vector<Extent> extents = coalesce(requests);
  if (extents.empty()) {
    mpi_.barrier();
    return;
  }
  const Bytes domain_lo = extents.front().offset;
  const Bytes domain_hi = extents.back().offset + extents.back().length;

  // Partition the file domain across aggregators, aligning boundaries to
  // the file's stripe size so each aggregator's chunks hit disjoint OSTs.
  // The aligned shares must jointly cover [domain_lo, domain_hi) — the
  // partition starts at the stripe-aligned base below domain_lo and
  // rounds the per-aggregator share up to a stripe multiple.
  const unsigned aggregators =
      std::min(hints_.cb_nodes, mpi_.size());
  const Bytes stripe = fs_.file_layout(handle_).stripe_size();
  const Bytes base = align_down(domain_lo, stripe);
  const Bytes span = domain_hi - base;
  const Bytes raw_share = (span + aggregators - 1) / aggregators;
  const Bytes share = std::max<Bytes>(
      stripe, (raw_share + stripe - 1) / stripe * stripe);

  // Aggregators proceed in parallel; each one shuffles its domain's bytes
  // from producer ranks, then streams cb_buffer_size chunks to the PFS.
  SimSeconds op_end = start;
  const double link_bw = mpi_.profile().link_bandwidth;
  for (unsigned a = 0; a < aggregators; ++a) {
    const Bytes dom_lo = base + share * a;
    const Bytes dom_hi = dom_lo + share;
    SimSeconds agg_clock = start;
    for (const Extent& e : extents) {
      const Bytes lo = std::max(e.offset, dom_lo);
      const Bytes hi = std::min(e.offset + e.length, dom_hi);
      if (lo >= hi) continue;
      Bytes cursor = lo;
      while (cursor < hi) {
        const Bytes chunk = std::min<Bytes>(hints_.cb_buffer_size, hi - cursor);
        // Shuffle: the chunk's bytes cross the interconnect once, bounded
        // by the aggregator's injection bandwidth.
        agg_clock += static_cast<double>(chunk) / link_bw +
                     mpi_.profile().hop_latency;
        counters_.shuffle_bytes += chunk;
        ++counters_.aggregator_ops;
        agg_clock = is_write ? fs_.write(handle_, agg_clock, cursor, chunk)
                             : fs_.read(handle_, agg_clock, cursor, chunk);
        cursor += chunk;
      }
    }
    op_end = std::max(op_end, agg_clock);
  }

  // Phase 2: results/acknowledgements reach every rank.
  for (unsigned r = 0; r < mpi_.size(); ++r) mpi_.set_clock(r, op_end);
  mpi_.barrier();
}

void MpiIoFile::independent_all(const std::vector<Request>& requests,
                                bool is_write) {
  for (const Request& r : requests) {
    if (r.length == 0) continue;
    if (is_write) {
      const SimSeconds done =
          fs_.write(handle_, mpi_.clock(r.rank), r.offset, r.length);
      mpi_.set_clock(r.rank, done);
    } else {
      const SimSeconds done =
          fs_.read(handle_, mpi_.clock(r.rank), r.offset, r.length);
      mpi_.set_clock(r.rank, done);
    }
  }
  // write_at_all/read_at_all are collective calls: ranks leave together.
  mpi_.barrier();
}

void MpiIoFile::write_at_all(const std::vector<Request>& requests) {
  TUNIO_CHECK_MSG(open_, "write on closed file");
  ++counters_.collective_writes;
  if (use_collective_buffering(requests)) {
    two_phase(requests, /*is_write=*/true);
  } else {
    independent_all(requests, /*is_write=*/true);
  }
}

void MpiIoFile::read_at_all(const std::vector<Request>& requests) {
  TUNIO_CHECK_MSG(open_, "read on closed file");
  ++counters_.collective_reads;
  if (use_collective_buffering(requests)) {
    two_phase(requests, /*is_write=*/false);
  } else {
    independent_all(requests, /*is_write=*/false);
  }
}

void MpiIoFile::close() {
  if (!open_) return;
  open_ = false;
  mpi_.barrier();
  const SimSeconds done = fs_.metadata_op(mpi_.max_clock());
  for (unsigned r = 0; r < mpi_.size(); ++r) mpi_.set_clock(r, done);
}

}  // namespace tunio::mpiio
