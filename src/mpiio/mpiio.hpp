// MPI-IO middleware layer (ROMIO-like) over the PFS simulator.
//
// Implements the two MPI-IO mechanisms that the tuned parameters steer:
//
//   * Independent I/O — each rank issues its extent straight to the PFS,
//     paying per-request overheads and possible read-modify-write costs
//     for unaligned extents.
//   * Two-phase collective I/O — requests from all ranks are coalesced
//     into contiguous file domains assigned to `cb_nodes` aggregator
//     ranks; data is shuffled over the interconnect to aggregators, which
//     then write stripe-aligned, `cb_buffer_size`-sized chunks. This is
//     the classic ROMIO collective buffering algorithm, and it is where
//     `cb_nodes` / `cb_buffer_size` / `romio_collective` earn their keep.
//
// The same machinery services reads (aggregators read, then scatter).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"

namespace tunio::mpiio {

/// Tri-state for ROMIO's collective buffering hints.
enum class CollectiveMode { kAuto, kEnable, kDisable };

/// MPI_Info hints honored by this layer.
struct Hints {
  unsigned cb_nodes = 1;             ///< number of aggregator ranks
  Bytes cb_buffer_size = 16 * MiB;   ///< per-aggregator staging buffer
  CollectiveMode collective = CollectiveMode::kAuto;
};

/// One rank's piece of a collective operation.
struct Request {
  unsigned rank = 0;
  Bytes offset = 0;
  Bytes length = 0;
};

/// MPI-IO level operation counters.
struct MpiIoCounters {
  std::uint64_t independent_writes = 0;
  std::uint64_t independent_reads = 0;
  std::uint64_t collective_writes = 0;  ///< write_at_all calls
  std::uint64_t collective_reads = 0;
  std::uint64_t aggregator_ops = 0;     ///< chunks written/read by aggregators
  Bytes shuffle_bytes = 0;              ///< bytes moved rank->aggregator
};

class MpiIoFile {
 public:
  /// Opens `path`, creating it with `create_options` when absent.
  MpiIoFile(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs, std::string path,
            Hints hints, const pfs::CreateOptions& create_options = {});

  const std::string& path() const { return path_; }
  const Hints& hints() const { return hints_; }

  /// PFS handle resolved at open; all I/O below goes through it so the
  /// per-op path hashing the string API pays never runs on the hot path.
  pfs::FileHandle handle() const { return handle_; }

  /// Independent write from one rank; advances that rank's clock.
  void write_at(unsigned rank, Bytes offset, Bytes length);

  /// Independent read into one rank; advances that rank's clock.
  void read_at(unsigned rank, Bytes offset, Bytes length);

  /// Collective write; every rank participates (ranks with no data pass a
  /// zero-length request). Advances all clocks to the operation's end.
  void write_at_all(const std::vector<Request>& requests);

  /// Collective read, same participation rules.
  void read_at_all(const std::vector<Request>& requests);

  /// Closes the file (metadata op, synchronizing).
  void close();

  const MpiIoCounters& counters() const { return counters_; }

 private:
  struct Extent {
    Bytes offset = 0;
    Bytes length = 0;
  };

  /// True when the two-phase path should run for this request set.
  bool use_collective_buffering(const std::vector<Request>& requests) const;

  /// Sorts and coalesces the requests into maximal contiguous extents.
  static std::vector<Extent> coalesce(const std::vector<Request>& requests);

  void two_phase(const std::vector<Request>& requests, bool is_write);
  void independent_all(const std::vector<Request>& requests, bool is_write);

  mpisim::MpiSim& mpi_;
  pfs::PfsSimulator& fs_;
  std::string path_;
  pfs::FileHandle handle_ = 0;
  Hints hints_;
  MpiIoCounters counters_;
  bool open_ = true;
};

}  // namespace tunio::mpiio
