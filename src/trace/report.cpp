#include "trace/report.hpp"

#include <sstream>

#include "common/units.hpp"

namespace tunio::trace {

std::string histogram_line(const pfs::SizeHistogram& histogram) {
  std::ostringstream os;
  for (std::size_t b = 0; b < pfs::SizeHistogram::kBuckets; ++b) {
    if (b) os << "  ";
    os << pfs::SizeHistogram::label(b) << ":" << histogram.counts[b];
  }
  return os.str();
}

std::string report(const PerfResult& result) {
  const RunCounters& c = result.counters;
  std::ostringstream os;
  os << "# run summary (Darshan-style)\n";
  os << "elapsed:        " << format_minutes(c.elapsed) << " ("
     << c.elapsed << " s)\n";
  os << "time split:     write " << c.write_time << " s, read "
     << c.read_time << " s, other " << c.other_time << " s\n";
  os << "writes:         " << c.write_ops << " ops, "
     << format_bytes(c.bytes_written) << "\n";
  os << "reads:          " << c.read_ops << " ops, "
     << format_bytes(c.bytes_read) << "\n";
  os << "metadata ops:   " << c.metadata_ops << "\n";
  os << "BW_w:           " << format_bandwidth(result.bw_write_mbps * MB)
     << "\n";
  os << "BW_r:           " << format_bandwidth(result.bw_read_mbps * MB)
     << "\n";
  os << "write sizes:    " << histogram_line(c.write_sizes) << "\n";
  os << "read sizes:     " << histogram_line(c.read_sizes) << "\n";
  os << "alpha:          " << result.alpha << "\n";
  os << "perf objective: " << format_bandwidth(result.perf_mbps * MB) << "\n";
  return os.str();
}

}  // namespace tunio::trace
