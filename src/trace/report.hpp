// Darshan-style text reports for metered runs.
//
// The paper's tuning pipeline monitors runs "using monitoring hooks such
// as Darshan"; this renders a metered run the way darshan-parser's
// summary does — counters, time split, bandwidths, and the access-size
// histograms — so examples and debugging sessions can show where a
// configuration's time went.
#pragma once

#include <string>

#include "pfs/pfs.hpp"
#include "trace/meter.hpp"

namespace tunio::trace {

/// Renders a one-run summary (multi-line, human-readable).
std::string report(const PerfResult& result);

/// Renders an access-size histogram as a single line, e.g.
/// "<4K:240  4K-64K:0  64K-1M:12  1M-16M:1024  >=16M:0".
std::string histogram_line(const pfs::SizeHistogram& histogram);

}  // namespace tunio::trace
