#include "trace/meter.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"
#include "replay/hooks.hpp"

namespace tunio::trace {

RunMeter::RunMeter(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs)
    : mpi_(mpi), fs_(fs) {}

RunMeter::~RunMeter() { detach(); }

void RunMeter::detach() {
  if (fs_.io_observer() == this) fs_.set_io_observer(prev_observer_);
}

void RunMeter::IoWindow::cover(SimSeconds start, SimSeconds end) {
  if (!seen) {
    seen = true;
    first_start = start;
    last_end = end;
    return;
  }
  first_start = std::min(first_start, start);
  last_end = std::max(last_end, end);
}

void RunMeter::on_io(const pfs::IoRequest& request) {
  if (active_) {
    (request.is_write ? write_window_ : read_window_)
        .cover(request.start, request.end);
  }
  if (prev_observer_ != nullptr) prev_observer_->on_io(request);
}

void RunMeter::begin() {
  TUNIO_CHECK_MSG(!active_, "RunMeter::begin while active");
  replay::note_meter_begin();
  active_ = true;
  current_ = Phase::kOther;
  run_start_ = mpi_.max_clock();
  phase_start_ = run_start_;
  snapshot_ = fs_.counters();
  counters_ = {};
  read_window_ = {};
  write_window_ = {};
  if (fs_.io_observer() != this) {
    prev_observer_ = fs_.io_observer();
    fs_.set_io_observer(this);
  }
}

void RunMeter::close_phase() {
  const SimSeconds now = mpi_.max_clock();
  const SimSeconds span = now - phase_start_;
  const char* label = "other";
  switch (current_) {
    case Phase::kRead:
      counters_.read_time += span;
      label = "read";
      break;
    case Phase::kWrite:
      counters_.write_time += span;
      label = "write";
      break;
    case Phase::kOther:
      counters_.other_time += span;
      break;
  }
  obs::Tracer& tracer = obs::Tracer::global();
  if (span > 0.0 && tracer.enabled()) {
    tracer.span("run", label, phase_start_, now, obs::kPidRun, /*tid=*/0);
  }
  phase_start_ = now;
}

void RunMeter::phase_begin(Phase phase) {
  TUNIO_CHECK_MSG(active_, "RunMeter::phase_begin before begin");
  replay::note_phase(static_cast<int>(phase));
  close_phase();
  current_ = phase;
}

PerfResult RunMeter::end() {
  TUNIO_CHECK_MSG(active_, "RunMeter::end before begin");
  replay::note_meter_end();
  close_phase();
  active_ = false;
  detach();

  pfs::PfsCounters delta = fs_.counters();
  delta -= snapshot_;
  counters_.bytes_read = delta.bytes_read;
  counters_.bytes_written = delta.bytes_written;
  counters_.read_ops = delta.reads;
  counters_.write_ops = delta.writes;
  counters_.metadata_ops = delta.metadata_ops;
  counters_.read_sizes = delta.read_sizes;
  counters_.write_sizes = delta.write_sizes;
  counters_.elapsed = mpi_.max_clock() - run_start_;

  PerfResult result;
  result.counters = counters_;
  const double total_bytes = static_cast<double>(counters_.bytes_read) +
                             static_cast<double>(counters_.bytes_written);
  result.alpha = total_bytes > 0.0
                     ? static_cast<double>(counters_.bytes_written) /
                           total_bytes
                     : 0.0;
  if (counters_.read_time > 0.0 && counters_.bytes_read > 0) {
    result.bw_read_mbps =
        to_mbps(static_cast<double>(counters_.bytes_read) /
                counters_.read_time);
  }
  if (counters_.write_time > 0.0 && counters_.bytes_written > 0) {
    result.bw_write_mbps =
        to_mbps(static_cast<double>(counters_.bytes_written) /
                counters_.write_time);
  }
  // Directions with I/O but no marked phase: measure over the op-level
  // window [first request issued, last request completed) collected by
  // the I/O observer. This fixes unphased runs reporting zero bandwidth
  // and no longer dilutes the rate with compute time, which the old
  // whole-run-elapsed fallback did.
  if (counters_.read_time == 0.0 && counters_.bytes_read > 0 &&
      read_window_.span() > 0.0) {
    result.bw_read_mbps = to_mbps(static_cast<double>(counters_.bytes_read) /
                                  read_window_.span());
  }
  if (counters_.write_time == 0.0 && counters_.bytes_written > 0 &&
      write_window_.span() > 0.0) {
    result.bw_write_mbps = to_mbps(
        static_cast<double>(counters_.bytes_written) / write_window_.span());
  }
  // Last resort (no observer data, e.g. counters advanced while another
  // meter held the observer slot): whole-run elapsed bandwidth.
  if (counters_.read_time == 0.0 && counters_.write_time == 0.0 &&
      counters_.elapsed > 0.0) {
    if (counters_.bytes_read > 0 && result.bw_read_mbps == 0.0) {
      result.bw_read_mbps = to_mbps(
          static_cast<double>(counters_.bytes_read) / counters_.elapsed);
    }
    if (counters_.bytes_written > 0 && result.bw_write_mbps == 0.0) {
      result.bw_write_mbps = to_mbps(
          static_cast<double>(counters_.bytes_written) / counters_.elapsed);
    }
  }
  result.perf_mbps =
      perf_objective(result.bw_read_mbps, result.bw_write_mbps, result.alpha);

  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.span("run", "metered_run", run_start_, run_start_ + counters_.elapsed,
                obs::kPidRun, /*tid=*/1,
                {{"perf_mbps", obs::json_number(result.perf_mbps)},
                 {"bw_read_mbps", obs::json_number(result.bw_read_mbps)},
                 {"bw_write_mbps", obs::json_number(result.bw_write_mbps)},
                 {"alpha", obs::json_number(result.alpha)}});
  }
  return result;
}

double perf_objective(double bw_read_mbps, double bw_write_mbps,
                      double alpha) {
  return (1.0 - alpha) * bw_read_mbps + alpha * bw_write_mbps;
}

}  // namespace tunio::trace
