#include "trace/meter.hpp"

#include "common/error.hpp"

namespace tunio::trace {

RunMeter::RunMeter(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs)
    : mpi_(mpi), fs_(fs) {}

void RunMeter::begin() {
  TUNIO_CHECK_MSG(!active_, "RunMeter::begin while active");
  active_ = true;
  current_ = Phase::kOther;
  run_start_ = mpi_.max_clock();
  phase_start_ = run_start_;
  snapshot_ = fs_.counters();
  counters_ = {};
}

void RunMeter::close_phase() {
  const SimSeconds now = mpi_.max_clock();
  const SimSeconds span = now - phase_start_;
  switch (current_) {
    case Phase::kRead:
      counters_.read_time += span;
      break;
    case Phase::kWrite:
      counters_.write_time += span;
      break;
    case Phase::kOther:
      counters_.other_time += span;
      break;
  }
  phase_start_ = now;
}

void RunMeter::phase_begin(Phase phase) {
  TUNIO_CHECK_MSG(active_, "RunMeter::phase_begin before begin");
  close_phase();
  current_ = phase;
}

PerfResult RunMeter::end() {
  TUNIO_CHECK_MSG(active_, "RunMeter::end before begin");
  close_phase();
  active_ = false;

  pfs::PfsCounters delta = fs_.counters();
  delta -= snapshot_;
  counters_.bytes_read = delta.bytes_read;
  counters_.bytes_written = delta.bytes_written;
  counters_.read_ops = delta.reads;
  counters_.write_ops = delta.writes;
  counters_.metadata_ops = delta.metadata_ops;
  counters_.read_sizes = delta.read_sizes;
  counters_.write_sizes = delta.write_sizes;
  counters_.elapsed = mpi_.max_clock() - run_start_;

  PerfResult result;
  result.counters = counters_;
  const double total_bytes = static_cast<double>(counters_.bytes_read) +
                             static_cast<double>(counters_.bytes_written);
  result.alpha = total_bytes > 0.0
                     ? static_cast<double>(counters_.bytes_written) /
                           total_bytes
                     : 0.0;
  if (counters_.read_time > 0.0 && counters_.bytes_read > 0) {
    result.bw_read_mbps =
        to_mbps(static_cast<double>(counters_.bytes_read) /
                counters_.read_time);
  }
  if (counters_.write_time > 0.0 && counters_.bytes_written > 0) {
    result.bw_write_mbps =
        to_mbps(static_cast<double>(counters_.bytes_written) /
                counters_.write_time);
  }
  // Unphased runs (no phase_begin calls): fall back to whole-run BW.
  if (counters_.read_time == 0.0 && counters_.write_time == 0.0 &&
      counters_.elapsed > 0.0) {
    if (counters_.bytes_read > 0) {
      result.bw_read_mbps = to_mbps(
          static_cast<double>(counters_.bytes_read) / counters_.elapsed);
    }
    if (counters_.bytes_written > 0) {
      result.bw_write_mbps = to_mbps(
          static_cast<double>(counters_.bytes_written) / counters_.elapsed);
    }
  }
  result.perf_mbps =
      perf_objective(result.bw_read_mbps, result.bw_write_mbps, result.alpha);
  return result;
}

double perf_objective(double bw_read_mbps, double bw_write_mbps,
                      double alpha) {
  return (1.0 - alpha) * bw_read_mbps + alpha * bw_write_mbps;
}

}  // namespace tunio::trace
