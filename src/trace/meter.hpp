// Run metering: the Darshan-like monitoring hook of the tuning pipeline.
//
// The paper's tuner "calls Python subprocess() to spawn an I/O kernel job
// ... and monitor bandwidth (using monitoring hooks such as Darshan)
// within its fitness function". `RunMeter` is that hook for the simulated
// stack: it brackets one application run, splits elapsed simulated time
// into read/write/other windows (workloads mark their phases), and
// computes the paper's objective
//
//     perf ≡ (1 − α)·BW_r + α·BW_w,   α = bytes_written / bytes_total,
//
// with BW_r/BW_w measured over the time actually spent in read/write
// phases.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"

namespace tunio::trace {

enum class Phase { kRead, kWrite, kOther };

/// Counters accumulated over one metered run.
struct RunCounters {
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
  std::uint64_t read_ops = 0;      ///< PFS-level read requests
  std::uint64_t write_ops = 0;     ///< PFS-level write requests
  std::uint64_t metadata_ops = 0;
  SimSeconds read_time = 0.0;      ///< elapsed inside read phases
  SimSeconds write_time = 0.0;
  SimSeconds other_time = 0.0;     ///< compute / unphased time
  SimSeconds elapsed = 0.0;        ///< whole-run makespan
  pfs::SizeHistogram read_sizes;   ///< Darshan-style access sizes
  pfs::SizeHistogram write_sizes;
};

/// The paper's tuning objective for one run.
struct PerfResult {
  double bw_read_mbps = 0.0;   ///< BW_r in MB/s
  double bw_write_mbps = 0.0;  ///< BW_w in MB/s
  double alpha = 0.0;          ///< written / total bytes
  double perf_mbps = 0.0;      ///< (1-α)BW_r + αBW_w
  RunCounters counters;
};

class RunMeter : public pfs::IoObserver {
 public:
  RunMeter(mpisim::MpiSim& mpi, pfs::PfsSimulator& fs);
  ~RunMeter() override;

  /// Starts metering (snapshots clocks and counters, and registers as
  /// the simulator's I/O observer to collect op-level timestamps).
  void begin();

  /// Enters a phase; implicitly closes the previous one. Time between
  /// begin() and the first phase_begin is attributed to kOther.
  void phase_begin(Phase phase);

  /// Finishes metering and computes the objective.
  PerfResult end();

  /// IoObserver: records the op into the per-direction I/O window
  /// (chains to any previously registered observer).
  void on_io(const pfs::IoRequest& request) override;

 private:
  /// [first op issued, last op completed) for one direction.
  struct IoWindow {
    bool seen = false;
    SimSeconds first_start = 0.0;
    SimSeconds last_end = 0.0;

    void cover(SimSeconds start, SimSeconds end);
    SimSeconds span() const { return seen ? last_end - first_start : 0.0; }
  };

  void close_phase();
  void detach();

  mpisim::MpiSim& mpi_;
  pfs::PfsSimulator& fs_;
  bool active_ = false;
  Phase current_ = Phase::kOther;
  SimSeconds phase_start_ = 0.0;
  SimSeconds run_start_ = 0.0;
  pfs::PfsCounters snapshot_;
  RunCounters counters_;
  pfs::IoObserver* prev_observer_ = nullptr;
  IoWindow read_window_;
  IoWindow write_window_;
};

/// Computes perf from already-known bandwidth components (used by the RL
/// training emulators, which never touch the stack).
double perf_objective(double bw_read_mbps, double bw_write_mbps, double alpha);

}  // namespace tunio::trace
