// Application I/O Discovery (§III-B of the paper).
//
// Reduces an application's source to its I/O kernel "while retaining all
// statements necessary to perform I/O". The algorithm follows Figure 4:
//
//   1. parse the source to an AST (after one-statement-per-line
//      normalization, mirroring the paper's clang-format step);
//   2. find and mark I/O calls (HDF5-prefixed calls in the prototype);
//   3. mark their *dependents*: call arguments, assignment left-hand
//      sides, loop init/update/condition variables, if-conditions — and
//      backward-slice every assignment to a marked variable;
//   4. mark the *contextual parents* of every kept statement (the loop
//      or branch that encloses it), whose own dependents are then marked;
//   5. iterate to a fixpoint, then reconstruct the kernel from kept
//      statements only;
//   6. optionally apply reductions: Loop Reduction (run a percentage of
//      the iterations of I/O loops and extrapolate the metrics) and I/O
//      Path Switching (prepend a memory-tier prefix to every file path).
//
// If the kernel fails to build, callers fall back to the full
// application, as the paper specifies.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace tunio::discovery {

/// The memory-tier prefix used by I/O Path Switching (the simulator's
/// `/dev/shm` analogue).
inline constexpr const char* kMemoryPathPrefix = "/shm";

/// Which engine computes the kept-statement set.
///
/// kDataflowSlicer (the default) is the CFG/def-use backward slicer from
/// src/analysis: it keeps a definition only when it can *reach* a kept
/// use, so the kernel is never larger than the legacy marking. The
/// legacy marker keeps every statement that defines a variable whose
/// name is a dependent anywhere in the function — a coarser, name-based
/// over-approximation. It remains available both as an explicit engine
/// choice and as the automatic fallback when the slicer rejects a
/// program; the differential tests use it as the oracle (slicer kept-set
/// ⊆ marker kept-set, with identical interpreter I/O metrics).
enum class MarkingEngine {
  kDataflowSlicer,
  kLegacyMarker,
};

struct DiscoveryOptions {
  /// Call-name prefixes treated as I/O calls. The prototype targets HDF5.
  std::vector<std::string> io_prefixes = {"h5"};

  /// Marking engine (see MarkingEngine). Defaults to the precise slicer.
  MarkingEngine engine = MarkingEngine::kDataflowSlicer;

  /// Loop Reduction: fraction of I/O-loop iterations to run (1.0 = off;
  /// the paper's Fig. 8(b) uses 0.01, i.e. 1% of the iterations).
  double loop_reduction = 1.0;

  /// I/O Path Switching: redirect all file paths to the memory tier.
  bool path_switching = false;

  /// Extra statements to keep regardless of the marking (the API's
  /// "manually indicated keep regions"), by statement id.
  std::set<int> manual_keep;
};

struct KernelResult {
  minic::Program kernel;          ///< the reconstructed, transformed AST
  std::string kernel_source;      ///< normalized source of the kernel
  std::set<int> kept_stmt_ids;    ///< which original statements survived
  int total_statements = 0;
  int kept_statements = 0;
  /// Loop-reduction divisor actually applied (1 when off); the metric
  /// extrapolation factor reported by the interpreter is based on the
  /// realized per-loop reductions.
  int loop_reduction_divisor = 1;
  /// Engine that actually produced the marking.
  MarkingEngine engine_used = MarkingEngine::kDataflowSlicer;
  /// True when the slicer was requested but failed and discovery fell
  /// back to the legacy marker.
  bool used_fallback = false;
};

/// Runs the *legacy* name-based marking loop only (exposed for tests and
/// as the differential-test oracle): returns the ids of all statements
/// that must be kept to preserve the program's I/O. The slicer-based
/// equivalent is analysis::slice_io.
std::set<int> mark_kept(const minic::Program& program,
                        const std::vector<std::string>& io_prefixes);

/// Full pipeline: mark, reconstruct, reduce. Throws SourceError when the
/// program cannot be analyzed.
KernelResult discover_io(const minic::Program& program,
                         const DiscoveryOptions& options = {});

/// Convenience overload: parse + normalize + discover.
KernelResult discover_io(const std::string& source,
                         const DiscoveryOptions& options = {});

}  // namespace tunio::discovery
