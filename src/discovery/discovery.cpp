#include "discovery/discovery.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "analysis/slicer.hpp"
#include "common/error.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"

namespace tunio::discovery {

using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;
using minic::StmtPtr;

namespace {

bool has_prefix(const std::string& name,
                const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Collects variable names referenced anywhere in an expression, and
/// whether the expression contains a call to one of `io_functions`.
void scan_expr(const Expr& expr,
               const std::unordered_set<std::string>& io_functions,
               std::vector<std::string>* vars, bool* contains_io,
               std::vector<std::string>* called_functions) {
  switch (expr.kind) {
    case ExprKind::kVar:
      if (vars) vars->push_back(expr.text);
      break;
    case ExprKind::kCall:
      if (io_functions.count(expr.text) > 0 && contains_io) {
        *contains_io = true;
      }
      if (called_functions) called_functions->push_back(expr.text);
      for (const auto& child : expr.children) {
        scan_expr(*child, io_functions, vars, contains_io, called_functions);
      }
      break;
    default:
      for (const auto& child : expr.children) {
        scan_expr(*child, io_functions, vars, contains_io, called_functions);
      }
  }
}

/// Flat index over all statements of a program.
struct StmtInfo {
  Stmt* stmt = nullptr;
  Stmt* parent = nullptr;          ///< enclosing structural statement
  const Function* function = nullptr;
};

class Marker {
 public:
  Marker(Program& program, const std::vector<std::string>& io_prefixes)
      : program_(program), io_prefixes_(io_prefixes) {
    index_program();
    compute_io_functions();
  }

  std::set<int> run() {
    // Seed: statements containing I/O calls.
    for (auto& [id, info] : stmts_) {
      bool contains_io = false;
      for_each_expr(*info.stmt, [&](const Expr& e) {
        if (e.kind == ExprKind::kCall &&
            (has_prefix(e.text, io_prefixes_) || io_functions_.count(e.text))) {
          contains_io = true;
        }
      });
      if (contains_io) mark(id);
    }

    // Fixpoint: dependents, contextual parents, live-function returns,
    // and callee retention trigger further marking.
    bool changed = true;
    while (changed) {
      changed = false;
      // Backward slice: any statement defining a dependent variable in
      // the same function is kept, and its RHS variables become
      // dependents in turn.
      for (auto& [id, info] : stmts_) {
        if (kept_.count(id)) continue;
        const std::string defined = defined_var(*info.stmt);
        if (defined.empty()) continue;
        auto fn_deps = dependents_.find(info.function);
        if (fn_deps == dependents_.end()) continue;
        if (fn_deps->second.count(defined)) {
          mark(id);
          changed = true;
        }
      }
      // Live functions keep their return statements (control flow out of
      // a surviving function is preserved); dead helpers keep nothing.
      for (auto& [id, info] : stmts_) {
        if (kept_.count(id) || info.stmt->kind != StmtKind::kReturn) continue;
        if (live_functions().count(info.function->name)) {
          mark(id);
          changed = true;
        }
      }
    }
    return kept_;
  }

  /// Functions that must survive reconstruction: main, plus every
  /// function called from a kept statement (transitively, via fixpoint).
  std::unordered_set<std::string> live_functions() const {
    std::unordered_set<std::string> live{"main"};
    for (const auto& [id, info] : stmts_) {
      if (kept_.count(id) == 0) continue;
      for_each_expr(*info.stmt, [&](const Expr& e) {
        if (e.kind == ExprKind::kCall && program_.find(e.text) != nullptr) {
          live.insert(e.text);
        }
      });
    }
    return live;
  }

  const std::unordered_set<std::string>& io_functions() const {
    return io_functions_;
  }

 private:
  /// The variable a statement defines (assignment target / declaration).
  static std::string defined_var(const Stmt& stmt) {
    if (stmt.kind == StmtKind::kDecl || stmt.kind == StmtKind::kAssign) {
      return stmt.name;
    }
    return {};
  }

  template <typename Fn>
  static void walk_exprs(const Expr& expr, Fn&& fn) {
    fn(expr);
    for (const auto& child : expr.children) walk_exprs(*child, fn);
  }

  /// Applies `fn` to every expression directly owned by `stmt` (not
  /// descending into child statements).
  template <typename Fn>
  static void for_each_expr(const Stmt& stmt, Fn&& fn) {
    if (stmt.value) walk_exprs(*stmt.value, fn);
    if (stmt.cond) walk_exprs(*stmt.cond, fn);
    // for-header sub-statements belong to the header line.
    if (stmt.init && stmt.init->value) walk_exprs(*stmt.init->value, fn);
    if (stmt.update && stmt.update->value) walk_exprs(*stmt.update->value, fn);
  }

  void index_stmt(Stmt& stmt, Stmt* parent, const Function* fn) {
    stmts_[stmt.id] = StmtInfo{&stmt, parent, fn};
    if (stmt.init) index_stmt(*stmt.init, &stmt, fn);
    if (stmt.update) index_stmt(*stmt.update, &stmt, fn);
    if (stmt.body) index_stmt(*stmt.body, &stmt, fn);
    if (stmt.else_body) index_stmt(*stmt.else_body, &stmt, fn);
    for (StmtPtr& child : stmt.statements) index_stmt(*child, &stmt, fn);
  }

  void index_program() {
    for (Function& fn : program_.functions) {
      index_stmt(*fn.body, nullptr, &fn);
    }
  }

  /// A user function is an I/O function when its body (transitively)
  /// contains an I/O-prefixed call.
  void compute_io_functions() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Function& fn : program_.functions) {
        if (io_functions_.count(fn.name)) continue;
        bool contains = false;
        for (auto& [id, info] : stmts_) {
          if (info.function != &fn) continue;
          for_each_expr(*info.stmt, [&](const Expr& e) {
            if (e.kind == ExprKind::kCall &&
                (has_prefix(e.text, io_prefixes_) ||
                 io_functions_.count(e.text))) {
              contains = true;
            }
          });
          if (contains) break;
        }
        if (contains) {
          io_functions_.insert(fn.name);
          changed = true;
        }
      }
    }
  }

  /// Marks a statement kept: record its dependents, then mark its
  /// contextual parents ("the marking loop will continue until it
  /// reaches the source code's top-level").
  void mark(int id) {
    if (kept_.count(id)) return;
    kept_.insert(id);
    const StmtInfo& info = stmts_.at(id);
    Stmt& stmt = *info.stmt;

    // Dependents of this statement: every variable its expressions use.
    auto& deps = dependents_[info.function];
    for_each_expr(stmt, [&](const Expr& e) {
      if (e.kind == ExprKind::kVar) deps.insert(e.text);
    });

    // A kept for-loop keeps its header machinery (init/update).
    if (stmt.init) mark(stmt.init->id);
    if (stmt.update) mark(stmt.update->id);

    // Contextual parent: the structural statement enclosing this one.
    if (info.parent != nullptr) mark(info.parent->id);
  }

  Program& program_;
  const std::vector<std::string>& io_prefixes_;
  std::map<int, StmtInfo> stmts_;
  std::unordered_set<std::string> io_functions_;
  /// Per-function dependent-variable sets.
  std::unordered_map<const Function*, std::unordered_set<std::string>>
      dependents_;
  std::set<int> kept_;
};

/// Counts all statements in a program.
int count_statements(const Stmt& stmt) {
  int count = 1;
  if (stmt.init) count += count_statements(*stmt.init);
  if (stmt.update) count += count_statements(*stmt.update);
  if (stmt.body) count += count_statements(*stmt.body);
  if (stmt.else_body) count += count_statements(*stmt.else_body);
  for (const StmtPtr& child : stmt.statements) {
    count += count_statements(*child);
  }
  return count;
}

/// Filters a statement tree, keeping only statements in `kept`.
StmtPtr filter_stmt(const Stmt& stmt, const std::set<int>& kept) {
  if (kept.count(stmt.id) == 0) return nullptr;
  StmtPtr copy = minic::clone(stmt);
  // Blocks drop unkept children; structural bodies were cloned whole, so
  // re-filter them.
  if (copy->body) {
    StmtPtr filtered = filter_stmt(*copy->body, kept);
    copy->body = filtered ? std::move(filtered) : nullptr;
    if (!copy->body) {
      // A kept loop/branch always keeps (a possibly empty) body block.
      copy->body = std::make_unique<Stmt>();
      copy->body->kind = StmtKind::kBlock;
      copy->body->id = stmt.body->id;
      copy->body->line = stmt.body->line;
    }
  }
  if (copy->else_body) {
    StmtPtr filtered = filter_stmt(*copy->else_body, kept);
    copy->else_body = std::move(filtered);  // may become null
  }
  if (copy->init && kept.count(copy->init->id) == 0) copy->init = nullptr;
  if (copy->update && kept.count(copy->update->id) == 0) {
    copy->update = nullptr;
  }
  if (!copy->statements.empty()) {
    std::vector<StmtPtr> filtered_children;
    for (StmtPtr& child : copy->statements) {
      StmtPtr filtered = filter_stmt(*child, kept);
      if (filtered) filtered_children.push_back(std::move(filtered));
    }
    copy->statements = std::move(filtered_children);
  }
  return copy;
}

/// True when the subtree under `stmt` performs I/O.
bool subtree_has_io(const Stmt& stmt,
                    const std::vector<std::string>& io_prefixes,
                    const std::unordered_set<std::string>& io_functions) {
  bool found = false;
  auto check_expr = [&](const Expr& expr, auto&& self) -> void {
    if (expr.kind == ExprKind::kCall &&
        (has_prefix(expr.text, io_prefixes) || io_functions.count(expr.text))) {
      found = true;
    }
    for (const auto& child : expr.children) self(*child, self);
  };
  if (stmt.value) check_expr(*stmt.value, check_expr);
  if (stmt.cond) check_expr(*stmt.cond, check_expr);
  if (found) return true;
  if (stmt.init && subtree_has_io(*stmt.init, io_prefixes, io_functions)) {
    return true;
  }
  if (stmt.update && subtree_has_io(*stmt.update, io_prefixes, io_functions)) {
    return true;
  }
  if (stmt.body && subtree_has_io(*stmt.body, io_prefixes, io_functions)) {
    return true;
  }
  if (stmt.else_body &&
      subtree_has_io(*stmt.else_body, io_prefixes, io_functions)) {
    return true;
  }
  for (const StmtPtr& child : stmt.statements) {
    if (subtree_has_io(*child, io_prefixes, io_functions)) return true;
  }
  return false;
}

/// Loop Reduction: rewrites the condition of I/O-bearing for-loops from
/// `i < N` to `i < reduced_iters(N, divisor)`. `reduced_iters` is a
/// builtin of the interpreter returning max(1, N / divisor) and
/// recording the realized extrapolation factor.
void apply_loop_reduction(Stmt& stmt, int divisor,
                          const std::vector<std::string>& io_prefixes,
                          const std::unordered_set<std::string>& io_functions) {
  if (stmt.kind == StmtKind::kFor && stmt.cond &&
      stmt.cond->kind == ExprKind::kBinary &&
      (stmt.cond->text == "<" || stmt.cond->text == "<=") && stmt.body &&
      subtree_has_io(*stmt.body, io_prefixes, io_functions)) {
    auto call = std::make_unique<Expr>();
    call->kind = ExprKind::kCall;
    call->line = stmt.cond->line;
    call->text = "reduced_iters";
    call->children.push_back(std::move(stmt.cond->children[1]));
    auto divisor_lit = std::make_unique<Expr>();
    divisor_lit->kind = ExprKind::kIntLit;
    divisor_lit->line = stmt.cond->line;
    divisor_lit->int_value = divisor;
    divisor_lit->text = std::to_string(divisor);
    call->children.push_back(std::move(divisor_lit));
    stmt.cond->children[1] = std::move(call);
  }
  if (stmt.init) {
    apply_loop_reduction(*stmt.init, divisor, io_prefixes, io_functions);
  }
  if (stmt.update) {
    apply_loop_reduction(*stmt.update, divisor, io_prefixes, io_functions);
  }
  if (stmt.body) {
    apply_loop_reduction(*stmt.body, divisor, io_prefixes, io_functions);
  }
  if (stmt.else_body) {
    apply_loop_reduction(*stmt.else_body, divisor, io_prefixes, io_functions);
  }
  for (StmtPtr& child : stmt.statements) {
    apply_loop_reduction(*child, divisor, io_prefixes, io_functions);
  }
}

/// I/O Path Switching: "prepends every path written or read with a path
/// to memory" (§III-B). Paths may be built in variables before reaching
/// the I/O call, so every path-like string literal (leading '/') in the
/// kernel is redirected.
void apply_path_switching(Expr& expr) {
  if (expr.kind == ExprKind::kStringLit && !expr.text.empty() &&
      expr.text.front() == '/' &&
      expr.text.rfind(kMemoryPathPrefix, 0) != 0) {
    expr.text = std::string(kMemoryPathPrefix) + expr.text;
  }
  for (auto& child : expr.children) apply_path_switching(*child);
}

void apply_path_switching(Stmt& stmt) {
  if (stmt.value) apply_path_switching(*stmt.value);
  if (stmt.cond) apply_path_switching(*stmt.cond);
  if (stmt.init) apply_path_switching(*stmt.init);
  if (stmt.update) apply_path_switching(*stmt.update);
  if (stmt.body) apply_path_switching(*stmt.body);
  if (stmt.else_body) apply_path_switching(*stmt.else_body);
  for (StmtPtr& child : stmt.statements) apply_path_switching(*child);
}

}  // namespace

std::set<int> mark_kept(const Program& program,
                        const std::vector<std::string>& io_prefixes) {
  // Marking never mutates; clone to satisfy the Marker's non-const index.
  Program copy = minic::clone(program);
  return Marker(copy, io_prefixes).run();
}

KernelResult discover_io(const Program& program,
                         const DiscoveryOptions& options) {
  // Work on a clone so the caller's AST is untouched.
  Program working = minic::clone(program);

  // The Marker is constructed either way: its io-function fixpoint also
  // drives loop reduction, and it is the fallback engine.
  Marker marker(working, options.io_prefixes);
  KernelResult result;
  std::set<int> kept;
  if (options.engine == MarkingEngine::kDataflowSlicer) {
    try {
      kept = analysis::slice_io(working, options.io_prefixes).kept;
      result.engine_used = MarkingEngine::kDataflowSlicer;
    } catch (const Error&) {
      // Slicer rejected the program; fall back to the coarser marker so
      // discovery still yields a kernel (mirrors the paper's fall-back-
      // to-full-application stance at the marking layer).
      kept = marker.run();
      result.engine_used = MarkingEngine::kLegacyMarker;
      result.used_fallback = true;
    }
  } else {
    kept = marker.run();
    result.engine_used = MarkingEngine::kLegacyMarker;
  }
  for (int id : options.manual_keep) kept.insert(id);

  result.kept_stmt_ids = kept;

  // Reconstruct: keep only marked statements (functions whose bodies end
  // up empty of I/O still appear if they are I/O functions, because all
  // their kept statements survive; pure-compute helpers vanish unless
  // their results feed I/O).
  for (Function& fn : working.functions) {
    result.total_statements += count_statements(*fn.body);
    StmtPtr filtered = filter_stmt(*fn.body, kept);
    const bool is_main = fn.name == "main";
    if (!filtered && !is_main) continue;  // fully dead helper
    Function out;
    out.return_type = fn.return_type;
    out.name = fn.name;
    out.params = fn.params;
    out.line = fn.line;
    if (filtered) {
      out.body = std::move(filtered);
    } else {
      out.body = std::make_unique<Stmt>();
      out.body->kind = StmtKind::kBlock;
      out.body->id = fn.body->id;
      out.body->line = fn.body->line;
    }
    result.kept_statements += count_statements(*out.body);
    result.kernel.functions.push_back(std::move(out));
  }
  result.kernel.next_stmt_id = working.next_stmt_id;
  TUNIO_CHECK_MSG(result.kernel.find("main") != nullptr,
                  "kernel lost its main function");

  // Reductions.
  if (options.loop_reduction < 1.0) {
    TUNIO_CHECK_MSG(options.loop_reduction > 0.0,
                    "loop_reduction must be in (0, 1]");
    result.loop_reduction_divisor = std::max(
        1, static_cast<int>(std::llround(1.0 / options.loop_reduction)));
    for (Function& fn : result.kernel.functions) {
      apply_loop_reduction(*fn.body, result.loop_reduction_divisor,
                           options.io_prefixes, marker.io_functions());
    }
  }
  if (options.path_switching) {
    for (Function& fn : result.kernel.functions) {
      apply_path_switching(*fn.body);
    }
  }

  result.kernel_source = minic::print(result.kernel);
  return result;
}

KernelResult discover_io(const std::string& source,
                         const DiscoveryOptions& options) {
  // Normalization round-trip: parse, print one-statement-per-line,
  // re-parse (the paper's clang-format preprocessing step).
  Program first = minic::parse(source);
  const std::string normalized = minic::print(first);
  Program program = minic::parse(normalized);
  return discover_io(program, options);
}

}  // namespace tunio::discovery
