// Figure 12: application lifecycle time vs number of executions — when
// does tuning pay for itself?
//
// "TunIO takes 403 minutes to tune BD-CATS, while H5Tuner takes 1560
// minutes. TunIO has a viability point of 1394 executions, while H5Tuner
// has a viability point of 5274 executions ... 73.6% fewer executions.
// TunIO maintains a better overall time than H5Tuner until 3.99 million
// executions."
#include <cstdio>

#include "common.hpp"
#include "config/stack_settings.hpp"

using namespace tunio;

namespace {

/// Duration (simulated minutes) of one production run of BD-CATS under a
/// given configuration.
double production_run_minutes(const cfg::StackSettings& settings) {
  mpisim::MpiSim mpi(128);
  pfs::PfsSimulator fs;
  auto bdcats = wl::make_bdcats(bench::paper_bdcats());
  const wl::RunResult result = bdcats->run(mpi, fs, settings, {});
  return result.sim_seconds / 60.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig12_viability");
  bench::banner("Figure 12", "lifecycle viability of tuning BD-CATS",
                "TunIO tunes in 403 min (H5Tuner: 1560); viability at 1394 "
                "executions vs 5274 (-73.6%); TunIO stays ahead of H5Tuner "
                "until 3.99M executions");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto tunio = bench::trained_tunio(space);
  // Conservative GA (see fig10): the simulated surface converges faster
  // than Cori's, so discovery effort is stretched to mirror the paper's
  // iteration counts.
  tuner::GaOptions ga = bench::paper_ga(88);
  ga.mutation_prob = 0.05;
  ga.init_mutation_prob = 0.02;
  ga.tournament_size = 2;
  ga.crossover_prob = 0.6;

  // H5Tuner: plain genetic tuning over the full budget.
  auto h5_objective = bench::bdcats_objective(false, 121);
  const auto h5tuner = core::run_pipeline(
      space, *h5_objective, nullptr,
      {"H5Tuner", false, core::StopPolicy::kNone}, ga);

  // TunIO: impact-first subsets + RL early stop.
  auto tunio_objective = bench::bdcats_objective(false, 121);
  const auto tunio_run = core::run_pipeline(
      space, *tunio_objective, tunio.get(),
      {"TunIO", true, core::StopPolicy::kTunio}, ga);

  const double untuned_min =
      production_run_minutes(cfg::resolve(space.default_configuration()));
  const double tunio_min =
      production_run_minutes(cfg::resolve(*tunio_run.result.best_config));
  const double h5_min =
      production_run_minutes(cfg::resolve(*h5tuner.result.best_config));
  const double tunio_tune = tunio_run.result.total_seconds / 60.0;
  const double h5_tune = h5tuner.result.total_seconds / 60.0;

  std::printf("  per-run duration: untuned %.2f min, TunIO-tuned %.2f min, "
              "H5Tuner-tuned %.2f min\n",
              untuned_min, tunio_min, h5_min);
  std::printf("  tuning cost: TunIO %.0f min, H5Tuner %.0f min\n\n",
              tunio_tune, h5_tune);

  // Lifecycle(n) = tune_cost + n * per_run; viability where it crosses
  // the no-tuning line.
  const double tunio_viability = tunio_tune / (untuned_min - tunio_min);
  const double h5_viability = h5_tune / (untuned_min - h5_min);

  std::printf("  %-14s %16s %16s %16s\n", "executions", "No-Tuning",
              "TunIO", "H5Tuner");
  for (const double n : {0.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
                         100000.0, 1000000.0}) {
    std::printf("  %-14.0f %14.0f m %14.0f m %14.0f m\n", n, n * untuned_min,
                tunio_tune + n * tunio_min, h5_tune + n * h5_min);
  }

  bench::section("crossovers");
  std::printf("  TunIO viability over No-Tuning: %.0f executions\n",
              tunio_viability);
  std::printf("  H5Tuner viability over No-Tuning: %.0f executions\n",
              h5_viability);
  // TunIO stays ahead of H5Tuner until its (slightly) slower tuned runs
  // eat the head start — if H5Tuner found the faster configuration.
  if (tunio_min > h5_min) {
    std::printf("  TunIO ahead of H5Tuner until %.3g executions\n",
                (h5_tune - tunio_tune) / (tunio_min - h5_min));
  } else {
    std::printf("  TunIO's tuned configuration is never overtaken "
                "(H5Tuner found no faster configuration)\n");
  }

  bench::section("summary vs paper");
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.0f vs %.0f min", tunio_tune, h5_tune);
  bench::summary("tuning time (TunIO vs H5Tuner)", buf, "403 vs 1560 min");
  std::snprintf(buf, sizeof buf, "%.0f vs %.0f (%.1f%% fewer)",
                tunio_viability, h5_viability,
                100.0 * (1.0 - tunio_viability / h5_viability));
  bench::summary("viability point (executions)", buf,
                 "1394 vs 5274 (-73.6%)");

  bench::value("tunio_tuning_min", tunio_tune, "min", /*gate=*/true,
               bench::Direction::kLowerIsBetter);
  bench::value("h5tuner_tuning_min", h5_tune, "min");
  bench::value("tunio_viability_executions", tunio_viability, "executions",
               /*gate=*/true, bench::Direction::kLowerIsBetter);
  bench::value("h5tuner_viability_executions", h5_viability, "executions");
  return bench::finish();
}
