// Service throughput: wall-clock speedup of the parallel evaluation
// engine on one GA generation, with bit-identical results.
//
// Two regimes:
//   * CPU-bound — evaluations are pure simulator computation, so the
//     speedup ceiling is the number of physical cores;
//   * launch-latency-bound — each evaluation also waits on a (real)
//     job-launch delay, the regime a production tuning service lives in
//     (srun spin-up, queue wait, remote testbed round-trips). Here the
//     pool overlaps the waits and the speedup approaches the worker
//     count on any machine.
// In both regimes the parallel batch must reproduce the serial batch
// bit-for-bit — same perfs, same simulated budget — because every
// evaluation draws from a per-genome RNG stream.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/rng.hpp"
#include "service/eval_engine.hpp"

namespace tunio::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Adds a real launch delay to every evaluation (the simulated budget
/// already bills `launch_overhead_seconds`; this spends the wall-clock
/// analogue, compressed to milliseconds).
class LaunchLatencyObjective final : public tuner::Objective {
 public:
  LaunchLatencyObjective(tuner::Objective& inner,
                         std::chrono::milliseconds delay)
      : inner_(inner), delay_(delay) {}
  std::string name() const override { return inner_.name(); }
  tuner::Evaluation evaluate(const cfg::Configuration& config) override {
    std::this_thread::sleep_for(delay_);
    return inner_.evaluate(config);
  }
  bool concurrent_safe() const override { return inner_.concurrent_safe(); }
  std::uint64_t evaluations() const override { return inner_.evaluations(); }

 private:
  tuner::Objective& inner_;
  std::chrono::milliseconds delay_;
};

std::vector<cfg::Configuration> one_generation(const cfg::ConfigSpace& space,
                                               unsigned population) {
  // The same shape GeneticTuner uses for generation 0: defaults plus
  // mutated explorers.
  Rng rng(0xBEEF);
  std::vector<cfg::Configuration> configs;
  configs.push_back(space.default_configuration());
  while (configs.size() < population) {
    cfg::Configuration config = space.default_configuration();
    for (std::size_t p = 0; p < space.num_parameters(); ++p) {
      if (rng.chance(0.35)) {
        config.set_index(p, rng.index(space.parameter(p).domain.size()));
      }
    }
    configs.push_back(config);
  }
  return configs;
}

struct RegimeResult {
  double serial_wall = 0.0;
  double parallel_wall = 0.0;
  bool identical = true;
  double serial_budget = 0.0;
  double parallel_budget = 0.0;
};

RegimeResult run_regime(tuner::Objective& serial_objective,
                        tuner::Objective& parallel_objective,
                        const std::vector<cfg::Configuration>& configs,
                        unsigned workers) {
  RegimeResult out;

  auto start = Clock::now();
  const std::vector<tuner::Evaluation> serial =
      serial_objective.evaluate_batch(configs);
  out.serial_wall = seconds_since(start);

  service::EvalEngine engine(service::EngineOptions{workers});
  start = Clock::now();
  const std::vector<tuner::Evaluation> parallel =
      engine.evaluate_batch(parallel_objective, configs);
  out.parallel_wall = seconds_since(start);

  for (std::size_t i = 0; i < configs.size(); ++i) {
    out.serial_budget += serial[i].eval_seconds;
    out.parallel_budget += parallel[i].eval_seconds;
    if (serial[i].perf_mbps != parallel[i].perf_mbps ||
        serial[i].eval_seconds != parallel[i].eval_seconds) {
      out.identical = false;
    }
  }
  return out;
}

void report(const std::string& regime, const RegimeResult& r) {
  section(regime);
  std::printf("  serial:    %8.3f s wall,  %10.1f s simulated budget\n",
              r.serial_wall, r.serial_budget);
  std::printf("  8 workers: %8.3f s wall,  %10.1f s simulated budget\n",
              r.parallel_wall, r.parallel_budget);
  std::printf("  speedup:   %8.2fx wall-clock\n",
              r.parallel_wall > 0 ? r.serial_wall / r.parallel_wall : 0.0);
  std::printf("  results bit-identical to serial: %s\n",
              r.identical ? "yes" : "NO — BUG");
  std::printf("  simulated budgets identical:     %s\n",
              r.serial_budget == r.parallel_budget ? "yes" : "NO — BUG");
}

int run(int argc, char** argv) {
  init(argc, argv, "service_throughput");
  banner("service_throughput",
         "parallel evaluation engine vs. serial generation scoring",
         "n/a (service extension): target >= 3x on a 16-individual "
         "generation with 8 workers");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  constexpr unsigned kPopulation = 16;
  constexpr unsigned kWorkers = 8;
  const std::vector<cfg::Configuration> generation =
      one_generation(space, kPopulation);
  std::printf("testbed: %u-individual generation, %u workers, %u cores\n",
              kPopulation, kWorkers, std::thread::hardware_concurrency());

  // CPU-bound regime: a small HACC kernel, all simulator computation.
  wl::HaccParams params;
  params.particles_per_rank = 1u << 20;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  auto workload = std::shared_ptr<const wl::Workload>(wl::make_hacc(params));
  tuner::TestbedOptions tb = paper_testbed();
  auto serial_cpu = tuner::make_workload_objective(workload, tb, kernel);
  auto parallel_cpu = tuner::make_workload_objective(workload, tb, kernel);
  const RegimeResult cpu =
      run_regime(*serial_cpu, *parallel_cpu, generation, kWorkers);
  report("CPU-bound (speedup ceiling = physical cores)", cpu);

  // Launch-latency regime: 40 ms real wait per evaluation, standing in
  // for the 30 s of simulated launch overhead every evaluation bills.
  auto serial_inner = tuner::make_workload_objective(workload, tb, kernel);
  auto parallel_inner = tuner::make_workload_objective(workload, tb, kernel);
  LaunchLatencyObjective serial_lat(*serial_inner,
                                    std::chrono::milliseconds(40));
  LaunchLatencyObjective parallel_lat(*parallel_inner,
                                      std::chrono::milliseconds(40));
  const RegimeResult lat =
      run_regime(serial_lat, parallel_lat, generation, kWorkers);
  report("launch-latency-bound (the service regime)", lat);

  section("acceptance");
  const double speedup =
      lat.parallel_wall > 0 ? lat.serial_wall / lat.parallel_wall : 0.0;
  summary("wall-clock speedup (latency-bound)",
          std::to_string(speedup) + "x", ">= 3x");
  summary("identical results & budgets",
          (cpu.identical && lat.identical &&
           cpu.serial_budget == cpu.parallel_budget &&
           lat.serial_budget == lat.parallel_budget)
              ? "yes"
              : "no",
          "required");
  const bool ok = speedup >= 3.0 && cpu.identical && lat.identical;

  value("latency_speedup_x", speedup, "x", /*gate=*/true);
  value("latency_evals_per_sec",
        lat.parallel_wall > 0 ? kPopulation / lat.parallel_wall : 0.0,
        "evals/s", /*gate=*/true);
  value("cpu_speedup_x",
        cpu.parallel_wall > 0 ? cpu.serial_wall / cpu.parallel_wall : 0.0,
        "x");
  value("results_identical",
        (cpu.identical && lat.identical) ? 1.0 : 0.0, "bool", /*gate=*/true);
  return finish(ok ? 0 : 1);
}

}  // namespace
}  // namespace tunio::bench

int main(int argc, char** argv) { return tunio::bench::run(argc, argv); }
