// Static-analysis bench: abstract-interpretation throughput and the
// replay-eligibility gate over the seed workloads plus gate-stressing
// kernel variants.
//
// Two things are measured. First, how fast `predict_cost` solves each
// seed workload (wall time, ungated — absolute rates vary per runner)
// and whether its predicted op/byte intervals contain the
// interpreter-measured ground truth (gated count: a sound analysis
// contains all five). Second, what the taint gate decides across a
// program set with known verdicts: the five seeds (no tuned reads),
// a dead tuned read, an overwritten tuned read (slicer-dependent but
// taint-invariant — the "recovered" case that widens replay
// eligibility), and two genuinely settings-dependent kernels. The
// eligible/recovered counts are gated: a gate that silently narrows
// (fewer eligible) or loses its precision edge over the def-use slicer
// (no recovered program) is a regression even if every test still
// passes.
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cost_model.hpp"
#include "common.hpp"
#include "config/stack_settings.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "mpisim/mpisim.hpp"
#include "obs/metrics.hpp"
#include "pfs/pfs.hpp"
#include "replay/hooks.hpp"
#include "replay/invariance.hpp"
#include "replay/trace_stats.hpp"
#include "workloads/sources.hpp"

namespace tunio::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kRanks = 8;
constexpr int kSolveRounds = 50;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

replay::AppIoCounts measured(const minic::Program& program) {
  replay::Recorder recorder;
  {
    mpisim::MpiSim mpi(kRanks);
    pfs::PfsSimulator fs;
    replay::RecordScope scope(recorder);
    interp::execute(program, mpi, fs, cfg::default_settings());
  }
  return replay::app_io_counts(recorder.take());
}

bool contains_measurement(const analysis::ProgramCost& cost,
                          const replay::AppIoCounts& got) {
  const auto in = [](const analysis::Interval& i, std::uint64_t v) {
    return i.contains(static_cast<std::int64_t>(v));
  };
  return cost.analyzable && in(cost.write_ops, got.write_ops) &&
         in(cost.read_ops, got.read_ops) &&
         in(cost.bytes_written, got.bytes_written) &&
         in(cost.bytes_read, got.bytes_read) &&
         in(cost.file_opens, got.file_opens) &&
         in(cost.dataset_creates, got.dataset_creates);
}

/// Gate-stressing kernel variants with known verdicts.
const char* kOverwrittenTunedRead = R"(
int main()
{
  int f = h5fcreate("/bench/gate.h5");
  int d = h5dcreate(f, "x", 8, 65536);
  int s = tuned_stripe_count();
  s = 8;
  h5dwrite_all(d, s * 128);
  h5fclose(f);
  return 0;
}
)";

const char* kDeadTunedRead = R"(
int main()
{
  int f = h5fcreate("/bench/gate.h5");
  int d = h5dcreate(f, "x", 8, 65536);
  int unused = tuned_cb_nodes();
  h5dwrite_all(d, 1024);
  h5fclose(f);
  return 0;
}
)";

const char* kTunedWriteCount = R"(
int main()
{
  int f = h5fcreate("/bench/gate.h5");
  int d = h5dcreate(f, "x", 8, 1048576);
  h5dwrite_all(d, tuned_stripe_size_kib() * 8);
  h5fclose(f);
  return 0;
}
)";

const char* kTunedControl = R"(
int main()
{
  int f = h5fcreate("/bench/gate.h5");
  int d = h5dcreate(f, "x", 8, 65536);
  if (tuned_cb_nodes() > 4)
  {
    h5dwrite_all(d, 4096);
  }
  h5fclose(f);
  return 0;
}
)";

}  // namespace
}  // namespace tunio::bench

int main(int argc, char** argv) {
  using namespace tunio;
  using namespace tunio::bench;

  init(argc, argv, "static_analysis");
  banner("static-analysis",
         "Abstract interpretation: cost prediction + replay gate",
         "static pre-ranking and invariance evidence at ~zero tuning cost");

  const std::vector<std::pair<std::string, std::string>> seeds = {
      {"VPIC-IO", wl::sources::vpic()},
      {"FLASH-IO", wl::sources::flash()},
      {"HACC-IO", wl::sources::hacc()},
      {"MACSio", wl::sources::macsio_vpic()},
      {"BD-CATS", wl::sources::bdcats()},
  };

  section("static cost prediction (per seed workload)");
  analysis::CostOptions copts;
  copts.absint.mpi_ranks = analysis::Interval::constant(kRanks);
  int contained = 0;
  double total_solve_seconds = 0.0;
  for (const auto& [name, source] : seeds) {
    const minic::Program program =
        minic::parse(minic::print(minic::parse(source)));
    const auto start = Clock::now();
    analysis::ProgramCost cost;
    for (int round = 0; round < kSolveRounds; ++round) {
      cost = analysis::predict_cost(program, copts);
    }
    const double solve_us =
        seconds_since(start) / kSolveRounds * 1e6;
    total_solve_seconds += solve_us / 1e6;
    const bool ok = contains_measurement(cost, measured(program));
    contained += ok ? 1 : 0;
    std::printf("  %-10s solve %8.1f us  transfers %5d  contained %s\n",
                name.c_str(), solve_us, cost.solver_transfers,
                ok ? "yes" : "NO");
    value("solve_us_" + name, solve_us, "us", false,
          Direction::kLowerIsBetter);
  }
  value("seeds_cost_contained", contained, "count", true,
        Direction::kHigherIsBetter);
  value("solve_us_mean", total_solve_seconds / seeds.size() * 1e6, "us",
        false, Direction::kLowerIsBetter);

  section("replay-eligibility gate (seeds + gate-stressing variants)");
  std::vector<std::pair<std::string, std::string>> gate_programs;
  for (const auto& [name, source] : seeds) gate_programs.emplace_back(name, source);
  gate_programs.emplace_back("overwritten-tuned", kOverwrittenTunedRead);
  gate_programs.emplace_back("dead-tuned", kDeadTunedRead);
  gate_programs.emplace_back("tuned-write-count", kTunedWriteCount);
  gate_programs.emplace_back("tuned-control", kTunedControl);

  const obs::Counter& recovered_counter =
      obs::MetricsRegistry::global().counter("replay.gate.recovered");
  const std::uint64_t recovered_before = recovered_counter.value();
  int eligible = 0;
  int dependent = 0;
  double gate_seconds = 0.0;
  for (const auto& [name, source] : gate_programs) {
    const minic::Program program = minic::parse(source);
    const auto start = Clock::now();
    const replay::InvarianceReport report =
        replay::analyze_invariance(program);
    gate_seconds += seconds_since(start);
    (report.dependent ? dependent : eligible) += 1;
    std::printf("  %-18s %-9s %s\n", name.c_str(),
                report.dependent ? "dependent" : "eligible",
                report.reason.c_str());
  }
  const auto recovered =
      static_cast<double>(recovered_counter.value() - recovered_before);

  value("gate_programs", static_cast<double>(gate_programs.size()), "count");
  value("replay_eligible", eligible, "count", true,
        Direction::kHigherIsBetter);
  value("replay_dependent", dependent, "count");
  value("taint_recovered", recovered, "count", true,
        Direction::kHigherIsBetter);
  value("gate_us_per_program",
        gate_seconds / static_cast<double>(gate_programs.size()) * 1e6, "us",
        false, Direction::kLowerIsBetter);

  section("summary");
  summary("predicted intervals contain measured I/O",
          std::to_string(contained) + "/5 seeds", "5/5 required");
  summary("replay-eligible programs",
          std::to_string(eligible) + "/" +
              std::to_string(gate_programs.size()),
          "7/9 (taint widens the PR-4 gate)");
  summary("slicer-dependent programs recovered by taint",
          std::to_string(static_cast<int>(recovered)), ">= 1");

  return finish(contained == static_cast<int>(seeds.size()) ? 0 : 1);
}
