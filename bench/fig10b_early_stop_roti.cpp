// Figure 10(b): Return on Tuning Investment of stopping policies on HACC.
//
// "The perfect RoTI for this application would be 2.31, achieved by
// stopping at iteration 35. ... TunIO's early stopping mechanism has an
// RoTI of 2.00, which is 90.5% of the best return. ... The Maximizing
// Performance stopping method gets 1.99 RoTI or 86.1% ... The heuristic
// model of stopping achieves 1.37 RoTI or 59.3% ... a maximized tuning
// budget of 50 iterations ... 1.8 or 77.9%. ... TunIO stops at 744
// minutes as opposed to the 800 minutes of Maximizing Performance
// stopping (7.61% time improvement)."
#include <cstdio>

#include "common.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig10b_early_stop_roti");
  bench::banner("Figure 10(b)", "RoTI of stopping policies on HACC",
                "perfect 2.31 (stop at 35); TunIO 2.00 (90.5%); MaxPerf "
                "1.99 (86.1%); heuristic 1.37 (59.3%); full budget 1.8 "
                "(77.9%)");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto tunio = bench::trained_tunio(space);
  // The paper's GA needed ~35 of 50 iterations on its stack; our
  // simulated surface is easier, so the pipeline uses a conservative GA
  // (small population, low mutation) whose curve has the same shape:
  // a mid-run plateau followed by late gains.
  tuner::GaOptions ga = bench::paper_ga(55);
  ga.population = 6;
  ga.mutation_prob = 0.03;
  ga.init_mutation_prob = 0.02;
  ga.tournament_size = 2;
  ga.crossover_prob = 0.7;

  // Full-budget reference run: defines the perfect stop point and the
  // bandwidth target of the Maximizing Performance oracle.
  auto ref_objective = bench::hacc_objective(true, 101);
  const auto reference = core::run_pipeline(
      space, *ref_objective, nullptr,
      {"full budget", false, core::StopPolicy::kNone}, ga);
  const core::RotiPoint perfect = core::peak_roti(reference.result);

  auto tunio_objective = bench::hacc_objective(true, 101);
  const auto rl_run = core::run_pipeline(
      space, *tunio_objective, tunio.get(),
      {"TunIO stop", false, core::StopPolicy::kTunio}, ga);

  auto heuristic_objective = bench::hacc_objective(true, 101);
  const auto heuristic_run = core::run_pipeline(
      space, *heuristic_objective, nullptr,
      {"heuristic stop", false, core::StopPolicy::kHeuristic}, ga);

  // Maximizing Performance: an assumed-perfect model that stops the
  // moment the known-optimal bandwidth is reached.
  auto maxperf_objective = bench::hacc_objective(true, 101);
  core::PipelineVariant maxperf{"max-perf stop", false,
                                core::StopPolicy::kMaxPerf};
  maxperf.max_perf_target = reference.result.best_perf * 0.999;
  const auto maxperf_run =
      core::run_pipeline(space, *maxperf_objective, nullptr, maxperf, ga);

  struct Row {
    const char* label;
    double roti;
    double minutes;
  };
  const Row rows[] = {
      {"perfect (oracle)", perfect.roti, perfect.minutes},
      {"TunIO RL stop", core::final_roti(rl_run.result),
       rl_run.result.total_seconds / 60.0},
      {"Maximizing Performance", core::final_roti(maxperf_run.result),
       maxperf_run.result.total_seconds / 60.0},
      {"heuristic (5%/5)", core::final_roti(heuristic_run.result),
       heuristic_run.result.total_seconds / 60.0},
      {"full 50-gen budget", core::final_roti(reference.result),
       reference.result.total_seconds / 60.0},
  };
  std::printf("  %-24s %-18s %-12s %s\n", "policy", "RoTI (MB/s/min)",
              "minutes", "% of perfect");
  for (const Row& row : rows) {
    std::printf("  %-24s %-18.2f %-12.0f %.1f%%\n", row.label, row.roti,
                row.minutes, 100.0 * row.roti / perfect.roti);
  }

  bench::section("summary vs paper");
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.1f%% of perfect",
                100.0 * core::final_roti(rl_run.result) / perfect.roti);
  bench::summary("TunIO return", buf, "90.5% of perfect");
  std::snprintf(buf, sizeof buf, "%.1f%% of perfect",
                100.0 * core::final_roti(heuristic_run.result) / perfect.roti);
  bench::summary("heuristic return", buf, "59.3% of perfect");
  std::snprintf(
      buf, sizeof buf, "%.0f vs %.0f min (%.1f%% less)",
      rl_run.result.total_seconds / 60.0,
      maxperf_run.result.total_seconds / 60.0,
      100.0 * (1.0 - rl_run.result.total_seconds /
                         std::max(1.0, maxperf_run.result.total_seconds)));
  bench::summary("TunIO vs MaxPerf time", buf, "744 vs 800 min (-7.61%)");

  bench::value("rl_return_pct_of_perfect",
               100.0 * core::final_roti(rl_run.result) / perfect.roti, "%",
               /*gate=*/true);
  bench::value("heuristic_return_pct_of_perfect",
               100.0 * core::final_roti(heuristic_run.result) / perfect.roti,
               "%", /*gate=*/true);
  bench::value("rl_budget_min", rl_run.result.total_seconds / 60.0, "min",
               /*gate=*/true, bench::Direction::kLowerIsBetter);
  return bench::finish();
}
