// Figure 10(a): tuning HACC with TunIO's RL early stopper vs the 5%/5-
// iteration heuristic.
//
// "TunIO's early stopper terminates tuning at the 35th of 50 generations
// ... achieving 2.2 GB/s bandwidth (~4x improvement from the non-tuned
// application bandwidth of 0.55 GB/s). ... TunIO's Early Stopping
// component intelligently avoids getting caught in the plateau around
// the 10th to 20th iterations. In contrast, the traditional
// heuristic-based early stopper ... decided to stop [at iteration 14],
// achieving only 1.2 GB/s bandwidth ... a mere 2x performance
// improvement."
#include <cstdio>

#include "common.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig10a_early_stop_bw");
  bench::banner("Figure 10(a)", "early stopping on HACC: RL vs heuristic",
                "RL stop at iter 35/50 with ~4x gain; heuristic trapped by "
                "the iteration 10-20 plateau, stopping at 14 with only 2x");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto tunio = bench::trained_tunio(space);
  // The paper's GA needed ~35 of 50 iterations on its stack; our
  // simulated surface is easier, so the pipeline uses a conservative GA
  // (small population, low mutation) whose curve has the same shape:
  // a mid-run plateau followed by late gains.
  tuner::GaOptions ga = bench::paper_ga(55);
  ga.population = 6;
  ga.mutation_prob = 0.03;
  ga.init_mutation_prob = 0.02;
  ga.tournament_size = 2;
  ga.crossover_prob = 0.7;

  bench::section("reference: tuning the full 50-generation budget");
  auto ref_objective = bench::hacc_objective(true, 101);
  const auto reference = core::run_pipeline(
      space, *ref_objective, nullptr,
      {"full budget", false, core::StopPolicy::kNone}, ga);
  bench::print_curve("full budget", reference.result, 5);

  bench::section("TunIO RL early stopping");
  auto tunio_objective = bench::hacc_objective(true, 101);
  const auto rl_run = core::run_pipeline(
      space, *tunio_objective, tunio.get(),
      {"TunIO stop", false, core::StopPolicy::kTunio}, ga);
  bench::print_curve("TunIO stop", rl_run.result, 5);

  bench::section("heuristic early stopping (5% / 5 iterations)");
  auto heuristic_objective = bench::hacc_objective(true, 101);
  const auto heuristic_run = core::run_pipeline(
      space, *heuristic_objective, nullptr,
      {"heuristic stop", false, core::StopPolicy::kHeuristic}, ga);
  bench::print_curve("heuristic stop", heuristic_run.result, 5);

  const double untuned = reference.result.initial_perf;
  const double missed =
      reference.result.best_perf - rl_run.result.best_perf;

  bench::section("summary vs paper");
  char buf[128];
  std::snprintf(buf, sizeof buf, "iter %u of 50, %s (%.1fx untuned)",
                rl_run.result.generations_run,
                bench::fmt_bw(rl_run.result.best_perf).c_str(),
                rl_run.result.best_perf / untuned);
  bench::summary("TunIO stop", buf, "iter 35, 2.2 GB/s (~4x)");
  std::snprintf(buf, sizeof buf, "iter %u, %s (%.1fx untuned)",
                heuristic_run.result.generations_run,
                bench::fmt_bw(heuristic_run.result.best_perf).c_str(),
                heuristic_run.result.best_perf / untuned);
  bench::summary("heuristic stop", buf, "iter 14, 1.2 GB/s (2x)");
  std::snprintf(buf, sizeof buf, "%s (%.2fx of the 4x-range gain)",
                bench::fmt_bw(missed).c_str(),
                missed / std::max(1e-9, untuned));
  bench::summary("bandwidth left on the table by stopping", buf,
                 "0.08 GB/s (0.14x)");

  bench::value("rl_stop_tuned_mbps", rl_run.result.best_perf, "MB/s",
               /*gate=*/true);
  bench::value("rl_stop_iterations", rl_run.result.generations_run,
               "iterations", /*gate=*/true,
               bench::Direction::kLowerIsBetter);
  bench::value("heuristic_tuned_mbps", heuristic_run.result.best_perf,
               "MB/s", /*gate=*/true);
  bench::value("untuned_mbps", untuned, "MB/s", /*gate=*/true);
  return bench::finish();
}
