// Micro-benchmarks (google-benchmark) of the simulation substrates and
// AI components: per-operation cost of the PFS model, the HDF5lite write
// path, mini-C parsing/discovery, NN inference, and one GA generation.
//
// These measure the *simulator's own* throughput (how many simulated
// operations per wall-clock second), which bounds how large a tuning
// experiment the harness can run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common.hpp"
#include "config/stack_settings.hpp"
#include "discovery/discovery.hpp"
#include "hdf5lite/file.hpp"
#include "minic/parser.hpp"
#include "nn/dense_net.hpp"
#include "pfs/pfs.hpp"
#include "rl/q_agent.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/objective.hpp"
#include "workloads/sources.hpp"
#include "workloads/workload.hpp"

using namespace tunio;

static void BM_PfsWrite(benchmark::State& state) {
  pfs::PfsSimulator fs;
  pfs::CreateOptions opts;
  opts.stripe_count = static_cast<unsigned>(state.range(0));
  fs.create("/bench", 0.0, opts);
  Bytes offset = 0;
  SimSeconds t = 0.0;
  for (auto _ : state) {
    t = fs.write("/bench", t, offset, 1 * MiB);
    offset += 1 * MiB;
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PfsWrite)->Arg(1)->Arg(8)->Arg(64);

static void BM_StripeSplit(benchmark::State& state) {
  pfs::StripeLayout layout(1 * MiB, 16, 0, 64);
  Bytes offset = 12345;
  for (auto _ : state) {
    auto pieces = layout.split(offset, 17 * MiB);
    benchmark::DoNotOptimize(pieces);
    offset += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StripeSplit);

static void BM_H5ChunkedWrite(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    mpisim::MpiSim mpi(32);
    pfs::PfsSimulator fs;
    h5::File file(mpi, fs, "/f.h5", h5::FileAccessProps{}, mpiio::Hints{});
    h5::DatasetCreateProps dcpl;
    dcpl.chunk_elements = 1 << 15;
    h5::ChunkCacheProps cache;
    cache.rdcc_nbytes = static_cast<Bytes>(state.range(0)) * MiB;
    h5::Dataset& ds =
        file.create_dataset("x", 4, (1u << 17) * 32, dcpl, cache);
    std::vector<h5::Selection> sels;
    for (unsigned r = 0; r < 32; ++r) {
      sels.push_back({r, r * (1u << 17), 1u << 17});
    }
    state.ResumeTiming();
    ds.write(sels, h5::TransferProps{true});
    ds.flush();
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_H5ChunkedWrite)->Arg(1)->Arg(64);

static void BM_MinicParse(benchmark::State& state) {
  const std::string source = wl::sources::macsio_vpic();
  for (auto _ : state) {
    auto program = minic::parse(source);
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinicParse);

static void BM_Discovery(benchmark::State& state) {
  const std::string source = wl::sources::macsio_vpic();
  for (auto _ : state) {
    auto kernel = discovery::discover_io(source, {});
    benchmark::DoNotOptimize(kernel);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Discovery);

static void BM_WorkloadEvaluation(benchmark::State& state) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  tuner::TestbedOptions tb;
  tb.num_ranks = 128;
  tb.runs_per_eval = 1;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc()), tb, kernel);
  const cfg::Configuration config = space.default_configuration();
  for (auto _ : state) {
    auto eval = objective->evaluate(config);
    benchmark::DoNotOptimize(eval);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadEvaluation);

static void BM_NnForward(benchmark::State& state) {
  Rng rng(1);
  nn::DenseNet net({14, 24, 24, 12}, rng);
  const std::vector<double> input(14, 0.5);
  for (auto _ : state) {
    auto out = net.forward(input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NnForward);

static void BM_QAgentLearn(benchmark::State& state) {
  rl::QAgent agent(5, 2, Rng(2));
  Rng rng(3);
  for (int i = 0; i < 256; ++i) {
    agent.observe({rng.uniform(), rng.uniform(), 0, 0, 0},
                  rng.index(2), rng.uniform(), {0, 0, 0, 0, 0}, i % 7 == 0);
  }
  for (auto _ : state) {
    agent.learn(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QAgentLearn);

static void BM_GaGeneration(benchmark::State& state) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  tuner::TestbedOptions tb;
  tb.num_ranks = 32;
  tb.runs_per_eval = 1;
  wl::HaccParams params;
  params.particles_per_rank = 1 << 16;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  for (auto _ : state) {
    auto objective = tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_hacc(params)), tb,
        kernel);
    tuner::GaOptions ga;
    ga.population = 8;
    ga.max_generations = 1;
    tuner::GeneticTuner tuner(space, *objective, ga);
    auto result = tuner.run();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 8);  // evaluations
}
BENCHMARK(BM_GaGeneration);

// Custom main replacing benchmark_main: routes every micro-benchmark's
// per-iteration timing into the shared bench harness so `--json` writes
// a BENCH_micro_substrates.json report alongside the figure benches'.
namespace {

/// Console output as usual, plus one harness value() per benchmark run.
class HarnessReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::string name = run.benchmark_name();
      std::replace(name.begin(), name.end(), '/', '_');
      // Wall-clock micro timings vary across runners: never gated.
      bench::value(name + "_ns", run.GetAdjustedRealTime(), "ns",
                   /*gate=*/false, bench::Direction::kLowerIsBetter);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        bench::value(name + "_items_per_sec", items->second.value, "items/s");
      }
    }
  }
};

/// Deterministic anchor for the perf gate (gated reports need at least
/// one machine-independent value): the simulated completion time of a
/// fixed striped write pattern. Catches accidental cost-model changes.
double simulated_anchor_seconds() {
  pfs::PfsSimulator fs;
  pfs::CreateOptions opts;
  opts.stripe_count = 8;
  fs.create("/anchor", 0.0, opts);
  const pfs::FileHandle handle = *fs.find_file("/anchor");
  SimSeconds t = 0.0;
  for (unsigned i = 0; i < 64; ++i) {
    t = fs.write(handle, t, static_cast<Bytes>(i) * MiB, 1 * MiB);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  tunio::bench::init(argc, argv, "micro_substrates");
  // Strip the harness's --json flag before google-benchmark parses the
  // command line (it rejects flags it does not recognize).
  std::vector<char*> bm_args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--json", 0) == 0) continue;
    bm_args.push_back(argv[i]);
  }
  int bm_argc = static_cast<int>(bm_args.size());
  benchmark::Initialize(&bm_argc, bm_args.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_args.data())) {
    return tunio::bench::finish(1);
  }
  HarnessReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  tunio::bench::value("benchmarks_run", static_cast<double>(ran), "count");
  tunio::bench::value("sim_anchor_write_seconds", simulated_anchor_seconds(),
                      "s", /*gate=*/true,
                      tunio::bench::Direction::kLowerIsBetter);
  return tunio::bench::finish(ran > 0 ? 0 : 1);
}
