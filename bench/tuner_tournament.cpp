// Tuner-backend tournament: every registered search backend races on
// the five evaluation workloads under the same simulated tuning budget.
//
// Not a figure of the paper — this is the harness that keeps the
// pluggable-backend claim honest: the GA adapter must reproduce the
// genetic pipeline, and the knowledge-driven backends (BO, rule) must
// beat random search on best-bandwidth-per-evaluation, else the extra
// machinery is dead weight. Per (workload, backend) the report records
// best bandwidth, fresh evaluations spent, bandwidth-per-evaluation,
// evaluations-to-within-5%-of-the-workload-best, and the replay/cache
// attribution counters from the drive.
//
// Everything here is simulated and single-threaded, so every recorded
// value is deterministic and the GA rows + tournament verdicts are
// gated against bench/baselines/BENCH_tuner_tournament.json in CI.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "common.hpp"
#include "tuners/registry.hpp"
#include "workloads/sources.hpp"

namespace {

using namespace tunio;

struct Entry {
  std::string key;            ///< short report key ("hacc", ...)
  std::string workload_name;  ///< wl::Workload::name() for lint hints
  std::function<std::unique_ptr<tuner::Objective>()> objective;
};

struct Outcome {
  std::string backend;
  bool completed = false;
  double best_mbps = 0.0;
  std::uint64_t evals = 0;
  double bw_per_eval = 0.0;
  std::uint64_t evals_to_95 = 0;  ///< 0 = never reached 95% of wl best
  tuners::DriveResult detail;
};

/// Equal simulated budget per (workload, backend), denominated in
/// evaluations of the workload's *default* configuration — evaluation
/// cost varies 50x across workloads (and with config quality), so a
/// fixed seconds budget would buy hacc 100+ evaluations and flash 14.
constexpr double kEvalAllowance = 96.0;
constexpr unsigned kBatch = 8;
constexpr unsigned kMaxIterations = 200;  // budget stops first

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "tuner_tournament");
  bench::set_tuner_backend("ga+bo+rule+random");
  bench::banner("tournament", "Tuner-backend tournament",
                "n/a (framework validation: backends race under equal "
                "simulated budgets)");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();

  const std::vector<Entry> entries = {
      {"hacc", "HACC-IO", [] { return bench::hacc_objective(true, 1); }},
      {"flash", "FLASH-IO", [] { return bench::flash_objective(true, 2); }},
      {"vpic", "VPIC-IO", [] { return bench::vpic_objective(true, 3); }},
      {"macsio", "MACSio",
       [] {
         return tuner::make_workload_objective(
             std::shared_ptr<const wl::Workload>(
                 wl::make_macsio(bench::paper_macsio())),
             bench::paper_testbed(5), bench::kernel_options());
       }},
      {"bdcats", "BD-CATS", [] { return bench::bdcats_objective(false, 4); }},
  };

  unsigned bo_or_rule_wins = 0;
  std::vector<bool> backend_completed_everywhere(
      tuners::backend_names().size(), true);

  for (std::size_t w = 0; w < entries.size(); ++w) {
    const Entry& entry = entries[w];
    bench::section("workload: " + entry.key);

    // Knowledge inputs for the rule backend: lint the workload's own
    // mini-C source (the same hints the static-analysis layer feeds the
    // production pipeline).
    tuners::TunerSpec spec;
    spec.seed = 0x70'0421 + w;
    spec.batch = kBatch;
    spec.max_iterations = kMaxIterations;
    spec.ga.population = kBatch;
    if (const auto source = wl::sources::source_for(entry.workload_name)) {
      spec.hints = analysis::lint_source(*source).tuning_hints();
    }

    // Budget calibration: one throwaway evaluation of the stack
    // defaults prices the workload, deterministically.
    double default_seconds = 0.0;
    {
      const std::unique_ptr<tuner::Objective> probe = entry.objective();
      default_seconds =
          probe->evaluate(space.default_configuration()).eval_seconds;
    }
    const double budget_seconds = kEvalAllowance * default_seconds;
    std::printf("  budget: %.0f simulated seconds (%g default-config evals)\n",
                budget_seconds, kEvalAllowance);

    std::vector<Outcome> outcomes;
    double workload_best = 0.0;
    for (const std::string& backend_name : tuners::backend_names()) {
      // A fresh objective per drive: same testbed seed, so a genome
      // evaluates to the same bandwidth for every backend, but replay
      // state and counters start clean (fair attribution).
      const std::unique_ptr<tuner::Objective> objective = entry.objective();
      const std::unique_ptr<tuners::Tuner> tuner =
          tuners::make_tuner(backend_name, space, *objective, spec);
      tuners::DriveOptions drive_options;
      drive_options.budget_seconds = budget_seconds;

      Outcome outcome;
      outcome.backend = backend_name;
      outcome.detail = tuners::drive(*tuner, *objective, drive_options);
      const tuner::TuningResult& result = outcome.detail.tuning;
      outcome.completed =
          result.best_config.has_value() && result.best_perf > 0.0;
      outcome.best_mbps = result.best_perf;
      outcome.evals = outcome.detail.fresh_evaluations;
      workload_best = std::max(workload_best, outcome.best_mbps);
      outcomes.push_back(std::move(outcome));
    }

    // Sample efficiency is judged at an equal evaluation allowance: the
    // smallest evaluation count any backend spent. Scoring each backend
    // by best-bw-so-far at that shared cutoff (per evaluation) keeps a
    // backend from looking "efficient" merely because its bad picks were
    // slow to simulate and the budget bought it fewer evaluations.
    std::uint64_t shared_evals = 0;
    for (const Outcome& outcome : outcomes) {
      if (outcome.evals == 0) continue;
      if (shared_evals == 0 || outcome.evals < shared_evals) {
        shared_evals = outcome.evals;
      }
    }

    // Second pass: evals-to-within-5% needs the cross-backend best.
    std::printf("  %-8s %-14s %-8s %-12s %-10s %s\n", "backend", "best-bw",
                "evals", "bw/eval", "to-95%", "replayed/interpreted/cached");
    const Outcome* random_outcome = nullptr;
    for (Outcome& outcome : outcomes) {
      const tuner::TuningResult& result = outcome.detail.tuning;
      double best_at_allowance = 0.0;
      for (std::size_t i = 0; i < result.history.size(); ++i) {
        if (result.history[i].best_perf >= 0.95 * workload_best &&
            outcome.evals_to_95 == 0) {
          outcome.evals_to_95 = outcome.detail.evaluations[i];
        }
        // First iteration always counts — no backend can answer with
        // fewer evaluations than its opening batch.
        if (i == 0 || outcome.detail.evaluations[i] <= shared_evals) {
          best_at_allowance =
              std::max(best_at_allowance, result.history[i].best_perf);
        }
      }
      outcome.bw_per_eval =
          shared_evals > 0
              ? best_at_allowance / static_cast<double>(shared_evals)
              : 0.0;
      if (outcome.backend == "random") random_outcome = &outcome;

      char to95[32];
      if (outcome.evals_to_95 > 0) {
        std::snprintf(to95, sizeof to95, "%llu",
                      static_cast<unsigned long long>(outcome.evals_to_95));
      } else {
        std::snprintf(to95, sizeof to95, "-");
      }
      std::printf("  %-8s %-14s %-8llu %-12.2f %-10s %llu/%llu/%llu\n",
                  outcome.backend.c_str(),
                  bench::fmt_bw(outcome.best_mbps).c_str(),
                  static_cast<unsigned long long>(outcome.evals),
                  outcome.bw_per_eval, to95,
                  static_cast<unsigned long long>(outcome.detail.replayed_evals),
                  static_cast<unsigned long long>(
                      outcome.detail.interpreted_evals),
                  static_cast<unsigned long long>(
                      outcome.detail.result_cache_hits));

      const std::string prefix = entry.key + "." + outcome.backend;
      // GA rows are gated: the adapter + driver must keep reproducing
      // the genetic pipeline's search bit-identically.
      const bool gate = outcome.backend == "ga";
      bench::value(prefix + ".best_mbps", outcome.best_mbps, "MB/s", gate);
      bench::value(prefix + ".evals",
                   static_cast<double>(outcome.evals), "evals", gate);
      bench::value(prefix + ".bw_per_eval", outcome.bw_per_eval,
                   "MB/s per eval");
      bench::value(prefix + ".evals_to_95pct",
                   static_cast<double>(outcome.evals_to_95), "evals");
      bench::value(prefix + ".replayed",
                   static_cast<double>(outcome.detail.replayed_evals), "evals");
      bench::value(prefix + ".interpreted",
                   static_cast<double>(outcome.detail.interpreted_evals),
                   "evals");
      bench::value(prefix + ".cache_hits",
                   static_cast<double>(outcome.detail.result_cache_hits),
                   "hits");
    }

    bool knowledge_won = false;
    for (const Outcome& outcome : outcomes) {
      if ((outcome.backend == "bo" || outcome.backend == "rule") &&
          random_outcome != nullptr &&
          outcome.bw_per_eval > random_outcome->bw_per_eval) {
        knowledge_won = true;
      }
    }
    if (knowledge_won) ++bo_or_rule_wins;

    for (std::size_t b = 0; b < outcomes.size(); ++b) {
      if (!outcomes[b].completed) backend_completed_everywhere[b] = false;
    }
  }

  bench::section("verdict");
  unsigned backends_completed = 0;
  for (const bool completed : backend_completed_everywhere) {
    if (completed) ++backends_completed;
  }
  std::printf(
      "  bo-or-rule beats random on bw/eval: %u of %zu workloads\n",
      bo_or_rule_wins, entries.size());
  bench::value("tournament.bo_or_rule_beats_random",
               static_cast<double>(bo_or_rule_wins), "workloads",
               /*gate=*/true);
  bench::value("tournament.backends_completed",
               static_cast<double>(backends_completed), "backends",
               /*gate=*/true);
  bench::summary("bo/rule vs random (bw per eval)",
                 std::to_string(bo_or_rule_wins) + " of " +
                     std::to_string(entries.size()) + " workloads",
                 "n/a");

  // Stable one-liner for the release smoke test.
  std::printf("\ntournament: %u backends completed on %zu workloads\n",
              backends_completed, entries.size());
  return bench::finish();
}
