// Figure 8(c): percentage similarity of the MACSio-VPIC kernels to the
// original application.
//
// "The number of bytes written for the kernel and reduced kernel both
// have a very low absolute percentage error of less than 1% (0.0002%
// for kernel and 0.19% for reduced kernel). For the number of write
// operations, there is greater inaccuracy. The kernel has an error of
// 19.05%, which is due to the removal of some trivial writes ... The
// reduced kernel has a lower error of 4.87%."
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "workloads/sources.hpp"

using namespace tunio;

namespace {

struct Probe {
  double bytes_written;
  double write_ops;
};

Probe run_program(const minic::Program& program, bool extrapolated) {
  mpisim::MpiSim mpi(128);
  pfs::PfsSimulator fs;
  const auto result = interp::execute(program, mpi, fs,
                                      cfg::default_settings(), {});
  if (extrapolated) {
    return {result.predicted_bytes_written, result.predicted_write_ops};
  }
  return {static_cast<double>(result.perf.counters.bytes_written),
          static_cast<double>(result.perf.counters.write_ops)};
}

double pct_error(double measured, double truth) {
  return 100.0 * std::abs(measured - truth) / truth;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig08c_kernel_similarity");
  bench::banner("Figure 8(c)",
                "kernel fidelity: bytes written & write operations",
                "bytes-written error <1% for both kernels (0.0002% / "
                "0.19%); write-op error 19.05% (kernel, dropped trivial "
                "writes) and 4.87% (reduced kernel)");

  const std::string source = wl::sources::macsio_vpic();
  const auto kernel = discovery::discover_io(source, {});
  discovery::DiscoveryOptions reduce;
  reduce.loop_reduction = 0.01;
  const auto reduced = discovery::discover_io(source, reduce);

  const Probe original = run_program(minic::parse(source), false);
  const Probe plain = run_program(kernel.kernel, false);
  // "For the reduced kernel, we multiplied the metric by [the reduction]
  // to show the quantity of I/O that would be assumed by the kernel."
  const Probe extrapolated = run_program(reduced.kernel, true);

  std::printf("  %-18s %18s %18s\n", "version", "bytes written",
              "write operations");
  std::printf("  %-18s %18.3e %18.0f\n", "original", original.bytes_written,
              original.write_ops);
  std::printf("  %-18s %18.3e %18.0f\n", "kernel", plain.bytes_written,
              plain.write_ops);
  std::printf("  %-18s %18.3e %18.0f\n", "reduced kernel (x100)",
              extrapolated.bytes_written, extrapolated.write_ops);

  const double kernel_bytes_err =
      pct_error(plain.bytes_written, original.bytes_written);
  const double reduced_bytes_err =
      pct_error(extrapolated.bytes_written, original.bytes_written);
  const double kernel_ops_err = pct_error(plain.write_ops, original.write_ops);
  const double reduced_ops_err =
      pct_error(extrapolated.write_ops, original.write_ops);

  bench::section("absolute percentage error vs original");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f%%", kernel_bytes_err);
  bench::summary("bytes written, kernel", buf, "0.0002%");
  std::snprintf(buf, sizeof buf, "%.4f%%", reduced_bytes_err);
  bench::summary("bytes written, reduced kernel", buf, "0.19%");
  std::snprintf(buf, sizeof buf, "%.2f%%", kernel_ops_err);
  bench::summary("write ops, kernel", buf, "19.05%");
  std::snprintf(buf, sizeof buf, "%.2f%%", reduced_ops_err);
  bench::summary("write ops, reduced kernel", buf, "4.87%");

  std::printf("\nBoth kernels land the payload almost exactly; the "
              "operation-count error comes from dropped logging writes "
              "(kernel) partially offset by per-iteration metadata that "
              "extrapolation over-counts (reduced kernel).\n");

  bench::value("kernel_bytes_error_pct", kernel_bytes_err, "%", /*gate=*/true,
               bench::Direction::kLowerIsBetter);
  bench::value("reduced_bytes_error_pct", reduced_bytes_err, "%",
               /*gate=*/true, bench::Direction::kLowerIsBetter);
  bench::value("kernel_ops_error_pct", kernel_ops_err, "%", /*gate=*/true,
               bench::Direction::kLowerIsBetter);
  bench::value("reduced_ops_error_pct", reduced_ops_err, "%", /*gate=*/true,
               bench::Direction::kLowerIsBetter);
  return bench::finish();
}
