// Evaluation fast path: record-once/replay-many op traces vs. the seed
// interpret path, plus the allocation-free PFS hot path.
//
// The tuner evaluates the same kernel hundreds of times under different
// stack settings. The seed evaluated by interpreting the kernel
// `runs_per_eval` (3) times per evaluation; the fast path records the
// settings-independent op stream once and replays it straight through
// hdf5lite -> mpiio -> mpisim -> pfs — one replayed simulation per
// evaluation, bit-identical results. The gated metric is the latency
// *ratio* between the two (ratios of timings taken on the same machine
// are stable across runners; absolute rates are not).
//
// The gated comparison runs on a small 8-rank testbed, the regime where
// per-evaluation latency is interpreter-bound — at paper scale (128
// ranks) the simulated collectives dominate both paths equally, which
// the ungated `papertb_*` values document.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "common/rng.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "mpisim/mpisim.hpp"
#include "pfs/pfs.hpp"
#include "workloads/sources.hpp"

namespace tunio::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Keeps a computed result alive without the optimizer proving it dead.
volatile double keep_sink = 0.0;
inline void keep(double v) { keep_sink = v; }

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Deterministic spread of configurations, the shape a GA generation
/// explores.
std::vector<cfg::Configuration> varied_configs(const cfg::ConfigSpace& space,
                                               std::size_t count) {
  Rng rng(0x5EED);
  std::vector<cfg::Configuration> configs;
  configs.push_back(space.default_configuration());
  while (configs.size() < count) {
    cfg::Configuration config = space.default_configuration();
    for (std::size_t p = 0; p < space.num_parameters(); ++p) {
      config.set_index(p, rng.index(space.parameter(p).domain.size()));
    }
    configs.push_back(config);
  }
  return configs;
}

tuner::TestbedOptions latency_testbed(unsigned ranks, tuner::ReplayMode mode) {
  tuner::TestbedOptions tb = paper_testbed();
  tb.num_ranks = ranks;
  tb.replay = mode;
  return tb;
}

/// The seed's evaluation loop, reproduced verbatim: resolve the
/// settings, seed the per-genome noise stream, and run `runs_per_eval`
/// full interpreted simulations on fresh simulated testbeds, averaging
/// the noised measurements.
double time_seed_path(const minic::Program& kernel,
                      const std::vector<cfg::Configuration>& configs,
                      unsigned ranks, unsigned rounds) {
  const tuner::TestbedOptions tb = paper_testbed();
  const auto start = Clock::now();
  for (unsigned round = 0; round < rounds; ++round) {
    for (const cfg::Configuration& config : configs) {
      const cfg::StackSettings settings = cfg::resolve(config);
      Rng rng(derive_stream(tb.seed, hash_indices(config.indices())));
      double perf_sum = 0.0;
      for (unsigned run = 0; run < tb.runs_per_eval; ++run) {
        mpisim::MpiSim mpi(ranks);
        pfs::PfsSimulator fs;
        const interp::InterpResult r =
            interp::execute(kernel, mpi, fs, settings);
        const double noisy =
            r.perf.perf_mbps * (1.0 + rng.normal(0.0, tb.measurement_noise));
        perf_sum += std::max(0.0, noisy);
      }
      keep(perf_sum / tb.runs_per_eval);
    }
  }
  return seconds_since(start);
}

/// This PR's evaluation: the real objective in the given replay mode
/// (kAuto = record once, verify once, replay from then on).
double time_objective_path(const minic::Program& kernel,
                           tuner::ReplayMode mode,
                           const std::vector<cfg::Configuration>& configs,
                           unsigned ranks, unsigned rounds) {
  auto objective =
      tuner::make_kernel_objective(kernel, latency_testbed(ranks, mode));
  // Warm-up pass: in kAuto mode this records (eval 1) and verifies
  // (eval 2), so the timed region measures the steady replay state.
  for (const cfg::Configuration& config : configs) {
    keep(objective->evaluate(config).perf_mbps);
  }
  const auto start = Clock::now();
  for (unsigned round = 0; round < rounds; ++round) {
    for (const cfg::Configuration& config : configs) {
      keep(objective->evaluate(config).perf_mbps);
    }
  }
  return seconds_since(start);
}

/// The fast-path objective must reproduce the interpreted objective's
/// evaluations bit-for-bit across the config spread.
bool results_identical(const minic::Program& kernel,
                       const std::vector<cfg::Configuration>& configs,
                       unsigned ranks) {
  auto interpreted = tuner::make_kernel_objective(
      kernel, latency_testbed(ranks, tuner::ReplayMode::kOff));
  auto replayed = tuner::make_kernel_objective(
      kernel, latency_testbed(ranks, tuner::ReplayMode::kAuto));
  for (unsigned pass = 0; pass < 2; ++pass) {
    for (const cfg::Configuration& config : configs) {
      const tuner::Evaluation a = interpreted->evaluate(config);
      const tuner::Evaluation b = replayed->evaluate(config);
      if (a.perf_mbps != b.perf_mbps || a.eval_seconds != b.eval_seconds) {
        return false;
      }
    }
  }
  return true;
}

struct SourceResult {
  double seed_wall = 0.0;    // seed semantics: 3 interpreted sims/eval
  double interp_wall = 0.0;  // single-sim averaging, interpreted
  double replay_wall = 0.0;  // single-sim averaging, replayed
  bool identical = true;
};

SourceResult run_source(const std::string& name, const std::string& source,
                        const std::vector<cfg::Configuration>& configs,
                        unsigned ranks, unsigned rounds, unsigned reps) {
  discovery::DiscoveryOptions opts;
  opts.loop_reduction = 0.01;
  opts.path_switching = true;
  const discovery::KernelResult kernel = discovery::discover_io(source, opts);

  // Best-of-`reps` latency per mode (the standard latency-bench guard
  // against scheduler noise), interleaved so drift hits all modes alike.
  SourceResult r;
  r.seed_wall = r.interp_wall = r.replay_wall = 1e300;
  for (unsigned rep = 0; rep < reps; ++rep) {
    r.seed_wall = std::min(
        r.seed_wall, time_seed_path(kernel.kernel, configs, ranks, rounds));
    r.interp_wall =
        std::min(r.interp_wall,
                 time_objective_path(kernel.kernel, tuner::ReplayMode::kOff,
                                     configs, ranks, rounds));
    r.replay_wall =
        std::min(r.replay_wall,
                 time_objective_path(kernel.kernel, tuner::ReplayMode::kAuto,
                                     configs, ranks, rounds));
  }
  r.identical = results_identical(kernel.kernel, configs, ranks);

  const double evals = static_cast<double>(configs.size()) * rounds;
  std::printf(
      "  %-10s seed %7.1f us/eval   interp-once %6.1f us/eval   "
      "replay %6.1f us/eval   speedup %5.2fx   bit-identical: %s\n",
      name.c_str(), 1e6 * r.seed_wall / evals, 1e6 * r.interp_wall / evals,
      1e6 * r.replay_wall / evals, r.seed_wall / r.replay_wall,
      r.identical ? "yes" : "NO — BUG");
  return r;
}

/// Wall-clock of strided 1 MiB writes through the path-keyed convenience
/// API vs. the handle API the hot path uses.
void pfs_api_comparison() {
  section("allocation-free PFS hot path: handle API vs. path lookups");
  constexpr unsigned kOps = 1000000;
  pfs::CreateOptions opts;
  opts.stripe_count = 8;

  pfs::PfsSimulator path_fs;
  path_fs.create("/bench", 0.0, opts);
  auto start = Clock::now();
  SimSeconds t = 0.0;
  Bytes offset = 0;
  for (unsigned i = 0; i < kOps; ++i) {
    t = path_fs.write("/bench", t, offset, 1 * MiB);
    offset += 1 * MiB;
  }
  const double path_wall = seconds_since(start);
  keep(t);

  pfs::PfsSimulator handle_fs;
  handle_fs.create("/bench", 0.0, opts);
  const pfs::FileHandle handle = *handle_fs.find_file("/bench");
  start = Clock::now();
  t = 0.0;
  offset = 0;
  for (unsigned i = 0; i < kOps; ++i) {
    t = handle_fs.write(handle, t, offset, 1 * MiB);
    offset += 1 * MiB;
  }
  const double handle_wall = seconds_since(start);
  keep(t);

  std::printf("  path API:   %12.0f simulated writes/s\n", kOps / path_wall);
  std::printf("  handle API: %12.0f simulated writes/s  (%.2fx)\n",
              kOps / handle_wall, path_wall / handle_wall);
  value("pfs_path_writes_per_sec", kOps / path_wall, "ops/s");
  value("pfs_handle_writes_per_sec", kOps / handle_wall, "ops/s");
  value("pfs_handle_vs_path_x", path_wall / handle_wall, "x");
}

int run(int argc, char** argv) {
  init(argc, argv, "eval_fast_path");
  banner("eval_fast_path",
         "record-once/replay-many evaluation vs. the seed interpret path",
         "n/a (implementation optimization): target >= 5x single-eval "
         "latency on the discovery kernels, bit-identical results");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  constexpr unsigned kRanks = 8;
  constexpr unsigned kPaperRanks = 128;
  constexpr std::size_t kConfigs = 8;
  constexpr unsigned kRounds = 150;
  constexpr unsigned kPaperRounds = 15;
  constexpr unsigned kReps = 3;
  const std::vector<cfg::Configuration> configs =
      varied_configs(space, kConfigs);

  section("discovered kernels (loop reduction 1%, path switching on), "
          "8-rank latency testbed");
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"VPIC-IO", wl::sources::vpic()},
      {"FLASH-IO", wl::sources::flash()},
      {"HACC-IO", wl::sources::hacc()},
      {"MACSio", wl::sources::macsio_vpic()},
      {"BD-CATS", wl::sources::bdcats()},
  };

  double log_speedup_sum = 0.0;
  double log_sim_speedup_sum = 0.0;
  bool identical = true;
  for (const auto& [name, source] : sources) {
    const SourceResult r =
        run_source(name, source, configs, kRanks, kRounds, kReps);
    log_speedup_sum += std::log(r.seed_wall / r.replay_wall);
    log_sim_speedup_sum += std::log(r.interp_wall / r.replay_wall);
    identical = identical && r.identical;
    value("speedup_x_" + name, r.seed_wall / r.replay_wall, "x");
  }
  const double n = static_cast<double>(sources.size());
  const double speedup_geomean = std::exp(log_speedup_sum / n);
  const double sim_speedup_geomean = std::exp(log_sim_speedup_sum / n);

  section("paper-scale testbed (128 ranks): collectives dominate both paths");
  double log_paper_sum = 0.0;
  for (const auto& [name, source] : sources) {
    const SourceResult r =
        run_source(name, source, configs, kPaperRanks, kPaperRounds, kReps);
    log_paper_sum += std::log(r.seed_wall / r.replay_wall);
    identical = identical && r.identical;
  }
  const double paper_geomean = std::exp(log_paper_sum / n);

  pfs_api_comparison();

  section("acceptance");
  summary("single-eval speedup (geomean, 8-rank testbed)",
          std::to_string(speedup_geomean) + "x", ">= 5x");
  summary("replayed results bit-identical", identical ? "yes" : "no",
          "required");

  // Wall-clock ratios on the same machine are stable; absolute rates are
  // not, so only the ratio and the correctness bit are gated.
  value("replay_speedup_x_geomean", speedup_geomean, "x", /*gate=*/true);
  value("replay_vs_interp_once_x_geomean", sim_speedup_geomean, "x");
  value("papertb_speedup_x_geomean", paper_geomean, "x");
  value("results_identical", identical ? 1.0 : 0.0, "bool", /*gate=*/true);

  const bool ok = identical && speedup_geomean >= 5.0;
  return finish(ok ? 0 : 1);
}

}  // namespace
}  // namespace tunio::bench

int main(int argc, char** argv) { return tunio::bench::run(argc, argv); }
