// Ablation: what does each TunIO component contribute?
//
// DESIGN.md calls for ablation benches over the design choices. This one
// runs the BD-CATS pipeline with every combination of the three
// components toggled (Smart Configuration Generation, RL Early Stopping,
// I/O-kernel evaluation) and reports bandwidth, budget and RoTI — the
// additive version of the paper's Fig. 11 comparison.
#include <cstdio>

#include "common.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "ablation_components");
  bench::banner("Ablation", "component contributions on BD-CATS",
                "(not a paper figure) each TunIO component should improve "
                "RoTI: subsets converge faster, RL stopping quits at the "
                "knee, kernels make evaluations cheap");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto tunio = bench::trained_tunio(space);
  tuner::GaOptions ga = bench::paper_ga(88);
  ga.mutation_prob = 0.05;
  ga.init_mutation_prob = 0.02;
  ga.tournament_size = 2;
  ga.crossover_prob = 0.6;

  struct Row {
    bool subsets, rl_stop, kernel;
  };
  const Row rows[] = {
      {false, false, false},  // plain HSTuner
      {true, false, false},   // + impact-first
      {false, true, false},   // + RL stop
      {false, false, true},   // + kernel
      {true, true, false},    // subsets + stop
      {true, true, true},     // full TunIO + kernel
  };

  std::printf("  %-9s %-8s %-8s %-12s %-8s %-12s %s\n", "subsets", "RL-stop",
              "kernel", "best bw", "iters", "budget", "RoTI");
  for (const Row& row : rows) {
    auto objective = bench::bdcats_objective(row.kernel, 111);
    core::PipelineVariant variant{
        "ablation", row.subsets,
        row.rl_stop ? core::StopPolicy::kTunio : core::StopPolicy::kNone};
    const auto run =
        core::run_pipeline(space, *objective, tunio.get(), variant, ga);
    std::printf("  %-9s %-8s %-8s %-12s %-8u %-12s %.1f\n",
                row.subsets ? "yes" : "-", row.rl_stop ? "yes" : "-",
                row.kernel ? "yes" : "-",
                bench::fmt_bw(run.result.best_perf).c_str(),
                run.result.generations_run,
                bench::fmt_min(run.result.total_seconds / 60.0).c_str(),
                core::final_roti(run.result));
    const std::string tag = std::string(row.subsets ? "s" : "x") +
                            (row.rl_stop ? "r" : "x") +
                            (row.kernel ? "k" : "x");
    bench::value("tuned_mbps_" + tag, run.result.best_perf, "MB/s",
                 /*gate=*/true);
    bench::value("budget_min_" + tag, run.result.total_seconds / 60.0, "min",
                 /*gate=*/true, bench::Direction::kLowerIsBetter);
  }

  std::printf("\nReading the table: RL stopping slashes the budget at near-"
              "equal bandwidth; subsets mainly accelerate the early "
              "iterations; kernels divide every evaluation's cost. The "
              "full stack compounds all three, as in Fig. 11.\n");
  return bench::finish();
}
