#include "common.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tunio::bench {

namespace {

struct RecordedValue {
  std::string name;
  double value = 0.0;
  std::string unit;
  bool gate = false;
  Direction direction = Direction::kHigherIsBetter;
};

struct RecordedSummary {
  std::string metric;
  std::string measured;
  std::string paper;
};

struct Report {
  std::string bench;
  std::string tuner_backend = "ga";
  bool json = false;
  std::string path;
  std::chrono::steady_clock::time_point started;
  std::vector<RecordedValue> values;
  std::vector<RecordedSummary> summaries;
};

#ifndef TUNIO_GIT_SHA
#define TUNIO_GIT_SHA "unknown"
#endif

Report g_report;

}  // namespace

void init(int argc, char** argv, const std::string& name) {
  g_report = {};
  g_report.bench = name;
  g_report.path = "BENCH_" + name + ".json";
  g_report.started = std::chrono::steady_clock::now();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      g_report.json = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      g_report.json = true;
      g_report.path = arg + 7;
    }
  }
}

void set_tuner_backend(const std::string& backend) {
  g_report.tuner_backend = backend;
}

void value(const std::string& name, double v, const std::string& unit,
           bool gate, Direction direction) {
  g_report.values.push_back({name, v, unit, gate, direction});
}

int finish(int rc) {
  if (!g_report.json) return rc;
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_report.started)
          .count();

  obs::Json values = obs::Json::array();
  for (const RecordedValue& v : g_report.values) {
    obs::Json row = obs::Json::object();
    row.set("name", obs::Json::string(v.name));
    row.set("value", obs::Json::number(v.value));
    row.set("unit", obs::Json::string(v.unit));
    row.set("gate", obs::Json::boolean(v.gate));
    row.set("direction",
            obs::Json::string(v.direction == Direction::kHigherIsBetter
                                  ? "higher_is_better"
                                  : "lower_is_better"));
    values.push_back(std::move(row));
  }

  obs::Json summaries = obs::Json::array();
  for (const RecordedSummary& s : g_report.summaries) {
    obs::Json row = obs::Json::object();
    row.set("metric", obs::Json::string(s.metric));
    row.set("measured", obs::Json::string(s.measured));
    row.set("paper", obs::Json::string(s.paper));
    summaries.push_back(std::move(row));
  }

  obs::Json meta = obs::Json::object();
  meta.set("git_sha", obs::Json::string(TUNIO_GIT_SHA));
  meta.set("tuner_backend", obs::Json::string(g_report.tuner_backend));

  obs::Json doc = obs::Json::object();
  doc.set("schema", obs::Json::string("tunio.bench.v1"));
  doc.set("bench", obs::Json::string(g_report.bench));
  doc.set("meta", std::move(meta));
  doc.set("exit_code", obs::Json::number(rc));
  doc.set("wall_seconds", obs::Json::number(wall_seconds));
  doc.set("values", std::move(values));
  doc.set("summaries", std::move(summaries));
  doc.set("metrics", obs::MetricsRegistry::global().snapshot().to_json());

  std::FILE* out = std::fopen(g_report.path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", g_report.path.c_str());
    return rc == 0 ? 1 : rc;
  }
  const std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("\n[json] wrote %s\n", g_report.path.c_str());
  return rc;
}

void banner(const std::string& figure, const std::string& title,
            const std::string& paper_says) {
  std::printf("\n");
  std::printf("=================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("=================================================================\n");
  std::printf("Paper reports: %s\n\n", paper_says.c_str());
}

void summary(const std::string& metric, const std::string& measured,
             const std::string& paper) {
  std::printf("  %-46s measured: %-18s paper: %s\n", metric.c_str(),
              measured.c_str(), paper.c_str());
  g_report.summaries.push_back({metric, measured, paper});
}

void section(const std::string& heading) {
  std::printf("\n--- %s ---\n", heading.c_str());
}

tuner::TestbedOptions paper_testbed(std::uint64_t seed) {
  tuner::TestbedOptions tb;
  tb.num_ranks = 128;  // 4 Haswell nodes x 32 ranks
  tb.runs_per_eval = 3;  // "each application run is performed 3 times"
  tb.measurement_noise = 0.02;
  tb.seed = seed;
  return tb;
}

wl::HaccParams paper_hacc() {
  wl::HaccParams p;
  // ~1.2 GiB per rank (152 GiB checkpoint at 128 ranks): one untuned run
  // costs ~1 simulated minute, so a 50-generation budget lands near the
  // paper's ~800 tuning minutes.
  p.particles_per_rank = 1ull << 25;
  p.compute_seconds_per_step = 30.0;
  return p;
}

wl::FlashParams paper_flash() {
  wl::FlashParams p;
  p.blocks_per_rank = 16;
  p.checkpoint_datasets = 12;
  p.block_bytes = 384 * KiB;
  p.compute_seconds_per_step = 20.0;
  return p;
}

wl::VpicParams paper_vpic() {
  wl::VpicParams p;
  p.particles_per_rank = 1ull << 23;
  p.timesteps = 2;
  p.compute_seconds_per_step = 25.0;
  return p;
}

wl::MacsioParams paper_macsio() {
  wl::MacsioParams p;
  p.num_dumps = 10;
  p.bytes_per_rank_per_dump = 64 * MiB;
  p.part_bytes = 8 * MiB;
  p.compute_seconds_per_dump = 2.0;  // VPIC Dipole compute:I/O baseline
  p.log_writes_per_dump = 256;
  return p;
}

wl::BdcatsParams paper_bdcats() {
  wl::BdcatsParams p;
  // Read-heavy: each clustering round re-streams ~100 GiB of coordinates.
  p.particles_per_rank = 1ull << 26;
  p.variables = 3;
  p.clustering_rounds = 4;
  p.compute_seconds_per_round = 45.0;
  p.result_bytes_per_rank = 1 * MiB;
  return p;
}

wl::RunOptions kernel_options() {
  wl::RunOptions options;
  options.compute_scale = 0.0;
  options.include_log_writes = false;
  return options;
}

tuner::GaOptions paper_ga(std::uint64_t seed) {
  tuner::GaOptions ga;
  ga.population = 16;
  ga.max_generations = 50;
  ga.seed = seed;
  return ga;
}

std::unique_ptr<tuner::Objective> hacc_objective(bool as_kernel,
                                                 std::uint64_t seed) {
  return tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc(paper_hacc())),
      paper_testbed(seed), as_kernel ? kernel_options() : wl::RunOptions{});
}

std::unique_ptr<tuner::Objective> flash_objective(bool as_kernel,
                                                  std::uint64_t seed) {
  return tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_flash(paper_flash())),
      paper_testbed(seed), as_kernel ? kernel_options() : wl::RunOptions{});
}

std::unique_ptr<tuner::Objective> vpic_objective(bool as_kernel,
                                                 std::uint64_t seed) {
  return tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_vpic(paper_vpic())),
      paper_testbed(seed), as_kernel ? kernel_options() : wl::RunOptions{});
}

std::unique_ptr<tuner::Objective> bdcats_objective(bool as_kernel,
                                                   std::uint64_t seed) {
  return tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_bdcats(paper_bdcats())),
      paper_testbed(seed), as_kernel ? kernel_options() : wl::RunOptions{});
}

std::unique_ptr<core::TunIO> trained_tunio(const cfg::ConfigSpace& space) {
  auto tunio = std::make_unique<core::TunIO>(space);
  std::printf("[offline] sweeping representative kernels (VPIC, FLASH, "
              "HACC) + PCA; training early-stop agent on synthetic log "
              "curves...\n");
  // Sweeps use 1 run per eval: the offline phase is exploratory.
  tuner::TestbedOptions tb = paper_testbed(0xAB);
  tb.runs_per_eval = 1;
  auto vpic = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_vpic(paper_vpic())), tb,
      kernel_options());
  auto flash = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_flash(paper_flash())), tb,
      kernel_options());
  auto hacc = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc(paper_hacc())), tb,
      kernel_options());
  tunio->train_offline({vpic.get(), flash.get(), hacc.get()});

  std::printf("[offline] impact ranking:");
  const auto& impact = tunio->smart_config().impact_scores();
  for (std::size_t p : tunio->smart_config().ranking()) {
    std::printf(" %s(%.2f)", space.parameter(p).name.c_str(), impact[p]);
  }
  std::printf("\n\n");
  return tunio;
}

void print_curve(const std::string& label, const tuner::TuningResult& result,
                 unsigned stride) {
  std::printf("%s (initial %s):\n", label.c_str(),
              fmt_bw(result.initial_perf).c_str());
  std::printf("  %-10s %-14s %-12s %s\n", "iteration", "best-bw", "minutes",
              "subset");
  for (const tuner::GenerationStats& gen : result.history) {
    if (gen.generation % stride != 0 &&
        gen.generation + 1 != result.history.size()) {
      continue;
    }
    const std::string subset =
        gen.subset.empty() ? "all" : std::to_string(gen.subset.size());
    std::printf("  %-10u %-14s %-12s %s\n", gen.generation,
                fmt_bw(gen.best_perf).c_str(),
                fmt_min(gen.cumulative_seconds / 60.0).c_str(),
                subset.c_str());
  }
  std::printf("  -> best %s after %u iterations, %s of tuning%s\n",
              fmt_bw(result.best_perf).c_str(), result.generations_run,
              fmt_min(result.total_seconds / 60.0).c_str(),
              result.early_stopped ? " (early-stopped)" : "");
}

void print_roti_curve(const std::string& label,
                      const tuner::TuningResult& result, unsigned stride) {
  const auto curve = core::roti_curve(result);
  std::printf("%s RoTI curve:\n", label.c_str());
  std::printf("  %-10s %-12s %s\n", "iteration", "minutes", "RoTI (MB/s/min)");
  for (const core::RotiPoint& point : curve) {
    if (point.generation % stride != 0 &&
        point.generation + 1 != curve.size()) {
      continue;
    }
    std::printf("  %-10u %-12s %.2f\n", point.generation,
                fmt_min(point.minutes).c_str(), point.roti);
  }
}

std::string fmt_bw(double mbps) {
  char buf[64];
  if (mbps >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", mbps / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f MB/s", mbps);
  }
  return buf;
}

std::string fmt_min(double minutes) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f min", minutes);
  return buf;
}

}  // namespace tunio::bench
