// Figure 8(a): Return on Tuning Investment with and without Application
// I/O Discovery.
//
// "We ran the tuning pipeline on two versions of MACSio: one which was
// reduced to its I/O kernel by the Application I/O Discovery component
// and one which was not. ... the peak RoTI is 2.87 compared to the 2.47
// peak RoTI of the regular application ... The overall time to reach
// peak RoTI is reduced from 639 minutes to 549, a 14% decrease."
//
// Both versions are real programs: the full MACSio mini-C source and the
// kernel that discovery extracts from it, executed by the interpreter on
// the simulated stack inside the GA's fitness function.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "discovery/discovery.hpp"
#include "minic/parser.hpp"
#include "workloads/sources.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig08a_io_discovery");
  bench::banner("Figure 8(a)", "RoTI with vs without I/O Discovery (MACSio)",
                "peak RoTI 2.87 (kernel) vs 2.47 (full app); time to peak "
                "RoTI 549 vs 639 min (-14%)");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const std::string source = wl::sources::macsio_vpic();

  const auto kernel = discovery::discover_io(source, {});
  std::printf("I/O Discovery kept %d of %d statements (compute, "
              "diagnostics and logging stripped)\n\n",
              kernel.kept_statements, kernel.total_statements);

  // Genetic search has run-to-run variance on this entangled space;
  // average over several GA seeds (the curves shown are the median run).
  const std::uint64_t seeds[] = {8, 28, 48};
  std::vector<tuner::TuningResult> full_runs, kernel_runs;
  for (std::uint64_t seed : seeds) {
    tuner::TestbedOptions tb = bench::paper_testbed(80 + seed);
    tuner::GaOptions ga = bench::paper_ga(seed);
    ga.max_generations = 30;
    auto full_objective =
        tuner::make_kernel_objective(minic::parse(source), tb);
    auto kernel_objective = tuner::make_kernel_objective(kernel.kernel, tb);
    full_runs.push_back(
        core::run_pipeline(space, *full_objective, nullptr,
                           {"full app", false, core::StopPolicy::kNone}, ga)
            .result);
    kernel_runs.push_back(
        core::run_pipeline(space, *kernel_objective, nullptr,
                           {"I/O kernel", false, core::StopPolicy::kNone}, ga)
            .result);
  }
  auto median_run = [](std::vector<tuner::TuningResult>& runs)
      -> tuner::TuningResult& {
    std::sort(runs.begin(), runs.end(),
              [](const tuner::TuningResult& a, const tuner::TuningResult& b) {
                return a.best_perf < b.best_perf;
              });
    return runs[runs.size() / 2];
  };
  const tuner::TuningResult& full_run_result = median_run(full_runs);
  const tuner::TuningResult& kernel_run_result = median_run(kernel_runs);

  bench::section("tuning the full application (median of 3 GA seeds)");
  bench::print_roti_curve("full application", full_run_result, 3);
  bench::section("tuning the I/O kernel (median of 3 GA seeds)");
  bench::print_roti_curve("I/O kernel", kernel_run_result, 3);

  auto mean_peak = [](const std::vector<tuner::TuningResult>& runs) {
    core::RotiPoint mean;
    for (const auto& run : runs) {
      const core::RotiPoint peak = core::peak_roti(run);
      mean.roti += peak.roti / runs.size();
      mean.minutes += peak.minutes / runs.size();
    }
    return mean;
  };
  const core::RotiPoint full_peak = mean_peak(full_runs);
  const core::RotiPoint kernel_peak = mean_peak(kernel_runs);
  const auto& full_run = full_run_result;    // for the summary below
  const auto& kernel_run = kernel_run_result;

  bench::section("summary vs paper");
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2f vs %.2f MB/s/min", kernel_peak.roti,
                full_peak.roti);
  bench::summary("peak RoTI (kernel vs full)", buf, "2.87 vs 2.47");
  std::snprintf(buf, sizeof buf, "%.0f vs %.0f min (%.0f%% less)",
                kernel_peak.minutes, full_peak.minutes,
                100.0 * (1.0 - kernel_peak.minutes /
                                   std::max(1e-9, full_peak.minutes)));
  bench::summary("time to peak RoTI", buf, "549 vs 639 min (-14%)");
  std::snprintf(buf, sizeof buf, "%s vs %s",
                bench::fmt_bw(kernel_run.best_perf).c_str(),
                bench::fmt_bw(full_run.best_perf).c_str());
  bench::summary("tuned bandwidth (kernel vs full)", buf,
                 "same performance gain");

  bench::value("kernel_peak_roti", kernel_peak.roti, "MB/s/min",
               /*gate=*/true);
  bench::value("full_peak_roti", full_peak.roti, "MB/s/min", /*gate=*/true);
  bench::value("kernel_time_to_peak_min", kernel_peak.minutes, "min",
               /*gate=*/true, bench::Direction::kLowerIsBetter);
  bench::value("kernel_tuned_mbps", kernel_run.best_perf, "MB/s",
               /*gate=*/true);
  bench::value("full_tuned_mbps", full_run.best_perf, "MB/s", /*gate=*/true);
  return bench::finish();
}
