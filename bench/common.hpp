// Shared infrastructure for the figure-reproduction benches.
//
// Every bench regenerates one table/figure of the paper's evaluation
// (§IV) on the simulated testbed and prints (a) the series/rows the
// paper plots and (b) a paper-vs-measured summary. Absolute numbers
// differ from Cori — the substrate is a simulator — but the shapes
// (who wins, by roughly what factor, where crossovers fall) are the
// reproduction target.
//
// All benches share one "testbed": 4 nodes / 128 processes (the paper's
// component-evaluation rig) with paper-scale workload sizes, so tuning
// budgets land in the hundreds-of-minutes regime the paper reports.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/roti.hpp"
#include "core/tunio.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

namespace tunio::bench {

/// Which way a gated value regresses (for the CI perf gate).
enum class Direction { kHigherIsBetter, kLowerIsBetter };

/// Initializes the shared bench harness. Recognizes `--json[=path]`:
/// when present, `finish()` writes a schema-stable `BENCH_<name>.json`
/// (default path: current directory) with every `value()` recorded, the
/// `summary()` rows, wall/simulated time and a metrics-registry
/// snapshot. Call first in every bench main.
void init(int argc, char** argv, const std::string& name);

/// Declares which tuner backend the bench exercises (default "ga").
/// Recorded in the report's `meta` object; benches racing several
/// backends should set the combined label (e.g. "ga+bo+rule+random").
void set_tuner_backend(const std::string& backend);

/// Records one named numeric result. Gated values (`gate = true`) are
/// compared against `bench/baselines/BENCH_<name>.json` by the CI perf
/// gate; only deterministic simulated metrics should be gated — never
/// wall-clock readings, which vary across runners.
void value(const std::string& name, double v, const std::string& unit,
           bool gate = false,
           Direction direction = Direction::kHigherIsBetter);

/// Finishes the bench: writes the JSON report when `--json` was given.
/// Returns `rc` so mains can `return bench::finish(rc);`.
int finish(int rc = 0);

/// Prints the figure banner: id, title, what the paper reports.
void banner(const std::string& figure, const std::string& title,
            const std::string& paper_says);

/// Prints a one-line measured-vs-paper comparison row (also recorded in
/// the JSON report).
void summary(const std::string& metric, const std::string& measured,
             const std::string& paper);

/// Section separator.
void section(const std::string& heading);

/// The 4-node / 128-process component-evaluation testbed.
tuner::TestbedOptions paper_testbed(std::uint64_t seed = 0xC0FFEE);

/// Paper-scale workload parameter sets (sized so one evaluation costs
/// minutes of *simulated* time, as on Cori; CPU cost is unaffected).
wl::HaccParams paper_hacc();
wl::FlashParams paper_flash();
wl::VpicParams paper_vpic();
wl::MacsioParams paper_macsio();
wl::BdcatsParams paper_bdcats();

/// I/O-kernel run options (compute stripped).
wl::RunOptions kernel_options();

/// Standard GA options for the figure experiments.
tuner::GaOptions paper_ga(std::uint64_t seed = 0x5EED);

/// Objective over a paper-scale workload. `as_kernel` strips compute.
std::unique_ptr<tuner::Objective> hacc_objective(bool as_kernel = true,
                                                 std::uint64_t seed = 1);
std::unique_ptr<tuner::Objective> flash_objective(bool as_kernel = true,
                                                  std::uint64_t seed = 2);
std::unique_ptr<tuner::Objective> vpic_objective(bool as_kernel = true,
                                                 std::uint64_t seed = 3);
std::unique_ptr<tuner::Objective> bdcats_objective(bool as_kernel = false,
                                                   std::uint64_t seed = 4);

/// A TunIO instance offline-trained on the VPIC/FLASH/HACC sweep kernels
/// (§III-C/D). Prints a short training report.
std::unique_ptr<core::TunIO> trained_tunio(const cfg::ConfigSpace& space);

/// Prints a tuning curve as "iteration, best bandwidth, minutes" rows.
void print_curve(const std::string& label, const tuner::TuningResult& result,
                 unsigned stride = 1);

/// Prints the RoTI curve of a run.
void print_roti_curve(const std::string& label,
                      const tuner::TuningResult& result, unsigned stride = 1);

/// Formats MB/s with unit scaling.
std::string fmt_bw(double mbps);
std::string fmt_min(double minutes);

}  // namespace tunio::bench
