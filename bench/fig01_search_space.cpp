// Figure 1: user-level parameter permutations of HPC I/O libraries.
//
// "These are calculated utilizing a lower bound of two values for
// discrete parameters and five for continuous parameters. ... a stack
// that includes HDF5 and MPI would have 3.81 × 10²¹ parameter value
// permutations."
#include <cstdio>

#include "common.hpp"
#include "config/inventory.hpp"
#include "config/space.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig01_search_space");
  bench::banner("Figure 1", "I/O library parameter permutations",
                "HDF5+MPI stack ~3.81e21 permutations; multilayer tuning "
                "explodes the search space");

  const auto libs = cfg::figure1_inventories();
  std::printf("  %-24s %10s %10s %10s %16s\n", "library", "binary",
              "ternary", "contin.", "permutations");
  for (const auto& lib : libs) {
    std::printf("  %-24s %10u %10u %10u %16.3e\n", lib.name.c_str(),
                lib.binary_params, lib.ternary_params, lib.continuous_params,
                lib.permutations());
  }

  bench::section("composed stacks");
  auto find = [&](const std::string& name) {
    for (const auto& lib : libs) {
      if (lib.name.rfind(name, 0) == 0) return lib;
    }
    throw Error("missing library: " + name);
  };
  struct StackRow {
    std::string label;
    std::vector<cfg::LibraryInventory> members;
  };
  const std::vector<StackRow> stacks = {
      {"HDF5 + MPI", {find("HDF5"), find("MPI")}},
      {"PNetCDF + MPI", {find("PNetCDF"), find("MPI")}},
      {"ADIOS + MPI", {find("ADIOS"), find("MPI")}},
      {"HDF5 + MPI + Lustre", {find("HDF5"), find("MPI"), find("Lustre")}},
      {"Hermes + MPI", {find("Hermes"), find("MPI")}},
  };
  for (const auto& stack : stacks) {
    std::printf("  %-24s %52.3e\n", stack.label.c_str(),
                cfg::stack_permutations(stack.members));
  }

  bench::section("the tuned subset of this paper (§IV)");
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  std::printf("  12 parameters across HDF5 + MPI-IO + Lustre: %.4g "
              "permutations\n",
              space.permutations());

  bench::section("summary vs paper");
  char measured[64];
  std::snprintf(measured, sizeof measured, "%.2e",
                cfg::stack_permutations({find("HDF5"), find("MPI")}));
  bench::summary("HDF5+MPI permutations", measured, "3.81e21");
  std::snprintf(measured, sizeof measured, "%.3g", space.permutations());
  bench::summary("12-parameter evaluation space", measured, ">2.18e9");

  bench::value("hdf5_mpi_permutations",
               cfg::stack_permutations({find("HDF5"), find("MPI")}),
               "configs", /*gate=*/true);
  bench::value("tunio12_permutations", space.permutations(), "configs",
               /*gate=*/true);
  return bench::finish();
}
