// Figure 2: I/O bandwidth of HACC, FLASH and VPIC I/O kernels across
// HSTuner tuning iterations.
//
// "Application performance in tuning follows a logarithmic curve, where
// performance improvements attenuate as tuning proceeds" — the
// motivation for early stopping.
#include <cstdio>

#include "common.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig02_tuning_curves");
  bench::banner("Figure 2", "HSTuner tuning curves (HACC, FLASH, VPIC)",
                "bandwidth rises steeply in early iterations and "
                "plateaus — a log-shaped curve for every kernel");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  struct Row {
    const char* label;
    std::unique_ptr<tuner::Objective> objective;
  };
  Row rows[] = {
      {"HACC-IO", bench::hacc_objective(true, 21)},
      {"FLASH-IO", bench::flash_objective(true, 22)},
      {"VPIC-IO", bench::vpic_objective(true, 23)},
  };

  for (Row& row : rows) {
    bench::section(row.label);
    const auto run = core::run_pipeline(
        space, *row.objective, nullptr,
        {row.label, false, core::StopPolicy::kNone}, bench::paper_ga(2));
    bench::print_curve(row.label, run.result, /*stride=*/5);

    // Log-curve check: most of the gain lands in the first half.
    const auto& history = run.result.history;
    const double total_gain =
        run.result.best_perf - run.result.initial_perf;
    const double half_gain =
        history[history.size() / 2].best_perf - run.result.initial_perf;
    std::printf("  gain captured by iteration %zu: %.0f%%\n",
                history.size() / 2,
                total_gain > 0 ? 100.0 * half_gain / total_gain : 0.0);

    bench::value(row.label + std::string("_tuned_mbps"),
                 run.result.best_perf, "MB/s", /*gate=*/true);
    bench::value(row.label + std::string("_budget_min"),
                 run.result.total_seconds / 60.0, "min", /*gate=*/true,
                 bench::Direction::kLowerIsBetter);
  }

  bench::section("summary vs paper");
  bench::summary("curve shape", "steep rise then plateau (see above)",
                 "logarithmic growth, attenuating returns");
  return bench::finish();
}
