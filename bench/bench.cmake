# Benchmark harness: one binary per table/figure of the paper's
# evaluation, plus google-benchmark micro-benchmarks of the substrates.

set(TUNIO_BENCH_LIBS
  tunio_core tunio_service tunio_tuner tunio_replay tunio_rl tunio_nn
  tunio_workloads tunio_interp tunio_discovery tunio_analysis tunio_minic
  tunio_config tunio_trace tunio_hdf5lite tunio_mpiio tunio_mpisim tunio_pfs
  tunio_obs tunio_common)

# Stamp reports with the source revision so a stray BENCH_*.json can be
# traced back to the tree that produced it. "unknown" outside a git
# checkout (tarball builds).
execute_process(
  COMMAND git rev-parse --short=12 HEAD
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  OUTPUT_VARIABLE TUNIO_GIT_SHA
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET)
if(NOT TUNIO_GIT_SHA)
  set(TUNIO_GIT_SHA "unknown")
endif()

add_library(tunio_bench_common STATIC ${CMAKE_SOURCE_DIR}/bench/common.cpp)
target_link_libraries(tunio_bench_common PUBLIC ${TUNIO_BENCH_LIBS} tunio_tuners)
target_include_directories(tunio_bench_common PUBLIC ${CMAKE_SOURCE_DIR}/bench)
target_compile_definitions(tunio_bench_common PRIVATE
  TUNIO_GIT_SHA="${TUNIO_GIT_SHA}")
set_target_properties(tunio_bench_common PROPERTIES
  ARCHIVE_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/lib)

function(tunio_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE tunio_bench_common)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

tunio_add_bench(fig01_search_space)
tunio_add_bench(fig02_tuning_curves)
tunio_add_bench(fig08a_io_discovery)
tunio_add_bench(fig08b_loop_reduction)
tunio_add_bench(fig08c_kernel_similarity)
tunio_add_bench(fig09_impact_first)
tunio_add_bench(fig10a_early_stop_bw)
tunio_add_bench(fig10b_early_stop_roti)
tunio_add_bench(fig11a_pipeline_bw)
tunio_add_bench(fig11b_pipeline_roti)
tunio_add_bench(fig12_viability)
tunio_add_bench(ablation_components)
tunio_add_bench(service_throughput)
tunio_add_bench(eval_fast_path)
tunio_add_bench(tuner_tournament)
tunio_add_bench(static_analysis)

# Micro-benchmarks (google-benchmark) for the substrates themselves. Uses
# a custom main (not benchmark_main) so `--json` produces the same
# BENCH_*.json reports as the figure benches.
add_executable(micro_substrates ${CMAKE_SOURCE_DIR}/bench/micro_substrates.cpp)
target_link_libraries(micro_substrates PRIVATE tunio_bench_common
  benchmark::benchmark)
set_target_properties(micro_substrates PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
