// Figure 11(a): end-to-end pipeline comparison on BD-CATS — tuning
// bandwidth and budgets across six pipeline variants.
//
// "By the 6th TunIO iteration, the application reaches its peak
// bandwidth at 88 GB/s. The RL-based Early Stopping component stops the
// tuning pipeline at the 9th iteration. ... [HSTuner] ends with the
// application using a large allocated tuning budget of 1750 minutes.
// TunIO, by contrast, only uses a tuning budget of ~468 minutes, an
// improvement of ~73%. H5Tuner without stop ... achieve[s] a better max
// bandwidth of 90.8 GB/s, but this 3% ... only after significant time.
// ... H5Tuner with Heuristic Stop ... uses ~538 minutes to achieve
// 47.7 GB/s."
#include <cstdio>

#include "common.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig11a_pipeline_bw");
  bench::banner("Figure 11(a)", "full pipeline on BD-CATS: bandwidth",
                "TunIO peaks by iter 6, stops at 9, ~468 min (-73% vs "
                "HSTuner's 1750); HSTuner no-stop edges out ~3% more "
                "bandwidth; heuristic stops low (47.7 GB/s at 538 min)");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto tunio = bench::trained_tunio(space);
  // Conservative GA (see fig10): the simulated surface converges faster
  // than Cori's, so discovery effort is stretched to mirror the paper's
  // iteration counts.
  tuner::GaOptions ga = bench::paper_ga(88);
  ga.mutation_prob = 0.05;
  ga.init_mutation_prob = 0.02;
  ga.tournament_size = 2;
  ga.crossover_prob = 0.6;

  struct VariantSpec {
    const char* label;
    bool kernel;  ///< evaluate the discovery-derived I/O kernel
    core::PipelineVariant variant;
  };
  const VariantSpec specs[] = {
      {"HSTuner (No Stop)", false,
       {"HSTuner NoStop", false, core::StopPolicy::kNone}},
      {"HSTuner (Heuristic Stop)", false,
       {"HSTuner Heuristic", false, core::StopPolicy::kHeuristic}},
      {"TunIO", false, {"TunIO", true, core::StopPolicy::kTunio}},
      {"HSTuner + I/O Kernel (No Stop)", true,
       {"HSTuner+K NoStop", false, core::StopPolicy::kNone}},
      {"HSTuner + I/O Kernel (Heuristic)", true,
       {"HSTuner+K Heuristic", false, core::StopPolicy::kHeuristic}},
      {"TunIO + I/O Kernel", true,
       {"TunIO+K", true, core::StopPolicy::kTunio}},
  };

  std::vector<core::PipelineRun> runs;
  for (const VariantSpec& spec : specs) {
    auto objective = bench::bdcats_objective(spec.kernel, 111);
    core::PipelineRun run = core::run_pipeline(
        space, *objective, tunio.get(), spec.variant, ga);
    run.label = spec.label;
    bench::section(spec.label);
    bench::print_curve(spec.label, run.result, 5);
    runs.push_back(std::move(run));
  }

  bench::section("comparison table");
  std::printf("  %-36s %-12s %-10s %-12s\n", "pipeline", "best bw", "iters",
              "budget");
  for (const core::PipelineRun& run : runs) {
    std::printf("  %-36s %-12s %-10u %-12s\n", run.label.c_str(),
                bench::fmt_bw(run.result.best_perf).c_str(),
                run.result.generations_run,
                bench::fmt_min(run.result.total_seconds / 60.0).c_str());
  }

  const auto& hstuner = runs[0].result;
  const auto& heuristic = runs[1].result;
  const auto& tunio_run = runs[2].result;

  bench::section("summary vs paper");
  char buf[128];
  std::snprintf(buf, sizeof buf, "%.0f vs %.0f min (%.0f%% less)",
                tunio_run.total_seconds / 60.0, hstuner.total_seconds / 60.0,
                100.0 * (1.0 - tunio_run.total_seconds /
                                   hstuner.total_seconds));
  bench::summary("TunIO vs HSTuner tuning budget", buf,
                 "468 vs 1750 min (-73%)");
  std::snprintf(buf, sizeof buf, "%.1f%% more bandwidth",
                100.0 * (hstuner.best_perf / tunio_run.best_perf - 1.0));
  bench::summary("HSTuner no-stop extra bandwidth over TunIO", buf, "~3%");
  std::snprintf(buf, sizeof buf, "%s in %.0f min",
                bench::fmt_bw(heuristic.best_perf).c_str(),
                heuristic.total_seconds / 60.0);
  bench::summary("HSTuner heuristic outcome", buf, "47.7 GB/s in 538 min");

  bench::value("tunio_tuned_mbps", tunio_run.best_perf, "MB/s",
               /*gate=*/true);
  bench::value("tunio_budget_min", tunio_run.total_seconds / 60.0, "min",
               /*gate=*/true, bench::Direction::kLowerIsBetter);
  bench::value("hstuner_tuned_mbps", hstuner.best_perf, "MB/s",
               /*gate=*/true);
  bench::value("hstuner_budget_min", hstuner.total_seconds / 60.0, "min");
  return bench::finish();
}
