// Figure 11(b): RoTI of the end-to-end pipelines on BD-CATS.
//
// "Compared to H5Tuner with Heuristic Stop, TunIO provides a higher RoTI
// of 215 compared to ... 41.6 ... a gain of 173.4 MB/s of I/O bandwidth
// ... for each minute of tuning overhead. ... using the I/O kernel ...
// TunIO achiev[es] an RoTI of 250 ... H5Tuner with Heuristic Stop [and
// the kernel] ... 91.6."
#include <cstdio>

#include "common.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig11b_pipeline_roti");
  bench::banner("Figure 11(b)", "full pipeline on BD-CATS: RoTI",
                "TunIO 215 vs heuristic 41.6 (+173.4 MB/s/min); with the "
                "I/O kernel: TunIO 250, heuristic 91.6");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto tunio = bench::trained_tunio(space);
  // Conservative GA (see fig10): the simulated surface converges faster
  // than Cori's, so discovery effort is stretched to mirror the paper's
  // iteration counts.
  tuner::GaOptions ga = bench::paper_ga(88);
  ga.mutation_prob = 0.05;
  ga.init_mutation_prob = 0.02;
  ga.tournament_size = 2;
  ga.crossover_prob = 0.6;

  struct VariantSpec {
    const char* label;
    bool kernel;
    core::PipelineVariant variant;
  };
  const VariantSpec specs[] = {
      {"HSTuner (Heuristic Stop)", false,
       {"HSTuner Heuristic", false, core::StopPolicy::kHeuristic}},
      {"TunIO", false, {"TunIO", true, core::StopPolicy::kTunio}},
      {"HSTuner + I/O Kernel (Heuristic)", true,
       {"HSTuner+K Heuristic", false, core::StopPolicy::kHeuristic}},
      {"TunIO + I/O Kernel", true,
       {"TunIO+K", true, core::StopPolicy::kTunio}},
  };

  std::vector<std::pair<std::string, double>> rotis;
  for (const VariantSpec& spec : specs) {
    auto objective = bench::bdcats_objective(spec.kernel, 111);
    core::PipelineRun run = core::run_pipeline(
        space, *objective, tunio.get(), spec.variant, ga);
    bench::section(spec.label);
    bench::print_roti_curve(spec.label, run.result, 2);
    rotis.emplace_back(spec.label, core::final_roti(run.result));
  }

  bench::section("final RoTI table");
  for (const auto& [label, roti] : rotis) {
    std::printf("  %-36s %.1f MB/s per tuning minute\n", label.c_str(), roti);
  }

  bench::section("summary vs paper");
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.1f vs %.1f", rotis[1].second,
                rotis[0].second);
  bench::summary("TunIO vs heuristic RoTI", buf, "215 vs 41.6");
  std::snprintf(buf, sizeof buf, "%.1f vs %.1f", rotis[3].second,
                rotis[2].second);
  bench::summary("with I/O kernel", buf, "250 vs 91.6");
  std::snprintf(buf, sizeof buf, "%.1f MB/s/min",
                rotis[1].second - rotis[0].second);
  bench::summary("TunIO gain over heuristic", buf, "173.4 MB/s/min");

  bench::value("tunio_roti", rotis[1].second, "MB/s/min", /*gate=*/true);
  bench::value("heuristic_roti", rotis[0].second, "MB/s/min", /*gate=*/true);
  bench::value("tunio_kernel_roti", rotis[3].second, "MB/s/min",
               /*gate=*/true);
  bench::value("heuristic_kernel_roti", rotis[2].second, "MB/s/min",
               /*gate=*/true);
  return bench::finish();
}
