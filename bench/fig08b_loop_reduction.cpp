// Figure 8(b): Return on Tuning Investment with loop reduction.
//
// "The loop reduction applied was to perform 1% of the iterations. ...
// it increases peak RoTI to 23.30, which is a very large boost over the
// 2.47 peak RoTI of the original application (over 9x). ... we found
// that the reported bandwidths, in this case, were 97.10% accurate."
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "workloads/sources.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig08b_loop_reduction");
  bench::banner("Figure 8(b)", "RoTI with loop reduction (1% of iterations)",
                "peak RoTI 23.30 vs 2.47 for the full application (>9x); "
                "reported bandwidths 97.10% accurate");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const std::string source = wl::sources::macsio_vpic();

  discovery::DiscoveryOptions reduce;
  reduce.loop_reduction = 0.01;  // 1% of the iterations
  const auto reduced = discovery::discover_io(source, reduce);
  std::printf("loop reduction divisor: %d (I/O loops run 1/%d of their "
              "iterations, metrics extrapolated back)\n\n",
              reduced.loop_reduction_divisor, reduced.loop_reduction_divisor);

  tuner::TestbedOptions tb = bench::paper_testbed(82);
  tuner::GaOptions ga = bench::paper_ga(8);
  ga.max_generations = 30;

  auto full_objective =
      tuner::make_kernel_objective(minic::parse(source), tb);
  auto reduced_objective = tuner::make_kernel_objective(reduced.kernel, tb);

  bench::section("tuning the full application");
  const auto full_run =
      core::run_pipeline(space, *full_objective, nullptr,
                         {"full app", false, core::StopPolicy::kNone}, ga);
  bench::print_roti_curve("full application", full_run.result, 5);

  bench::section("tuning the loop-reduced kernel");
  const auto reduced_run = core::run_pipeline(
      space, *reduced_objective, nullptr,
      {"reduced kernel", false, core::StopPolicy::kNone}, ga);
  bench::print_roti_curve("loop-reduced kernel", reduced_run.result, 5);

  // Bandwidth accuracy: the reduced kernel's measured objective vs the
  // full application's, under the default configuration.
  const cfg::StackSettings defaults =
      cfg::resolve(space.default_configuration());
  mpisim::MpiSim mpi_full(128);
  pfs::PfsSimulator fs_full;
  const auto full_probe = interp::execute(minic::parse(source), mpi_full,
                                          fs_full, defaults, {});
  mpisim::MpiSim mpi_red(128);
  pfs::PfsSimulator fs_red;
  const auto reduced_probe =
      interp::execute(reduced.kernel, mpi_red, fs_red, defaults, {});
  const double accuracy =
      100.0 * (1.0 - std::abs(reduced_probe.perf.perf_mbps -
                              full_probe.perf.perf_mbps) /
                         full_probe.perf.perf_mbps);

  const core::RotiPoint full_peak = core::peak_roti(full_run.result);
  const core::RotiPoint reduced_peak = core::peak_roti(reduced_run.result);

  bench::section("summary vs paper");
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2f vs %.2f (%.1fx)", reduced_peak.roti,
                full_peak.roti, reduced_peak.roti / full_peak.roti);
  bench::summary("peak RoTI (reduced vs full)", buf, "23.30 vs 2.47 (>9x)");
  std::snprintf(buf, sizeof buf, "%.2f%%", accuracy);
  bench::summary("reported-bandwidth accuracy", buf, "97.10%");

  bench::value("reduced_peak_roti", reduced_peak.roti, "MB/s/min",
               /*gate=*/true);
  bench::value("full_peak_roti", full_peak.roti, "MB/s/min", /*gate=*/true);
  bench::value("bandwidth_accuracy_pct", accuracy, "%", /*gate=*/true);
  return bench::finish();
}
