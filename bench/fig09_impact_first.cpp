// Figure 9: Impact-First tuning (Smart Configuration Generation) on the
// FLASH I/O kernel.
//
// "Impact-First Tuning reaches a bandwidth of 2.3 GB/s at tuning
// iteration 6, while No Impact-First Tuning reaches this bandwidth at
// iteration 43. This represents an improvement of 86.05% in the number
// of tuning iterations. ... The final configuration determined in tuning
// changes seven parameters from their default values."
#include <cstdio>

#include "common.hpp"

using namespace tunio;

int main(int argc, char** argv) {
  bench::init(argc, argv, "fig09_impact_first");
  bench::banner("Figure 9", "Impact-First tuning on the FLASH I/O kernel",
                "target bandwidth reached at iteration 6 vs 43 (-86.05% "
                "iterations); 7 of 12 parameters changed from defaults");

  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto tunio = bench::trained_tunio(space);

  tuner::GaOptions ga = bench::paper_ga(9);

  bench::section("No Impact-First (full 12-parameter space)");
  auto baseline_objective = bench::flash_objective(true, 91);
  const auto baseline = core::run_pipeline(
      space, *baseline_objective, nullptr,
      {"No Impact-First", false, core::StopPolicy::kNone}, ga);
  bench::print_curve("No Impact-First", baseline.result, 5);

  bench::section("Impact-First (Smart Configuration Generation)");
  auto impact_objective = bench::flash_objective(true, 91);
  const auto impact = core::run_pipeline(
      space, *impact_objective, tunio.get(),
      {"Impact-First", true, core::StopPolicy::kNone}, ga);
  bench::print_curve("Impact-First", impact.result, 2);

  // The comparison bandwidth: what both runs can reach (the smaller of
  // the two finals, discounted for noise).
  const double target =
      0.97 * std::min(baseline.result.best_perf, impact.result.best_perf);
  auto first_reaching = [&](const tuner::TuningResult& result) -> int {
    for (const auto& gen : result.history) {
      if (gen.best_perf >= target) return static_cast<int>(gen.generation);
    }
    return -1;
  };
  const int impact_iter = first_reaching(impact.result);
  const int baseline_iter = first_reaching(baseline.result);

  // How many parameters the best configuration moved off their defaults.
  int changed = 0;
  const cfg::Configuration defaults = space.default_configuration();
  for (std::size_t p = 0; p < space.num_parameters(); ++p) {
    if (impact.result.best_config->index(p) != defaults.index(p)) ++changed;
  }

  bench::section("summary vs paper");
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s at iter %d vs iter %d",
                bench::fmt_bw(target).c_str(), impact_iter, baseline_iter);
  bench::summary("target bandwidth reached", buf, "2.3 GB/s at 6 vs 43");
  if (impact_iter >= 0 && baseline_iter > 0) {
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  100.0 * (1.0 - static_cast<double>(impact_iter + 1) /
                                     (baseline_iter + 1)));
    bench::summary("iteration reduction", buf, "86.05%");
  }
  std::snprintf(buf, sizeof buf, "%d of 12", changed);
  bench::summary("parameters changed from defaults", buf, "7 of 12");

  bench::value("impact_first_target_iter", impact_iter, "iterations",
               /*gate=*/true, bench::Direction::kLowerIsBetter);
  bench::value("baseline_target_iter", baseline_iter, "iterations",
               /*gate=*/true, bench::Direction::kLowerIsBetter);
  bench::value("parameters_changed", changed, "params");
  return bench::finish();
}
