file(REMOVE_RECURSE
  "CMakeFiles/fig01_search_space.dir/bench/fig01_search_space.cpp.o"
  "CMakeFiles/fig01_search_space.dir/bench/fig01_search_space.cpp.o.d"
  "bench/fig01_search_space"
  "bench/fig01_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
