# Empty dependencies file for fig01_search_space.
# This may be replaced when dependencies are built.
