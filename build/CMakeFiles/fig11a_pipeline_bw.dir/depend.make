# Empty dependencies file for fig11a_pipeline_bw.
# This may be replaced when dependencies are built.
