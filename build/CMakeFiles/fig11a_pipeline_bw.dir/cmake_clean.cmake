file(REMOVE_RECURSE
  "CMakeFiles/fig11a_pipeline_bw.dir/bench/fig11a_pipeline_bw.cpp.o"
  "CMakeFiles/fig11a_pipeline_bw.dir/bench/fig11a_pipeline_bw.cpp.o.d"
  "bench/fig11a_pipeline_bw"
  "bench/fig11a_pipeline_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_pipeline_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
