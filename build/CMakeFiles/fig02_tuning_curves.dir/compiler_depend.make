# Empty compiler generated dependencies file for fig02_tuning_curves.
# This may be replaced when dependencies are built.
