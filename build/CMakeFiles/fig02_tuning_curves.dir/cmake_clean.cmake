file(REMOVE_RECURSE
  "CMakeFiles/fig02_tuning_curves.dir/bench/fig02_tuning_curves.cpp.o"
  "CMakeFiles/fig02_tuning_curves.dir/bench/fig02_tuning_curves.cpp.o.d"
  "bench/fig02_tuning_curves"
  "bench/fig02_tuning_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tuning_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
