# Empty compiler generated dependencies file for fig09_impact_first.
# This may be replaced when dependencies are built.
