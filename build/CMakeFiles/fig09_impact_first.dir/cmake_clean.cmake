file(REMOVE_RECURSE
  "CMakeFiles/fig09_impact_first.dir/bench/fig09_impact_first.cpp.o"
  "CMakeFiles/fig09_impact_first.dir/bench/fig09_impact_first.cpp.o.d"
  "bench/fig09_impact_first"
  "bench/fig09_impact_first.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_impact_first.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
