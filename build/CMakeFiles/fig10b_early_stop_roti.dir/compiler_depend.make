# Empty compiler generated dependencies file for fig10b_early_stop_roti.
# This may be replaced when dependencies are built.
