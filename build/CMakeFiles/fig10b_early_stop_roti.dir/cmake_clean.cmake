file(REMOVE_RECURSE
  "CMakeFiles/fig10b_early_stop_roti.dir/bench/fig10b_early_stop_roti.cpp.o"
  "CMakeFiles/fig10b_early_stop_roti.dir/bench/fig10b_early_stop_roti.cpp.o.d"
  "bench/fig10b_early_stop_roti"
  "bench/fig10b_early_stop_roti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_early_stop_roti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
