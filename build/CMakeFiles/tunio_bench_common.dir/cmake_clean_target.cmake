file(REMOVE_RECURSE
  "lib/libtunio_bench_common.a"
)
