file(REMOVE_RECURSE
  "CMakeFiles/tunio_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/tunio_bench_common.dir/bench/common.cpp.o.d"
  "lib/libtunio_bench_common.a"
  "lib/libtunio_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
