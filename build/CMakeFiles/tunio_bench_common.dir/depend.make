# Empty dependencies file for tunio_bench_common.
# This may be replaced when dependencies are built.
