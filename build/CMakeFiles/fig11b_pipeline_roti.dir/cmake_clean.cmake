file(REMOVE_RECURSE
  "CMakeFiles/fig11b_pipeline_roti.dir/bench/fig11b_pipeline_roti.cpp.o"
  "CMakeFiles/fig11b_pipeline_roti.dir/bench/fig11b_pipeline_roti.cpp.o.d"
  "bench/fig11b_pipeline_roti"
  "bench/fig11b_pipeline_roti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_pipeline_roti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
