# Empty compiler generated dependencies file for fig11b_pipeline_roti.
# This may be replaced when dependencies are built.
