file(REMOVE_RECURSE
  "CMakeFiles/ablation_components.dir/bench/ablation_components.cpp.o"
  "CMakeFiles/ablation_components.dir/bench/ablation_components.cpp.o.d"
  "bench/ablation_components"
  "bench/ablation_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
