# Empty dependencies file for fig10a_early_stop_bw.
# This may be replaced when dependencies are built.
