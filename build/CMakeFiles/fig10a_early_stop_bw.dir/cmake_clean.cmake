file(REMOVE_RECURSE
  "CMakeFiles/fig10a_early_stop_bw.dir/bench/fig10a_early_stop_bw.cpp.o"
  "CMakeFiles/fig10a_early_stop_bw.dir/bench/fig10a_early_stop_bw.cpp.o.d"
  "bench/fig10a_early_stop_bw"
  "bench/fig10a_early_stop_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_early_stop_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
