# Empty dependencies file for fig08b_loop_reduction.
# This may be replaced when dependencies are built.
