file(REMOVE_RECURSE
  "CMakeFiles/fig08b_loop_reduction.dir/bench/fig08b_loop_reduction.cpp.o"
  "CMakeFiles/fig08b_loop_reduction.dir/bench/fig08b_loop_reduction.cpp.o.d"
  "bench/fig08b_loop_reduction"
  "bench/fig08b_loop_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_loop_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
