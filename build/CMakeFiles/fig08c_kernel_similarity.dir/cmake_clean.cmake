file(REMOVE_RECURSE
  "CMakeFiles/fig08c_kernel_similarity.dir/bench/fig08c_kernel_similarity.cpp.o"
  "CMakeFiles/fig08c_kernel_similarity.dir/bench/fig08c_kernel_similarity.cpp.o.d"
  "bench/fig08c_kernel_similarity"
  "bench/fig08c_kernel_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08c_kernel_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
