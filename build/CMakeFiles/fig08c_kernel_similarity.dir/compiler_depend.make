# Empty compiler generated dependencies file for fig08c_kernel_similarity.
# This may be replaced when dependencies are built.
