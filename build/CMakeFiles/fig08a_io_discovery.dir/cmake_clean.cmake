file(REMOVE_RECURSE
  "CMakeFiles/fig08a_io_discovery.dir/bench/fig08a_io_discovery.cpp.o"
  "CMakeFiles/fig08a_io_discovery.dir/bench/fig08a_io_discovery.cpp.o.d"
  "bench/fig08a_io_discovery"
  "bench/fig08a_io_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_io_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
