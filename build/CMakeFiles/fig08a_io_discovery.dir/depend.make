# Empty dependencies file for fig08a_io_discovery.
# This may be replaced when dependencies are built.
