# Empty dependencies file for fig12_viability.
# This may be replaced when dependencies are built.
