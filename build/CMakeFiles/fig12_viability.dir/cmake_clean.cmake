file(REMOVE_RECURSE
  "CMakeFiles/fig12_viability.dir/bench/fig12_viability.cpp.o"
  "CMakeFiles/fig12_viability.dir/bench/fig12_viability.cpp.o.d"
  "bench/fig12_viability"
  "bench/fig12_viability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_viability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
