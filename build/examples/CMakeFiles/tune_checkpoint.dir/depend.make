# Empty dependencies file for tune_checkpoint.
# This may be replaced when dependencies are built.
