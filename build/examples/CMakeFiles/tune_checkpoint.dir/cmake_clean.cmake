file(REMOVE_RECURSE
  "CMakeFiles/tune_checkpoint.dir/tune_checkpoint.cpp.o"
  "CMakeFiles/tune_checkpoint.dir/tune_checkpoint.cpp.o.d"
  "tune_checkpoint"
  "tune_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
