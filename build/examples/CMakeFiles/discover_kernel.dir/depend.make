# Empty dependencies file for discover_kernel.
# This may be replaced when dependencies are built.
