file(REMOVE_RECURSE
  "CMakeFiles/discover_kernel.dir/discover_kernel.cpp.o"
  "CMakeFiles/discover_kernel.dir/discover_kernel.cpp.o.d"
  "discover_kernel"
  "discover_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
