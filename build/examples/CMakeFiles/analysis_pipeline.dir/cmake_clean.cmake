file(REMOVE_RECURSE
  "CMakeFiles/analysis_pipeline.dir/analysis_pipeline.cpp.o"
  "CMakeFiles/analysis_pipeline.dir/analysis_pipeline.cpp.o.d"
  "analysis_pipeline"
  "analysis_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
