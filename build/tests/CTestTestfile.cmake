# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_test[1]_include.cmake")
include("/root/repo/build/tests/mpiio_test[1]_include.cmake")
include("/root/repo/build/tests/hdf5lite_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/minic_test[1]_include.cmake")
include("/root/repo/build/tests/discovery_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
