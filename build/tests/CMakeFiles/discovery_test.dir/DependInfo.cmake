
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/discovery_test.cpp" "tests/CMakeFiles/discovery_test.dir/discovery_test.cpp.o" "gcc" "tests/CMakeFiles/discovery_test.dir/discovery_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tunio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/tunio_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/tunio_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tunio_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tunio_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/tunio_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/tunio_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/tunio_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/tunio_config.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tunio_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/tunio_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tunio_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/tunio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tunio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
