# Empty compiler generated dependencies file for tunio_interp.
# This may be replaced when dependencies are built.
