file(REMOVE_RECURSE
  "libtunio_interp.a"
)
