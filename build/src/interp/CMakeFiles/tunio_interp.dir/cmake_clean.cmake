file(REMOVE_RECURSE
  "CMakeFiles/tunio_interp.dir/interp.cpp.o"
  "CMakeFiles/tunio_interp.dir/interp.cpp.o.d"
  "libtunio_interp.a"
  "libtunio_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
