
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdf5lite/chunk_cache.cpp" "src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/chunk_cache.cpp.o" "gcc" "src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/chunk_cache.cpp.o.d"
  "/root/repo/src/hdf5lite/dataset.cpp" "src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/dataset.cpp.o" "gcc" "src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/dataset.cpp.o.d"
  "/root/repo/src/hdf5lite/file.cpp" "src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/file.cpp.o" "gcc" "src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/file.cpp.o.d"
  "/root/repo/src/hdf5lite/metadata.cpp" "src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/metadata.cpp.o" "gcc" "src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/metadata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tunio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/tunio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tunio_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/tunio_mpiio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
