file(REMOVE_RECURSE
  "libtunio_hdf5lite.a"
)
