file(REMOVE_RECURSE
  "CMakeFiles/tunio_hdf5lite.dir/chunk_cache.cpp.o"
  "CMakeFiles/tunio_hdf5lite.dir/chunk_cache.cpp.o.d"
  "CMakeFiles/tunio_hdf5lite.dir/dataset.cpp.o"
  "CMakeFiles/tunio_hdf5lite.dir/dataset.cpp.o.d"
  "CMakeFiles/tunio_hdf5lite.dir/file.cpp.o"
  "CMakeFiles/tunio_hdf5lite.dir/file.cpp.o.d"
  "CMakeFiles/tunio_hdf5lite.dir/metadata.cpp.o"
  "CMakeFiles/tunio_hdf5lite.dir/metadata.cpp.o.d"
  "libtunio_hdf5lite.a"
  "libtunio_hdf5lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_hdf5lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
