# Empty compiler generated dependencies file for tunio_hdf5lite.
# This may be replaced when dependencies are built.
