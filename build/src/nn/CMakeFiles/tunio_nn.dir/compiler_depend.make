# Empty compiler generated dependencies file for tunio_nn.
# This may be replaced when dependencies are built.
