
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dense_net.cpp" "src/nn/CMakeFiles/tunio_nn.dir/dense_net.cpp.o" "gcc" "src/nn/CMakeFiles/tunio_nn.dir/dense_net.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/tunio_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/tunio_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/pca.cpp" "src/nn/CMakeFiles/tunio_nn.dir/pca.cpp.o" "gcc" "src/nn/CMakeFiles/tunio_nn.dir/pca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tunio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
