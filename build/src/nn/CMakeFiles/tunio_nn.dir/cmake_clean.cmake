file(REMOVE_RECURSE
  "CMakeFiles/tunio_nn.dir/dense_net.cpp.o"
  "CMakeFiles/tunio_nn.dir/dense_net.cpp.o.d"
  "CMakeFiles/tunio_nn.dir/matrix.cpp.o"
  "CMakeFiles/tunio_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/tunio_nn.dir/pca.cpp.o"
  "CMakeFiles/tunio_nn.dir/pca.cpp.o.d"
  "libtunio_nn.a"
  "libtunio_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
