file(REMOVE_RECURSE
  "libtunio_nn.a"
)
