file(REMOVE_RECURSE
  "CMakeFiles/tunio_core.dir/early_stopping.cpp.o"
  "CMakeFiles/tunio_core.dir/early_stopping.cpp.o.d"
  "CMakeFiles/tunio_core.dir/pipeline.cpp.o"
  "CMakeFiles/tunio_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/tunio_core.dir/roti.cpp.o"
  "CMakeFiles/tunio_core.dir/roti.cpp.o.d"
  "CMakeFiles/tunio_core.dir/session.cpp.o"
  "CMakeFiles/tunio_core.dir/session.cpp.o.d"
  "CMakeFiles/tunio_core.dir/smart_config.cpp.o"
  "CMakeFiles/tunio_core.dir/smart_config.cpp.o.d"
  "CMakeFiles/tunio_core.dir/tunio.cpp.o"
  "CMakeFiles/tunio_core.dir/tunio.cpp.o.d"
  "libtunio_core.a"
  "libtunio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
