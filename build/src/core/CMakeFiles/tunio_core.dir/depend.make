# Empty dependencies file for tunio_core.
# This may be replaced when dependencies are built.
