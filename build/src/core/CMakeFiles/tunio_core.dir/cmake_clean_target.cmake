file(REMOVE_RECURSE
  "libtunio_core.a"
)
