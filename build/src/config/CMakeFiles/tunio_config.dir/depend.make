# Empty dependencies file for tunio_config.
# This may be replaced when dependencies are built.
