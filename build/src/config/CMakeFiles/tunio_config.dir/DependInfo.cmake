
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/inventory.cpp" "src/config/CMakeFiles/tunio_config.dir/inventory.cpp.o" "gcc" "src/config/CMakeFiles/tunio_config.dir/inventory.cpp.o.d"
  "/root/repo/src/config/space.cpp" "src/config/CMakeFiles/tunio_config.dir/space.cpp.o" "gcc" "src/config/CMakeFiles/tunio_config.dir/space.cpp.o.d"
  "/root/repo/src/config/stack_settings.cpp" "src/config/CMakeFiles/tunio_config.dir/stack_settings.cpp.o" "gcc" "src/config/CMakeFiles/tunio_config.dir/stack_settings.cpp.o.d"
  "/root/repo/src/config/xml.cpp" "src/config/CMakeFiles/tunio_config.dir/xml.cpp.o" "gcc" "src/config/CMakeFiles/tunio_config.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tunio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/tunio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/tunio_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tunio_mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
