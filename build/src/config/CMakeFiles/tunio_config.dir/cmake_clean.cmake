file(REMOVE_RECURSE
  "CMakeFiles/tunio_config.dir/inventory.cpp.o"
  "CMakeFiles/tunio_config.dir/inventory.cpp.o.d"
  "CMakeFiles/tunio_config.dir/space.cpp.o"
  "CMakeFiles/tunio_config.dir/space.cpp.o.d"
  "CMakeFiles/tunio_config.dir/stack_settings.cpp.o"
  "CMakeFiles/tunio_config.dir/stack_settings.cpp.o.d"
  "CMakeFiles/tunio_config.dir/xml.cpp.o"
  "CMakeFiles/tunio_config.dir/xml.cpp.o.d"
  "libtunio_config.a"
  "libtunio_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
