file(REMOVE_RECURSE
  "libtunio_config.a"
)
