
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/meter.cpp" "src/trace/CMakeFiles/tunio_trace.dir/meter.cpp.o" "gcc" "src/trace/CMakeFiles/tunio_trace.dir/meter.cpp.o.d"
  "/root/repo/src/trace/report.cpp" "src/trace/CMakeFiles/tunio_trace.dir/report.cpp.o" "gcc" "src/trace/CMakeFiles/tunio_trace.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tunio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/tunio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tunio_mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
