file(REMOVE_RECURSE
  "CMakeFiles/tunio_trace.dir/meter.cpp.o"
  "CMakeFiles/tunio_trace.dir/meter.cpp.o.d"
  "CMakeFiles/tunio_trace.dir/report.cpp.o"
  "CMakeFiles/tunio_trace.dir/report.cpp.o.d"
  "libtunio_trace.a"
  "libtunio_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
