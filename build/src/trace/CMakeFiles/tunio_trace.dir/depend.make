# Empty dependencies file for tunio_trace.
# This may be replaced when dependencies are built.
