file(REMOVE_RECURSE
  "libtunio_trace.a"
)
