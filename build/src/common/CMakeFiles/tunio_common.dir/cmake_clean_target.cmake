file(REMOVE_RECURSE
  "libtunio_common.a"
)
