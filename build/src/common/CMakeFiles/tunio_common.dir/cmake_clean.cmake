file(REMOVE_RECURSE
  "CMakeFiles/tunio_common.dir/error.cpp.o"
  "CMakeFiles/tunio_common.dir/error.cpp.o.d"
  "CMakeFiles/tunio_common.dir/rng.cpp.o"
  "CMakeFiles/tunio_common.dir/rng.cpp.o.d"
  "CMakeFiles/tunio_common.dir/stats.cpp.o"
  "CMakeFiles/tunio_common.dir/stats.cpp.o.d"
  "CMakeFiles/tunio_common.dir/timeline.cpp.o"
  "CMakeFiles/tunio_common.dir/timeline.cpp.o.d"
  "CMakeFiles/tunio_common.dir/units.cpp.o"
  "CMakeFiles/tunio_common.dir/units.cpp.o.d"
  "libtunio_common.a"
  "libtunio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
