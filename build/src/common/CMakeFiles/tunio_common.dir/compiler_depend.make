# Empty compiler generated dependencies file for tunio_common.
# This may be replaced when dependencies are built.
