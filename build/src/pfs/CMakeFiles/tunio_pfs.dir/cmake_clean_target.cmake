file(REMOVE_RECURSE
  "libtunio_pfs.a"
)
