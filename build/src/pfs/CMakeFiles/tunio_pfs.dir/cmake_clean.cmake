file(REMOVE_RECURSE
  "CMakeFiles/tunio_pfs.dir/layout.cpp.o"
  "CMakeFiles/tunio_pfs.dir/layout.cpp.o.d"
  "CMakeFiles/tunio_pfs.dir/pfs.cpp.o"
  "CMakeFiles/tunio_pfs.dir/pfs.cpp.o.d"
  "libtunio_pfs.a"
  "libtunio_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
