# Empty compiler generated dependencies file for tunio_pfs.
# This may be replaced when dependencies are built.
