file(REMOVE_RECURSE
  "CMakeFiles/tunio_minic.dir/lexer.cpp.o"
  "CMakeFiles/tunio_minic.dir/lexer.cpp.o.d"
  "CMakeFiles/tunio_minic.dir/parser.cpp.o"
  "CMakeFiles/tunio_minic.dir/parser.cpp.o.d"
  "CMakeFiles/tunio_minic.dir/printer.cpp.o"
  "CMakeFiles/tunio_minic.dir/printer.cpp.o.d"
  "libtunio_minic.a"
  "libtunio_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
