# Empty dependencies file for tunio_minic.
# This may be replaced when dependencies are built.
