file(REMOVE_RECURSE
  "libtunio_minic.a"
)
