
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/log_curve_env.cpp" "src/rl/CMakeFiles/tunio_rl.dir/log_curve_env.cpp.o" "gcc" "src/rl/CMakeFiles/tunio_rl.dir/log_curve_env.cpp.o.d"
  "/root/repo/src/rl/q_agent.cpp" "src/rl/CMakeFiles/tunio_rl.dir/q_agent.cpp.o" "gcc" "src/rl/CMakeFiles/tunio_rl.dir/q_agent.cpp.o.d"
  "/root/repo/src/rl/state_observer.cpp" "src/rl/CMakeFiles/tunio_rl.dir/state_observer.cpp.o" "gcc" "src/rl/CMakeFiles/tunio_rl.dir/state_observer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tunio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tunio_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
