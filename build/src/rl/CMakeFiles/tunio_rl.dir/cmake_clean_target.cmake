file(REMOVE_RECURSE
  "libtunio_rl.a"
)
