# Empty dependencies file for tunio_rl.
# This may be replaced when dependencies are built.
