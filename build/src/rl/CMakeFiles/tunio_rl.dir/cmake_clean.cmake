file(REMOVE_RECURSE
  "CMakeFiles/tunio_rl.dir/log_curve_env.cpp.o"
  "CMakeFiles/tunio_rl.dir/log_curve_env.cpp.o.d"
  "CMakeFiles/tunio_rl.dir/q_agent.cpp.o"
  "CMakeFiles/tunio_rl.dir/q_agent.cpp.o.d"
  "CMakeFiles/tunio_rl.dir/state_observer.cpp.o"
  "CMakeFiles/tunio_rl.dir/state_observer.cpp.o.d"
  "libtunio_rl.a"
  "libtunio_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
