# Empty dependencies file for tunio_mpisim.
# This may be replaced when dependencies are built.
