file(REMOVE_RECURSE
  "libtunio_mpisim.a"
)
