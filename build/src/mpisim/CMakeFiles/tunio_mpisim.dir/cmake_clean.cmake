file(REMOVE_RECURSE
  "CMakeFiles/tunio_mpisim.dir/mpisim.cpp.o"
  "CMakeFiles/tunio_mpisim.dir/mpisim.cpp.o.d"
  "libtunio_mpisim.a"
  "libtunio_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
