file(REMOVE_RECURSE
  "CMakeFiles/tunio_workloads.dir/bdcats.cpp.o"
  "CMakeFiles/tunio_workloads.dir/bdcats.cpp.o.d"
  "CMakeFiles/tunio_workloads.dir/flash.cpp.o"
  "CMakeFiles/tunio_workloads.dir/flash.cpp.o.d"
  "CMakeFiles/tunio_workloads.dir/hacc.cpp.o"
  "CMakeFiles/tunio_workloads.dir/hacc.cpp.o.d"
  "CMakeFiles/tunio_workloads.dir/macsio.cpp.o"
  "CMakeFiles/tunio_workloads.dir/macsio.cpp.o.d"
  "CMakeFiles/tunio_workloads.dir/sources.cpp.o"
  "CMakeFiles/tunio_workloads.dir/sources.cpp.o.d"
  "CMakeFiles/tunio_workloads.dir/vpic.cpp.o"
  "CMakeFiles/tunio_workloads.dir/vpic.cpp.o.d"
  "CMakeFiles/tunio_workloads.dir/workload.cpp.o"
  "CMakeFiles/tunio_workloads.dir/workload.cpp.o.d"
  "libtunio_workloads.a"
  "libtunio_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
