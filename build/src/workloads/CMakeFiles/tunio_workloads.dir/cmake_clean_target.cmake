file(REMOVE_RECURSE
  "libtunio_workloads.a"
)
