
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bdcats.cpp" "src/workloads/CMakeFiles/tunio_workloads.dir/bdcats.cpp.o" "gcc" "src/workloads/CMakeFiles/tunio_workloads.dir/bdcats.cpp.o.d"
  "/root/repo/src/workloads/flash.cpp" "src/workloads/CMakeFiles/tunio_workloads.dir/flash.cpp.o" "gcc" "src/workloads/CMakeFiles/tunio_workloads.dir/flash.cpp.o.d"
  "/root/repo/src/workloads/hacc.cpp" "src/workloads/CMakeFiles/tunio_workloads.dir/hacc.cpp.o" "gcc" "src/workloads/CMakeFiles/tunio_workloads.dir/hacc.cpp.o.d"
  "/root/repo/src/workloads/macsio.cpp" "src/workloads/CMakeFiles/tunio_workloads.dir/macsio.cpp.o" "gcc" "src/workloads/CMakeFiles/tunio_workloads.dir/macsio.cpp.o.d"
  "/root/repo/src/workloads/sources.cpp" "src/workloads/CMakeFiles/tunio_workloads.dir/sources.cpp.o" "gcc" "src/workloads/CMakeFiles/tunio_workloads.dir/sources.cpp.o.d"
  "/root/repo/src/workloads/vpic.cpp" "src/workloads/CMakeFiles/tunio_workloads.dir/vpic.cpp.o" "gcc" "src/workloads/CMakeFiles/tunio_workloads.dir/vpic.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/tunio_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/tunio_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tunio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/tunio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/tunio_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/tunio_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5lite/CMakeFiles/tunio_hdf5lite.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/tunio_config.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tunio_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
