# Empty compiler generated dependencies file for tunio_workloads.
# This may be replaced when dependencies are built.
