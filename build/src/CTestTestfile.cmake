# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("pfs")
subdirs("mpisim")
subdirs("mpiio")
subdirs("hdf5lite")
subdirs("config")
subdirs("trace")
subdirs("minic")
subdirs("discovery")
subdirs("interp")
subdirs("workloads")
subdirs("nn")
subdirs("rl")
subdirs("tuner")
subdirs("core")
