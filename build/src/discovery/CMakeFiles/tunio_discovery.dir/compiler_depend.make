# Empty compiler generated dependencies file for tunio_discovery.
# This may be replaced when dependencies are built.
