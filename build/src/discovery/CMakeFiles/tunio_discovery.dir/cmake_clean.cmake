file(REMOVE_RECURSE
  "CMakeFiles/tunio_discovery.dir/discovery.cpp.o"
  "CMakeFiles/tunio_discovery.dir/discovery.cpp.o.d"
  "libtunio_discovery.a"
  "libtunio_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
