file(REMOVE_RECURSE
  "libtunio_discovery.a"
)
