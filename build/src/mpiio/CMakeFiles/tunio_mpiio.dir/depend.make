# Empty dependencies file for tunio_mpiio.
# This may be replaced when dependencies are built.
