file(REMOVE_RECURSE
  "CMakeFiles/tunio_mpiio.dir/mpiio.cpp.o"
  "CMakeFiles/tunio_mpiio.dir/mpiio.cpp.o.d"
  "libtunio_mpiio.a"
  "libtunio_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
