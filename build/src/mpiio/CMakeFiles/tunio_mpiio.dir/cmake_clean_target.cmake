file(REMOVE_RECURSE
  "libtunio_mpiio.a"
)
