# Empty compiler generated dependencies file for tunio_tuner.
# This may be replaced when dependencies are built.
