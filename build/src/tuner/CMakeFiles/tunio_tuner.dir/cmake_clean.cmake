file(REMOVE_RECURSE
  "CMakeFiles/tunio_tuner.dir/genetic_tuner.cpp.o"
  "CMakeFiles/tunio_tuner.dir/genetic_tuner.cpp.o.d"
  "CMakeFiles/tunio_tuner.dir/objective.cpp.o"
  "CMakeFiles/tunio_tuner.dir/objective.cpp.o.d"
  "CMakeFiles/tunio_tuner.dir/stoppers.cpp.o"
  "CMakeFiles/tunio_tuner.dir/stoppers.cpp.o.d"
  "libtunio_tuner.a"
  "libtunio_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunio_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
