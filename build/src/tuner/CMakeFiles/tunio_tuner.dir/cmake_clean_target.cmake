file(REMOVE_RECURSE
  "libtunio_tuner.a"
)
