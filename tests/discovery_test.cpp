// Tests for Application I/O Discovery: the marking loop (I/O calls,
// dependents, backward slices, contextual parents), kernel
// reconstruction, loop reduction and I/O path switching.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/slicer.hpp"
#include "common/error.hpp"
#include "config/stack_settings.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "workloads/sources.hpp"

namespace tunio::discovery {
namespace {

/// The running example of the paper's Figure 5, adapted to mini-C: an
/// H5Dwrite inside a loop, with compute and diagnostics interleaved.
const char* kFigure5Like = R"(
int main()
{
  int dataset_id = 0;
  int file = h5fcreate("/scratch/out.h5");
  double temperature = 300.0;
  double pressure = 1.0;
  int data_ptr = 1024;
  int timesteps = 4;
  dataset_id = h5dcreate(file, "data", 8, data_ptr * timesteps * mpi_size());
  for (int t = 0; t < timesteps; t = t + 1)
  {
    temperature = temperature * 1.01;
    pressure = pressure + 0.1;
    compute(2.0);
    h5dwrite_strided(dataset_id, t, data_ptr);
    fprintf_log("/scratch/diag.log", 64);
  }
  h5dclose(dataset_id);
  h5fclose(file);
  return 0;
}
)";

TEST(Marking, KeepsIoCallsAndTheirDependents) {
  const minic::Program program = minic::parse(kFigure5Like);
  const std::set<int> kept = mark_kept(program, {"h5"});
  const std::string kernel = minic::print(
      program, [&](const minic::Stmt& s) { return kept.count(s.id) > 0; });
  // I/O calls and their dependency chain survive.
  EXPECT_NE(kernel.find("h5fcreate"), std::string::npos);
  EXPECT_NE(kernel.find("h5dcreate"), std::string::npos);
  EXPECT_NE(kernel.find("h5dwrite_strided"), std::string::npos);
  EXPECT_NE(kernel.find("int data_ptr = 1024;"), std::string::npos);
  EXPECT_NE(kernel.find("int dataset_id = 0;"), std::string::npos);
  EXPECT_NE(kernel.find("int timesteps = 4;"), std::string::npos);
  // The contextual parent (the for loop) survives with its header.
  EXPECT_NE(kernel.find("for (int t = 0; t < timesteps; t = t + 1)"),
            std::string::npos);
}

TEST(Marking, DropsComputeAndLogging) {
  const minic::Program program = minic::parse(kFigure5Like);
  const std::set<int> kept = mark_kept(program, {"h5"});
  const std::string kernel = minic::print(
      program, [&](const minic::Stmt& s) { return kept.count(s.id) > 0; });
  EXPECT_EQ(kernel.find("compute"), std::string::npos);
  EXPECT_EQ(kernel.find("fprintf_log"), std::string::npos);
  EXPECT_EQ(kernel.find("temperature"), std::string::npos);
  EXPECT_EQ(kernel.find("pressure"), std::string::npos);
}

TEST(Marking, BackwardSliceFollowsReassignments) {
  const minic::Program program = minic::parse(R"(
    int main()
    {
      int n = 10;
      n = n * 2;
      int unrelated = 99;
      unrelated = unrelated + 1;
      int file = h5fcreate("/f.h5");
      int ds = h5dcreate(file, "x", 4, n);
      h5dwrite_all(ds, n);
      h5fclose(file);
      return 0;
    }
  )");
  const std::set<int> kept = mark_kept(program, {"h5"});
  const std::string kernel = minic::print(
      program, [&](const minic::Stmt& s) { return kept.count(s.id) > 0; });
  // Both assignments of n (an I/O-call dependency) are kept...
  EXPECT_NE(kernel.find("int n = 10;"), std::string::npos);
  EXPECT_NE(kernel.find("n = n * 2;"), std::string::npos);
  // ...while the unrelated variable vanishes entirely.
  EXPECT_EQ(kernel.find("unrelated"), std::string::npos);
}

TEST(Marking, IfConditionIsDependent) {
  const minic::Program program = minic::parse(R"(
    int main()
    {
      int enabled = 1;
      int junk = 5;
      if (enabled > 0)
      {
        int f = h5fcreate("/f.h5");
        h5fclose(f);
      }
      return 0;
    }
  )");
  const std::set<int> kept = mark_kept(program, {"h5"});
  const std::string kernel = minic::print(
      program, [&](const minic::Stmt& s) { return kept.count(s.id) > 0; });
  EXPECT_NE(kernel.find("if (enabled > 0)"), std::string::npos);
  EXPECT_NE(kernel.find("int enabled = 1;"), std::string::npos);
  EXPECT_EQ(kernel.find("junk"), std::string::npos);
}

TEST(Marking, UserIoFunctionsPropagate) {
  const minic::Program program = minic::parse(R"(
    int dump(int n)
    {
      int f = h5fcreate("/f.h5");
      int ds = h5dcreate(f, "x", 4, n);
      h5dwrite_all(ds, n);
      h5fclose(f);
      return 0;
    }
    double science(double x)
    {
      return x * 2.0;
    }
    int main()
    {
      int n = 1000;
      double y = science(3.0);
      y = y + 1.0;
      dump(n);
      return 0;
    }
  )");
  KernelResult result = discover_io(program, {});
  // dump() transitively performs I/O: its call and body survive.
  EXPECT_NE(result.kernel_source.find("dump(n)"), std::string::npos);
  EXPECT_NE(result.kernel_source.find("h5dwrite_all"), std::string::npos);
  // science() is pure compute: the whole function disappears.
  EXPECT_EQ(result.kernel_source.find("science"), std::string::npos);
  EXPECT_EQ(result.kernel.find("science"), nullptr);
  EXPECT_NE(result.kernel.find("dump"), nullptr);
}

TEST(Discovery, StatementCountsAreReported) {
  KernelResult result = discover_io(std::string(kFigure5Like), {});
  EXPECT_GT(result.total_statements, result.kept_statements);
  EXPECT_GT(result.kept_statements, 0);
  EXPECT_EQ(result.loop_reduction_divisor, 1);
}

TEST(Discovery, KernelIsReparsableAndStable) {
  KernelResult result = discover_io(std::string(kFigure5Like), {});
  // The kernel source is valid mini-C and rediscovery is a fixpoint.
  KernelResult again = discover_io(result.kernel_source, {});
  EXPECT_EQ(again.kept_statements, result.kept_statements);
}

TEST(LoopReduction, RewritesIoLoopConditions) {
  DiscoveryOptions options;
  options.loop_reduction = 0.01;  // 1% of iterations, as in Fig. 8(b)
  KernelResult result = discover_io(std::string(kFigure5Like), options);
  EXPECT_EQ(result.loop_reduction_divisor, 100);
  EXPECT_NE(result.kernel_source.find("reduced_iters(timesteps, 100)"),
            std::string::npos);
}

TEST(LoopReduction, LeavesNonIoLoopsAlone) {
  DiscoveryOptions options;
  options.loop_reduction = 0.1;
  // keep the compute loop via manual keep? No: non-I/O loops are dropped
  // by marking anyway; craft a kernel where a kept loop has no I/O.
  const char* source = R"(
    int main()
    {
      int n = 8;
      int f = h5fcreate("/f.h5");
      for (int i = 0; i < n; i = i + 1)
      {
        n = n + 0;
      }
      int ds = h5dcreate(f, "x", 4, n);
      h5dwrite_all(ds, n);
      h5fclose(f);
      return 0;
    }
  )";
  KernelResult result = discover_io(std::string(source), options);
  // The loop assigning n is kept (backward slice) but contains no I/O,
  // so its bound is untouched.
  EXPECT_NE(result.kernel_source.find("i < n"), std::string::npos);
  EXPECT_EQ(result.kernel_source.find("reduced_iters(n"), std::string::npos);
}

TEST(LoopReduction, RejectsBadFraction) {
  DiscoveryOptions options;
  options.loop_reduction = 0.0;
  EXPECT_THROW(discover_io(std::string(kFigure5Like), options), Error);
}

TEST(PathSwitching, RedirectsAllPathLiterals) {
  DiscoveryOptions options;
  options.path_switching = true;
  KernelResult result = discover_io(std::string(kFigure5Like), options);
  EXPECT_NE(result.kernel_source.find("\"/shm/scratch/out.h5\""),
            std::string::npos);
  // Applying twice does not double the prefix.
  KernelResult twice = discover_io(result.kernel_source, options);
  EXPECT_EQ(twice.kernel_source.find("/shm/shm"), std::string::npos);
}

TEST(PathSwitching, RedirectsPathsBuiltInVariables) {
  DiscoveryOptions options;
  options.path_switching = true;
  const char* source = R"(
    int main()
    {
      string base = "/scratch/data_";
      int f = h5fcreate(base + 7 + ".h5");
      h5fclose(f);
      return 0;
    }
  )";
  KernelResult result = discover_io(std::string(source), options);
  EXPECT_NE(result.kernel_source.find("\"/shm/scratch/data_\""),
            std::string::npos);
}

TEST(ManualKeep, ForcesStatementsIntoKernel) {
  const minic::Program program = minic::parse(R"(
    int main()
    {
      double important = 1.5;
      int f = h5fcreate("/f.h5");
      h5fclose(f);
      return 0;
    }
  )");
  // Find the id of the 'important' declaration.
  int decl_id = -1;
  for (const auto& stmt : program.functions[0].body->statements) {
    if (stmt->kind == minic::StmtKind::kDecl && stmt->name == "important") {
      decl_id = stmt->id;
    }
  }
  ASSERT_GE(decl_id, 0);
  DiscoveryOptions options;
  options.manual_keep.insert(decl_id);
  KernelResult result = discover_io(program, options);
  EXPECT_NE(result.kernel_source.find("double important = 1.5;"),
            std::string::npos);
}

TEST(Discovery, WorkloadSourcesProduceKernels) {
  using namespace wl::sources;
  for (const std::string& source :
       {macsio_vpic(), vpic(), flash(), hacc(), bdcats()}) {
    KernelResult result = discover_io(source, {});
    EXPECT_GT(result.kept_statements, 0);
    EXPECT_LT(result.kept_statements, result.total_statements);
    EXPECT_NE(result.kernel.find("main"), nullptr);
    // Every kernel drops the compute statements.
    EXPECT_EQ(result.kernel_source.find("compute("), std::string::npos);
  }
}

/// Property: the marking loop is monotone — the kernel of a kernel keeps
/// everything (all remaining statements are I/O-relevant).
class MarkingFixpoint : public ::testing::TestWithParam<int> {};

TEST_P(MarkingFixpoint, KernelOfKernelKeepsAll) {
  const std::string sources[] = {
      wl::sources::macsio_vpic(), wl::sources::vpic(), wl::sources::flash(),
      wl::sources::hacc(), wl::sources::bdcats()};
  const std::string& source = sources[GetParam()];
  KernelResult first = discover_io(source, {});
  KernelResult second = discover_io(first.kernel_source, {});
  EXPECT_EQ(second.kernel_source, first.kernel_source);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, MarkingFixpoint,
                         ::testing::Range(0, 5));

// --- marking engines -------------------------------------------------------

TEST(Engines, SlicerIsDefaultAndDoesNotFallBack) {
  KernelResult result = discover_io(std::string(kFigure5Like), {});
  EXPECT_EQ(result.engine_used, MarkingEngine::kDataflowSlicer);
  EXPECT_FALSE(result.used_fallback);
}

TEST(Engines, LegacyMarkerCanBeRequested) {
  DiscoveryOptions options;
  options.engine = MarkingEngine::kLegacyMarker;
  KernelResult legacy = discover_io(std::string(kFigure5Like), options);
  EXPECT_EQ(legacy.engine_used, MarkingEngine::kLegacyMarker);
  EXPECT_FALSE(legacy.used_fallback);
  // On this source both engines agree; the legacy kernel is never smaller.
  KernelResult precise = discover_io(std::string(kFigure5Like), {});
  EXPECT_GE(legacy.kept_statements, precise.kept_statements);
}

TEST(Engines, SlicerIsStrictlyMorePreciseOnDeadReassignment) {
  const char* source = R"(
    int main()
    {
      int n = 4;
      int f = h5fcreate("/f.h5");
      int ds = h5dcreate(f, "x", 4, n);
      h5dwrite_all(ds, n);
      h5fclose(f);
      n = 99;
      return 0;
    }
  )";
  KernelResult precise = discover_io(std::string(source), {});
  DiscoveryOptions legacy_options;
  legacy_options.engine = MarkingEngine::kLegacyMarker;
  KernelResult legacy = discover_io(std::string(source), legacy_options);
  // The legacy marker keeps the dead `n = 99` (n is a dependent name);
  // the slicer proves it reaches no use.
  EXPECT_NE(legacy.kernel_source.find("n = 99;"), std::string::npos);
  EXPECT_EQ(precise.kernel_source.find("n = 99;"), std::string::npos);
  EXPECT_LT(precise.kept_statements, legacy.kept_statements);
}

TEST(Engines, ManualKeepWorksWithSlicer) {
  const minic::Program program = minic::parse(R"(
    int main()
    {
      double important = 1.5;
      int f = h5fcreate("/f.h5");
      h5fclose(f);
      return 0;
    }
  )");
  int decl_id = -1;
  for (const auto& stmt : program.functions[0].body->statements) {
    if (stmt->kind == minic::StmtKind::kDecl && stmt->name == "important") {
      decl_id = stmt->id;
    }
  }
  ASSERT_GE(decl_id, 0);
  DiscoveryOptions options;
  options.manual_keep.insert(decl_id);
  KernelResult result = discover_io(program, options);
  EXPECT_EQ(result.engine_used, MarkingEngine::kDataflowSlicer);
  EXPECT_NE(result.kernel_source.find("double important = 1.5;"),
            std::string::npos);
}

/// Differential oracle: on every workload the slicer's kept set is a
/// subset of the legacy marker's (same normalized program, same ids).
class SlicerDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SlicerDifferential, SlicerKeptIsSubsetOfLegacyKept) {
  const std::string sources[] = {
      wl::sources::macsio_vpic(), wl::sources::vpic(), wl::sources::flash(),
      wl::sources::hacc(), wl::sources::bdcats()};
  // Mirror discover_io's normalization round-trip so both engines see
  // the exact same statement ids.
  const minic::Program program =
      minic::parse(minic::print(minic::parse(sources[GetParam()])));
  const std::set<int> slicer_kept =
      analysis::slice_io(program, {"h5"}).kept;
  const std::set<int> legacy_kept = mark_kept(program, {"h5"});
  EXPECT_TRUE(std::includes(legacy_kept.begin(), legacy_kept.end(),
                            slicer_kept.begin(), slicer_kept.end()))
      << "slicer kept a statement the legacy marker drops";
  EXPECT_FALSE(slicer_kept.empty());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SlicerDifferential,
                         ::testing::Range(0, 5));

/// Fidelity oracle: for every workload, the slicer kernel performs
/// exactly the same I/O as the full application. Logging is included in
/// the I/O prefixes here because fprintf_log writes through the PFS
/// meter — with the default {"h5"} prefixes the kernel intentionally
/// drops it, which would shift the write counters.
class SlicerFidelity : public ::testing::TestWithParam<int> {};

TEST_P(SlicerFidelity, KernelIoMetricsMatchFullApplication) {
  const std::string sources[] = {
      wl::sources::macsio_vpic(), wl::sources::vpic(), wl::sources::flash(),
      wl::sources::hacc(), wl::sources::bdcats()};
  const std::string& source = sources[GetParam()];

  DiscoveryOptions options;
  options.io_prefixes = {"h5", "fprintf_log"};
  KernelResult kernel = discover_io(source, options);
  EXPECT_EQ(kernel.engine_used, MarkingEngine::kDataflowSlicer);

  auto run = [](const minic::Program& program) {
    mpisim::MpiSim mpi(8);
    pfs::PfsSimulator fs;
    return interp::execute(program, mpi, fs, cfg::default_settings(), {});
  };
  const auto full = run(minic::parse(source));
  const auto sliced = run(kernel.kernel);
  EXPECT_EQ(sliced.perf.counters.write_ops, full.perf.counters.write_ops);
  EXPECT_EQ(sliced.perf.counters.read_ops, full.perf.counters.read_ops);
  EXPECT_EQ(sliced.perf.counters.bytes_written,
            full.perf.counters.bytes_written);
  EXPECT_EQ(sliced.perf.counters.bytes_read, full.perf.counters.bytes_read);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SlicerFidelity,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace tunio::discovery
