// Tests for the HDF5-like library: chunk cache, metadata manager,
// dataset layouts, sieve buffering, property effects.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hdf5lite/chunk_cache.hpp"
#include "hdf5lite/file.hpp"
#include "hdf5lite/metadata.hpp"

namespace tunio::h5 {
namespace {

// --- ChunkCache ----------------------------------------------------------

TEST(ChunkCache, HitsAndMisses) {
  ChunkCacheProps props;
  props.rdcc_nbytes = 4 * MiB;
  ChunkCache cache(props, 1 * MiB);
  auto first = cache.touch_write({0, 0}, 1 * MiB, false);
  EXPECT_FALSE(first.hit);
  auto second = cache.touch_write({0, 0}, 1 * MiB, true);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ChunkCache, LruEvictionOrder) {
  ChunkCacheProps props;
  props.rdcc_nbytes = 2 * MiB;  // two 1 MiB chunks fit
  ChunkCache cache(props, 1 * MiB);
  cache.touch_write({0, 0}, 1 * MiB, false);
  cache.touch_write({0, 1}, 1 * MiB, false);
  // Touch chunk 0 again so chunk 1 is LRU.
  cache.touch_write({0, 0}, 1 * MiB, true);
  auto outcome = cache.touch_write({0, 2}, 1 * MiB, false);
  ASSERT_EQ(outcome.evicted_dirty.size(), 1u);
  EXPECT_EQ(outcome.evicted_dirty[0].chunk, 1u);  // LRU victim
  EXPECT_TRUE(cache.resident({0, 0}));
  EXPECT_FALSE(cache.resident({0, 1}));
}

TEST(ChunkCache, BypassWhenChunkLargerThanCache) {
  ChunkCacheProps props;
  props.rdcc_nbytes = 512 * KiB;
  ChunkCache cache(props, 1 * MiB);  // chunk can't fit
  auto outcome = cache.touch_write({0, 0}, 256 * KiB, true);
  EXPECT_TRUE(outcome.bypass);
  EXPECT_TRUE(outcome.needs_preread);  // partial write of an existing chunk
  auto full = cache.touch_write({0, 1}, 1 * MiB, true);
  EXPECT_TRUE(full.bypass);
  EXPECT_FALSE(full.needs_preread);  // full overwrite: no pre-read
  EXPECT_EQ(cache.stats().bypasses, 2u);
}

TEST(ChunkCache, PartialMissOfExistingChunkNeedsPreread) {
  ChunkCacheProps props;
  props.rdcc_nbytes = 8 * MiB;
  ChunkCache cache(props, 1 * MiB);
  auto fresh = cache.touch_write({0, 0}, 4 * KiB, /*allocated=*/false);
  EXPECT_FALSE(fresh.needs_preread);  // chunk doesn't exist on disk yet
  auto existing = cache.touch_write({1, 1}, 4 * KiB, /*allocated=*/true);
  EXPECT_TRUE(existing.needs_preread);
}

TEST(ChunkCache, NslotsLimitsResidency) {
  ChunkCacheProps props;
  props.rdcc_nbytes = 100 * MiB;
  props.rdcc_nslots = 2;
  ChunkCache cache(props, 1 * MiB);
  cache.touch_write({0, 0}, 1 * MiB, false);
  cache.touch_write({0, 1}, 1 * MiB, false);
  cache.touch_write({0, 2}, 1 * MiB, false);
  EXPECT_EQ(cache.resident_chunks(), 2u);
}

TEST(ChunkCache, FlushDirtyReturnsAllDirtyOnce) {
  ChunkCacheProps props;
  props.rdcc_nbytes = 8 * MiB;
  ChunkCache cache(props, 1 * MiB);
  cache.touch_write({0, 0}, 1 * MiB, false);
  cache.touch_write({0, 1}, 1 * MiB, false);
  cache.touch_read({0, 2});
  auto dirty = cache.flush_dirty();
  EXPECT_EQ(dirty.size(), 2u);  // the read-only chunk is clean
  EXPECT_TRUE(cache.flush_dirty().empty());  // idempotent
}

TEST(ChunkCache, PerRankKeysAreDistinct) {
  ChunkCacheProps props;
  props.rdcc_nbytes = 8 * MiB;
  ChunkCache cache(props, 1 * MiB);
  cache.touch_write({0, 7}, 1 * MiB, false);
  auto other_rank = cache.touch_write({1, 7}, 1 * MiB, false);
  EXPECT_FALSE(other_rank.hit);  // same chunk index, different rank
}

// --- MetadataManager ------------------------------------------------------

TEST(MetadataManager, RawAllocationHonorsAlignment) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  FileAccessProps fapl;
  fapl.alignment = 1 * MiB;
  fapl.alignment_threshold = 64 * KiB;
  MetadataManager meta(mpi, fs, "/f", fapl);
  const Bytes tiny = meta.alloc_raw(1 * KiB);  // below threshold: packed
  EXPECT_NE(tiny % (1 * MiB), 0u);             // sits right after the sb
  const Bytes big = meta.alloc_raw(2 * MiB);   // above threshold: aligned
  EXPECT_EQ(big % (1 * MiB), 0u);
  const Bytes next = meta.alloc_raw(1 * MiB);  // still aligned (eoa moved)
  EXPECT_EQ(next % (1 * MiB), 0u);
}

TEST(MetadataManager, MetaBlockAggregationReducesBlocks) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  FileAccessProps small;
  small.meta_block_size = 2 * KiB;
  FileAccessProps large;
  large.meta_block_size = 64 * KiB;
  MetadataManager meta_small(mpi, fs, "/f", small);
  MetadataManager meta_large(mpi, fs, "/f", large);
  for (int i = 0; i < 64; ++i) {
    meta_small.alloc_meta(1 * KiB);
    meta_large.alloc_meta(1 * KiB);
  }
  EXPECT_GT(meta_small.stats().meta_blocks, meta_large.stats().meta_blocks);
}

TEST(MetadataManager, EagerVsCollectiveMetadataWrites) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  FileAccessProps eager;  // coll_metadata_write = false
  MetadataManager meta_eager(mpi, fs, "/f", eager);
  for (int i = 0; i < 10; ++i) meta_eager.meta_update(256);
  EXPECT_EQ(meta_eager.stats().meta_writes, 10u);  // one write per update

  FileAccessProps coll;
  coll.coll_metadata_write = true;
  MetadataManager meta_coll(mpi, fs, "/f", coll);
  for (int i = 0; i < 10; ++i) meta_coll.meta_update(256);
  EXPECT_EQ(meta_coll.stats().meta_writes, 0u);  // staged
  meta_coll.flush();
  EXPECT_EQ(meta_coll.stats().meta_writes, 1u);  // one aggregated write
  EXPECT_EQ(meta_coll.stats().meta_bytes_written, 2560u);
}

TEST(MetadataManager, CollectiveLookupAvoidsMdsStorm) {
  FileAccessProps storm;  // coll_metadata_ops = false
  FileAccessProps coll;
  coll.coll_metadata_ops = true;

  auto misses_mds_ops = [](const FileAccessProps& fapl) {
    mpisim::MpiSim mpi(32);
    pfs::PfsSimulator fs;
    fs.create("/f", 0.0);
    FileAccessProps tiny_cache = fapl;
    tiny_cache.mdc_nbytes = 0;  // force misses
    MetadataManager meta(mpi, fs, "/f", tiny_cache);
    meta.meta_update(64 * KiB);  // build a working set
    const auto before = fs.counters().metadata_ops;
    for (int i = 0; i < 8; ++i) meta.meta_lookup(512);
    return fs.counters().metadata_ops - before;
  };
  EXPECT_GT(misses_mds_ops(storm), misses_mds_ops(coll));
}

TEST(MetadataManager, MdcCacheAbsorbsLookups) {
  mpisim::MpiSim mpi(8);
  pfs::PfsSimulator fs;
  fs.create("/f", 0.0);
  FileAccessProps big_cache;
  big_cache.mdc_nbytes = 64 * MiB;
  MetadataManager meta(mpi, fs, "/f", big_cache);
  meta.meta_update(1 * KiB);
  for (int i = 0; i < 100; ++i) meta.meta_lookup(512);
  // Working set fits: nearly all lookups hit.
  EXPECT_GT(meta.stats().mdc_hits, 90u);
}

// --- Dataset / File -------------------------------------------------------

struct Stack {
  mpisim::MpiSim mpi{8};
  pfs::PfsSimulator fs;
};

std::vector<Selection> slabs(unsigned ranks, std::uint64_t per_rank,
                             std::uint64_t base = 0) {
  std::vector<Selection> sels;
  for (unsigned r = 0; r < ranks; ++r) {
    sels.push_back({r, base + r * per_rank, per_rank});
  }
  return sels;
}

TEST(H5File, CreateDatasetAndWrite) {
  Stack s;
  File file(s.mpi, s.fs, "/f.h5", FileAccessProps{}, mpiio::Hints{});
  Dataset& ds = file.create_dataset("x", 4, 1 << 20);
  EXPECT_FALSE(ds.chunked());
  ds.write(slabs(8, 1 << 17), TransferProps{true});
  EXPECT_EQ(ds.stats().h5_writes, 8u);
  EXPECT_EQ(ds.stats().bytes_written, (1u << 20) * 4u);
  file.close();
  EXPECT_GT(s.fs.counters().bytes_written, (1u << 20) * 4u - 1);
}

TEST(H5File, DuplicateDatasetRejected) {
  Stack s;
  File file(s.mpi, s.fs, "/f.h5", FileAccessProps{}, mpiio::Hints{});
  file.create_dataset("x", 4, 100);
  EXPECT_THROW(file.create_dataset("x", 4, 100), Error);
  EXPECT_TRUE(file.has_dataset("x"));
  EXPECT_FALSE(file.has_dataset("y"));
  EXPECT_THROW(file.dataset("y"), Error);
}

TEST(H5File, OutOfBoundsSelectionRejected) {
  Stack s;
  File file(s.mpi, s.fs, "/f.h5", FileAccessProps{}, mpiio::Hints{});
  Dataset& ds = file.create_dataset("x", 4, 100);
  std::vector<Selection> bad{{0, 90, 20}};
  EXPECT_THROW(ds.write(bad, TransferProps{}), Error);
  EXPECT_THROW(ds.read(bad, TransferProps{}), Error);
}

TEST(H5Dataset, ChunkedWritesThroughCache) {
  Stack s;
  ChunkCacheProps cache;
  cache.rdcc_nbytes = 64 * MiB;  // everything stays cached
  File file(s.mpi, s.fs, "/f.h5", FileAccessProps{}, mpiio::Hints{});
  DatasetCreateProps dcpl;
  dcpl.chunk_elements = 1 << 15;  // 128 KiB chunks of 4-byte elems
  Dataset& ds = file.create_dataset("c", 4, 1 << 20, dcpl, cache);
  EXPECT_TRUE(ds.chunked());
  const Bytes raw_before = s.fs.counters().bytes_written;
  ds.write(slabs(8, 1 << 17), TransferProps{true});
  // Raw data sits in the cache until flush; only metadata has hit disk.
  const Bytes mid = s.fs.counters().bytes_written - raw_before;
  EXPECT_LT(mid, 1 * MiB);
  ds.flush();
  const Bytes after = s.fs.counters().bytes_written - raw_before;
  EXPECT_GE(after, (1u << 20) * 4u);
}

TEST(H5Dataset, TinyCacheCausesEvictionTraffic) {
  auto dirty_evictions = [](Bytes cache_bytes) {
    Stack s;
    ChunkCacheProps cache;
    cache.rdcc_nbytes = cache_bytes;
    File file(s.mpi, s.fs, "/f.h5", FileAccessProps{}, mpiio::Hints{});
    DatasetCreateProps dcpl;
    dcpl.chunk_elements = 1 << 18;  // 1 MiB chunks
    Dataset& ds = file.create_dataset("c", 4, 1 << 23, dcpl, cache);
    ds.write(slabs(8, 1 << 20), TransferProps{true});
    return ds.cache_stats()->dirty_evictions;
  };
  EXPECT_GT(dirty_evictions(1 * MiB), dirty_evictions(64 * MiB));
}

TEST(H5Dataset, ContiguousSieveCoalescesSmallWrites) {
  auto sieve_flushes = [](Bytes sieve) {
    Stack s;
    FileAccessProps fapl;
    fapl.sieve_buf_size = sieve;
    File file(s.mpi, s.fs, "/f.h5", fapl, mpiio::Hints{});
    Dataset& ds = file.create_dataset("x", 4, 1 << 20);
    // Rank 0 writes 64 sequential 1 KiB pieces (256 elements each).
    for (std::uint64_t i = 0; i < 64; ++i) {
      std::vector<Selection> one{{0, i * 256, 256}};
      ds.write(one, TransferProps{false});
    }
    ds.flush();
    return ds.stats().sieve_flushes;
  };
  // A big sieve buffer absorbs everything into few flushes.
  EXPECT_LT(sieve_flushes(1 * MiB), sieve_flushes(4 * KiB));
}

TEST(H5Dataset, SieveReadAheadServesSequentialReads) {
  Stack s;
  FileAccessProps fapl;
  fapl.sieve_buf_size = 256 * KiB;
  File file(s.mpi, s.fs, "/f.h5", fapl, mpiio::Hints{});
  Dataset& ds = file.create_dataset("x", 4, 1 << 20);
  ds.write(slabs(1, 1 << 20), TransferProps{false});
  ds.flush();
  const auto reads_before = s.fs.counters().reads;
  // 16 small sequential reads within one sieve window.
  for (std::uint64_t i = 0; i < 16; ++i) {
    std::vector<Selection> one{{0, i * 256, 256}};
    ds.read(one, TransferProps{false});
  }
  // Far fewer PFS reads than application reads.
  EXPECT_LT(s.fs.counters().reads - reads_before, 16u);
}

TEST(H5Dataset, ChunkReadMissFetchesWholeChunk) {
  Stack s;
  ChunkCacheProps cache;
  cache.rdcc_nbytes = 16 * MiB;
  File file(s.mpi, s.fs, "/f.h5", FileAccessProps{}, mpiio::Hints{});
  DatasetCreateProps dcpl;
  dcpl.chunk_elements = 1 << 18;
  Dataset& ds = file.create_dataset("c", 4, 1 << 21, dcpl, cache);
  ds.write(slabs(2, 1 << 20), TransferProps{true});
  ds.flush();
  const Bytes read_before = s.fs.counters().bytes_read;
  // Rank 1 reads a chunk it never wrote: its cache misses and the whole
  // chunk is fetched for a 64-byte read. (Rank 0 would hit its cache.)
  std::vector<Selection> small{{1, 0, 16}};
  ds.read(small, TransferProps{false});
  EXPECT_GE(s.fs.counters().bytes_read - read_before, 1 * MiB);
  // A second small read of the same chunk hits the cache: no more I/O.
  const Bytes read_mid = s.fs.counters().bytes_read;
  std::vector<Selection> small2{{1, 32, 16}};
  ds.read(small2, TransferProps{false});
  EXPECT_EQ(s.fs.counters().bytes_read, read_mid);
}

TEST(H5File, CloseFlushesEverythingAndIsIdempotent) {
  Stack s;
  ChunkCacheProps cache;
  cache.rdcc_nbytes = 64 * MiB;
  {
    File file(s.mpi, s.fs, "/f.h5", FileAccessProps{}, mpiio::Hints{});
    DatasetCreateProps dcpl;
    dcpl.chunk_elements = 1 << 16;
    Dataset& ds = file.create_dataset("c", 4, 1 << 19, dcpl, cache);
    ds.write(slabs(4, 1 << 17), TransferProps{true});
    file.close();
    file.close();  // no-op
    EXPECT_THROW(file.create_dataset("late", 4, 10), Error);
  }
  // All raw bytes on disk after close (destructor also safe).
  EXPECT_GE(s.fs.counters().bytes_written, (1u << 19) * 4u);
}

TEST(H5File, CollectiveMetadataWriteReducesMetaWriteOps) {
  auto meta_writes = [](bool coll) {
    Stack s;
    FileAccessProps fapl;
    fapl.coll_metadata_write = coll;
    File file(s.mpi, s.fs, "/f.h5", fapl, mpiio::Hints{});
    for (int d = 0; d < 12; ++d) {
      std::string name = "d";
      name += std::to_string(d);
      file.create_dataset(name, 8, 4096);
    }
    file.close();
    return file.meta().stats().meta_writes;
  };
  EXPECT_LT(meta_writes(true), meta_writes(false));
}

/// Property: whatever the chunk/cache geometry, closing the file lands at
/// least the full payload on the PFS (no lost raw data).
class ChunkGeometryProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Bytes>> {};

TEST_P(ChunkGeometryProperty, PayloadConservedThroughCache) {
  const auto [chunk_elems, cache_bytes] = GetParam();
  Stack s;
  ChunkCacheProps cache;
  cache.rdcc_nbytes = cache_bytes;
  File file(s.mpi, s.fs, "/f.h5", FileAccessProps{}, mpiio::Hints{});
  DatasetCreateProps dcpl;
  dcpl.chunk_elements = chunk_elems;
  const std::uint64_t per_rank = 1 << 17;
  Dataset& ds =
      file.create_dataset("c", 4, per_rank * s.mpi.size(), dcpl, cache);
  ds.write(slabs(s.mpi.size(), per_rank), TransferProps{true});
  file.close();
  EXPECT_GE(s.fs.counters().bytes_written,
            per_rank * s.mpi.size() * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ChunkGeometryProperty,
    ::testing::Combine(::testing::Values(std::uint64_t{1} << 12,
                                         std::uint64_t{1} << 15,
                                         std::uint64_t{1} << 18),
                       ::testing::Values(Bytes{1 * MiB}, Bytes{16 * MiB},
                                         Bytes{256 * MiB})));

}  // namespace
}  // namespace tunio::h5
