// Tests for the TunIO core: RoTI, Early Stopping, Smart Configuration
// Generation, the Table-I facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/early_stopping.hpp"
#include "core/roti.hpp"
#include "core/smart_config.hpp"
#include "config/xml.hpp"
#include "core/session.hpp"
#include "core/tunio.hpp"
#include "tuner/objective.hpp"
#include "workloads/workload.hpp"

namespace tunio::core {
namespace {

tuner::TuningResult synthetic_result() {
  tuner::TuningResult result;
  result.initial_perf = 100.0;
  double best = 100.0;
  double seconds = 0.0;
  for (unsigned g = 0; g < 10; ++g) {
    best += 50.0;
    seconds += 60.0;  // one minute per generation
    tuner::GenerationStats stats;
    stats.generation = g;
    stats.best_perf = best;
    stats.cumulative_seconds = seconds;
    result.history.push_back(stats);
  }
  result.best_perf = best;
  result.total_seconds = seconds;
  result.generations_run = 10;
  return result;
}

TEST(Roti, CurveMatchesDefinition) {
  const tuner::TuningResult result = synthetic_result();
  const auto curve = roti_curve(result);
  ASSERT_EQ(curve.size(), 10u);
  // Generation g: best = 100 + 50(g+1), minutes = g+1.
  for (unsigned g = 0; g < 10; ++g) {
    EXPECT_NEAR(curve[g].roti, 50.0 * (g + 1) / (g + 1.0), 1e-9);
    EXPECT_NEAR(curve[g].minutes, g + 1.0, 1e-9);
  }
  EXPECT_NEAR(final_roti(result), 50.0, 1e-9);
}

TEST(Roti, PeakFindsMaximum) {
  tuner::TuningResult result = synthetic_result();
  // A big jump at generation 1, flat afterwards: RoTI peaks there.
  const double bests[10] = {150, 500, 510, 510, 510, 510, 510, 510, 510, 510};
  for (unsigned g = 0; g < 10; ++g) {
    result.history[g].best_perf = bests[g];
  }
  const RotiPoint peak = peak_roti(result);
  EXPECT_EQ(peak.generation, 1u);
  EXPECT_NEAR(peak.roti, (500.0 - 100.0) / 2.0, 1e-9);
}

TEST(Roti, EmptyHistoryIsZero) {
  tuner::TuningResult result;
  EXPECT_DOUBLE_EQ(final_roti(result), 0.0);
  EXPECT_DOUBLE_EQ(peak_roti(result).roti, 0.0);
}

TEST(EarlyStopping, OfflineTrainingConverges) {
  EarlyStoppingOptions options;
  options.episodes_per_epoch = 32;
  options.min_epochs = 12;
  options.max_epochs = 30;
  EarlyStopping stopper(options);
  EXPECT_FALSE(stopper.offline_trained());
  const auto log = stopper.train_offline();
  EXPECT_TRUE(stopper.offline_trained());
  EXPECT_GE(log.size(), 12u);
  // Learning happened: late epochs beat the first epochs on average.
  const double early = (log[0] + log[1] + log[2]) / 3.0;
  const double late =
      (log[log.size() - 1] + log[log.size() - 2] + log[log.size() - 3]) / 3.0;
  EXPECT_GT(late, early * 0.8);  // at minimum, no collapse
}

TEST(EarlyStopping, NeverStopsBeforeMinIterations) {
  EarlyStoppingOptions options;
  options.min_iterations = 12;
  options.episodes_per_epoch = 16;
  options.min_epochs = 8;
  options.max_epochs = 10;
  EarlyStopping stopper(options);
  stopper.train_offline();
  stopper.reset_episode();
  for (unsigned t = 0; t < 11; ++t) {
    EXPECT_FALSE(stopper.stop(t, 1000.0)) << "iteration " << t;
  }
}

TEST(EarlyStopping, FirstQueryBeforeAnyObservationIsSafe) {
  // A cold agent (no offline training, no prior episode state) queried
  // on its very first observation must answer without tripping internal
  // invariants — and never stop inside the warmup window.
  EarlyStoppingOptions options;
  options.min_iterations = 2;
  EarlyStopping stopper(options);
  stopper.reset_episode();
  EXPECT_FALSE(stopper.stop(0, 5000.0));
}

TEST(EarlyStopping, NonFiniteBandwidthIsTreatedAsZero) {
  // Twin agents with identical seeds and training: one is fed NaN/inf
  // observations (a failed evaluation upstream), the other literal 0.0.
  // The non-finite guard must make their observation streams — and so
  // their decisions and online-learned state — indistinguishable.
  EarlyStoppingOptions options;
  options.min_iterations = 1;
  options.episodes_per_epoch = 8;
  options.min_epochs = 2;
  options.max_epochs = 3;
  EarlyStopping poisoned(options);
  EarlyStopping clean(options);
  poisoned.train_offline();
  clean.train_offline();
  poisoned.reset_episode();
  clean.reset_episode();
  for (unsigned t = 0; t < 8; ++t) {
    const double bad = t % 2 == 0 ? std::numeric_limits<double>::quiet_NaN()
                                  : std::numeric_limits<double>::infinity();
    const bool a = poisoned.stop(t, bad);
    const bool b = clean.stop(t, 0.0);
    EXPECT_EQ(a, b) << "iteration " << t;
    if (a || b) break;
  }
}

TEST(EarlyStopping, WarmupBoundaryEqualToHorizonStillDecides) {
  // min_iterations == max_iterations: the warmup window covers the
  // whole budget, so every query but the last is forced to continue and
  // the final-iteration query must still answer cleanly.
  EarlyStoppingOptions options;
  options.min_iterations = 5;
  options.max_iterations = 5;
  options.episodes_per_epoch = 8;
  options.min_epochs = 2;
  options.max_epochs = 3;
  EarlyStopping stopper(options);
  stopper.train_offline();
  stopper.reset_episode();
  for (unsigned t = 0; t + 1 < 5; ++t) {
    EXPECT_FALSE(stopper.stop(t, 1000.0 * (t + 1))) << "iteration " << t;
  }
  // The boundary query may stop or continue — it only must not trip.
  (void)stopper.stop(4, 6000.0);
}

TEST(EarlyStopping, TrainedAgentRidesRisesAndQuitsFlats) {
  EarlyStoppingOptions options;
  options.perf_normalizer_mbps = 10'000.0;  // probe curves live in [0, 1]
  EarlyStopping stopper(options);  // full default training
  stopper.train_offline();

  // A run that keeps improving to iteration 40: the agent must not stop
  // during the strong rise (iterations 10-25).
  stopper.reset_episode();
  unsigned stopped_rising = 99;
  for (unsigned t = 0; t < 50; ++t) {
    const double perf = 10000.0 * (0.08 + 0.8 * std::min(1.0, t / 40.0));
    if (stopper.stop(t, perf)) {
      stopped_rising = t;
      break;
    }
  }
  EXPECT_GT(stopped_rising, 24u);

  // A run flat from iteration 12: the agent stops well before the budget.
  stopper.reset_episode();
  unsigned stopped_flat = 99;
  for (unsigned t = 0; t < 50; ++t) {
    const double perf = 10000.0 * (0.1 + 0.5 * std::min(1.0, t / 12.0));
    if (stopper.stop(t, perf)) {
      stopped_flat = t;
      break;
    }
  }
  EXPECT_LT(stopped_flat, 30u);
}

TEST(SmartConfigGen, OfflineTrainingRanksStripingFirst) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SmartConfigGen generator(space);
  EXPECT_FALSE(generator.offline_trained());

  tuner::TestbedOptions tb;
  tb.num_ranks = 16;
  tb.runs_per_eval = 1;
  // Paper-scale HACC: large contiguous writes, where striping dominates.
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  auto hacc = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc()), tb, kernel);

  const auto sweeps = generator.train_offline({hacc.get()});
  EXPECT_TRUE(generator.offline_trained());
  ASSERT_EQ(sweeps.size(), 1u);
  EXPECT_FALSE(sweeps[0].empty());

  // Impact scores are a distribution over parameters.
  const auto& impact = generator.impact_scores();
  double total = 0.0;
  for (double v : impact) total += v;
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Striping dominates large contiguous writes on this stack.
  const auto ranking = generator.ranking();
  EXPECT_EQ(ranking.front(), space.index_of("striping_factor"));
}

TEST(SmartConfigGen, SubsetPickerReturnsValidSubsets) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SmartConfigGen generator(space);
  generator.reset_episode();
  std::vector<std::size_t> subset;
  for (int i = 0; i < 20; ++i) {
    subset = generator.subset_picker(1000.0 + 100.0 * i, subset);
    EXPECT_FALSE(subset.empty());
    EXPECT_LE(subset.size(), space.num_parameters());
    std::set<std::size_t> unique(subset.begin(), subset.end());
    EXPECT_EQ(unique.size(), subset.size());
    for (std::size_t p : subset) EXPECT_LT(p, space.num_parameters());
  }
}

TEST(TunIO, TableOneApiShapes) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  TunIO tunio(space);

  // discover_io: source -> kernel.
  const auto kernel = tunio.discover_io(R"(
    int main()
    {
      compute(5.0);
      int f = h5fcreate("/scratch/x.h5");
      h5fclose(f);
      return 0;
    }
  )");
  EXPECT_NE(kernel.kernel_source.find("h5fcreate"), std::string::npos);
  EXPECT_EQ(kernel.kernel_source.find("compute"), std::string::npos);

  // subset_picker: perf + current set -> next set.
  const auto subset = tunio.subset_picker(500.0, {});
  EXPECT_FALSE(subset.empty());

  // stop: iteration + best perf -> stop/continue (bool). Before the
  // minimum iteration threshold it always continues.
  tunio.early_stopping().reset_episode();
  EXPECT_FALSE(tunio.stop(0, 500.0));
}

TEST(TunIO, DiscoverIoHonorsPerCallOptions) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  TunIO tunio(space);
  discovery::DiscoveryOptions options;
  options.loop_reduction = 0.1;
  const auto kernel = tunio.discover_io(R"(
    int main()
    {
      int f = h5fcreate("/scratch/x.h5");
      int ds = h5dcreate(f, "d", 4, 1000 * mpi_size());
      for (int i = 0; i < 20; i = i + 1)
      {
        h5dwrite_strided(ds, i, 50);
      }
      h5fclose(f);
      return 0;
    }
  )",
                                        options);
  EXPECT_NE(kernel.kernel_source.find("reduced_iters(20, 10)"),
            std::string::npos);
  EXPECT_EQ(kernel.loop_reduction_divisor, 10);
}

TEST(TunIO, AttachWiresHooksIntoTuner) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  TunIO tunio(space);

  tuner::TestbedOptions tb;
  tb.num_ranks = 16;
  tb.runs_per_eval = 1;
  wl::HaccParams params;
  params.particles_per_rank = 1 << 15;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc(params)), tb, kernel);

  tuner::GaOptions ga;
  ga.max_generations = 6;
  ga.population = 8;
  tuner::GeneticTuner tuning(space, *objective, ga);
  tunio.attach(tuning);
  const tuner::TuningResult result = tuning.run();
  EXPECT_GE(result.generations_run, 1u);
  // Generation 0 tunes the full space; later generations use subsets.
  EXPECT_EQ(result.history.front().subset.size(), space.num_parameters());
  bool saw_restricted = false;
  for (const auto& gen : result.history) {
    if (!gen.subset.empty() && gen.subset.size() < space.num_parameters()) {
      saw_restricted = true;
    }
  }
  EXPECT_TRUE(saw_restricted);
}

TEST(EarlyStopping, ExpectedProductionRunsDelayStopping) {
  // §VI future work: more expected production runs -> more patience.
  EarlyStoppingOptions eager;
  eager.episodes_per_epoch = 32;
  eager.min_epochs = 20;
  eager.max_epochs = 30;
  eager.perf_normalizer_mbps = 10'000.0;
  EarlyStoppingOptions patient = eager;
  patient.expected_production_runs = 1'000'000;

  auto stop_iteration = [](EarlyStoppingOptions options) {
    EarlyStopping stopper(options);
    stopper.train_offline();
    stopper.reset_episode();
    for (unsigned t = 0; t < 50; ++t) {
      // Flat after iteration 12.
      const double perf = 10000.0 * (0.1 + 0.5 * std::min(1.0, t / 12.0));
      if (stopper.stop(t, perf)) return t;
    }
    return 50u;
  };
  EXPECT_LE(stop_iteration(eager), stop_iteration(patient));
}

TEST(InteractiveSession, AccumulatesAcrossSteps) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  TunIO tunio(space);

  tuner::TestbedOptions tb;
  tb.num_ranks = 16;
  tb.runs_per_eval = 1;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc()), tb, kernel);

  tuner::GaOptions ga;
  ga.population = 8;
  InteractiveSession session(tunio, *objective, ga);
  EXPECT_EQ(session.steps_taken(), 0u);

  const auto first = session.step(4);
  const double after_first = session.best_perf();
  EXPECT_EQ(session.steps_taken(), 1u);
  EXPECT_GE(session.total_generations(), 1u);
  EXPECT_GT(after_first, 0.0);
  EXPECT_DOUBLE_EQ(session.initial_perf(), first.initial_perf);

  const auto second = session.step(4);
  // The second installment resumes from the first's best: its starting
  // individual scores at least near the previous best (within noise).
  EXPECT_GE(second.initial_perf, after_first * 0.9);
  // Best never regresses across installments.
  EXPECT_GE(session.best_perf(), after_first);
  EXPECT_GT(session.total_seconds(), 0.0);

  // The exported configuration is valid H5Tuner XML.
  const std::string xml = session.export_xml();
  const cfg::Configuration parsed = cfg::from_xml(space, xml);
  EXPECT_TRUE(parsed == session.best_configuration());
}

TEST(InteractiveSession, RejectsZeroGenerationStep) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  TunIO tunio(space);
  tuner::TestbedOptions tb;
  tb.num_ranks = 8;
  tb.runs_per_eval = 1;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc()), tb);
  InteractiveSession session(tunio, *objective);
  EXPECT_THROW(session.step(0), Error);
}

}  // namespace
}  // namespace tunio::core
