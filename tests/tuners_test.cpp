// Tests for the pluggable tuner backends: GA-adapter bit-identity with
// the genetic pipeline, BO/rule search quality and determinism, the
// registry, the drive() harness, and backend selection in the pipeline
// and the tuning service.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "service/tuning_server.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/stoppers.hpp"
#include "tuners/bo_tuner.hpp"
#include "tuners/ga_adapter.hpp"
#include "tuners/random_tuner.hpp"
#include "tuners/registry.hpp"
#include "tuners/rule_tuner.hpp"
#include "workloads/workload.hpp"

namespace tunio::tuners {
namespace {

tuner::TestbedOptions small_testbed(std::uint64_t seed = 0xC0FFEE) {
  tuner::TestbedOptions tb;
  tb.num_ranks = 16;
  tb.runs_per_eval = 2;
  tb.seed = seed;
  return tb;
}

wl::RunOptions kernel_options() {
  wl::RunOptions options;
  options.compute_scale = 0.0;
  return options;
}

/// Small-size objectives over all five seed workloads.
std::unique_ptr<tuner::Objective> workload_objective(const std::string& which,
                                                     std::uint64_t seed) {
  std::unique_ptr<wl::Workload> workload;
  if (which == "hacc") {
    wl::HaccParams p;
    p.particles_per_rank = 1 << 15;
    workload = wl::make_hacc(p);
  } else if (which == "flash") {
    wl::FlashParams p;
    p.blocks_per_rank = 4;
    workload = wl::make_flash(p);
  } else if (which == "vpic") {
    wl::VpicParams p;
    p.particles_per_rank = 1 << 14;
    workload = wl::make_vpic(p);
  } else if (which == "macsio") {
    wl::MacsioParams p;
    p.num_dumps = 2;
    workload = wl::make_macsio(p);
  } else {
    wl::BdcatsParams p;
    p.particles_per_rank = 1 << 14;
    workload = wl::make_bdcats(p);
  }
  return tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(std::move(workload)),
      small_testbed(seed), kernel_options());
}

/// Synthetic separable objective with a known optimum: rewards
/// striping_factor near 32 and collective metadata writes. Cheap, so
/// search-quality tests can afford hundreds of evaluations.
class SyntheticObjective : public tuner::Objective {
 public:
  std::string name() const override { return "synthetic"; }
  tuner::Evaluation evaluate(const cfg::Configuration& config) override {
    ++evals_;
    const double stripes =
        static_cast<double>(config.value("striping_factor"));
    const double stripe_score = 100.0 - std::abs(stripes - 32.0);
    const double meta_score =
        10.0 * static_cast<double>(config.value("coll_metadata_write"));
    tuner::Evaluation eval;
    eval.perf_mbps = stripe_score + meta_score;
    eval.eval_seconds = 30.0;
    return eval;
  }
  std::uint64_t evaluations() const override { return evals_; }

 private:
  std::uint64_t evals_ = 0;
};

tuner::GaOptions small_ga(std::uint64_t seed = 0x5EED) {
  tuner::GaOptions ga;
  ga.population = 8;
  ga.max_generations = 6;
  ga.seed = seed;
  return ga;
}

void expect_identical_results(const tuner::TuningResult& a,
                              const tuner::TuningResult& b) {
  EXPECT_EQ(a.initial_perf, b.initial_perf);
  EXPECT_EQ(a.best_perf, b.best_perf);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.generations_run, b.generations_run);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].generation_best_perf,
              b.history[i].generation_best_perf);
    EXPECT_EQ(a.history[i].best_perf, b.history[i].best_perf);
    EXPECT_EQ(a.history[i].cumulative_seconds,
              b.history[i].cumulative_seconds);
    EXPECT_EQ(a.history[i].subset, b.history[i].subset);
  }
  ASSERT_EQ(a.best_config.has_value(), b.best_config.has_value());
  if (a.best_config.has_value()) {
    EXPECT_EQ(a.best_config->indices(), b.best_config->indices());
  }
}

// --- GA adapter bit-identity --------------------------------------------

TEST(GaAdapter, BitIdenticalToRunOnAllSeedWorkloads) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  for (const std::string which :
       {"hacc", "flash", "vpic", "macsio", "bdcats"}) {
    // Fresh objectives with the same testbed seed: evaluations are
    // deterministic in (seed, genome), so both searches see the same
    // landscape.
    auto direct_objective = workload_objective(which, 42);
    tuner::GeneticTuner direct(space, *direct_objective, small_ga());
    const tuner::TuningResult expected = direct.run();

    auto driven_objective = workload_objective(which, 42);
    GaTunerAdapter adapter(space, *driven_objective, small_ga());
    const DriveResult driven = drive(adapter, *driven_objective);

    SCOPED_TRACE(which);
    expect_identical_results(expected, driven.tuning);
  }
}

TEST(GaAdapter, BitIdenticalUnderStopper) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto direct_objective = workload_objective("hacc", 7);
  tuner::GaOptions ga = small_ga(0xABC);
  ga.max_generations = 12;
  tuner::GeneticTuner direct(space, *direct_objective, ga);
  direct.set_stopper(tuner::make_heuristic_stopper());
  const tuner::TuningResult expected = direct.run();

  auto driven_objective = workload_objective("hacc", 7);
  GaTunerAdapter adapter(space, *driven_objective, ga);
  DriveOptions options;
  options.stopper = tuner::make_heuristic_stopper();
  const DriveResult driven = drive(adapter, *driven_objective, options);

  expect_identical_results(expected, driven.tuning);
}

TEST(GaAdapter, RunMatchesManualSteppingLoop) {
  // The stepping API itself reproduces run(): drive the GA by hand.
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto a = workload_objective("vpic", 3);
  tuner::GeneticTuner direct(space, *a, small_ga());
  const tuner::TuningResult expected = direct.run();

  auto b = workload_objective("vpic", 3);
  tuner::GeneticTuner stepped(space, *b, small_ga());
  while (!stepped.exhausted()) {
    const std::vector<cfg::Configuration> batch = stepped.begin_iteration();
    stepped.observe_iteration(b->evaluate_batch(batch));
  }
  expect_identical_results(expected, stepped.progress());
}

// --- search quality ------------------------------------------------------

/// Fresh evaluations spent until `run` first reached `target` (the max
/// possible count if it never did).
std::uint64_t evals_to_reach(const DriveResult& run, double target) {
  for (std::size_t i = 0; i < run.tuning.history.size(); ++i) {
    if (run.tuning.history[i].best_perf >= target) return run.evaluations[i];
  }
  return run.fresh_evaluations + 1;
}

TEST(BoTuner, MoreSampleEfficientThanRandomOnSyntheticObjective) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  // One seed is a coin flip (random search can get lucky on a smooth
  // landscape); aggregate evals-to-optimum over several seeds is what
  // the surrogate must actually win. Deterministic: fixed seed set.
  std::uint64_t bo_total = 0;
  std::uint64_t random_total = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TunerSpec spec;
    spec.seed = seed;
    spec.batch = 8;
    spec.max_iterations = 8;

    SyntheticObjective bo_objective;
    auto bo = make_tuner("bo", space, bo_objective, spec);
    const DriveResult bo_run = drive(*bo, bo_objective);
    bo_total += evals_to_reach(bo_run, 110.0);
    EXPECT_GT(bo_run.tuning.best_perf, 105.0) << "seed " << seed;

    SyntheticObjective random_objective;
    auto random = make_tuner("random", space, random_objective, spec);
    const DriveResult random_run = drive(*random, random_objective);
    random_total += evals_to_reach(random_run, 110.0);
  }
  EXPECT_LT(bo_total, random_total);
}

TEST(BoTuner, DeterministicAcrossIdenticalDrives) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  BoOptions options;
  options.max_iterations = 5;

  SyntheticObjective a_objective;
  BoTuner a(space, options);
  const DriveResult run_a = drive(a, a_objective);

  SyntheticObjective b_objective;
  BoTuner b(space, options);
  const DriveResult run_b = drive(b, b_objective);

  expect_identical_results(run_a.tuning, run_b.tuning);
  EXPECT_EQ(run_a.fresh_evaluations, run_b.fresh_evaluations);
}

TEST(BoTuner, WarmupLeadsWithSeedConfiguration) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  BoOptions options;
  std::vector<std::size_t> seed(space.num_parameters(), 0);
  seed[0] = 1;
  options.seed_indices = seed;
  BoTuner bo(space, options);
  const std::vector<cfg::Configuration> warmup = bo.propose();
  ASSERT_FALSE(warmup.empty());
  EXPECT_EQ(warmup.front().indices(), seed);
}

TEST(RuleTuner, HintedParameterIsSweptFirst) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  RuleOptions options;
  options.hints = {{"striping_factor", 1.0}};
  RuleTuner rule(space, options);
  ASSERT_FALSE(rule.sweep_order().empty());
  EXPECT_EQ(rule.sweep_order().front(), space.index_of("striping_factor"));
}

TEST(RuleTuner, ConvergesToSyntheticOptimumAndStops) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  RuleOptions options;
  options.hints = {{"striping_factor", 1.0}, {"coll_metadata_write", 0.5}};
  SyntheticObjective objective;
  RuleTuner rule(space, options);
  const DriveResult run = drive(rule, objective);

  // Coordinate descent on a separable objective finds the exact optimum
  // and then stops on its own (a full pass without improvement).
  EXPECT_DOUBLE_EQ(run.tuning.best_perf, 110.0);
  EXPECT_TRUE(rule.done());
  ASSERT_TRUE(run.tuning.best_config.has_value());
  EXPECT_EQ(run.tuning.best_config->value("striping_factor"), 32u);
  EXPECT_EQ(run.tuning.best_config->value("coll_metadata_write"), 1u);
}

TEST(RuleTuner, DeterministicAndNeverRepeatsAnEvaluation) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective a_objective;
  RuleTuner a(space, {});
  const DriveResult run_a = drive(a, a_objective);

  SyntheticObjective b_objective;
  RuleTuner b(space, {});
  const DriveResult run_b = drive(b, b_objective);

  expect_identical_results(run_a.tuning, run_b.tuning);
  // The sweep dedups against every genome already evaluated.
  EXPECT_EQ(run_a.fresh_evaluations, a_objective.evaluations());
}

// --- registry ------------------------------------------------------------

TEST(Registry, BuildsEveryRegisteredBackend) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective;
  for (const std::string& name : backend_names()) {
    EXPECT_TRUE(is_backend(name));
    auto tuner = make_tuner(name, space, objective, {});
    ASSERT_NE(tuner, nullptr);
    EXPECT_EQ(tuner->name(), name);
    EXPECT_FALSE(tuner->done());
  }
  EXPECT_FALSE(is_backend("simulated-annealing"));
  EXPECT_THROW(make_tuner("simulated-annealing", space, objective, {}),
               InvalidArgument);
}

// --- drive() harness -----------------------------------------------------

TEST(Driver, BudgetStopsAtIterationBoundary) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective;
  RandomOptions options;
  options.batch = 4;
  options.max_iterations = 100;
  RandomTuner random(space, options);
  DriveOptions drive_options;
  // Each batch bills 4 * 30s; the budget covers exactly 3 iterations.
  drive_options.budget_seconds = 3 * 4 * 30.0;
  const DriveResult run = drive(random, objective, drive_options);
  EXPECT_EQ(run.tuning.generations_run, 3u);
  EXPECT_FALSE(run.tuning.early_stopped);  // budget, not stopper
  EXPECT_EQ(run.fresh_evaluations, 12u);
  ASSERT_EQ(run.evaluations.size(), 3u);
  EXPECT_EQ(run.evaluations.back(), 12u);
}

TEST(Driver, StopperTerminatesAndMarksEarlyStopped) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective;
  RandomTuner random(space, {});
  DriveOptions drive_options;
  drive_options.stopper = [](unsigned generation, const tuner::TuningResult&) {
    return generation >= 1;
  };
  const DriveResult run = drive(random, objective, drive_options);
  EXPECT_EQ(run.tuning.generations_run, 2u);
  EXPECT_TRUE(run.tuning.early_stopped);
  EXPECT_TRUE(random.done());
}

TEST(Driver, MaxIterationsCapsTheBackendHorizon) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective;
  RandomTuner random(space, {});  // backend horizon: 50 iterations
  DriveOptions drive_options;
  drive_options.max_iterations = 4;
  const DriveResult run = drive(random, objective, drive_options);
  EXPECT_EQ(run.tuning.generations_run, 4u);
  EXPECT_FALSE(run.tuning.early_stopped);
}

TEST(Driver, SurfacesReplayGateVerdictAndReason) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  DriveOptions drive_options;
  drive_options.max_iterations = 1;
  {
    // Custom objectives carry no invariance evidence: ineligible, with
    // the default explanation.
    SyntheticObjective objective;
    RandomTuner random(space, {});
    const DriveResult run = drive(random, objective, drive_options);
    EXPECT_FALSE(run.replay_eligible);
    EXPECT_FALSE(run.replay_gate_reason.empty());
  }
  {
    // A settings-invariant kernel objective is eligible, and the reason
    // says why the gate admitted it.
    auto objective = workload_objective("vpic", 0xAB);
    RandomTuner random(space, {});
    const DriveResult run = drive(random, *objective, drive_options);
    EXPECT_TRUE(run.replay_eligible) << run.replay_gate_reason;
    EXPECT_FALSE(run.replay_gate_reason.empty());
  }
}

TEST(Driver, ReportsInitialPerfFromFirstConfiguration) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective;
  RandomTuner random(space, {});
  DriveOptions drive_options;
  drive_options.max_iterations = 2;
  const DriveResult run = drive(random, objective, drive_options);
  // The first configuration of the first batch is the stack defaults.
  SyntheticObjective probe;
  const double default_perf =
      probe.evaluate(space.default_configuration()).perf_mbps;
  EXPECT_DOUBLE_EQ(run.tuning.initial_perf, default_perf);
}

// --- pipeline / service integration -------------------------------------

TEST(PipelineBackend, RuleBackendRunsThroughRunPipeline) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto objective = workload_objective("hacc", 11);
  core::PipelineVariant variant{"rule-backend"};
  variant.backend = "rule";
  variant.hints = {{"striping_factor", 1.0}};
  const core::PipelineRun run = core::run_pipeline(
      space, *objective, nullptr, variant, small_ga());
  EXPECT_EQ(run.backend, "rule");
  EXPECT_GT(run.result.best_perf, 0.0);
  EXPECT_GE(run.result.best_perf, run.result.initial_perf);
}

TEST(PipelineBackend, GaBackendMatchesHistoricalDefaultPath) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto a = workload_objective("flash", 13);
  const core::PipelineRun legacy = core::run_pipeline(
      space, *a, nullptr, {"legacy", false, core::StopPolicy::kNone},
      small_ga());

  auto b = workload_objective("flash", 13);
  core::PipelineVariant variant{"explicit-ga"};
  variant.backend = "ga";
  const core::PipelineRun selected =
      core::run_pipeline(space, *b, nullptr, variant, small_ga());

  EXPECT_EQ(selected.backend, "ga");
  expect_identical_results(legacy.result, selected.result);
}

TEST(TuningServer, RunsNonGaBackendJobs) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  service::TuningServer server(space);

  service::JobSpec spec;
  spec.name = "bo-job";
  spec.backend = "bo";
  spec.objective = std::make_shared<SyntheticObjective>();
  spec.ga = small_ga();
  const service::JobId id = server.submit(spec);
  const tuner::TuningResult result = server.wait(id);

  EXPECT_GT(result.best_perf, 0.0);
  EXPECT_EQ(result.generations_run, small_ga().max_generations);
  const service::JobProgress progress = server.progress(id);
  EXPECT_EQ(progress.backend, "bo");
  EXPECT_EQ(progress.state, service::JobState::kDone);
  EXPECT_GT(progress.best_perf, 0.0);
}

TEST(TuningServer, RejectsUnknownBackend) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  service::TuningServer server(space);
  service::JobSpec spec;
  spec.name = "bogus";
  spec.backend = "hillclimb";
  spec.objective = std::make_shared<SyntheticObjective>();
  EXPECT_THROW(server.submit(spec), Error);
}

/// Synthetic objective slowed by a wall-clock sleep per evaluation, to
/// make the cancellation race testable (the same trick service_test
/// uses).
class SlowSyntheticObjective final : public SyntheticObjective {
 public:
  tuner::Evaluation evaluate(const cfg::Configuration& config) override {
    std::this_thread::sleep_for(std::chrono::microseconds(2000));
    return SyntheticObjective::evaluate(config);
  }
};

TEST(TuningServer, CancelsNonGaBackendJobAtIterationBoundary) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  service::ServerOptions server_options;
  server_options.max_concurrent_jobs = 1;
  service::TuningServer server(space, server_options);

  service::JobSpec spec;
  spec.name = "cancel-me";
  spec.backend = "random";
  spec.objective = std::make_shared<SlowSyntheticObjective>();
  spec.ga = small_ga();
  spec.ga.max_generations = 10'000;  // far more than we allow to run
  const service::JobId id = server.submit(spec);
  while (server.progress(id).generations_done < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Cooperative cancel: takes effect at the next iteration boundary.
  EXPECT_TRUE(server.cancel(id));
  const tuner::TuningResult partial = server.wait(id);
  const service::JobProgress progress = server.progress(id);
  EXPECT_EQ(progress.state, service::JobState::kCancelled);
  EXPECT_GE(partial.generations_run, 1u);
  EXPECT_LT(partial.generations_run, 10'000u);
}

}  // namespace
}  // namespace tunio::tuners
