// Tests for the genetic tuning pipeline: objectives, GA invariants,
// subset masking, stopping policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "minic/parser.hpp"
#include "tuner/genetic_tuner.hpp"
#include "tuner/objective.hpp"
#include "tuner/stoppers.hpp"
#include "workloads/sources.hpp"
#include "workloads/workload.hpp"

namespace tunio::tuner {
namespace {

TestbedOptions small_testbed() {
  TestbedOptions tb;
  tb.num_ranks = 16;
  tb.runs_per_eval = 2;
  return tb;
}

std::unique_ptr<Objective> hacc_objective(TestbedOptions tb) {
  wl::HaccParams params;
  params.particles_per_rank = 1 << 15;
  wl::RunOptions kernel;
  kernel.compute_scale = 0.0;
  return make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc(params)), tb, kernel);
}

/// A synthetic objective with a known optimum (no stack involved):
/// rewards striping_factor near 32 and collective metadata on.
class SyntheticObjective final : public Objective {
 public:
  explicit SyntheticObjective(const cfg::ConfigSpace& space) : space_(space) {}
  std::string name() const override { return "synthetic"; }
  Evaluation evaluate(const cfg::Configuration& config) override {
    ++evals_;
    const double stripes =
        static_cast<double>(config.value("striping_factor"));
    const double stripe_score = 100.0 - std::abs(stripes - 32.0);
    const double meta_score =
        10.0 * static_cast<double>(config.value("coll_metadata_write"));
    Evaluation eval;
    eval.perf_mbps = stripe_score + meta_score;
    eval.eval_seconds = 30.0;
    return eval;
  }
  std::uint64_t evaluations() const override { return evals_; }

 private:
  const cfg::ConfigSpace& space_;
  std::uint64_t evals_ = 0;
};

TEST(WorkloadObjective, EvaluatesAndBillsTime) {
  auto objective = hacc_objective(small_testbed());
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const Evaluation eval = objective->evaluate(space.default_configuration());
  EXPECT_GT(eval.perf_mbps, 0.0);
  EXPECT_GT(eval.eval_seconds, 0.0);
  EXPECT_EQ(objective->evaluations(), 1u);
}

TEST(WorkloadObjective, NoiseIsPerGenomeDeterministicAndBounded) {
  TestbedOptions tb = small_testbed();
  tb.measurement_noise = 0.02;
  auto objective = hacc_objective(tb);
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  // Measurement noise comes from a stream derived from (testbed seed,
  // genome), so re-evaluating the same configuration reproduces the
  // measurement exactly — the property that makes concurrent batch
  // evaluation and cross-session result caching bit-faithful.
  const double a = objective->evaluate(space.default_configuration()).perf_mbps;
  const double b = objective->evaluate(space.default_configuration()).perf_mbps;
  EXPECT_EQ(a, b);
  // A different testbed seed draws different (but bounded) noise.
  TestbedOptions reseeded = tb;
  reseeded.seed = tb.seed + 1;
  auto other = hacc_objective(reseeded);
  const double c = other->evaluate(space.default_configuration()).perf_mbps;
  EXPECT_NE(a, c);             // noisy
  EXPECT_NEAR(a, c, a * 0.2);  // but close
}

TEST(WorkloadObjective, SingleSimulationAveragingMatchesManualComputation) {
  // evaluate() runs the deterministic simulation once and derives the
  // `runs_per_eval` volatility samples from that single measurement. The
  // reported average must match recomputing those samples by hand from a
  // noise-free single-run evaluation — proving the averaged result is
  // bit-identical to simulating every run.
  TestbedOptions raw = small_testbed();
  raw.runs_per_eval = 1;
  auto raw_objective = hacc_objective(raw);
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const cfg::Configuration config = space.default_configuration();
  const Evaluation single = raw_objective->evaluate(config);
  // detail carries the raw (un-noised) metering of the simulated run.
  const double base_perf = single.detail.perf_mbps;
  const SimSeconds base_seconds =
      single.eval_seconds - raw.launch_overhead_seconds;

  TestbedOptions tb = small_testbed();
  tb.runs_per_eval = 3;
  tb.measurement_noise = 0.02;
  auto objective = hacc_objective(tb);
  const Evaluation eval = objective->evaluate(config);

  Rng rng(derive_stream(tb.seed, hash_indices(config.indices())));
  double perf_sum = 0.0;
  double seconds_sum = 0.0;
  for (unsigned run = 0; run < tb.runs_per_eval; ++run) {
    const double noisy =
        base_perf * (1.0 + rng.normal(0.0, tb.measurement_noise));
    perf_sum += std::max(0.0, noisy);
    seconds_sum += base_seconds;
  }
  EXPECT_EQ(eval.perf_mbps, perf_sum / tb.runs_per_eval);
  EXPECT_EQ(eval.eval_seconds,
            seconds_sum / tb.runs_per_eval + tb.launch_overhead_seconds);
}

TEST(WorkloadObjective, BatchMatchesSerialEvaluation) {
  auto serial = hacc_objective(small_testbed());
  auto batched = hacc_objective(small_testbed());
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  std::vector<cfg::Configuration> configs;
  for (std::size_t p = 0; p < 6; ++p) {
    cfg::Configuration config = space.default_configuration();
    config.set_index(p, space.parameter(p).domain.size() - 1);
    configs.push_back(config);
  }
  const std::vector<Evaluation> batch = batched->evaluate_batch(configs);
  ASSERT_EQ(batch.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Evaluation one = serial->evaluate(configs[i]);
    EXPECT_EQ(batch[i].perf_mbps, one.perf_mbps) << "config " << i;
    EXPECT_EQ(batch[i].eval_seconds, one.eval_seconds) << "config " << i;
  }
  EXPECT_EQ(batched->evaluations(), configs.size());
}

TEST(KernelObjective, RunsMiniCPrograms) {
  const minic::Program program = minic::parse(wl::sources::hacc());
  auto objective = make_kernel_objective(program, small_testbed());
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const Evaluation eval = objective->evaluate(space.default_configuration());
  EXPECT_GT(eval.perf_mbps, 0.0);
  EXPECT_GT(eval.detail.counters.bytes_written, 0u);
}

TEST(GeneticTuner, FindsSyntheticOptimum) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions ga;
  ga.max_generations = 30;
  ga.seed = 11;
  GeneticTuner tuner(space, objective, ga);
  const TuningResult result = tuner.run();
  ASSERT_TRUE(result.best_config.has_value());
  EXPECT_EQ(result.best_config->value("striping_factor"), 32u);
  EXPECT_EQ(result.best_config->value("coll_metadata_write"), 1u);
  EXPECT_NEAR(result.best_perf, 110.0, 1e-9);
}

TEST(GeneticTuner, BestPerfIsMonotone) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions ga;
  ga.max_generations = 20;
  GeneticTuner tuner(space, objective, ga);
  const TuningResult result = tuner.run();
  double prev = -1.0;
  for (const GenerationStats& gen : result.history) {
    EXPECT_GE(gen.best_perf, prev);  // elitism: never regresses
    prev = gen.best_perf;
  }
  EXPECT_EQ(result.generations_run, 20u);
  EXPECT_FALSE(result.early_stopped);
}

TEST(GeneticTuner, CumulativeTimeIsMonotone) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions ga;
  ga.max_generations = 10;
  GeneticTuner tuner(space, objective, ga);
  const TuningResult result = tuner.run();
  double prev = 0.0;
  for (const GenerationStats& gen : result.history) {
    EXPECT_GE(gen.cumulative_seconds, prev);
    prev = gen.cumulative_seconds;
  }
  EXPECT_DOUBLE_EQ(result.total_seconds, prev);
}

TEST(GeneticTuner, CachingAvoidsReEvaluatingElites) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions ga;
  ga.max_generations = 15;
  ga.cache_evaluations = true;
  GeneticTuner tuner(space, objective, ga);
  tuner.run();
  // Without caching this would be pop*gens = 240 evaluations.
  EXPECT_LT(objective.evaluations(), 240u);
}

TEST(GeneticTuner, CacheHitsDoNotAdvanceTheBudget) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions ga;
  ga.max_generations = 15;
  ga.cache_evaluations = true;
  GeneticTuner tuner(space, objective, ga);
  const TuningResult result = tuner.run();
  // The fitness cache stores the full Evaluation, and hits bill zero
  // seconds: every simulated second in the budget corresponds to exactly
  // one fresh evaluation (SyntheticObjective charges a flat 30 s).
  EXPECT_DOUBLE_EQ(result.total_seconds,
                   30.0 * static_cast<double>(objective.evaluations()));
}

TEST(GeneticTuner, InitialPerfComesFromDefaults) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions ga;
  ga.max_generations = 3;
  GeneticTuner tuner(space, objective, ga);
  const TuningResult result = tuner.run();
  // default: striping 1, coll_meta_write 0 -> 100 - 31 = 69.
  EXPECT_NEAR(result.initial_perf, 69.0, 1e-9);
}

TEST(GeneticTuner, SubsetMaskFreezesOtherGenes) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions ga;
  ga.max_generations = 25;
  ga.seed = 2;
  GeneticTuner tuner(space, objective, ga);
  // Only allow tuning the (useless) sieve buffer: striping can never
  // improve beyond what generation 0 stumbled on.
  const std::size_t sieve = space.index_of("sieve_buf_size");
  tuner.set_subset_provider(
      [sieve](unsigned, const TuningResult&) {
        return std::vector<std::size_t>{sieve};
      });
  const TuningResult masked = tuner.run();

  GeneticTuner free_tuner(space, objective, ga);
  const TuningResult free_run = free_tuner.run();
  EXPECT_GT(free_run.best_perf, masked.best_perf);
}

TEST(GeneticTuner, StopperTerminatesRun) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions ga;
  ga.max_generations = 50;
  GeneticTuner tuner(space, objective, ga);
  tuner.set_stopper([](unsigned generation, const TuningResult&) {
    return generation >= 7;
  });
  const TuningResult result = tuner.run();
  EXPECT_TRUE(result.early_stopped);
  EXPECT_EQ(result.generations_run, 8u);
}

TEST(GeneticTuner, RejectsBadOptions) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  SyntheticObjective objective(space);
  GaOptions tiny;
  tiny.population = 2;
  EXPECT_THROW(GeneticTuner(space, objective, tiny), Error);
  GaOptions elitist;
  elitist.population = 8;
  elitist.elitism = 8;
  EXPECT_THROW(GeneticTuner(space, objective, elitist), Error);
}

TEST(HeuristicStopper, FiresAfterStagnationWindow) {
  auto stopper = make_heuristic_stopper(0.05, 5);
  TuningResult progress;
  progress.initial_perf = 100.0;
  // Rising phase: no stop.
  for (unsigned g = 0; g < 6; ++g) {
    GenerationStats stats;
    stats.generation = g;
    stats.best_perf = 100.0 + 20.0 * g;
    progress.history.push_back(stats);
    progress.best_perf = stats.best_perf;
    EXPECT_FALSE(stopper(g, progress)) << "generation " << g;
  }
  // Flat phase: stops after the 5-iteration window.
  for (unsigned g = 6; g < 12; ++g) {
    GenerationStats stats;
    stats.generation = g;
    stats.best_perf = 200.0;
    progress.history.push_back(stats);
    progress.best_perf = 200.0;
    const bool stop = stopper(g, progress);
    if (g >= 10) {
      EXPECT_TRUE(stop) << "generation " << g;
      break;
    }
  }
}

TEST(HeuristicStopper, SlowGrowthBelowThresholdStops) {
  auto stopper = make_heuristic_stopper(0.05, 5);
  TuningResult progress;
  for (unsigned g = 0; g < 12; ++g) {
    GenerationStats stats;
    stats.generation = g;
    stats.best_perf = 100.0 * (1.0 + 0.001 * g);  // 0.1% per generation
    progress.history.push_back(stats);
    progress.best_perf = stats.best_perf;
    if (g > 5) {
      EXPECT_TRUE(stopper(g, progress));
      return;
    }
  }
  FAIL() << "should have stopped";
}

TEST(MaxPerformanceStopper, StopsAtTarget) {
  auto stopper = make_max_performance_stopper(150.0);
  TuningResult progress;
  progress.best_perf = 149.0;
  EXPECT_FALSE(stopper(3, progress));
  progress.best_perf = 150.0;
  EXPECT_TRUE(stopper(4, progress));
}

TEST(NoStopper, NeverStops) {
  auto stopper = make_no_stopper();
  TuningResult progress;
  progress.best_perf = 1e9;
  EXPECT_FALSE(stopper(1000, progress));
}

/// Property: across seeds, the GA on the real stack never loses to the
/// default configuration, and tuning time grows with generations.
class GaSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaSeedProperty, BeatsDefaultsOnRealStack) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  auto objective = hacc_objective(small_testbed());
  GaOptions ga;
  ga.max_generations = 8;
  ga.population = 8;
  ga.seed = GetParam();
  GeneticTuner tuner(space, *objective, ga);
  const TuningResult result = tuner.run();
  EXPECT_GE(result.best_perf, result.initial_perf);
  EXPECT_GT(result.total_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaSeedProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace tunio::tuner
