// Tests for the application workloads: each runs on the stack, produces
// sane metering, honors RunOptions (kernel/loop-reduction/path-switch),
// and matches its mini-C twin.
#include <gtest/gtest.h>

#include "config/stack_settings.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "workloads/sources.hpp"
#include "workloads/workload.hpp"

namespace tunio::wl {
namespace {

RunResult run(const Workload& workload, const RunOptions& options = {},
              unsigned ranks = 32) {
  mpisim::MpiSim mpi(ranks);
  pfs::PfsSimulator fs;
  return workload.run(mpi, fs, cfg::default_settings(), options);
}

// Small parameterizations keep the suite fast.
VpicParams small_vpic() {
  VpicParams p;
  p.particles_per_rank = 1 << 14;
  return p;
}
FlashParams small_flash() {
  FlashParams p;
  p.blocks_per_rank = 4;
  p.checkpoint_datasets = 4;
  p.plotfile_datasets = 2;
  return p;
}
HaccParams small_hacc() {
  HaccParams p;
  p.particles_per_rank = 1 << 15;
  return p;
}
MacsioParams small_macsio() {
  MacsioParams p;
  p.num_dumps = 4;
  p.bytes_per_rank_per_dump = 2 * MiB;
  p.log_writes_per_dump = 8;
  return p;
}
BdcatsParams small_bdcats() {
  BdcatsParams p;
  p.particles_per_rank = 1 << 15;
  p.clustering_rounds = 2;
  p.result_bytes_per_rank = 16 * KiB;
  return p;
}

TEST(Workloads, VpicWritesEightVariables) {
  auto vpic = make_vpic(small_vpic());
  const RunResult result = run(*vpic);
  EXPECT_EQ(vpic->name(), "VPIC-IO");
  EXPECT_DOUBLE_EQ(vpic->design_alpha(), 1.0);
  // 7 vars * 4B + 1 var * 8B = 36 bytes/particle/step, 2 steps, 32 ranks.
  const Bytes payload = 2ull * 32 * (1 << 14) * 36;
  EXPECT_GE(result.perf.counters.bytes_written, payload);
  EXPECT_LE(result.perf.counters.bytes_written, payload + 256 * KiB);
  EXPECT_NEAR(result.perf.alpha, 1.0, 1e-9);
  EXPECT_GT(result.perf.perf_mbps, 0.0);
}

TEST(Workloads, FlashIsMetadataHeavy) {
  auto flash = make_flash(small_flash());
  const RunResult result = run(*flash);
  auto hacc = make_hacc(small_hacc());
  const RunResult hacc_result = run(*hacc);
  // FLASH touches far more metadata per payload byte than HACC.
  const double flash_meta_rate =
      static_cast<double>(result.perf.counters.metadata_ops) /
      static_cast<double>(result.perf.counters.bytes_written);
  const double hacc_meta_rate =
      static_cast<double>(hacc_result.perf.counters.metadata_ops) /
      static_cast<double>(hacc_result.perf.counters.bytes_written);
  EXPECT_GT(flash_meta_rate, hacc_meta_rate);
}

TEST(Workloads, HaccWritesNineVariables) {
  auto hacc = make_hacc(small_hacc());
  const RunResult result = run(*hacc);
  // 7*4 + 8 + 2 = 38 bytes per particle.
  const Bytes payload = 32ull * (1 << 15) * 38;
  EXPECT_GE(result.perf.counters.bytes_written, payload);
  EXPECT_LE(result.perf.counters.bytes_written, payload + 256 * KiB);
}

TEST(Workloads, MacsioLogWritesAreOptional) {
  auto macsio = make_macsio(small_macsio());
  RunOptions with_logs;
  RunOptions without_logs;
  without_logs.include_log_writes = false;
  const RunResult logged = run(*macsio, with_logs);
  const RunResult clean = run(*macsio, without_logs);
  EXPECT_GT(logged.perf.counters.write_ops, clean.perf.counters.write_ops);
  // Log bytes are negligible next to the payload.
  EXPECT_NEAR(static_cast<double>(logged.perf.counters.bytes_written),
              static_cast<double>(clean.perf.counters.bytes_written),
              static_cast<double>(logged.perf.counters.bytes_written) * 0.01);
}

TEST(Workloads, BdcatsIsReadDominated) {
  auto bdcats = make_bdcats(small_bdcats());
  const RunResult result = run(*bdcats);
  EXPECT_LT(result.perf.alpha, 0.2);
  EXPECT_GT(result.perf.counters.bytes_read,
            result.perf.counters.bytes_written * 5);
  EXPECT_GT(result.perf.bw_read_mbps, 0.0);
}

TEST(Workloads, ComputeScaleZeroShrinksRuntimeNotBandwidth) {
  auto macsio = make_macsio(small_macsio());
  RunOptions full;
  RunOptions kernel;
  kernel.compute_scale = 0.0;
  const RunResult full_run = run(*macsio, full);
  const RunResult kernel_run = run(*macsio, kernel);
  // The I/O kernel runs much faster...
  EXPECT_LT(kernel_run.sim_seconds, full_run.sim_seconds * 0.5);
  // ...but measures (nearly) the same write bandwidth.
  EXPECT_NEAR(kernel_run.perf.perf_mbps, full_run.perf.perf_mbps,
              full_run.perf.perf_mbps * 0.15);
}

TEST(Workloads, LoopReductionScalesIoAndExtrapolates) {
  auto macsio = make_macsio(small_macsio());
  RunOptions reduced;
  reduced.loop_scale = 0.25;  // 4 dumps -> 1 dump
  const RunResult full_run = run(*macsio);
  const RunResult reduced_run = run(*macsio, reduced);
  EXPECT_LT(reduced_run.perf.counters.bytes_written,
            full_run.perf.counters.bytes_written);
  // Extrapolated payload matches the full run's payload (logs aside).
  EXPECT_NEAR(reduced_run.predicted_bytes_written,
              static_cast<double>(full_run.perf.counters.bytes_written),
              static_cast<double>(full_run.perf.counters.bytes_written) *
                  0.05);
}

TEST(Workloads, LoopReductionNeverBelowOneIteration) {
  auto vpic = make_vpic(small_vpic());
  RunOptions tiny;
  tiny.loop_scale = 0.0001;  // far below one iteration
  const RunResult result = run(*vpic, tiny);
  EXPECT_GT(result.perf.counters.bytes_written, 0u);
}

TEST(Workloads, MemoryTierSpeedsUpIo) {
  auto hacc = make_hacc(small_hacc());
  RunOptions disk;
  disk.compute_scale = 0.0;
  RunOptions memory = disk;
  memory.memory_tier = true;
  const RunResult disk_run = run(*hacc, disk);
  const RunResult memory_run = run(*hacc, memory);
  EXPECT_LT(memory_run.sim_seconds, disk_run.sim_seconds);
}

TEST(Workloads, TunedConfigurationBeatsDefaults) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  cfg::Configuration tuned_config = space.default_configuration();
  tuned_config.set_index(space.index_of("striping_factor"), 5);  // 32
  tuned_config.set_index(space.index_of("cb_nodes"), 4);         // 16
  tuned_config.set_index(space.index_of("romio_collective"), 1); // enable
  tuned_config.set_index(space.index_of("chunk_cache"), 5);      // 32 MiB
  const cfg::StackSettings tuned = cfg::resolve(tuned_config);

  // Paper-scale workloads: tuning only pays off once dumps are large
  // enough to be bandwidth-bound (simulation cost scales with op count,
  // not bytes, so full-size runs are still cheap).
  for (const auto& factory :
       {make_vpic(), make_flash(), make_hacc(), make_macsio(),
        make_bdcats()}) {
    mpisim::MpiSim mpi_a(32);
    pfs::PfsSimulator fs_a;
    const RunResult defaults =
        factory->run(mpi_a, fs_a, cfg::default_settings(), {});
    mpisim::MpiSim mpi_b(32);
    pfs::PfsSimulator fs_b;
    const RunResult better = factory->run(mpi_b, fs_b, tuned, {});
    EXPECT_GT(better.perf.perf_mbps, defaults.perf.perf_mbps)
        << factory->name();
  }
}

TEST(Workloads, MiniCTwinsMatchNativePayloads) {
  // The mini-C VPIC writes the same bytes as the native driver
  // (same particles, variables, element sizes, timesteps).
  mpisim::MpiSim mpi(8);
  pfs::PfsSimulator fs;
  const auto interp_result = interp::execute(
      minic::parse(sources::vpic()), mpi, fs, cfg::default_settings(), {});
  VpicParams params;  // defaults match the source constants
  auto native = make_vpic(params);
  mpisim::MpiSim mpi2(8);
  pfs::PfsSimulator fs2;
  const RunResult native_result =
      native->run(mpi2, fs2, cfg::default_settings(), {});
  // Payload identical up to the log writes the mini-C version makes.
  EXPECT_NEAR(
      static_cast<double>(interp_result.perf.counters.bytes_written),
      static_cast<double>(native_result.perf.counters.bytes_written),
      static_cast<double>(native_result.perf.counters.bytes_written) * 0.01);
}

/// Property: every workload's measured alpha is close to its design alpha
/// across rank counts.
class AlphaProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlphaProperty, MeasuredAlphaTracksDesign) {
  const unsigned ranks = GetParam();
  for (const auto& factory :
       {make_vpic(small_vpic()), make_hacc(small_hacc()),
        make_macsio(small_macsio())}) {
    mpisim::MpiSim mpi(ranks);
    pfs::PfsSimulator fs;
    const RunResult result =
        factory->run(mpi, fs, cfg::default_settings(), {});
    EXPECT_NEAR(result.perf.alpha, factory->design_alpha(), 0.1)
        << factory->name() << " at " << ranks << " ranks";
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AlphaProperty,
                         ::testing::Values(4u, 16u, 64u));

}  // namespace
}  // namespace tunio::wl
