// Tests for the common module: units, RNG, resource timelines, stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timeline.hpp"
#include "common/units.hpp"

namespace tunio {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_mbps(1e6), 1.0);
  EXPECT_DOUBLE_EQ(to_mbps(2.5 * GB), 2500.0);
  EXPECT_DOUBLE_EQ(to_minutes(120.0), 2.0);
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4 * MiB), "4.00 MiB");
  EXPECT_EQ(format_bytes(3 * GiB), "3.00 GiB");
  EXPECT_EQ(format_bandwidth(2.5 * GB), "2.50 GB/s");
  EXPECT_EQ(format_bandwidth(120 * MB), "120.00 MB/s");
  EXPECT_EQ(format_minutes(90.0), "1.5 min");
}

TEST(Error, CheckMacroThrows) {
  EXPECT_THROW(TUNIO_CHECK(false), Error);
  EXPECT_NO_THROW(TUNIO_CHECK(true));
  try {
    TUNIO_CHECK_MSG(false, "context message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"), std::string::npos);
  }
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(3);
  EXPECT_THROW(rng.index(0), Error);
}

TEST(Rng, ChoiceAndShuffle) {
  Rng rng(4);
  std::vector<int> items{1, 2, 3, 4, 5};
  for (int i = 0; i < 50; ++i) {
    const int c = rng.choice(items);
    EXPECT_TRUE(std::find(items.begin(), items.end(), c) != items.end());
  }
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);  // permutation preserves the multiset
}

TEST(Rng, ForkIndependence) {
  Rng parent(7);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(7);
  (void)parent2.engine()();  // parent consumed one draw to fork
  EXPECT_NE(child.uniform(), parent.uniform());
}

TEST(ResourceTimeline, SerializesOverlappingRequests) {
  ResourceTimeline tl;
  const auto g1 = tl.acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(g1.begin, 0.0);
  EXPECT_DOUBLE_EQ(g1.end, 1.0);
  // Arrives at 0.5 but must queue behind g1.
  const auto g2 = tl.acquire(0.5, 2.0);
  EXPECT_DOUBLE_EQ(g2.begin, 1.0);
  EXPECT_DOUBLE_EQ(g2.end, 3.0);
  EXPECT_EQ(tl.grants(), 2u);
  EXPECT_DOUBLE_EQ(tl.busy_time(), 3.0);
}

TEST(ResourceTimeline, IdleGapRespected) {
  ResourceTimeline tl;
  tl.acquire(0.0, 1.0);
  const auto g = tl.acquire(10.0, 1.0);
  EXPECT_DOUBLE_EQ(g.begin, 10.0);  // no work between 1 and 10
  EXPECT_DOUBLE_EQ(g.end, 11.0);
}

TEST(ResourceTimeline, RejectsNegativeDuration) {
  ResourceTimeline tl;
  EXPECT_THROW(tl.acquire(0.0, -1.0), Error);
}

TEST(ResourceTimeline, Reset) {
  ResourceTimeline tl;
  tl.acquire(0.0, 5.0);
  tl.reset();
  EXPECT_DOUBLE_EQ(tl.next_free(), 0.0);
  EXPECT_EQ(tl.grants(), 0u);
}

TEST(SharedChannel, LatencyPlusDrain) {
  SharedChannel ch(100.0, 0.5);  // 100 B/s, 0.5 s latency
  const SimSeconds done = ch.transfer(0.0, 100);
  EXPECT_DOUBLE_EQ(done, 1.5);  // 0.5 latency + 1.0 drain
  EXPECT_EQ(ch.bytes_moved(), 100u);
}

TEST(SharedChannel, BackToBackTransfersShareBandwidth) {
  SharedChannel ch(100.0, 0.0);
  const SimSeconds first = ch.transfer(0.0, 100);   // drains [0,1]
  const SimSeconds second = ch.transfer(0.0, 100);  // queues behind
  EXPECT_DOUBLE_EQ(first, 1.0);
  EXPECT_DOUBLE_EQ(second, 2.0);
}

TEST(SharedChannel, RejectsBadProfile) {
  EXPECT_THROW(SharedChannel(0.0, 0.0), Error);
  EXPECT_THROW(SharedChannel(1.0, -1.0), Error);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(Stats, EmptySeriesThrow) {
  EXPECT_THROW(mean({}), Error);
  EXPECT_THROW(min_of({}), Error);
  EXPECT_THROW(percentile({}, 50.0), Error);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_THROW(percentile(xs, 101.0), Error);
}

TEST(Stats, Linspace) {
  const auto xs = linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
  const std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(Stats, Ema) {
  const auto smoothed = ema({1.0, 1.0, 1.0}, 0.5);
  ASSERT_EQ(smoothed.size(), 3u);
  EXPECT_DOUBLE_EQ(smoothed[0], 1.0);
  EXPECT_DOUBLE_EQ(smoothed[2], 1.0);
  EXPECT_THROW(ema({1.0}, 0.0), Error);
}

/// Property: a timeline's busy time equals the sum of granted durations,
/// and grants never overlap, for arbitrary request patterns.
class TimelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineProperty, GrantsNeverOverlap) {
  Rng rng(GetParam());
  ResourceTimeline tl;
  double expected_busy = 0.0;
  double last_end = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double start = rng.uniform(0.0, 100.0);
    const double duration = rng.uniform(0.0, 2.0);
    const auto grant = tl.acquire(start, duration);
    EXPECT_GE(grant.begin, start);
    EXPECT_GE(grant.begin, last_end);  // FIFO: no overlap with predecessor
    EXPECT_DOUBLE_EQ(grant.end, grant.begin + duration);
    last_end = grant.end;
    expected_busy += duration;
  }
  EXPECT_NEAR(tl.busy_time(), expected_busy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineProperty,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

/// Property: channel completion is monotone in bytes for a fixed start.
class ChannelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelProperty, MonotoneInBytes) {
  const Bytes base = GetParam();
  SharedChannel a(1e6, 1e-3);
  SharedChannel b(1e6, 1e-3);
  const SimSeconds small = a.transfer(0.0, base);
  const SimSeconds large = b.transfer(0.0, base * 2);
  EXPECT_LT(small, large);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelProperty,
                         ::testing::Values(1, 1024, 65536, 1048576));

}  // namespace
}  // namespace tunio
