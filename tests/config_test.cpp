// Tests for the configuration space, XML serialization, stack settings,
// and the Figure-1 library inventories.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "config/inventory.hpp"
#include "config/space.hpp"
#include "config/stack_settings.hpp"
#include "config/xml.hpp"

namespace tunio::cfg {
namespace {

TEST(ConfigSpace, Tunio12HasTwelveParameters) {
  const ConfigSpace space = ConfigSpace::tunio12();
  EXPECT_EQ(space.num_parameters(), 12u);
  // The paper's §IV: "a search space of over 2.18 billion permutations".
  EXPECT_GT(space.permutations(), 2.18e9);
  EXPECT_LT(space.permutations(), 1e10);  // same order of magnitude
  EXPECT_NEAR(space.log10_permutations(), std::log10(space.permutations()),
              1e-9);
}

TEST(ConfigSpace, AllPaperParametersPresent) {
  const ConfigSpace space = ConfigSpace::tunio12();
  for (const char* name :
       {"sieve_buf_size", "chunk_cache", "alignment", "meta_block_size",
        "mdc_config", "coll_metadata_ops", "coll_metadata_write",
        "striping_factor", "striping_unit", "cb_nodes", "cb_buffer_size",
        "romio_collective"}) {
    EXPECT_TRUE(space.has(name)) << name;
  }
  EXPECT_FALSE(space.has("bogus"));
  EXPECT_THROW(space.index_of("bogus"), Error);
}

TEST(ConfigSpace, LayerAssignment) {
  const ConfigSpace space = ConfigSpace::tunio12();
  EXPECT_EQ(space.parameter(space.index_of("striping_factor")).layer,
            Layer::kLustre);
  EXPECT_EQ(space.parameter(space.index_of("cb_nodes")).layer, Layer::kMpiIo);
  EXPECT_EQ(space.parameter(space.index_of("chunk_cache")).layer,
            Layer::kHdf5);
  EXPECT_EQ(layer_name(Layer::kHdf5), "High_Level_IO_Library");
  EXPECT_EQ(layer_name(Layer::kMpiIo), "Middleware_Layer");
  EXPECT_EQ(layer_name(Layer::kLustre), "Parallel_File_System");
}

TEST(Configuration, DefaultsAndMutation) {
  const ConfigSpace space = ConfigSpace::tunio12();
  Configuration config = space.default_configuration();
  EXPECT_EQ(config.size(), 12u);
  const std::size_t sf = space.index_of("striping_factor");
  EXPECT_EQ(config.value(sf), 1u);  // Lustre default: 1 stripe
  config.set_index(sf, 3);
  EXPECT_EQ(config.value(sf), 8u);
  EXPECT_EQ(config.value("striping_factor"), 8u);
  EXPECT_THROW(config.set_index(sf, 99), Error);
  EXPECT_THROW(config.set_index(99, 0), Error);
}

TEST(Configuration, EqualityAndToString) {
  const ConfigSpace space = ConfigSpace::tunio12();
  Configuration a = space.default_configuration();
  Configuration b = space.default_configuration();
  EXPECT_TRUE(a == b);
  b.set_index(0, 1);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.to_string().find("striping_factor="), std::string::npos);
}

TEST(Xml, RoundTripDefaults) {
  const ConfigSpace space = ConfigSpace::tunio12();
  const Configuration config = space.default_configuration();
  const std::string xml = to_xml(config);
  EXPECT_NE(xml.find("<Parameters>"), std::string::npos);
  EXPECT_NE(xml.find("<High_Level_IO_Library>"), std::string::npos);
  EXPECT_NE(xml.find("<Parallel_File_System>"), std::string::npos);
  const Configuration parsed = from_xml(space, xml);
  EXPECT_TRUE(parsed == config);
}

TEST(Xml, PartialDocumentKeepsDefaults) {
  const ConfigSpace space = ConfigSpace::tunio12();
  const std::string xml = R"(
    <Parameters>
      <Parallel_File_System>
        <striping_factor>16</striping_factor>
      </Parallel_File_System>
    </Parameters>)";
  const Configuration parsed = from_xml(space, xml);
  EXPECT_EQ(parsed.value("striping_factor"), 16u);
  // Everything else stays at its default.
  const Configuration defaults = space.default_configuration();
  EXPECT_EQ(parsed.value("cb_nodes"), defaults.value("cb_nodes"));
}

TEST(Xml, RejectsMalformedInput) {
  const ConfigSpace space = ConfigSpace::tunio12();
  EXPECT_THROW(from_xml(space, "<Parameters><Unclosed>"), Error);
  EXPECT_THROW(
      from_xml(space,
               "<Parameters><Middleware_Layer><nope>1</nope>"
               "</Middleware_Layer></Parameters>"),
      Error);
  // Value outside the parameter's domain.
  EXPECT_THROW(
      from_xml(space,
               "<Parameters><Parallel_File_System>"
               "<striping_factor>7</striping_factor>"
               "</Parallel_File_System></Parameters>"),
      Error);
}

/// Property: XML round-trip is the identity for random configurations.
class XmlRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlRoundTrip, Identity) {
  const ConfigSpace space = ConfigSpace::tunio12();
  Rng rng(GetParam());
  for (int i = 0; i < 25; ++i) {
    Configuration config = space.default_configuration();
    for (std::size_t p = 0; p < space.num_parameters(); ++p) {
      config.set_index(p, rng.index(space.parameter(p).domain.size()));
    }
    const Configuration parsed = from_xml(space, to_xml(config));
    EXPECT_TRUE(parsed == config);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(StackSettings, ResolveMapsEveryLayer) {
  const ConfigSpace space = ConfigSpace::tunio12();
  Configuration config = space.default_configuration();
  config.set_index(space.index_of("striping_factor"), 4);   // 16
  config.set_index(space.index_of("striping_unit"), 6);     // 4 MiB
  config.set_index(space.index_of("cb_nodes"), 3);          // 8
  config.set_index(space.index_of("romio_collective"), 1);  // enable
  config.set_index(space.index_of("alignment"), 4);         // 1 MiB
  config.set_index(space.index_of("coll_metadata_ops"), 1);
  const StackSettings s = resolve(config);
  EXPECT_EQ(*s.lustre.stripe_count, 16u);
  EXPECT_EQ(*s.lustre.stripe_size, 4 * MiB);
  EXPECT_EQ(s.mpiio.cb_nodes, 8u);
  EXPECT_EQ(s.mpiio.collective, mpiio::CollectiveMode::kEnable);
  EXPECT_EQ(s.fapl.alignment, 1 * MiB);
  EXPECT_TRUE(s.fapl.coll_metadata_ops);
  EXPECT_FALSE(s.fapl.coll_metadata_write);
}

TEST(StackSettings, DefaultSettingsMatchDefaults) {
  const StackSettings s = default_settings();
  EXPECT_EQ(*s.lustre.stripe_count, 1u);
  EXPECT_EQ(s.mpiio.collective, mpiio::CollectiveMode::kAuto);
  EXPECT_EQ(s.chunk_cache.rdcc_nbytes, 1 * MiB);
}

TEST(Inventory, Figure1Libraries) {
  const auto libs = figure1_inventories();
  ASSERT_GE(libs.size(), 6u);
  std::set<std::string> names;
  for (const auto& lib : libs) names.insert(lib.name);
  EXPECT_TRUE(names.count("HDF5"));
  EXPECT_TRUE(names.count("PNetCDF"));
  EXPECT_TRUE(names.count("ADIOS"));
  EXPECT_TRUE(names.count("Hermes"));
}

TEST(Inventory, Hdf5PlusMpiMatchesPaperOrder) {
  const auto libs = figure1_inventories();
  std::vector<LibraryInventory> stack;
  for (const auto& lib : libs) {
    if (lib.name == "HDF5" || lib.name.rfind("MPI", 0) == 0) {
      stack.push_back(lib);
    }
  }
  ASSERT_EQ(stack.size(), 2u);
  const double perms = stack_permutations(stack);
  // Paper: "a stack that includes HDF5 and MPI would have 3.81e21
  // parameter value permutations" — we land in the same decade.
  EXPECT_GT(perms, 1e21);
  EXPECT_LT(perms, 1e22);
}

TEST(Inventory, PermutationMathIsConsistent) {
  LibraryInventory lib{"X", 3, 1, 2};
  EXPECT_EQ(lib.total_params(), 6u);
  // 2^3 * 3 * 5^2 = 600.
  EXPECT_NEAR(lib.permutations(), 600.0, 1e-6);
}

}  // namespace
}  // namespace tunio::cfg
