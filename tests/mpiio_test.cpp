// Tests for the MPI-IO middleware: independent vs two-phase collective
// paths, hint handling, request coalescing.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mpiio/mpiio.hpp"

namespace tunio::mpiio {
namespace {

std::vector<Request> slab_requests(unsigned ranks, Bytes per_rank) {
  std::vector<Request> reqs;
  for (unsigned r = 0; r < ranks; ++r) {
    reqs.push_back({r, r * per_rank, per_rank});
  }
  return reqs;
}

TEST(MpiIoFile, OpenCreatesAndSynchronizes) {
  mpisim::MpiSim mpi(8);
  pfs::PfsSimulator fs;
  mpi.compute(3, 2.0);
  MpiIoFile file(mpi, fs, "/f", Hints{});
  EXPECT_TRUE(fs.exists("/f"));
  // Open is collective: all ranks leave together, past the laggard.
  EXPECT_DOUBLE_EQ(mpi.min_clock(), mpi.max_clock());
  EXPECT_GE(mpi.min_clock(), 2.0);
}

TEST(MpiIoFile, OpenExistingDoesNotTruncateLayout) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  pfs::CreateOptions wide;
  wide.stripe_count = 8;
  fs.create("/pre", 0.0, wide);
  MpiIoFile file(mpi, fs, "/pre", Hints{});
  EXPECT_EQ(fs.file_layout("/pre").stripe_count(), 8u);
}

TEST(MpiIoFile, IndependentWriteAdvancesOnlyThatRank) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  MpiIoFile file(mpi, fs, "/f", Hints{});
  const SimSeconds before = mpi.clock(1);
  file.write_at(2, 0, 4 * MiB);
  EXPECT_GT(mpi.clock(2), before);
  EXPECT_DOUBLE_EQ(mpi.clock(1), before);
  EXPECT_EQ(file.counters().independent_writes, 1u);
}

TEST(MpiIoFile, ZeroLengthOpsAreFree) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  MpiIoFile file(mpi, fs, "/f", Hints{});
  const SimSeconds before = mpi.clock(0);
  file.write_at(0, 0, 0);
  file.read_at(0, 0, 0);
  EXPECT_DOUBLE_EQ(mpi.clock(0), before);
  EXPECT_EQ(file.counters().independent_writes, 0u);
}

TEST(MpiIoFile, CollectiveEnableUsesTwoPhase) {
  mpisim::MpiSim mpi(16);
  pfs::PfsSimulator fs;
  Hints hints;
  hints.collective = CollectiveMode::kEnable;
  hints.cb_nodes = 4;
  MpiIoFile file(mpi, fs, "/f", hints);
  file.write_at_all(slab_requests(16, 256 * KiB));
  EXPECT_EQ(file.counters().collective_writes, 1u);
  EXPECT_GT(file.counters().aggregator_ops, 0u);
  EXPECT_GT(file.counters().shuffle_bytes, 0u);
  // All ranks synchronized after the collective call.
  EXPECT_DOUBLE_EQ(mpi.min_clock(), mpi.max_clock());
}

TEST(MpiIoFile, CollectiveDisableGoesIndependent) {
  mpisim::MpiSim mpi(16);
  pfs::PfsSimulator fs;
  Hints hints;
  hints.collective = CollectiveMode::kDisable;
  MpiIoFile file(mpi, fs, "/f", hints);
  file.write_at_all(slab_requests(16, 256 * KiB));
  EXPECT_EQ(file.counters().aggregator_ops, 0u);
  EXPECT_EQ(file.counters().shuffle_bytes, 0u);
  EXPECT_EQ(fs.counters().writes, 16u);  // one PFS write per rank
}

TEST(MpiIoFile, AutoModePicksCollectiveForSmallInterleaved) {
  mpisim::MpiSim mpi(32);
  pfs::PfsSimulator fs;
  Hints hints;  // kAuto
  MpiIoFile file(mpi, fs, "/f", hints);
  file.write_at_all(slab_requests(32, 64 * KiB));  // small pieces
  EXPECT_GT(file.counters().aggregator_ops, 0u);
}

TEST(MpiIoFile, AutoModePicksIndependentForLargeContiguous) {
  mpisim::MpiSim mpi(8);
  pfs::PfsSimulator fs;
  Hints hints;  // kAuto
  MpiIoFile file(mpi, fs, "/f", hints);
  file.write_at_all(slab_requests(8, 64 * MiB));  // huge per-rank slabs
  EXPECT_EQ(file.counters().aggregator_ops, 0u);
}

TEST(MpiIoFile, CollectiveBuffersBytesConserved) {
  mpisim::MpiSim mpi(16);
  pfs::PfsSimulator fs;
  Hints hints;
  hints.collective = CollectiveMode::kEnable;
  hints.cb_nodes = 4;
  MpiIoFile file(mpi, fs, "/f", hints);
  const Bytes per_rank = 512 * KiB;
  file.write_at_all(slab_requests(16, per_rank));
  EXPECT_EQ(fs.counters().bytes_written, 16 * per_rank);
}

TEST(MpiIoFile, MoreAggregatorsSpeedUpSmallWrites) {
  auto run_with = [](unsigned cb_nodes) {
    mpisim::MpiSim mpi(64);
    pfs::PfsSimulator fs;
    Hints hints;
    hints.collective = CollectiveMode::kEnable;
    hints.cb_nodes = cb_nodes;
    pfs::CreateOptions wide;
    wide.stripe_count = 16;
    MpiIoFile file(mpi, fs, "/f", hints, wide);
    file.write_at_all(slab_requests(64, 1 * MiB));
    return mpi.max_clock();
  };
  EXPECT_LT(run_with(16), run_with(1));
}

TEST(MpiIoFile, CollectiveReadMirrorsWrite) {
  mpisim::MpiSim mpi(8);
  pfs::PfsSimulator fs;
  Hints hints;
  hints.collective = CollectiveMode::kEnable;
  hints.cb_nodes = 2;
  MpiIoFile file(mpi, fs, "/f", hints);
  file.write_at_all(slab_requests(8, 256 * KiB));
  const Bytes written = fs.counters().bytes_written;
  file.read_at_all(slab_requests(8, 256 * KiB));
  EXPECT_EQ(file.counters().collective_reads, 1u);
  EXPECT_EQ(fs.counters().bytes_read, written);
}

TEST(MpiIoFile, OverlappingRequestsCoalesce) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  Hints hints;
  hints.collective = CollectiveMode::kEnable;
  hints.cb_nodes = 1;
  MpiIoFile file(mpi, fs, "/f", hints);
  // Two ranks write the same extent; the aggregator writes it once per
  // coalesced run, so PFS bytes < sum of request bytes.
  std::vector<Request> reqs{{0, 0, 1 * MiB}, {1, 0, 1 * MiB}};
  file.write_at_all(reqs);
  EXPECT_EQ(fs.counters().bytes_written, 1 * MiB);
}

TEST(MpiIoFile, CloseIsIdempotentAndBlocksIo) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  MpiIoFile file(mpi, fs, "/f", Hints{});
  file.close();
  file.close();
  EXPECT_THROW(file.write_at(0, 0, 1), Error);
  EXPECT_THROW(file.read_at(0, 0, 1), Error);
}

TEST(MpiIoFile, EmptyCollectiveIsCheap) {
  mpisim::MpiSim mpi(4);
  pfs::PfsSimulator fs;
  Hints hints;
  hints.collective = CollectiveMode::kEnable;
  MpiIoFile file(mpi, fs, "/f", hints);
  std::vector<Request> empty{{0, 0, 0}, {1, 0, 0}};
  file.write_at_all(empty);
  EXPECT_EQ(fs.counters().bytes_written, 0u);
}

TEST(MpiIoFile, RejectsBadHints) {
  mpisim::MpiSim mpi(2);
  pfs::PfsSimulator fs;
  Hints bad;
  bad.cb_nodes = 0;
  EXPECT_THROW(MpiIoFile(mpi, fs, "/f", bad), Error);
  Hints bad2;
  bad2.cb_buffer_size = 0;
  EXPECT_THROW(MpiIoFile(mpi, fs, "/g", bad2), Error);
}

/// Property: collective writes conserve bytes for any (ranks, size) combo.
class TwoPhaseProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, Bytes>> {};

TEST_P(TwoPhaseProperty, BytesConserved) {
  const auto [ranks, per_rank] = GetParam();
  mpisim::MpiSim mpi(ranks);
  pfs::PfsSimulator fs;
  Hints hints;
  hints.collective = CollectiveMode::kEnable;
  hints.cb_nodes = std::min(8u, ranks);
  MpiIoFile file(mpi, fs, "/f", hints);
  file.write_at_all(slab_requests(ranks, per_rank));
  EXPECT_EQ(fs.counters().bytes_written,
            static_cast<Bytes>(ranks) * per_rank);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TwoPhaseProperty,
    ::testing::Combine(::testing::Values(1u, 3u, 16u, 64u),
                       ::testing::Values(Bytes{4 * KiB}, Bytes{1 * MiB},
                                         Bytes{3 * MiB + 17})));

}  // namespace
}  // namespace tunio::mpiio
