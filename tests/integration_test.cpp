// Integration tests across modules: source → kernel → tuning → applied
// configuration, pipeline variants, XML config injection.
#include <gtest/gtest.h>

#include "config/xml.hpp"
#include "core/pipeline.hpp"
#include "core/roti.hpp"
#include "core/tunio.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "tuner/objective.hpp"
#include "workloads/sources.hpp"
#include "workloads/workload.hpp"

namespace tunio {
namespace {

tuner::TestbedOptions small_testbed() {
  tuner::TestbedOptions tb;
  tb.num_ranks = 16;
  tb.runs_per_eval = 1;
  return tb;
}

TEST(Integration, DiscoverThenTuneKernelTransfersToFullApp) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();

  // 1. Reduce MACSio to its I/O kernel.
  const auto kernel = discovery::discover_io(wl::sources::macsio_vpic(), {});

  // 2. Tune the kernel (cheap evaluations).
  auto kernel_objective =
      tuner::make_kernel_objective(kernel.kernel, small_testbed());
  tuner::GaOptions ga;
  ga.max_generations = 8;
  ga.population = 8;
  tuner::GeneticTuner tuner_run(space, *kernel_objective, ga);
  const tuner::TuningResult tuned = tuner_run.run();
  ASSERT_TRUE(tuned.best_config.has_value());

  // 3. The kernel-tuned configuration speeds up the *full* application.
  const minic::Program full = minic::parse(wl::sources::macsio_vpic());
  auto run_full = [&](const cfg::Configuration& config) {
    mpisim::MpiSim mpi(16);
    pfs::PfsSimulator fs;
    return interp::execute(full, mpi, fs, cfg::resolve(config), {})
        .perf.perf_mbps;
  };
  const double default_perf = run_full(space.default_configuration());
  const double tuned_perf = run_full(*tuned.best_config);
  EXPECT_GT(tuned_perf, default_perf);
}

TEST(Integration, KernelEvaluationIsCheaperSameObjective) {
  const auto kernel = discovery::discover_io(wl::sources::macsio_vpic(), {});
  const minic::Program full = minic::parse(wl::sources::macsio_vpic());
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  const cfg::StackSettings settings =
      cfg::resolve(space.default_configuration());

  mpisim::MpiSim mpi_full(16);
  pfs::PfsSimulator fs_full;
  const auto full_run =
      interp::execute(full, mpi_full, fs_full, settings, {});
  mpisim::MpiSim mpi_kernel(16);
  pfs::PfsSimulator fs_kernel;
  const auto kernel_run =
      interp::execute(kernel.kernel, mpi_kernel, fs_kernel, settings, {});

  // The evaluation is far cheaper (compute stripped)...
  EXPECT_LT(kernel_run.sim_seconds, full_run.sim_seconds * 0.5);
  // ...while the measured objective matches within a few percent.
  EXPECT_NEAR(kernel_run.perf.perf_mbps, full_run.perf.perf_mbps,
              full_run.perf.perf_mbps * 0.10);
}

TEST(Integration, LoopReducedKernelPredictsFullMetrics) {
  discovery::DiscoveryOptions options;
  options.loop_reduction = 0.01;
  const auto reduced =
      discovery::discover_io(wl::sources::macsio_vpic(), options);
  const minic::Program full = minic::parse(wl::sources::macsio_vpic());
  const cfg::StackSettings settings = cfg::default_settings();

  mpisim::MpiSim mpi_full(16);
  pfs::PfsSimulator fs_full;
  const auto full_run = interp::execute(full, mpi_full, fs_full, settings, {});
  mpisim::MpiSim mpi_red(16);
  pfs::PfsSimulator fs_red;
  const auto reduced_run =
      interp::execute(reduced.kernel, mpi_red, fs_red, settings, {});

  // Bytes-written prediction is within a few percent of the real app
  // (Fig. 8c: 0.19% error for the reduced kernel; logging bytes differ).
  const double full_bytes =
      static_cast<double>(full_run.perf.counters.bytes_written);
  EXPECT_NEAR(reduced_run.predicted_bytes_written, full_bytes,
              full_bytes * 0.05);
  // And it runs dramatically faster than even the plain kernel.
  EXPECT_LT(reduced_run.sim_seconds, full_run.sim_seconds * 0.05);
}

TEST(Integration, PathSwitchedKernelTouchesNoOsts) {
  discovery::DiscoveryOptions options;
  options.path_switching = true;
  const auto switched =
      discovery::discover_io(wl::sources::macsio_vpic(), options);
  mpisim::MpiSim mpi(16);
  pfs::PfsSimulator fs;
  interp::execute(switched.kernel, mpi, fs, cfg::default_settings(), {});
  for (const SimSeconds busy : fs.ost_busy_times()) {
    EXPECT_DOUBLE_EQ(busy, 0.0);
  }
}

TEST(Integration, XmlConfigDrivesTheStack) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  // A hand-written H5Tuner-style override file.
  const std::string xml = R"(
    <Parameters>
      <High_Level_IO_Library>
        <chunk_cache>33554432</chunk_cache>
      </High_Level_IO_Library>
      <Middleware_Layer>
        <cb_nodes>16</cb_nodes>
        <romio_collective>1</romio_collective>
      </Middleware_Layer>
      <Parallel_File_System>
        <striping_factor>32</striping_factor>
      </Parallel_File_System>
    </Parameters>)";
  const cfg::Configuration config = cfg::from_xml(space, xml);

  // Paper-scale HACC (1 Mi particles/rank): large enough that striping
  // and aggregation dominate over per-request latency.
  auto hacc = wl::make_hacc();
  mpisim::MpiSim mpi_a(16);
  pfs::PfsSimulator fs_a;
  const auto defaults = hacc->run(mpi_a, fs_a, cfg::default_settings(), {});
  mpisim::MpiSim mpi_b(16);
  pfs::PfsSimulator fs_b;
  const auto tuned = hacc->run(mpi_b, fs_b, cfg::resolve(config), {});
  EXPECT_GT(tuned.perf.perf_mbps, defaults.perf.perf_mbps * 1.5);
}

TEST(Integration, PipelineVariantsOrderAsExpected) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  wl::HaccParams params;
  params.particles_per_rank = 1 << 15;
  wl::RunOptions kernel_opts;
  kernel_opts.compute_scale = 0.0;

  tuner::GaOptions ga;
  ga.max_generations = 12;
  ga.population = 8;

  auto fresh_objective = [&] {
    return tuner::make_workload_objective(
        std::shared_ptr<const wl::Workload>(wl::make_hacc(params)),
        small_testbed(), kernel_opts);
  };

  auto full = fresh_objective();
  const auto no_stop = core::run_pipeline(
      space, *full, nullptr, {"NoStop", false, core::StopPolicy::kNone}, ga);

  auto heur = fresh_objective();
  const auto heuristic = core::run_pipeline(
      space, *heur, nullptr, {"Heuristic", false, core::StopPolicy::kHeuristic},
      ga);

  // The heuristic cannot run longer than the full budget, nor spend more.
  EXPECT_LE(heuristic.result.generations_run, no_stop.result.generations_run);
  EXPECT_LE(heuristic.result.total_seconds, no_stop.result.total_seconds);
  // Both improve on the defaults.
  EXPECT_GT(no_stop.result.best_perf, no_stop.result.initial_perf);
  EXPECT_GT(heuristic.result.best_perf, heuristic.result.initial_perf);
  // RoTI is computable on both.
  EXPECT_GT(core::final_roti(heuristic.result), 0.0);
}

TEST(Integration, MaxPerfVariantNeedsNoTunio) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  wl::HaccParams params;
  params.particles_per_rank = 1 << 15;
  wl::RunOptions kernel_opts;
  kernel_opts.compute_scale = 0.0;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc(params)),
      small_testbed(), kernel_opts);
  tuner::GaOptions ga;
  ga.max_generations = 12;
  ga.population = 8;
  core::PipelineVariant variant{"MaxPerf", false, core::StopPolicy::kMaxPerf};
  variant.max_perf_target = 1.0;  // trivially reached
  const auto run = core::run_pipeline(space, *objective, nullptr, variant, ga);
  EXPECT_TRUE(run.result.early_stopped);
  EXPECT_EQ(run.result.generations_run, 1u);
}

TEST(Integration, TunioVariantRequiresTunioInstance) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  wl::HaccParams params;
  params.particles_per_rank = 1 << 15;
  auto objective = tuner::make_workload_objective(
      std::shared_ptr<const wl::Workload>(wl::make_hacc(params)),
      small_testbed());
  EXPECT_THROW(core::run_pipeline(space, *objective, nullptr,
                                  {"TunIO", true, core::StopPolicy::kTunio}),
               Error);
}

}  // namespace
}  // namespace tunio
