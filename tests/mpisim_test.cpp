// Tests for the simulated MPI runtime.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mpisim/mpisim.hpp"

namespace tunio::mpisim {
namespace {

TEST(MpiSim, RankCountAndNodes) {
  MpiSim mpi(128);
  EXPECT_EQ(mpi.size(), 128u);
  EXPECT_EQ(mpi.num_nodes(), 4u);  // 32 ranks/node
  MpiSim small(5);
  EXPECT_EQ(small.num_nodes(), 1u);
  EXPECT_THROW(MpiSim(0), Error);
}

TEST(MpiSim, ComputeAdvancesOneRankOnly) {
  MpiSim mpi(4);
  mpi.compute(2, 1.5);
  EXPECT_DOUBLE_EQ(mpi.clock(2), 1.5);
  EXPECT_DOUBLE_EQ(mpi.clock(0), 0.0);
  EXPECT_DOUBLE_EQ(mpi.max_clock(), 1.5);
  EXPECT_DOUBLE_EQ(mpi.min_clock(), 0.0);
  EXPECT_THROW(mpi.compute(2, -1.0), Error);
  EXPECT_THROW(mpi.compute(99, 1.0), Error);
}

TEST(MpiSim, BarrierSynchronizesToMax) {
  MpiSim mpi(8);
  mpi.compute(3, 5.0);
  mpi.barrier();
  for (unsigned r = 0; r < mpi.size(); ++r) {
    EXPECT_GE(mpi.clock(r), 5.0);
    EXPECT_DOUBLE_EQ(mpi.clock(r), mpi.clock(0));
  }
  // Barrier latency is positive but small.
  EXPECT_LT(mpi.clock(0), 5.0 + 1e-3);
}

TEST(MpiSim, AllreduceCostsMoreThanBarrier) {
  MpiSim a(64), b(64);
  a.barrier();
  b.allreduce(1 * MiB);
  EXPECT_GT(b.max_clock(), a.max_clock());
}

TEST(MpiSim, GatherAdvancesRootBeyondOthers) {
  MpiSim mpi(16);
  mpi.gather(0, 1 * MiB);
  EXPECT_GT(mpi.clock(0), mpi.clock(1));
}

TEST(MpiSim, BroadcastLiftsEveryRank) {
  MpiSim mpi(16);
  mpi.compute(0, 2.0);
  mpi.broadcast(0, 4 * KiB);
  for (unsigned r = 0; r < mpi.size(); ++r) {
    EXPECT_GT(mpi.clock(r), 2.0);
  }
  EXPECT_THROW(mpi.broadcast(99, 1), Error);
}

TEST(MpiSim, SendRespectsCausality) {
  MpiSim mpi(4);
  mpi.compute(0, 3.0);
  mpi.send(0, 1, 1 * MiB);
  EXPECT_GT(mpi.clock(1), 3.0);  // message can't arrive before it was sent
  // A send to an already-late rank doesn't rewind it.
  mpi.compute(2, 100.0);
  mpi.send(0, 2, 1);
  EXPECT_GE(mpi.clock(2), 100.0);
}

TEST(MpiSim, ResetZeroesClocks) {
  MpiSim mpi(4);
  mpi.compute(0, 9.0);
  mpi.reset();
  EXPECT_DOUBLE_EQ(mpi.max_clock(), 0.0);
}

/// Property: barrier leave time scales (weakly) with log of rank count.
class BarrierScaling : public ::testing::TestWithParam<unsigned> {};

TEST_P(BarrierScaling, LeaveTimeBoundedAndSynchronized) {
  MpiSim mpi(GetParam());
  mpi.compute(0, 1.0);
  mpi.barrier();
  EXPECT_GE(mpi.min_clock(), 1.0);
  EXPECT_DOUBLE_EQ(mpi.min_clock(), mpi.max_clock());
  EXPECT_LT(mpi.max_clock(), 1.001);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BarrierScaling,
                         ::testing::Values(1u, 2u, 16u, 128u, 1600u));

}  // namespace
}  // namespace tunio::mpisim
