// Differential fuzz harness for the static-analysis stack: a seeded
// generator produces ~200 random mini-C programs (bounded loops, nested
// branches, helper calls, tuned_* reads that are dead, overwritten, or
// flowing into I/O) and cross-checks every layer against the
// interpreter as ground truth:
//
//   1. the slicer's kept set is a subset of the legacy marker's,
//   2. the sliced kernel performs exactly the application's I/O,
//   3. predicted cost intervals contain the measured op/byte counts,
//   4. the taint gate is monotone w.r.t. the slicer verdict, and
//   5. taint-invariant programs record bit-identical op traces under
//      two extreme configurations (the property the replay fast path
//      relies on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cost_model.hpp"
#include "analysis/slicer.hpp"
#include "common/rng.hpp"
#include "config/space.hpp"
#include "config/stack_settings.hpp"
#include "discovery/discovery.hpp"
#include "interp/interp.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "mpisim/mpisim.hpp"
#include "obs/metrics.hpp"
#include "pfs/pfs.hpp"
#include "replay/hooks.hpp"
#include "replay/invariance.hpp"
#include "replay/optrace.hpp"
#include "replay/trace_stats.hpp"

namespace tunio {
namespace {

constexpr unsigned kRanks = 4;
constexpr int kNumPrograms = 200;

// Conservative upper bound for any tuned_* read under any configuration
// of the tunio12 space (stripe sizes are the largest, in KiB).
constexpr std::int64_t kTunedBound = 1 << 17;
// Cap on the generator's conservative per-variable value bound so write
// volumes stay small enough for a 200-program ctest run.
constexpr std::int64_t kMaxBound = 1 << 20;

// --- random program generator ----------------------------------------

/// A "size-class" variable: provably positive by construction, so it is
/// safe to use as an element count (the interpreter casts counts to
/// uint64, where a negative value would mean an astronomically large
/// write). `bound` conservatively tracks the largest value the variable
/// can hold, so multiplications can be capped.
struct SizeVar {
  std::string name;
  std::int64_t bound = 1;
};

class Generator {
 public:
  explicit Generator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    has_helper_ = rng_.chance(0.4);
    std::ostringstream out;
    if (has_helper_) {
      out << "int scaled(int n)\n{\n  return n * 2;\n}\n";
    }
    out << "int main()\n{\n";
    emit(out, "int f = h5fcreate(\"/fuzz/app.h5\");");
    const int num_datasets = rng_.chance(0.35) ? 2 : 1;
    for (int d = 0; d < num_datasets; ++d) {
      const std::int64_t elem =
          rng_.choice(std::vector<std::int64_t>{1, 4, 8});
      // The extent must admit the generator's worst-case per-rank count
      // (kMaxBound + small addends) on every rank; dataset extents are
      // simulated metadata, so a large one costs nothing.
      std::ostringstream line;
      line << "int d" << d << " = h5dcreate(f, \"data" << d << "\", " << elem
           << ", " << (kRanks + 12) * kMaxBound << ");";
      emit(out, line.str());
      std::string handle = "d";
      handle += std::to_string(d);
      datasets_.push_back(std::move(handle));
    }
    // Seed the taint-recovery scenario into a slice of the corpus: a
    // tuned read that is overwritten with a constant before it feeds an
    // I/O count. The def-use slicer keeps the declaration (the kept
    // reassignment needs it) and calls the program dependent; the taint
    // gate proves the tuned value itself never escapes.
    if (rng_.chance(0.2)) {
      const std::string name = fresh("t");
      emit(out, "int " + name + " = " + tuned_call() + ";");
      const std::int64_t v = rng_.uniform_int(1, 64);
      emit(out, name + " = " + std::to_string(v) + ";");
      emit(out, "h5dwrite_all(" + rng_.choice(datasets_) + ", " + name + ");");
      size_vars_.push_back({name, v});
    }
    const int top_stmts = static_cast<int>(rng_.uniform_int(4, 10));
    for (int i = 0; i < top_stmts; ++i) gen_stmt(out, 0);
    emit(out, "h5fclose(f);");
    emit(out, "return 0;");
    out << "}\n";
    return out.str();
  }

 private:
  void emit(std::ostringstream& out, const std::string& line) {
    for (int i = 0; i < indent_ + 1; ++i) out << "  ";
    out << line << "\n";
  }

  std::string fresh(const char* prefix) {
    return prefix + std::to_string(next_id_++);
  }

  std::string tuned_call() {
    return rng_.choice(std::vector<std::string>{
               "tuned_stripe_count", "tuned_stripe_size_kib",
               "tuned_cb_nodes"}) +
           "()";
  }

  /// Expression that is positive under every configuration; returns the
  /// text and a conservative upper bound on its value.
  std::pair<std::string, std::int64_t> size_expr() {
    const int pick = static_cast<int>(rng_.uniform_int(0, 5));
    if (pick <= 1 || size_vars_.empty()) {
      if (pick == 0 && rng_.chance(0.5)) {
        return {tuned_call(), kTunedBound};
      }
      const std::int64_t c = rng_.uniform_int(1, 64);
      return {std::to_string(c), c};
    }
    const SizeVar& v = size_vars_[rng_.index(size_vars_.size())];
    if (pick == 2) return {v.name, v.bound};
    if (pick == 3) {
      const std::int64_t c = rng_.uniform_int(1, 16);
      return {v.name + " + " + std::to_string(c), v.bound + c};
    }
    if (pick == 4 && has_helper_ && v.bound * 2 <= kMaxBound) {
      return {"scaled(" + v.name + ")", v.bound * 2};
    }
    const std::int64_t m = rng_.uniform_int(2, 4);
    if (v.bound * m <= kMaxBound) {
      return {v.name + " * " + std::to_string(m), v.bound * m};
    }
    return {v.name, v.bound};
  }

  /// Arbitrary integer expression (may be negative); never feeds an I/O
  /// count, only branch conditions and dead arithmetic.
  std::string scratch_expr() {
    auto atom = [&]() -> std::string {
      if (!scratch_vars_.empty() && rng_.chance(0.5)) {
        return rng_.choice(scratch_vars_);
      }
      return std::to_string(rng_.uniform_int(-16, 16));
    };
    if (rng_.chance(0.4)) return atom();
    const std::string op = rng_.choice(std::vector<std::string>{"+", "-", "*"});
    return atom() + " " + op + " " + atom();
  }

  std::string cond_expr() {
    std::string lhs;
    if (!size_vars_.empty() && rng_.chance(0.5)) {
      lhs = size_vars_[rng_.index(size_vars_.size())].name;
    } else if (!scratch_vars_.empty() && rng_.chance(0.7)) {
      lhs = rng_.choice(scratch_vars_);
    } else {
      lhs = std::to_string(rng_.uniform_int(-4, 8));
    }
    const std::string op = rng_.chance(0.5) ? " < " : " > ";
    return lhs + op + std::to_string(rng_.uniform_int(-2, 32));
  }

  void gen_io(std::ostringstream& out) {
    const int pick = static_cast<int>(rng_.uniform_int(0, 5));
    if (pick <= 1) {
      emit(out, "h5dwrite_all(" + rng_.choice(datasets_) + ", " +
                    size_expr().first + ");");
    } else if (pick == 2) {
      emit(out, "h5dread_all(" + rng_.choice(datasets_) + ", " +
                    size_expr().first + ");");
    } else if (pick == 3) {
      emit(out, "h5dwrite_strided(" + rng_.choice(datasets_) + ", " +
                    std::to_string(rng_.uniform_int(0, 3)) + ", " +
                    std::to_string(rng_.uniform_int(1, 32)) + ");");
    } else if (pick == 4) {
      emit(out, "fprintf_log(\"/fuzz/app.log\", " +
                    std::to_string(rng_.uniform_int(64, 2048)) + ");");
    } else {
      emit(out, rng_.chance(0.5) ? "compute(0.001);" : "mpi_barrier();");
    }
  }

  /// Emits a braced block of `n` statements; variables declared inside
  /// go out of scope (and out of the generator's pools) at the brace.
  void gen_block(std::ostringstream& out, int depth, int n) {
    emit(out, "{");
    ++indent_;
    const std::size_t size_mark = size_vars_.size();
    const std::size_t scratch_mark = scratch_vars_.size();
    for (int i = 0; i < n; ++i) gen_stmt(out, depth);
    size_vars_.resize(size_mark);
    scratch_vars_.resize(scratch_mark);
    --indent_;
    emit(out, "}");
  }

  void gen_stmt(std::ostringstream& out, int depth) {
    const int pick = static_cast<int>(rng_.uniform_int(0, 11));
    switch (pick) {
      case 0: {  // size declaration
        auto [expr, bound] = size_expr();
        const std::string name = fresh("s");
        emit(out, "int " + name + " = " + expr + ";");
        size_vars_.push_back({name, bound});
        return;
      }
      case 1: {  // scratch declaration (dead-code fodder for the slicer)
        const std::string name = fresh("x");
        emit(out, "int " + name + " = " + scratch_expr() + ";");
        scratch_vars_.push_back(name);
        return;
      }
      case 2: {  // size reassignment: constant / other size var / tuned.
        // No arithmetic on the target, so loop-carried values cannot
        // compound past the tracked bound.
        if (size_vars_.empty()) break;
        SizeVar& v = size_vars_[rng_.index(size_vars_.size())];
        const int rhs = static_cast<int>(rng_.uniform_int(0, 2));
        if (rhs == 0) {
          const std::int64_t c = rng_.uniform_int(1, 64);
          emit(out, v.name + " = " + std::to_string(c) + ";");
          v.bound = std::max(v.bound, c);
        } else if (rhs == 1) {
          const SizeVar& src = size_vars_[rng_.index(size_vars_.size())];
          emit(out, v.name + " = " + src.name + ";");
          v.bound = std::max(v.bound, src.bound);
        } else {
          emit(out, v.name + " = " + tuned_call() + ";");
          v.bound = std::max(v.bound, kTunedBound);
        }
        return;
      }
      case 3: {  // scratch reassignment
        if (scratch_vars_.empty()) break;
        emit(out, rng_.choice(scratch_vars_) + " = " + scratch_expr() + ";");
        return;
      }
      case 4: {  // branch (occasionally on a tuned-tainted condition)
        if (depth >= 2) break;
        emit(out, "if (" + cond_expr() + ")");
        gen_block(out, depth + 1, static_cast<int>(rng_.uniform_int(1, 3)));
        if (rng_.chance(0.4)) {
          emit(out, "else");
          gen_block(out, depth + 1, static_cast<int>(rng_.uniform_int(1, 2)));
        }
        return;
      }
      case 5: {  // bounded counting loop
        if (depth >= 2) break;
        const std::string i = fresh("i");
        emit(out, "for (int " + i + " = 0; " + i + " < " +
                      std::to_string(rng_.uniform_int(1, 4)) + "; " + i +
                      " = " + i + " + 1)");
        gen_block(out, depth + 1, static_cast<int>(rng_.uniform_int(1, 3)));
        return;
      }
      case 6: {  // rare guarded early return (possibly tuned-controlled)
        if (!rng_.chance(0.15)) break;
        emit(out, "if (" + cond_expr() + ")");
        emit(out, "{");
        ++indent_;
        emit(out, "return 0;");
        --indent_;
        emit(out, "}");
        return;
      }
      default:
        break;
    }
    gen_io(out);
  }

  Rng rng_;
  int next_id_ = 0;
  int indent_ = 0;
  bool has_helper_ = false;
  std::vector<std::string> datasets_;
  std::vector<SizeVar> size_vars_;
  std::vector<std::string> scratch_vars_;
};

// --- interpreter ground truth ----------------------------------------

replay::OpTrace record(const minic::Program& program,
                       const cfg::StackSettings& settings) {
  replay::Recorder recorder;
  {
    mpisim::MpiSim mpi(kRanks);
    pfs::PfsSimulator fs;
    replay::RecordScope scope(recorder);
    interp::execute(program, mpi, fs, settings);
  }
  EXPECT_TRUE(recorder.valid()) << recorder.error();
  return recorder.take();
}

/// Full structural rendering of a trace — two traces are behaviourally
/// identical for replay purposes iff their fingerprints match.
std::string fingerprint(const replay::OpTrace& trace) {
  std::ostringstream out;
  out << trace.num_files << '/' << trace.num_datasets << '\n';
  for (const replay::Op& op : trace.ops) {
    out << static_cast<int>(op.kind) << ' ' << op.flag << op.flag2 << ' '
        << op.id << ' ' << op.a << ' ' << op.b << ' ' << op.c << ' '
        << op.seconds << ' ' << op.salt << ' ' << op.sel_begin << '+'
        << op.sel_count << ' ' << op.text << '\n';
  }
  for (const replay::Sel& sel : trace.sels) {
    out << sel.rank << ':' << sel.start_element << ':' << sel.count << '\n';
  }
  return out.str();
}

void expect_same_counts(const replay::AppIoCounts& a,
                        const replay::AppIoCounts& b) {
  EXPECT_EQ(a.write_ops, b.write_ops);
  EXPECT_EQ(a.read_ops, b.read_ops);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.file_opens, b.file_opens);
  EXPECT_EQ(a.dataset_creates, b.dataset_creates);
}

void expect_contains(const analysis::Interval& predicted, std::uint64_t got,
                     const char* what) {
  EXPECT_TRUE(predicted.contains(static_cast<std::int64_t>(got)))
      << what << ": measured " << got << " outside predicted "
      << predicted.str();
}

// --- the harness ------------------------------------------------------

TEST(AnalysisFuzz, DifferentialOverRandomPrograms) {
  const cfg::ConfigSpace space = cfg::ConfigSpace::tunio12();
  cfg::Configuration narrow = space.default_configuration();
  cfg::Configuration wide = space.default_configuration();
  for (std::size_t p = 0; p < space.num_parameters(); ++p) {
    narrow.set_index(p, 0);
    wide.set_index(p, space.parameter(p).domain.size() - 1);
  }
  const cfg::StackSettings narrow_settings = cfg::resolve(narrow);
  const cfg::StackSettings wide_settings = cfg::resolve(wide);

  const obs::Counter& recovered =
      obs::MetricsRegistry::global().counter("replay.gate.recovered");
  const std::uint64_t recovered_before = recovered.value();
  int invariant_programs = 0;
  int dependent_programs = 0;

  for (int seed = 1; seed <= kNumPrograms; ++seed) {
    Generator generator(0xF022'0000u + static_cast<std::uint64_t>(seed));
    const std::string source = generator.generate();
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + source);

    // Normalization round-trip, as discovery performs it, so statement
    // ids are identical for every engine below.
    const minic::Program program =
        minic::parse(minic::print(minic::parse(source)));

    // (1) Slicer kept-set is a subset of the legacy marker's kept-set.
    const std::vector<std::string> prefixes = {"h5", "fprintf_log"};
    const analysis::SliceResult slice = analysis::slice_io(program, prefixes);
    const std::set<int> legacy = discovery::mark_kept(program, prefixes);
    EXPECT_TRUE(std::includes(legacy.begin(), legacy.end(),
                              slice.kept.begin(), slice.kept.end()))
        << "slicer kept a statement the legacy marker drops";

    // (2) The sliced kernel performs exactly the application's I/O.
    discovery::DiscoveryOptions dopts;
    dopts.io_prefixes = prefixes;
    const discovery::KernelResult kernel_result =
        discovery::discover_io(program, dopts);
    EXPECT_FALSE(kernel_result.used_fallback);
    const minic::Program kernel = minic::parse(kernel_result.kernel_source);
    const replay::AppIoCounts full_counts =
        replay::app_io_counts(record(program, cfg::default_settings()));
    const replay::AppIoCounts kernel_counts =
        replay::app_io_counts(record(kernel, cfg::default_settings()));
    expect_same_counts(full_counts, kernel_counts);

    // (3) Predicted cost intervals contain the measured quantities.
    analysis::CostOptions copts;
    copts.absint.mpi_ranks = analysis::Interval::constant(kRanks);
    const analysis::ProgramCost cost = analysis::predict_cost(program, copts);
    ASSERT_TRUE(cost.analyzable) << cost.failure;
    expect_contains(cost.write_ops, full_counts.write_ops, "write ops");
    expect_contains(cost.read_ops, full_counts.read_ops, "read ops");
    expect_contains(cost.bytes_written, full_counts.bytes_written,
                    "bytes written");
    expect_contains(cost.bytes_read, full_counts.bytes_read, "bytes read");
    expect_contains(cost.file_opens, full_counts.file_opens, "file opens");
    expect_contains(cost.dataset_creates, full_counts.dataset_creates,
                    "dataset creates");

    // (4) Gate monotonicity: a tuned value that provably reaches an op
    // site must also survive the backward slice — taint may only ever
    // *widen* eligibility relative to the PR-4 verdict, never report
    // dependence the slicer misses.
    const replay::InvarianceReport report =
        replay::analyze_invariance(program);
    EXPECT_FALSE(report.reason.empty());
    if (report.tainted_sites > 0) {
      EXPECT_TRUE(report.slicer_dependent)
          << "taint found a dependent site the slicer missed";
    }

    // (5) Taint-invariant programs record bit-identical op streams under
    // two extreme configurations — the exact soundness property the
    // replay fast path needs from the gate.
    if (!report.dependent) {
      ++invariant_programs;
      EXPECT_EQ(fingerprint(record(program, narrow_settings)),
                fingerprint(record(program, wide_settings)))
          << "gate called this program invariant but its trace varies "
             "with the configuration";
    } else {
      ++dependent_programs;
    }
  }

  // The corpus must exercise both verdicts, and the injected
  // overwritten-tuned-read scenario must produce at least one program
  // the slicer rejects but taint recovers.
  EXPECT_GT(invariant_programs, 0);
  EXPECT_GT(dependent_programs, 0);
  EXPECT_GT(recovered.value(), recovered_before)
      << "no program exercised the taint-recovery (slicer-dependent but "
         "taint-invariant) path";
}

}  // namespace
}  // namespace tunio
