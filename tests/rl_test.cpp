// Tests for the RL components: replay buffer, Q-agent (with the paper's
// 5-iteration delayed reward), contextual-bandit state observer, and the
// synthetic tuning-curve environment.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "rl/log_curve_env.hpp"
#include "rl/q_agent.hpp"
#include "rl/replay_buffer.hpp"
#include "rl/state_observer.hpp"

namespace tunio::rl {
namespace {

TEST(ReplayBuffer, RingSemantics) {
  ReplayBuffer buffer(4);
  EXPECT_TRUE(buffer.empty());
  for (int i = 0; i < 10; ++i) {
    Transition t;
    t.reward = i;
    buffer.push(std::move(t));
  }
  EXPECT_EQ(buffer.size(), 4u);  // capped
  Rng rng(1);
  const auto batch = buffer.sample(16, rng);
  EXPECT_EQ(batch.size(), 16u);
  for (const Transition* t : batch) {
    EXPECT_GE(t->reward, 6.0);  // only the last four survive
  }
  EXPECT_THROW(ReplayBuffer(0), Error);
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  ReplayBuffer buffer(4);
  Rng rng(1);
  EXPECT_THROW(buffer.sample(1, rng), Error);
}

TEST(QAgent, LearnsContextualBanditPreference) {
  // Two states; action 0 pays in state A, action 1 pays in state B.
  QAgentOptions options;
  options.reward_delay = 1;  // immediate for this test
  options.epsilon = 0.4;
  options.epsilon_decay = 0.999;
  QAgent agent(2, 2, Rng(17), options);
  Rng rng(5);
  const std::vector<double> state_a{1.0, 0.0};
  const std::vector<double> state_b{0.0, 1.0};
  for (int i = 0; i < 600; ++i) {
    const auto& state = rng.chance(0.5) ? state_a : state_b;
    const std::size_t action = agent.select(state);
    const bool is_a = state[0] > 0.5;
    const double reward = (is_a == (action == 0)) ? 1.0 : 0.0;
    agent.observe(state, action, reward, state, true);
    agent.learn(1);
  }
  EXPECT_EQ(agent.best_action(state_a), 0u);
  EXPECT_EQ(agent.best_action(state_b), 1u);
}

TEST(QAgent, DelayedRewardMaturesAfterWindow) {
  QAgentOptions options;
  options.reward_delay = 5;
  QAgent agent(1, 2, Rng(3), options);
  // Feed 4 observations: nothing matures yet.
  for (int i = 0; i < 4; ++i) {
    agent.observe({0.0}, 0, 1.0, {0.0}, false);
  }
  EXPECT_EQ(agent.replay_size(), 0u);
  // Two more: the earliest transitions mature.
  agent.observe({0.0}, 0, 1.0, {0.0}, false);
  agent.observe({0.0}, 0, 1.0, {0.0}, false);
  EXPECT_GT(agent.replay_size(), 0u);
}

TEST(QAgent, TerminalFlushesPending) {
  QAgentOptions options;
  options.reward_delay = 5;
  QAgent agent(1, 2, Rng(3), options);
  agent.observe({0.0}, 0, 1.0, {0.0}, false);
  agent.observe({0.0}, 1, 1.0, {0.0}, true);  // terminal
  EXPECT_EQ(agent.replay_size(), 2u);
}

TEST(QAgent, EpsilonDecays) {
  QAgentOptions options;
  options.epsilon = 0.5;
  options.epsilon_min = 0.1;
  options.epsilon_decay = 0.5;
  QAgent agent(1, 2, Rng(3), options);
  agent.select({0.0});
  EXPECT_NEAR(agent.epsilon(), 0.25, 1e-12);
  agent.select({0.0});
  agent.select({0.0});
  agent.select({0.0});
  EXPECT_NEAR(agent.epsilon(), 0.1, 1e-12);  // floor
}

TEST(QAgent, RejectsBadActions) {
  QAgent agent(1, 2, Rng(3));
  EXPECT_THROW(agent.observe({0.0}, 7, 0.0, {0.0}, false), Error);
  EXPECT_THROW(QAgent(1, 0, Rng(3)), Error);
}

TEST(StateObserver, LearnsPerfPrediction) {
  StateObserver observer(3, 4, Rng(9));
  Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    observer.update({a, b, 1.0}, 0.8 * a + 0.1 * b);
  }
  EXPECT_NEAR(observer.predict({1.0, 0.0, 1.0}), 0.8, 0.1);
  EXPECT_NEAR(observer.predict({0.0, 1.0, 1.0}), 0.1, 0.1);
  EXPECT_EQ(observer.observe({0.5, 0.5, 1.0}).size(), 4u);
}

TEST(LogCurveEpisode, MonotoneBestAndBounds) {
  Rng rng(33);
  LogCurveParams params;
  for (int episode = 0; episode < 20; ++episode) {
    LogCurveEpisode curve(params, rng);
    EXPECT_EQ(curve.max_iterations(), params.max_iterations);
    double prev_best = -1.0;
    for (unsigned t = 0; t < curve.max_iterations(); ++t) {
      EXPECT_GE(curve.best_perf_at(t), prev_best);
      EXPECT_GE(curve.perf_at(t), 0.0);
      EXPECT_LE(curve.perf_at(t), 2.0);
      prev_best = curve.best_perf_at(t);
    }
    EXPECT_GE(curve.best_possible_return(), curve.stop_return(0));
  }
}

TEST(LogCurveEpisode, CurvesVaryAcrossEpisodes) {
  Rng rng(34);
  LogCurveParams params;
  LogCurveEpisode a(params, rng);
  LogCurveEpisode b(params, rng);
  bool any_difference = false;
  for (unsigned t = 0; t < a.max_iterations(); ++t) {
    if (std::abs(a.perf_at(t) - b.perf_at(t)) > 1e-9) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(LogCurveEpisode, WarmupDelaysGrowth) {
  // With full-length warmup forced off, early growth appears quickly;
  // with warmup allowed, some episodes stay flat early. Statistically
  // check the early-gain distribution differs.
  LogCurveParams no_warmup;
  no_warmup.warmup_max_fraction = 0.0;
  no_warmup.max_plateaus = 0;
  no_warmup.noise_stddev = 0.0;
  no_warmup.dip_probability = 0.0;
  LogCurveParams with_warmup = no_warmup;
  with_warmup.warmup_max_fraction = 0.6;

  Rng rng_a(35), rng_b(35);
  double early_gain_without = 0.0, early_gain_with = 0.0;
  for (int i = 0; i < 40; ++i) {
    LogCurveEpisode a(no_warmup, rng_a);
    LogCurveEpisode b(with_warmup, rng_b);
    early_gain_without += a.best_perf_at(5) - a.perf_at(0);
    early_gain_with += b.best_perf_at(5) - b.perf_at(0);
  }
  EXPECT_GT(early_gain_without, early_gain_with);
}

TEST(EarlyStopState, FeatureLayout) {
  const std::vector<double> history{0.1, 0.2, 0.3, 0.35, 0.38, 0.40};
  const auto state = early_stop_state(5, 50, history);
  ASSERT_EQ(state.size(), 5u);
  EXPECT_DOUBLE_EQ(state[0], 0.1);   // t/T
  EXPECT_DOUBLE_EQ(state[1], 0.40);  // best
  EXPECT_NEAR(state[2], 0.02, 1e-12);  // gain over last 1
  EXPECT_NEAR(state[3], 0.10, 1e-12);  // gain over last 3
  EXPECT_NEAR(state[4], 0.30, 1e-12);  // gain over last 5
  // Short histories fall back to the full-span gain.
  const auto early = early_stop_state(0, 50, {0.1});
  EXPECT_DOUBLE_EQ(early[2], 0.0);
  EXPECT_THROW(early_stop_state(0, 50, {}), Error);
}

TEST(EarlyStopState, GainsScaleWithNormalizedPerf) {
  const std::vector<double> small{0.01, 0.02, 0.04};
  std::vector<double> large;
  for (double v : small) large.push_back(v * 100.0);
  const auto a = early_stop_state(2, 50, small);
  const auto b = early_stop_state(2, 50, large);
  for (std::size_t i = 2; i < a.size(); ++i) {
    EXPECT_NEAR(a[i] * 100.0, b[i], 1e-9);
  }
}

TEST(StopReturn, RewardsEarlyEquivalentGains) {
  Rng rng(36);
  LogCurveParams params;
  params.noise_stddev = 0.0;
  params.dip_probability = 0.0;
  params.max_plateaus = 0;
  params.warmup_max_fraction = 0.0;
  LogCurveEpisode curve(params, rng);
  // Same best perf achieved earlier gives a higher return.
  const double early = curve.stop_return(10);
  const double late_gain = curve.best_perf_at(49) - curve.perf_at(0);
  const double early_gain = curve.best_perf_at(10) - curve.perf_at(0);
  if (early_gain > 0.8 * late_gain) {
    EXPECT_GT(early, curve.stop_return(49) * 0.9);
  }
}

}  // namespace
}  // namespace tunio::rl
