// Tests for the neural-network module: matrices, dense nets (function
// approximation), PCA.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/dense_net.hpp"
#include "nn/matrix.hpp"
#include "nn/pca.hpp"

namespace tunio::nn {
namespace {

TEST(Matrix, MultiplyAndTranspose) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6]
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const auto y = m.multiply({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const auto yt = m.multiply_transposed({1.0, 1.0});
  ASSERT_EQ(yt.size(), 3u);
  EXPECT_DOUBLE_EQ(yt[0], 5.0);
  EXPECT_DOUBLE_EQ(yt[1], 7.0);
  EXPECT_DOUBLE_EQ(yt[2], 9.0);
  EXPECT_THROW(m.multiply({1.0}), Error);
  EXPECT_THROW(m.multiply_transposed({1.0, 2.0, 3.0}), Error);
}

TEST(DenseNet, ShapeValidation) {
  Rng rng(1);
  EXPECT_THROW(DenseNet({4}, rng), Error);
  DenseNet net({4, 8, 2}, rng);
  EXPECT_EQ(net.input_size(), 4u);
  EXPECT_EQ(net.output_size(), 2u);
  EXPECT_THROW(net.forward({1.0, 2.0}), Error);
  EXPECT_THROW(net.train({1, 2, 3, 4}, {1.0}), Error);
}

TEST(DenseNet, LearnsLinearFunction) {
  Rng rng(7);
  DenseNet net({2, 16, 1}, rng, {5e-3});
  Rng data(11);
  double final_mse = 1e9;
  for (int epoch = 0; epoch < 400; ++epoch) {
    double mse = 0.0;
    for (int i = 0; i < 16; ++i) {
      const double a = data.uniform(-1, 1);
      const double b = data.uniform(-1, 1);
      mse += net.train({a, b}, {0.5 * a - 0.25 * b + 0.1});
    }
    final_mse = mse / 16;
  }
  EXPECT_LT(final_mse, 1e-3);
  const double pred = net.forward({0.5, -0.5})[0];
  EXPECT_NEAR(pred, 0.5 * 0.5 + 0.25 * 0.5 + 0.1, 0.05);
}

TEST(DenseNet, LearnsXor) {
  Rng rng(3);
  DenseNet net({2, 12, 12, 1}, rng, {8e-3});
  const std::vector<std::vector<double>> xs{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<std::vector<double>> ys{{0}, {1}, {1}, {0}};
  double mse = 1e9;
  for (int epoch = 0; epoch < 1200; ++epoch) {
    mse = net.train_epoch(xs, ys);
  }
  EXPECT_LT(mse, 0.02);
  EXPECT_LT(net.forward({0, 0})[0], 0.3);
  EXPECT_GT(net.forward({0, 1})[0], 0.7);
  EXPECT_GT(net.forward({1, 0})[0], 0.7);
  EXPECT_LT(net.forward({1, 1})[0], 0.3);
}

TEST(DenseNet, TrainOutputUpdatesSingleHead) {
  Rng rng(5);
  DenseNet net({2, 8, 3}, rng, {1e-2});
  for (int i = 0; i < 500; ++i) {
    net.train_output({1.0, 0.0}, 1, 0.75);
  }
  EXPECT_NEAR(net.forward({1.0, 0.0})[1], 0.75, 0.05);
}

TEST(DenseNet, EmbeddingHasHiddenWidth) {
  Rng rng(9);
  DenseNet net({4, 10, 6, 2}, rng);
  std::vector<double> embedding;
  net.forward_with_embedding({1, 2, 3, 4}, &embedding);
  EXPECT_EQ(embedding.size(), 6u);
  // ReLU hidden activations are non-negative.
  for (double v : embedding) EXPECT_GE(v, 0.0);
}

TEST(DenseNet, SoftUpdateMovesTowardSource) {
  // A single-layer net is linear in its parameters, so averaging the
  // weights exactly averages the outputs (with ReLU stacks it need not).
  Rng rng(13);
  DenseNet a({2, 1}, rng);
  DenseNet b({2, 1}, rng);
  const double before = std::abs(a.forward({1, 1})[0] - b.forward({1, 1})[0]);
  a.soft_update_from(b, 0.5);
  const double after = std::abs(a.forward({1, 1})[0] - b.forward({1, 1})[0]);
  EXPECT_NEAR(after, before / 2.0, 1e-9);
  a.copy_from(b);
  EXPECT_NEAR(a.forward({1, 1})[0], b.forward({1, 1})[0], 1e-12);
  // Mismatched architectures are rejected.
  DenseNet c({3, 1}, rng);
  EXPECT_THROW(a.soft_update_from(c, 0.5), Error);
}

TEST(Pca, RecoversDominantDirection) {
  // Points along y = 2x with small noise: the first component should be
  // ~(1, 2)/sqrt(5).
  Rng rng(21);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 400; ++i) {
    const double t = rng.uniform(-1, 1);
    samples.push_back({t + rng.normal(0, 0.01), 2 * t + rng.normal(0, 0.01)});
  }
  const PcaResult pca = pca_fit(samples);
  ASSERT_EQ(pca.components.size(), 2u);
  EXPECT_GT(pca.eigenvalues[0], pca.eigenvalues[1] * 50);
  const auto& c = pca.components[0];
  const double ratio = std::abs(c[1] / c[0]);
  EXPECT_NEAR(ratio, 2.0, 0.05);
  // Components are unit length.
  EXPECT_NEAR(c[0] * c[0] + c[1] * c[1], 1.0, 1e-6);
}

TEST(Pca, EigenvaluesSortedDescending) {
  Rng rng(22);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back({rng.normal(0, 3.0), rng.normal(0, 1.0),
                       rng.normal(0, 0.1)});
  }
  const PcaResult pca = pca_fit(samples);
  for (std::size_t k = 1; k < pca.eigenvalues.size(); ++k) {
    EXPECT_GE(pca.eigenvalues[k - 1], pca.eigenvalues[k]);
  }
  // Variances roughly match the generating stddevs squared.
  EXPECT_NEAR(pca.eigenvalues[0], 9.0, 2.5);
  EXPECT_NEAR(pca.eigenvalues[1], 1.0, 0.5);
}

TEST(Pca, ImportanceHighlightsVaryingDimension) {
  Rng rng(23);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back({rng.normal(0, 5.0), rng.normal(0, 0.1)});
  }
  const auto importance = pca_importance(pca_fit(samples));
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[0], importance[1]);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(Pca, RejectsDegenerateInput) {
  EXPECT_THROW(pca_fit({}), Error);
  EXPECT_THROW(pca_fit({{1.0, 2.0}, {1.0}}), Error);
}

TEST(Pca, ConstantDataHasZeroEigenvalues) {
  std::vector<std::vector<double>> samples(10, {3.0, 3.0});
  const PcaResult pca = pca_fit(samples);
  for (double ev : pca.eigenvalues) EXPECT_NEAR(ev, 0.0, 1e-12);
}

}  // namespace
}  // namespace tunio::nn
